package flex

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"flexmeasures/internal/experiments"
	"flexmeasures/internal/grid"
	"flexmeasures/internal/market"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// benchExperiment runs one paper experiment per iteration and fails the
// benchmark if the regenerated values stop matching the paper.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artefact (DESIGN.md experiment index).

func BenchmarkFigure1(b *testing.B)        { benchExperiment(b, "F1") }
func BenchmarkExample4(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkFigure2(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkFigure3(b *testing.B)        { benchExperiment(b, "F3") }
func BenchmarkFigure4(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkFigure5(b *testing.B)        { benchExperiment(b, "F5") }
func BenchmarkFigure6(b *testing.B)        { benchExperiment(b, "F6") }
func BenchmarkFigure7(b *testing.B)        { benchExperiment(b, "F7") }
func BenchmarkExamples11to13(b *testing.B) { benchExperiment(b, "E11-13") }
func BenchmarkTable1(b *testing.B)         { benchExperiment(b, "T1") }

// Extended experiments (X1–X4) are heavier; they regenerate the
// EXPERIMENTS.md tables.

func BenchmarkAggregationLoss(b *testing.B)     { benchExperiment(b, "X1") }
func BenchmarkSchedulingByMeasure(b *testing.B) { benchExperiment(b, "X2") }
func BenchmarkMarketValue(b *testing.B)         { benchExperiment(b, "X3") }
func BenchmarkMeasureCorrelation(b *testing.B)  { benchExperiment(b, "X4") }

// Ablations of this library's extensions (DESIGN.md §5 design choices).

func BenchmarkGroupingAblation(b *testing.B)    { benchExperiment(b, "X5") }
func BenchmarkSchedulerAblation(b *testing.B)   { benchExperiment(b, "X6") }
func BenchmarkDecomposabilityCost(b *testing.B) { benchExperiment(b, "X7") }
func BenchmarkPeakShaving(b *testing.B)         { benchExperiment(b, "X8") }

// Micro-benchmarks for the core operations a downstream system calls in
// volume.

func benchOffers(n int) []*FlexOffer {
	r := rand.New(rand.NewSource(99))
	offers, err := workload.Population(r, n, 3, workload.DefaultMix())
	if err != nil {
		panic(err)
	}
	return offers
}

func BenchmarkAllMeasuresSingleOffer(b *testing.B) {
	offers := benchOffers(256)
	ms := AllMeasures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := offers[i%len(offers)]
		for _, m := range ms {
			// Mixed offers make relative_area error; that path is
			// part of the measured cost.
			_, _ = m.Value(f)
		}
	}
}

func BenchmarkUnionAreaSweep(b *testing.B) {
	offers := benchOffers(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.UnionAreaSize(offers[i%len(offers)])
	}
}

func BenchmarkAssignmentCount(b *testing.B) {
	offers := benchOffers(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offers[i%len(offers)].AssignmentCount()
	}
}

func BenchmarkValidAssignmentCountDP(b *testing.B) {
	offers := benchOffers(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offers[i%len(offers)].ValidAssignmentCount()
	}
}

func BenchmarkAggregate1000(b *testing.B) {
	offers := benchOffers(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateAll(offers, GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregate1000Parallel is the worker-pool counterpart of
// BenchmarkAggregate1000; compare the workers=N sub-benchmarks against it
// (and each other) for the parallel speedup on multi-core hardware.
func BenchmarkAggregate1000Parallel(b *testing.B) {
	offers := benchOffers(1000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pp := ParallelParams{Workers: workers}
			gp := GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AggregateAllParallel(offers, gp, pp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSchedule500(b *testing.B) {
	offers := benchOffers(500)
	r := rand.New(rand.NewSource(7))
	target := workload.WindProfile(r, 4*workload.SlotsPerDay, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(offers, target, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule1000 compares the incremental delta evaluator
// against the legacy full-recompute evaluator on the same 1000-offer
// workload, with allocation reporting. The candidate-evaluation loop of
// the incremental path does zero allocations (pinned by
// sched.TestPlaceCandidateLoopZeroAllocs and BenchmarkPlaceIncremental);
// the allocs/op reported here are the per-offer result materialization
// (one Values slice per assignment) plus the fixed evaluator buffers.
func BenchmarkSchedule1000(b *testing.B) {
	offers := benchOffers(1000)
	r := rand.New(rand.NewSource(7))
	target := workload.WindProfile(r, 4*workload.SlotsPerDay, 50)
	for _, bc := range []struct {
		name string
		opts sched.Options
	}{
		{"incremental", sched.Options{}},
		{"legacy", sched.Options{FullRecompute: true}},
		{"incremental-capped", sched.Options{PeakCap: 120}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Schedule(offers, target, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulePipeline1000 measures the streaming
// group→aggregate→schedule→disaggregate chain end to end; compare the
// workers=N sub-benchmarks on multi-core hardware.
func BenchmarkSchedulePipeline1000(b *testing.B) {
	offers := benchOffers(1000)
	r := rand.New(rand.NewSource(7))
	target := workload.WindProfile(r, 4*workload.SlotsPerDay, 50)
	cfg := Config{Group: GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}, Safe: true}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SchedulePipeline(context.Background(), offers, target, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCheapestAssignment(b *testing.B) {
	offers := benchOffers(256)
	r := rand.New(rand.NewSource(7))
	prices := workload.DayAheadPrices(r, 5*workload.SlotsPerDay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prices.CheapestAssignment(offers[i%len(offers)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueOfFlexibility(b *testing.B) {
	offers := benchOffers(256)
	r := rand.New(rand.NewSource(7))
	prices := workload.DayAheadPrices(r, 5*workload.SlotsPerDay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := market.ValueOfFlexibility(offers[i%len(offers)], prices); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeriesNorms(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	vals := make([]int64, 96)
	for i := range vals {
		vals[i] = int64(r.Intn(100) - 50)
	}
	s := timeseries.New(0, vals...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NormL1()
		s.NormL2()
		s.NormLInf()
	}
}

func BenchmarkAlignmentAblation(b *testing.B) { benchExperiment(b, "X9") }
