package flex

import (
	"context"
	"reflect"
	"sync"
	"testing"
)

// TestEngineConcurrentHammer is the Engine's goroutine-safety contract
// under -race: one engine is hammered from many goroutines with a mix
// of Aggregate, Pipeline, Measures, Schedule and Disaggregate calls,
// and every result must be identical to the serial free-function
// baseline — concurrent calls share the pool but must never share or
// corrupt per-call state.
func TestEngineConcurrentHammer(t *testing.T) {
	offers, target := engineTestFleet(t, 150)
	ctx := context.Background()

	// Serial baselines through the legacy free functions.
	wantAgs, err := AggregateAllSafe(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	wantPipe, err := SchedulePipeline(ctx, offers, target,
		Config{Group: engineTestGroup, Workers: 1, Safe: true, PeakCap: 45})
	if err != nil {
		t.Fatal(err)
	}
	wantSched, err := Schedule(offers, target, ScheduleOptions{PeakCap: 45})
	if err != nil {
		t.Fatal(err)
	}
	wantParts, err := DisaggregateAllParallel(ctx, wantPipe.Aggregates,
		wantPipe.AggregateSchedule.Assignments, ParallelParams{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	eng := New(WithWorkers(4), WithGrouping(engineTestGroup), WithSafe(true), WithPeakCap(45))
	defer eng.Close()
	wantMeasures := expectedMeasureTable(t, measureSet(eng.opts.norm), offers)

	const (
		goroutines = 12
		rounds     = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (g + r) % 5 {
				case 0:
					got, err := eng.Aggregate(ctx, offers)
					if err != nil {
						t.Errorf("Aggregate: %v", err)
						return
					}
					if !reflect.DeepEqual(wantAgs, got) {
						t.Error("concurrent Aggregate diverged from serial baseline")
						return
					}
				case 1:
					got, err := eng.Pipeline(ctx, offers, target)
					if err != nil {
						t.Errorf("Pipeline: %v", err)
						return
					}
					if !reflect.DeepEqual(wantPipe, got) {
						t.Error("concurrent Pipeline diverged from serial baseline")
						return
					}
				case 2:
					got, err := eng.Measures(ctx, offers)
					if err != nil {
						t.Errorf("Measures: %v", err)
						return
					}
					if !measureTablesEqual(wantMeasures, got) {
						t.Error("concurrent Measures diverged from serial baseline")
						return
					}
				case 3:
					got, err := eng.Schedule(ctx, offers, target)
					if err != nil {
						t.Errorf("Schedule: %v", err)
						return
					}
					if !reflect.DeepEqual(wantSched, got) {
						t.Error("concurrent Schedule diverged from serial baseline")
						return
					}
				case 4:
					got, err := eng.Disaggregate(ctx, wantPipe.Aggregates, wantPipe.AggregateSchedule.Assignments)
					if err != nil {
						t.Errorf("Disaggregate: %v", err)
						return
					}
					if !reflect.DeepEqual(wantParts, got) {
						t.Error("concurrent Disaggregate diverged from serial baseline")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
