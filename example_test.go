package flex_test

import (
	"fmt"
	"log"

	flex "flexmeasures"
)

// Example reproduces the paper's Examples 1–3 on the Figure 1
// flex-offer.
func Example() {
	f, err := flex.NewFlexOffer(1, 6,
		flex.Slice{Min: 1, Max: 3}, flex.Slice{Min: 2, Max: 4},
		flex.Slice{Min: 0, Max: 5}, flex.Slice{Min: 0, Max: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tf:", flex.TimeFlexibility(f))
	fmt.Println("ef:", flex.EnergyFlexibility(f))
	fmt.Println("product:", flex.ProductFlexibility(f))
	// Output:
	// tf: 5
	// ef: 12
	// product: 60
}

// ExampleAssignmentFlexibility counts the assignments of the paper's f2
// and f6 (Examples 6 and 14).
func ExampleAssignmentFlexibility() {
	f2, err := flex.NewFlexOffer(0, 2, flex.Slice{Min: 0, Max: 2})
	if err != nil {
		log.Fatal(err)
	}
	f6, err := flex.NewFlexOffer(0, 2,
		flex.Slice{Min: -1, Max: 2}, flex.Slice{Min: -4, Max: -1}, flex.Slice{Min: -3, Max: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(flex.AssignmentFlexibility(f2))
	fmt.Println(flex.AssignmentFlexibility(f6))
	// Output:
	// 9
	// 240
}

// ExampleRelativeAreaFlexibility evaluates the paper's Example 10.
func ExampleRelativeAreaFlexibility() {
	f4, err := flex.NewFlexOffer(0, 4, flex.Slice{Min: 2, Max: 2})
	if err != nil {
		log.Fatal(err)
	}
	rel, err := flex.RelativeAreaFlexibility(f4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("absolute: %d\n", flex.AbsoluteAreaFlexibility(f4))
	fmt.Printf("relative: %g\n", rel)
	// Output:
	// absolute: 8
	// relative: 4
}

// ExampleMeasure shows the uniform Measure interface over a set of
// offers.
func ExampleMeasure() {
	a, err := flex.NewFlexOffer(0, 3, flex.Slice{Min: 0, Max: 2})
	if err != nil {
		log.Fatal(err)
	}
	b, err := flex.NewFlexOffer(2, 4, flex.Slice{Min: 1, Max: 3})
	if err != nil {
		log.Fatal(err)
	}
	m, err := flex.LookupMeasure("product")
	if err != nil {
		log.Fatal(err)
	}
	setValue, err := m.SetValue([]*flex.FlexOffer{a, b})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("set product flexibility: %g\n", setValue)
	// Output:
	// set product flexibility: 10
}

// ExampleAggregate aggregates two offers and quantifies the flexibility
// loss (the paper's Scenario 1).
func ExampleAggregate() {
	a, err := flex.NewFlexOffer(0, 3, flex.Slice{Min: 0, Max: 1})
	if err != nil {
		log.Fatal(err)
	}
	b, err := flex.NewFlexOffer(0, 1, flex.Slice{Min: 0, Max: 1})
	if err != nil {
		log.Fatal(err)
	}
	ag, err := flex.Aggregate([]*flex.FlexOffer{a, b})
	if err != nil {
		log.Fatal(err)
	}
	loss, err := ag.Loss(flex.ProductMeasure{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aggregate window:", ag.Offer.EarliestStart, "..", ag.Offer.LatestStart)
	fmt.Println("product flexibility lost:", loss)
	// Output:
	// aggregate window: 0 .. 1
	// product flexibility lost: 2
}

// ExampleFlexOffer_Refine converts an hourly offer to half-hour
// granularity (the paper's Section 2 scaling coefficient).
func ExampleFlexOffer_Refine() {
	f, err := flex.NewFlexOffer(1, 2, flex.Slice{Min: 4, Max: 8})
	if err != nil {
		log.Fatal(err)
	}
	half, err := f.Refine(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(half)
	// Output:
	// ([2,4],⟨[2,4],[2,4]⟩,cmin=4,cmax=8)
}
