// Command flexbench regenerates every table and figure of "Measuring and
// Comparing Energy Flexibilities" (Valsomatzis et al., EDBT/ICDT
// Workshops 2015) and the extended experiments, printing paper-vs-
// measured comparison tables. EXPERIMENTS.md is this program's archived
// output.
//
// Usage:
//
//	flexbench              # run every experiment
//	flexbench -exp F7      # run one experiment
//	flexbench -list        # list experiment IDs
//	flexbench -check       # exit non-zero if any value mismatches the paper
package main

import (
	"flag"
	"fmt"
	"os"

	"flexmeasures/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "run a single experiment by ID (e.g. F1, T1, X2)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	check := fs.Bool("check", false, "fail when any measured value mismatches the paper")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			doc, err := experiments.Describe(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-7s %s\n", id, doc)
		}
		return nil
	}
	var results []*experiments.Result
	if *exp != "" {
		r, err := experiments.Run(*exp)
		if err != nil {
			return err
		}
		results = append(results, r)
	} else {
		rs, err := experiments.RunAll()
		if err != nil {
			return err
		}
		results = rs
	}
	failed := false
	for _, r := range results {
		fmt.Println(r.Render())
		if err := r.Check(); err != nil {
			failed = true
			fmt.Fprintln(os.Stderr, "MISMATCH:", err)
		}
	}
	if *check && failed {
		return fmt.Errorf("some measured values disagree with the paper")
	}
	return nil
}
