// Command flexbench regenerates every table and figure of "Measuring and
// Comparing Energy Flexibilities" (Valsomatzis et al., EDBT/ICDT
// Workshops 2015) and the extended experiments, printing paper-vs-
// measured comparison tables. EXPERIMENTS.md is this program's archived
// output.
//
// Usage:
//
//	flexbench              # run every experiment
//	flexbench -exp F7      # run one experiment
//	flexbench -list        # list experiment IDs
//	flexbench -check       # exit non-zero if any value mismatches the paper
//
// Beyond the paper artefacts, -agg times the serial aggregation pipeline
// against the parallel one on a synthetic population and verifies that
// both produce identical aggregates:
//
//	flexbench -agg 100000             # serial vs parallel, one worker per CPU
//	flexbench -agg 100000 -workers 4  # pin the worker-pool size
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/experiments"
	"flexmeasures/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "run a single experiment by ID (e.g. F1, T1, X2)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	check := fs.Bool("check", false, "fail when any measured value mismatches the paper")
	aggN := fs.Int("agg", 0, "compare serial vs parallel aggregation over N synthetic offers and exit")
	workers := fs.Int("workers", 0, "worker-pool size for -agg (0: one per CPU)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aggN > 0 {
		return runAggCompare(os.Stdout, *aggN, *workers)
	}
	if *list {
		for _, id := range experiments.IDs() {
			doc, err := experiments.Describe(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-7s %s\n", id, doc)
		}
		return nil
	}
	var results []*experiments.Result
	if *exp != "" {
		r, err := experiments.Run(*exp)
		if err != nil {
			return err
		}
		results = append(results, r)
	} else {
		rs, err := experiments.RunAll()
		if err != nil {
			return err
		}
		results = rs
	}
	failed := false
	for _, r := range results {
		fmt.Println(r.Render())
		if err := r.Check(); err != nil {
			failed = true
			fmt.Fprintln(os.Stderr, "MISMATCH:", err)
		}
	}
	if *check && failed {
		return fmt.Errorf("some measured values disagree with the paper")
	}
	return nil
}

// runAggCompare times AggregateAll against AggregateAllParallel on a
// reproducible synthetic population (seed 99, Scenario 1 grouping
// parameters) and fails unless the two pipelines produce identical
// aggregates in identical order.
func runAggCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	gp := aggregate.GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}

	t0 := time.Now()
	serial, err := aggregate.AggregateAll(offers, gp)
	if err != nil {
		return err
	}
	serialDur := time.Since(t0)

	t0 = time.Now()
	parallel, err := aggregate.AggregateAllParallel(offers, gp, aggregate.ParallelParams{Workers: workers})
	if err != nil {
		return err
	}
	parallelDur := time.Since(t0)

	if !reflect.DeepEqual(serial, parallel) {
		return fmt.Errorf("parallel aggregation diverged from serial over %d offers", n)
	}
	speedup := float64(serialDur) / float64(parallelDur)
	fmt.Fprintf(out, "aggregated %d offers into %d aggregates\n", len(offers), len(serial))
	fmt.Fprintf(out, "serial:   %v\n", serialDur)
	fmt.Fprintf(out, "parallel: %v  (%d workers, %.2fx speedup)\n", parallelDur, workers, speedup)
	fmt.Fprintln(out, "serial and parallel outputs are identical")
	return nil
}
