// Command flexbench regenerates every table and figure of "Measuring and
// Comparing Energy Flexibilities" (Valsomatzis et al., EDBT/ICDT
// Workshops 2015) and the extended experiments, printing paper-vs-
// measured comparison tables. EXPERIMENTS.md is this program's archived
// output.
//
// Usage:
//
//	flexbench              # run every experiment
//	flexbench -exp F7      # run one experiment
//	flexbench -list        # list experiment IDs
//	flexbench -check       # exit non-zero if any value mismatches the paper
//
// Beyond the paper artefacts, -agg times the serial aggregation pipeline
// against the parallel one on a synthetic population and verifies that
// both produce identical aggregates:
//
//	flexbench -agg 100000             # serial vs parallel, one worker per CPU
//	flexbench -agg 100000 -workers 4  # pin the worker-pool size
//
// -sched does the same for the scheduling hot path: it times the legacy
// full-recompute candidate evaluator against the incremental delta
// evaluator (verifying identical schedules), then the materialized
// aggregate→schedule→disaggregate batch against the streaming pipeline
// (verifying identical output again):
//
// and finally the full engine pipeline with tracing absent, disabled
// and enabled (interleaved best-of-3), pinning both the overhead and
// that tracing never changes a schedule:
//
//	flexbench -sched 1000             # legacy vs incremental + batch vs streaming + tracing overhead
//	flexbench -sched 1000 -workers 4  # pin the pipeline worker-pool size
//	flexbench -sched 1000 -trace      # also print the recorded span tree
//
// -engine measures what the Engine's persistent worker pool buys over
// the legacy execution model, which spun a goroutine pool up and down
// on every call: both run the same repeated aggregation batches, one
// through per-call spin-up, one through one long-lived flex.Engine
// (verifying identical aggregates):
//
//	flexbench -engine 2000            # repeated batches, spin-up vs persistent pool
//	flexbench -engine 2000 -workers 4 # pin the pool size
//
// -ingest measures the flexd service's sharded NDJSON decoder against
// the serial line-by-line decoder on the same encoded population
// (verifying identical offers):
//
//	flexbench -ingest 100000            # serial vs sharded decode
//	flexbench -ingest 100000 -workers 4 # pin the decode shard count
//
// -group measures the pipeline's entry stage: the serial threshold
// grouper (sort + greedy pack) against the parallel sharded grouper
// (internal/grouping), verifying bit-identical groups:
//
//	flexbench -group 100000             # serial vs sharded grouping
//	flexbench -group 100000 -workers 4  # pin the grouping worker count
//
// -scatter sweeps the sharded engine's scatter-gather pipeline over
// shard counts 1/2/4/8, verifying each one reproduces the single-engine
// pipeline bit for bit:
//
//	flexbench -scatter 20000            # shard sweep, one worker per CPU per shard
//	flexbench -scatter 20000 -workers 2 # pin the per-shard pool size
//
// -churn measures incremental continuous scheduling (flexd's
// -incremental path): a fleet is ingested once, then re-scheduled
// round after round while a small fraction of offers is re-submitted
// between rounds — the steady-state traffic of a live aggregator. Each
// round runs both a persistent WithIncremental engine, whose
// content-addressed cache survives from round to round, and a
// stateless full recompute of the same snapshot, verifying the results
// are identical before comparing the times:
//
//	flexbench -churn 20000            # steady-state churn rounds, incremental vs full
//	flexbench -churn 20000 -workers 4 # pin the per-shard pool size
//
// -replay measures the durable store (internal/persist): WAL append
// throughput under each fsync policy, then boot-time replay of the
// resulting log, serial vs fanned out across the worker pool
// (verifying the replayed store matches the live one bit for bit):
//
//	flexbench -replay 100000            # append per fsync policy + replay timing
//	flexbench -replay 100000 -workers 4 # pin the replay decode pool
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/experiments"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grouping"
	"flexmeasures/internal/ingest"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/shard"
	"flexmeasures/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "run a single experiment by ID (e.g. F1, T1, X2)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	check := fs.Bool("check", false, "fail when any measured value mismatches the paper")
	aggN := fs.Int("agg", 0, "compare serial vs parallel aggregation over N synthetic offers and exit")
	schedN := fs.Int("sched", 0, "compare legacy vs incremental scheduling and batch vs streaming pipeline over N synthetic offers and exit")
	engineN := fs.Int("engine", 0, "compare per-call pool spin-up vs the persistent Engine pool over repeated batches of N synthetic offers and exit")
	ingestN := fs.Int("ingest", 0, "compare serial vs sharded NDJSON decoding over N synthetic offers and exit")
	groupN := fs.Int("group", 0, "compare serial vs sharded grouping over N synthetic offers and exit")
	scatterN := fs.Int("scatter", 0, "sweep the scatter-gather pipeline over shard counts 1/2/4/8 on N synthetic offers and exit")
	replayN := fs.Int("replay", 0, "measure WAL append throughput per fsync policy and serial-vs-parallel replay over N synthetic offers and exit")
	churnN := fs.Int("churn", 0, "compare incremental vs full-recompute scheduling over steady-state churn rounds on N synthetic offers and exit")
	workers := fs.Int("workers", 0, "worker-pool size for -agg / -sched / -engine / -ingest / -group / -scatter / -replay / -churn (0: one per CPU)")
	trace := fs.Bool("trace", false, "with -sched: print the traced pipeline run's span-tree breakdown")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("flexbench"))
		return nil
	}
	if *churnN > 0 {
		return runChurnCompare(os.Stdout, *churnN, *workers)
	}
	if *replayN > 0 {
		return runReplayCompare(os.Stdout, *replayN, *workers)
	}
	if *scatterN > 0 {
		return runScatterCompare(os.Stdout, *scatterN, *workers)
	}
	if *aggN > 0 {
		return runAggCompare(os.Stdout, *aggN, *workers)
	}
	if *schedN > 0 {
		return runSchedCompare(os.Stdout, *schedN, *workers, *trace)
	}
	if *engineN > 0 {
		return runEngineCompare(os.Stdout, *engineN, *workers)
	}
	if *ingestN > 0 {
		return runIngestCompare(os.Stdout, *ingestN, *workers)
	}
	if *groupN > 0 {
		return runGroupCompare(os.Stdout, *groupN, *workers)
	}
	if *list {
		for _, id := range experiments.IDs() {
			doc, err := experiments.Describe(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-7s %s\n", id, doc)
		}
		return nil
	}
	var results []*experiments.Result
	if *exp != "" {
		r, err := experiments.Run(*exp)
		if err != nil {
			return err
		}
		results = append(results, r)
	} else {
		rs, err := experiments.RunAll()
		if err != nil {
			return err
		}
		results = rs
	}
	failed := false
	for _, r := range results {
		fmt.Println(r.Render())
		if err := r.Check(); err != nil {
			failed = true
			fmt.Fprintln(os.Stderr, "MISMATCH:", err)
		}
	}
	if *check && failed {
		return fmt.Errorf("some measured values disagree with the paper")
	}
	return nil
}

// runAggCompare times AggregateAll against AggregateAllParallel on a
// reproducible synthetic population (seed 99, Scenario 1 grouping
// parameters) and fails unless the two pipelines produce identical
// aggregates in identical order.
func runAggCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	gp := aggregate.GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}

	t0 := time.Now()
	serial, err := aggregate.AggregateAll(offers, gp)
	if err != nil {
		return err
	}
	serialDur := time.Since(t0)

	t0 = time.Now()
	parallel, err := aggregate.AggregateAllParallel(offers, gp, aggregate.ParallelParams{Workers: workers})
	if err != nil {
		return err
	}
	parallelDur := time.Since(t0)

	if !reflect.DeepEqual(serial, parallel) {
		return fmt.Errorf("parallel aggregation diverged from serial over %d offers", n)
	}
	speedup := float64(serialDur) / float64(parallelDur)
	fmt.Fprintf(out, "aggregated %d offers into %d aggregates\n", len(offers), len(serial))
	fmt.Fprintf(out, "serial:   %v\n", serialDur)
	fmt.Fprintf(out, "parallel: %v  (%d workers, %.2fx speedup)\n", parallelDur, workers, speedup)
	fmt.Fprintln(out, "serial and parallel outputs are identical")
	return nil
}

// runEngineCompare measures the Engine's persistent-pool execution
// model against per-call goroutine spin-up: the same aggregation batch
// (seed 99, Scenario 1 grouping) is run repeatedly, once through the
// legacy model that builds and tears down a worker pool inside every
// call, once through one long-lived flex.Engine whose pool outlives
// the calls. Both must produce identical aggregates every round. The
// per-call delta is the pool setup cost the Engine removes from a
// service's request hot path.
func runEngineCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	gp := aggregate.GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}
	const rounds = 50

	// Warm both paths once so first-call effects don't skew either side.
	want, err := aggregate.AggregateAll(offers, gp)
	if err != nil {
		return err
	}
	eng := flex.New(flex.WithWorkers(workers), flex.WithGrouping(gp))
	defer eng.Close()

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		got, err := aggregate.AggregateAllParallelCtx(context.Background(), offers, gp,
			aggregate.ParallelParams{Workers: workers})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("spin-up aggregation diverged in round %d", r)
		}
	}
	spinDur := time.Since(t0)

	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		got, err := eng.Aggregate(context.Background(), offers)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(want, got) {
			return fmt.Errorf("engine aggregation diverged in round %d", r)
		}
	}
	engineDur := time.Since(t0)

	fmt.Fprintf(out, "%d rounds of aggregating %d offers into %d aggregates (%d workers)\n",
		rounds, len(offers), len(want), workers)
	fmt.Fprintf(out, "per-call spin-up:  %v total, %v/call\n", spinDur, spinDur/rounds)
	fmt.Fprintf(out, "persistent engine: %v total, %v/call  (%.2fx speedup)\n",
		engineDur, engineDur/rounds, float64(spinDur)/float64(engineDur))
	fmt.Fprintln(out, "spin-up and engine outputs are identical")
	return nil
}

// runIngestCompare times the serial NDJSON decoder against the sharded
// one (flexd's ingest path) on a reproducible synthetic population
// encoded in memory, and fails unless both decode identical offers.
// The interesting number for a service is throughput: records/s and
// MB/s of NDJSON swallowed.
func runIngestCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		return err
	}
	data := buf.Bytes()
	mb := float64(len(data)) / (1 << 20)

	t0 := time.Now()
	serial, err := ingest.DecodeNDJSONSerial(bytes.NewReader(data), ingest.FirstError)
	if err != nil {
		return err
	}
	serialDur := time.Since(t0)

	t0 = time.Now()
	sharded, err := ingest.DecodeNDJSON(context.Background(), bytes.NewReader(data),
		ingest.Params{Workers: workers})
	if err != nil {
		return err
	}
	shardedDur := time.Since(t0)

	if !reflect.DeepEqual(serial, sharded) {
		return fmt.Errorf("sharded decode diverged from serial over %d records", n)
	}
	rate := func(d time.Duration) (float64, float64) {
		secs := d.Seconds()
		return float64(n) / secs, mb / secs
	}
	sr, sm := rate(serialDur)
	pr, pm := rate(shardedDur)
	fmt.Fprintf(out, "decoded %d NDJSON records (%.1f MiB)\n", n, mb)
	fmt.Fprintf(out, "serial:  %v  (%.0f records/s, %.1f MB/s)\n", serialDur, sr, sm)
	fmt.Fprintf(out, "sharded: %v  (%d workers, %.0f records/s, %.1f MB/s, %.2fx speedup)\n",
		shardedDur, workers, pr, pm, float64(serialDur)/float64(shardedDur))
	fmt.Fprintln(out, "serial and sharded decodes are identical")
	return nil
}

// runGroupCompare times the serial threshold grouper against the
// parallel sharded grouper (the pipeline's entry stage) on a
// reproducible synthetic population and fails unless the two produce
// identical groups — the sharded grouper's bit-identity contract. The
// shard structure (EST gaps wider than the tolerance) is data-driven,
// so the shard count is reported alongside the timings; the comparison
// uses strict EST similarity (tolerance 0), because a dense population
// occupies every start slot and any looser tolerance forms one
// EST-connected run, where the grouper documents its fallback to a
// serial pack (only the sort and key phases stay parallel).
func runGroupCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	gp := grouping.Params{ESTTolerance: 0, TFTolerance: -1, MaxGroupSize: 64}

	t0 := time.Now()
	serial := grouping.Group(offers, gp)
	serialDur := time.Since(t0)

	sharded := &grouping.Sharded{Params: gp, Workers: workers, MinOffers: -1}
	t0 = time.Now()
	parallel, err := sharded.Group(context.Background(), offers)
	if err != nil {
		return err
	}
	parallelDur := time.Since(t0)

	if !reflect.DeepEqual(serial, parallel) {
		return fmt.Errorf("sharded grouping diverged from serial over %d offers", n)
	}
	// The shard count is the number of EST gaps wider than the
	// tolerance plus one — derivable from the sorted starts without
	// re-running the grouper.
	ests := make([]int, len(offers))
	for i, f := range offers {
		ests[i] = f.EarliestStart
	}
	sort.Ints(ests)
	shards := 1
	for i := 1; i < len(ests); i++ {
		if ests[i]-ests[i-1] > gp.ESTTolerance {
			shards++
		}
	}
	speedup := float64(serialDur) / float64(parallelDur)
	fmt.Fprintf(out, "grouped %d offers into %d groups (%d shards)\n", len(offers), len(serial), shards)
	fmt.Fprintf(out, "serial:  %v\n", serialDur)
	fmt.Fprintf(out, "sharded: %v  (%d workers, %.2fx speedup)\n", parallelDur, workers, speedup)
	fmt.Fprintln(out, "serial and sharded groupings are identical")
	return nil
}

// runScatterCompare sweeps the sharded engine's scatter-gather
// pipeline over shard counts 1/2/4/8 on a reproducible synthetic
// population (seed 99, Scenario 1 grouping) and fails unless every
// shard count reproduces the single-engine pipeline result exactly —
// the bit-identity contract that lets flexd change -shards without
// changing a byte of /v1/schedule output. Zones are stamped so the
// router exercises its preferred key. On a single machine the sweep
// measures coordination overhead, not scale-out: every shard's pool
// shares the same CPUs.
func runScatterCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(99))
	offers, err := workload.Population(rng, n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	for i, f := range offers {
		f.Zone = fmt.Sprintf("z%02d", i%7)
	}
	gp := flex.GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}
	opts := []flex.Option{flex.WithWorkers(workers), flex.WithSafe(true), flex.WithGrouping(gp)}
	horizon := 4 * workload.SlotsPerDay
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	target := workload.WindProfile(rng, horizon, expected/int64(horizon))

	eng := flex.New(opts...)
	defer eng.Close()
	t0 := time.Now()
	want, err := eng.Pipeline(context.Background(), offers, target)
	if err != nil {
		return err
	}
	baseDur := time.Since(t0)
	fmt.Fprintf(out, "pipelined %d offers → %d aggregates over %d slots (%d workers/shard)\n",
		n, len(want.Aggregates), horizon, workers)
	fmt.Fprintf(out, "single engine: %v\n", baseDur)

	for _, shards := range []int{1, 2, 4, 8} {
		se := flex.NewSharded(shards, opts...)
		t0 = time.Now()
		got, err := se.Pipeline(context.Background(), offers, target)
		if err != nil {
			se.Close()
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		dur := time.Since(t0)
		if !reflect.DeepEqual(got, want) {
			se.Close()
			return fmt.Errorf("shards=%d: scatter-gather diverged from single engine", shards)
		}
		fmt.Fprintf(out, "shards=%d:      %v  (%.2fx vs single)\n", shards, dur, float64(baseDur)/float64(dur))
		se.Close()
	}
	fmt.Fprintln(out, "every shard count reproduced the single-engine pipeline exactly")
	return nil
}

// runSchedCompare exercises the scheduling hot path on a reproducible
// synthetic population (seed 99): first the legacy full-recompute
// candidate evaluator against the incremental delta evaluator on the
// raw fleet, then the materialized aggregate→schedule→disaggregate
// batch against the streaming pipeline. Both comparisons fail unless
// the outputs are identical.
func runSchedCompare(out io.Writer, n, workers int, trace bool) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(99))
	offers, err := workload.Population(rng, n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	horizon := 4 * workload.SlotsPerDay
	target := workload.WindProfile(rng, horizon, expected/int64(horizon))

	t0 := time.Now()
	legacy, err := sched.Schedule(offers, target, sched.Options{FullRecompute: true})
	if err != nil {
		return err
	}
	legacyDur := time.Since(t0)

	t0 = time.Now()
	incremental, err := sched.Schedule(offers, target, sched.Options{})
	if err != nil {
		return err
	}
	incrementalDur := time.Since(t0)

	if !reflect.DeepEqual(legacy, incremental) {
		return fmt.Errorf("incremental schedule diverged from legacy over %d offers", n)
	}
	fmt.Fprintf(out, "scheduled %d offers over %d slots (imbalance %.0f)\n",
		n, horizon, incremental.Imbalance(target))
	fmt.Fprintf(out, "legacy evaluator:      %v\n", legacyDur)
	fmt.Fprintf(out, "incremental evaluator: %v  (%.2fx speedup)\n",
		incrementalDur, float64(legacyDur)/float64(incrementalDur))
	fmt.Fprintln(out, "legacy and incremental schedules are identical")

	// Batch vs streaming pipeline over the aggregated fleet.
	gp := aggregate.GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 64}
	t0 = time.Now()
	ags, err := aggregate.AggregateAllSafe(offers, gp)
	if err != nil {
		return err
	}
	aggOffers := make([]*flexoffer.FlexOffer, len(ags))
	for i, ag := range ags {
		aggOffers[i] = ag.Offer
	}
	batchRes, err := sched.Schedule(aggOffers, target, sched.Options{})
	if err != nil {
		return err
	}
	if _, err := aggregate.DisaggregateAllParallel(context.Background(), ags, batchRes.Assignments,
		aggregate.ParallelParams{Workers: 1}); err != nil {
		return err
	}
	batchDur := time.Since(t0)

	t0 = time.Now()
	pp := aggregate.ParallelParams{Workers: workers}
	items, groups := aggregate.AggregateAllSafeStream(context.Background(), offers, gp, pp)
	streamRes, err := sched.ScheduleStream(context.Background(), items, groups, target, sched.Options{})
	if err != nil {
		return err
	}
	if _, err := aggregate.DisaggregateAllParallel(context.Background(), streamRes.Aggregates, streamRes.Assignments, pp); err != nil {
		return err
	}
	streamDur := time.Since(t0)

	if !reflect.DeepEqual(batchRes.Assignments, streamRes.Assignments) || !batchRes.Load.Equal(streamRes.Load) {
		return fmt.Errorf("streaming pipeline diverged from batch over %d aggregates", len(ags))
	}
	fmt.Fprintf(out, "pipelined %d offers → %d aggregates\n", n, len(ags))
	fmt.Fprintf(out, "batch (serial):       %v\n", batchDur)
	fmt.Fprintf(out, "streaming (pipeline): %v  (%d workers, %.2fx speedup)\n",
		streamDur, workers, float64(batchDur)/float64(streamDur))
	fmt.Fprintln(out, "batch and streaming schedules are identical")

	// Tracing overhead on the full engine pipeline, three ways:
	// "absent" and "disabled" both run with no trace in the context —
	// the production path of an untraced request, one nil check per obs
	// call — so any measured gap between them is the noise floor;
	// "enabled" attaches a trace recording every stage span. All three
	// must produce identical schedules.
	eng := flex.New(flex.WithWorkers(workers), flex.WithSafe(true),
		flex.WithGrouping(flex.GroupParams(gp)))
	defer eng.Close()
	// Best-of-R with a forced GC before each run: a single shot would
	// charge whichever variant runs later for the heap the earlier ones
	// grew, drowning the nanosecond-scale difference under GC pauses.
	// Interleaved best-of-R with a forced GC before every run: running
	// each variant back-to-back would charge later variants for the heap
	// earlier ones grew, and always-first variants for cold caches —
	// either bias dwarfs the nanosecond-scale cost being measured.
	const reps = 3
	tracer := obs.NewTracer(4, 8192)
	one := func(mkTrace func() *obs.Trace) (*flex.PipelineResult, time.Duration, obs.TraceData, error) {
		runtime.GC()
		ctx := context.Background()
		var tr *obs.Trace
		if mkTrace != nil {
			tr = mkTrace()
			ctx = obs.NewContext(ctx, tr)
		}
		t0 := time.Now()
		res, err := eng.Pipeline(ctx, offers, target)
		d := time.Since(t0)
		var td obs.TraceData
		if tr != nil {
			td = tr.Finish()
		}
		return res, d, td, err
	}
	// Warm the pool so round one doesn't pay cold-start.
	if _, err := eng.Pipeline(context.Background(), offers, target); err != nil {
		return err
	}
	variants := []struct {
		name    string
		mkTrace func() *obs.Trace
		res     *flex.PipelineResult
		best    time.Duration
		td      obs.TraceData
	}{
		{name: "absent"},
		{name: "disabled"},
		{name: "enabled", mkTrace: func() *obs.Trace { return tracer.Start("flexbench-sched") }},
	}
	for i := range variants {
		variants[i].best = time.Duration(1<<63 - 1)
	}
	for r := 0; r < reps; r++ {
		for i := range variants {
			v := &variants[i]
			res, d, td, err := one(v.mkTrace)
			if err != nil {
				return err
			}
			if d < v.best {
				v.res, v.best, v.td = res, d, td
			}
		}
	}
	absentRes, absentDur := variants[0].res, variants[0].best
	disabledRes, disabledDur := variants[1].res, variants[1].best
	enabledRes, enabledDur, td := variants[2].res, variants[2].best, variants[2].td
	for name, res := range map[string]*flex.PipelineResult{"disabled": disabledRes, "enabled": enabledRes} {
		if !reflect.DeepEqual(absentRes.AggregateSchedule.Assignments, res.AggregateSchedule.Assignments) ||
			!absentRes.Load.Equal(res.Load) {
			return fmt.Errorf("tracing-%s pipeline diverged from the untraced one", name)
		}
	}
	fmt.Fprintf(out, "engine pipeline, tracing absent:   %v\n", absentDur)
	fmt.Fprintf(out, "engine pipeline, tracing disabled: %v  (%+.1f%% vs absent)\n",
		disabledDur, 100*(float64(disabledDur)/float64(absentDur)-1))
	fmt.Fprintf(out, "engine pipeline, tracing enabled:  %v  (%+.1f%% vs absent, %d spans)\n",
		enabledDur, 100*(float64(enabledDur)/float64(absentDur)-1), len(td.Spans))
	fmt.Fprintln(out, "traced and untraced schedules are identical")
	if trace {
		fmt.Fprintln(out, td.Tree())
	}
	return nil
}

// runChurnCompare measures incremental continuous scheduling in its
// steady state: a clustered-EST fleet (device arrival waves, so the
// grouping's EST-gap cuts bound each change's blast radius) is
// scheduled round after round while ~0.5% of offers are re-submitted
// under their existing IDs between rounds. One persistent
// WithIncremental sharded engine carries its cache across rounds; a
// stateless engine recomputes every round from scratch. Every round's
// results must be identical — the bit-identity contract that makes the
// cache safe to leave on — before the times are compared. The cold
// first round (every group a miss) is reported separately from the
// steady-state rounds the cache exists for.
func runChurnCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(99))
	offers, err := workload.Population(rng, n, 2, workload.DefaultMix())
	if err != nil {
		return err
	}
	const clusters, spacing = 64, 3
	for i, f := range offers {
		f.ID = fmt.Sprintf("c-%07d", i)
		est := (i % clusters) * spacing
		f.LatestStart += est - f.EarliestStart
		f.EarliestStart = est
	}
	gp := flex.GroupParams{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 64}
	opts := []flex.Option{flex.WithWorkers(workers), flex.WithSafe(true), flex.WithGrouping(gp)}
	incSE := flex.NewSharded(4, append([]flex.Option{flex.WithIncremental(true)}, opts...)...)
	defer incSE.Close()
	full := flex.NewSharded(4, opts...)
	defer full.Close()

	stores := shard.NewStores(shard.Router{Shards: 4})
	stores.Add(offers)
	horizon := 4 * workload.SlotsPerDay
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	target := workload.WindProfile(rng, horizon, expected/int64(horizon))

	// Cold round: the cache is empty, every group misses.
	parts := stores.Snapshot()
	t0 := time.Now()
	got, err := incSE.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		return err
	}
	coldDur := time.Since(t0)
	t0 = time.Now()
	want, err := full.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		return err
	}
	fullColdDur := time.Since(t0)
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("cold incremental run diverged from full recompute over %d offers", n)
	}

	const rounds = 20
	delta := n / 1000
	if delta < 1 {
		delta = 1
	}
	var incDur, fullDur time.Duration
	for r := 0; r < rounds; r++ {
		repl, err := workload.Population(rng, delta, 2, workload.DefaultMix())
		if err != nil {
			return err
		}
		for j, f := range repl {
			// Deterministic spread over the fleet, each replacement kept in
			// the replaced offer's EST cluster.
			idx := (r*delta + j*17) % n
			f.ID = fmt.Sprintf("c-%07d", idx)
			est := (idx % clusters) * spacing
			f.LatestStart += est - f.EarliestStart
			f.EarliestStart = est
		}
		stores.Add(repl)
		parts := stores.Snapshot()
		t0 := time.Now()
		got, err := incSE.PipelineRouted(context.Background(), parts, target)
		if err != nil {
			return err
		}
		incDur += time.Since(t0)
		t0 = time.Now()
		want, err := full.PipelineRouted(context.Background(), parts, target)
		if err != nil {
			return err
		}
		fullDur += time.Since(t0)
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("round %d: incremental run diverged from full recompute", r)
		}
	}
	st := incSE.IncrementalStats()
	fmt.Fprintf(out, "fleet of %d offers, %d churn rounds of %d replacements (%.1f%%), 4 shards, %d workers/shard\n",
		n, rounds, delta, 100*float64(delta)/float64(n), workers)
	fmt.Fprintf(out, "cold round:        incremental %v, full %v\n", coldDur, fullColdDur)
	fmt.Fprintf(out, "steady state:      incremental %v/round, full %v/round  (%.2fx speedup)\n",
		incDur/rounds, fullDur/rounds, float64(fullDur)/float64(incDur))
	fmt.Fprintf(out, "cache over %d runs: %d hits, %d misses; last round re-aggregated %d of %d groups, replayed %d placements\n",
		st.Runs, st.Hits, st.Misses, st.LastDirty, st.LastGroups, st.LastReused)
	fmt.Fprintln(out, "every round's incremental result is identical to the full recompute")
	return nil
}

// runReplayCompare measures the durable store: it appends N synthetic
// offers to a fresh WAL under each fsync policy (same population, same
// batching, separate directories), then reboots from the largest log
// twice — once decoding serially, once fanned out across a worker
// pool — verifying that the replayed store matches the live one bit
// for bit.
func runReplayCompare(out io.Writer, n, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	offers, err := workload.Population(rand.New(rand.NewSource(99)), n, 3, workload.DefaultMix())
	if err != nil {
		return err
	}
	for i, f := range offers {
		f.ID = fmt.Sprintf("r-%07d", i)
	}
	r := shard.Router{Shards: 4}
	const batch = 1000

	appendAll := func(dir string, policy persist.FsyncPolicy) (time.Duration, error) {
		w, err := persist.OpenWAL(persist.Options{
			Dir: dir, Router: r, Fsync: policy,
			SnapshotEvery: -1, // measure the log, not the compactor
		})
		if err != nil {
			return 0, err
		}
		t0 := time.Now()
		for off := 0; off < len(offers); off += batch {
			end := off + batch
			if end > len(offers) {
				end = len(offers)
			}
			if _, _, err := w.Add(context.Background(), offers[off:end]); err != nil {
				w.Close()
				return 0, err
			}
		}
		d := time.Since(t0)
		return d, w.Close()
	}

	var replayDir string
	fmt.Fprintf(out, "appending %d offers (batches of %d, 4 shards)\n", n, batch)
	for _, policy := range []persist.FsyncPolicy{persist.FsyncAlways, persist.FsyncInterval, persist.FsyncOff} {
		dir, err := os.MkdirTemp("", "flexbench-wal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		d, err := appendAll(dir, policy)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fsync=%-8s %v  (%.0f offers/s)\n", policy, d, float64(n)/d.Seconds())
		replayDir = dir // all three logs are equivalent; reboot the last
	}

	live := persist.NewMemory(r)
	if _, _, err := live.Add(context.Background(), offers); err != nil {
		return err
	}
	replay := func(ex flex.Executor) (*persist.WALStore, time.Duration, error) {
		t0 := time.Now()
		w, err := persist.OpenWAL(persist.Options{Dir: replayDir, Router: r, Executor: ex})
		return w, time.Since(t0), err
	}
	serialStore, serialDur, err := replay(nil)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(serialStore.Snapshot(), live.Snapshot()) {
		return fmt.Errorf("serial replay diverged from the live store over %d offers", n)
	}
	serialStore.Close()

	eng := flex.New(flex.WithWorkers(workers))
	defer eng.Close()
	parStore, parDur, err := replay(eng.Executor())
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(parStore.Snapshot(), live.Snapshot()) {
		return fmt.Errorf("parallel replay diverged from the live store over %d offers", n)
	}
	st := parStore.Stats()
	parStore.Close()

	fmt.Fprintf(out, "replaying %d records (%d segments, %.1f MiB)\n",
		st.Records, st.Segments, float64(st.Bytes)/(1<<20))
	fmt.Fprintf(out, "serial:   %v  (%.0f records/s)\n", serialDur, float64(n)/serialDur.Seconds())
	fmt.Fprintf(out, "parallel: %v  (%d workers, %.0f records/s, %.2fx speedup)\n",
		parDur, workers, float64(n)/parDur.Seconds(), float64(serialDur)/float64(parDur))
	fmt.Fprintln(out, "replayed stores are identical to the live store")
	return nil
}
