package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "F1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAggCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := runAggCompare(&buf, 2000, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "aggregated 2000 offers") ||
		!strings.Contains(out, "serial and parallel outputs are identical") {
		t.Errorf("comparison output wrong:\n%s", out)
	}
}

// TestRunAggFlag covers the flag wiring from run() to runAggCompare.
func TestRunAggFlag(t *testing.T) {
	if err := run([]string{"-agg", "200", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAggCompareDefaultWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := runAggCompare(&buf, 500, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "outputs are identical") {
		t.Errorf("comparison output wrong:\n%s", buf.String())
	}
}

func TestRunAllWithCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if err := run([]string{"-check"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := runSchedCompare(&buf, 500, 4, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "legacy and incremental schedules are identical") ||
		!strings.Contains(out, "batch and streaming schedules are identical") {
		t.Errorf("comparison output wrong:\n%s", out)
	}
}

// TestRunSchedFlag covers the flag wiring from run() to runSchedCompare.
func TestRunSchedFlag(t *testing.T) {
	if err := run([]string{"-sched", "150", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIngestCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := runIngestCompare(&buf, 2000, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "decoded 2000 NDJSON records") ||
		!strings.Contains(out, "serial and sharded decodes are identical") {
		t.Errorf("comparison output wrong:\n%s", out)
	}
}

// TestRunIngestFlag covers the flag wiring from run() to
// runIngestCompare.
func TestRunIngestFlag(t *testing.T) {
	if err := run([]string{"-ingest", "200", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGroupCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := runGroupCompare(&buf, 2000, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "grouped 2000 offers") ||
		!strings.Contains(out, "serial and sharded groupings are identical") {
		t.Errorf("comparison output wrong:\n%s", out)
	}
}

// TestRunGroupFlag covers the flag wiring from run() to
// runGroupCompare.
func TestRunGroupFlag(t *testing.T) {
	if err := run([]string{"-group", "200", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}
