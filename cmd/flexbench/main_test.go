package main

import (
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "F1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllWithCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if err := run([]string{"-check"}); err != nil {
		t.Fatal(err)
	}
}
