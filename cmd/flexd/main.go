// Command flexd serves the flex-offer engine over HTTP: a long-running
// service that ingests NDJSON flex-offer streams with the decode work
// sharded across the engine's persistent worker pool, and exposes the
// paper's Scenario-1 chain — aggregate, schedule, disaggregate — plus
// the eight flexibility measures as endpoints.
//
// With -shards N the population is partitioned across N engine shards
// (routed by offer zone, then ID hash, then round-robin; see package
// shard) and /v1/schedule runs scatter-gather across them. The response
// bytes are independent of N: the merge is deterministic and the
// pipeline bit-identical to a single engine, so shards only change
// where the work runs.
//
// Scheduling is incremental by default (-incremental): the engine
// content-addresses each group's aggregate and replays the previous
// run's placements for groups the churn since the last /v1/schedule
// did not touch, so steady-state runs cost O(changed groups) instead
// of O(fleet). Output is bit-identical to a full recompute — the
// equivalence is property-tested — so the flag exists only as an
// escape hatch. -inc-fallback tunes the dirty-group fraction above
// which a run gives up on replay and places everything fresh (cost
// only; never output). Cache effectiveness is observable on /metrics
// as the flexd_sched_* families.
//
// With -data-dir the offer store is durable: every mutation is
// appended to a write-ahead log (see package persist) before it is
// applied, and a restart replays the log — parallel decode across the
// worker pool — back into a bit-identical store. -fsync picks the
// durability/throughput trade-off. Without -data-dir the store is
// in-memory, as before. If the WAL fails mid-flight (disk full,
// yanked volume), flexd degrades to read-only: ingest answers 503
// with a Retry-After while schedule/measures keep serving.
//
// Usage:
//
//	flexd                          # serve on :8080, one worker per CPU
//	flexd -addr :9000 -workers 8   # pin address and pool size
//	flexd -shards 4                # four engine shards, scatter-gather
//	flexd -cap 500                 # default soft peak cap for /v1/schedule
//	flexd -incremental=false       # full recompute on every /v1/schedule
//	flexd -data-dir /var/lib/flexd # durable store (WAL + snapshots)
//	flexd -data-dir d -fsync off   # durable but page-cache-paced
//
// Endpoints:
//
//	POST   /v1/offers     ingest NDJSON offers (flexgen -format ndjson)
//	GET    /v1/offers     stored offer count
//	DELETE /v1/offers     reset the store
//	POST   /v1/aggregate  aggregate stored offers (?est,tft,max-group,mode)
//	POST   /v1/schedule   full pipeline, streamed (?horizon,target,cap,est,tft,max-group)
//	GET    /v1/measures   the paper's measures (?norm=l1|l2|linf)
//	GET    /healthz       liveness probe (503 once draining)
//	GET    /metrics       Prometheus text metrics (per-shard labels)
//	GET    /debug/traces  recent request traces with per-stage spans (?n)
//
// Every request is traced end to end: stage spans (decode, sort, pack,
// per-shard aggregation, placement, disaggregation, WAL append/fsync,
// pool queue-wait) land in /debug/traces and the
// flexd_stage_seconds{stage,shard} histograms, requests log one
// structured JSON line each (WARN with the span tree past
// -slow-request), and -debug-addr opens a side listener with
// net/http/pprof. Tracing costs one atomic slot claim per span;
// -trace-ring -1 switches it off entirely.
//
// A /v1/schedule response is byte-identical to `flexctl schedule
// -pipeline -json` over the same offers and parameters — the service
// and the CLI render through the same wire builder, and the e2e tests
// in cmd/flexctl pin the equality for shard counts 1 and 4.
//
// On SIGINT/SIGTERM flexd drains: /healthz flips to 503 so load
// balancers stop routing, the listener stops accepting, in-flight
// requests get -drain to finish, then the engine shards shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/server"
	"flexmeasures/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "per-shard worker-pool size (0: one per CPU, 1: serial)")
	shards := fs.Int("shards", 1, "engine shard count; /v1/schedule scatter-gathers across them")
	safe := fs.Bool("safe", true, "safe aggregation: tighten constituents so every schedule disaggregates")
	cap := fs.Int64("cap", 0, "default soft peak cap for scheduling (0: uncapped; per-request ?cap overrides)")
	incremental := fs.Bool("incremental", true, "incremental scheduling: cache aggregates and replay placements for unchanged groups (bit-identical output)")
	incFallback := fs.Float64("inc-fallback", 0, "dirty-group fraction above which an incremental run places everything fresh (0: default 0.5, 1: never fall back)")
	inflight := fs.Int("max-inflight", 0, "concurrent expensive requests before 429 (0: 4x workers)")
	maxBody := fs.Int64("max-body", 0, "ingest request body limit in bytes (0: 1 GiB)")
	block := fs.Int("block", 0, "ingest decode block size in bytes (0: 1 MiB)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown deadline for in-flight requests")
	dataDir := fs.String("data-dir", "", "durable store directory (empty: in-memory, lost on restart)")
	fsync := fs.String("fsync", "always", `WAL fsync policy: "always", "interval" or "off"`)
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "sync period under -fsync interval")
	segBytes := fs.Int64("wal-segment", 0, "WAL segment rotation size in bytes (0: 64 MiB)")
	snapEvery := fs.Int("snapshot-every", 0, "records between snapshot+compaction (0: 100000, negative: never)")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle timeout")
	writeTimeout := fs.Duration("write-timeout", time.Minute, "per-write stall timeout for responses (0: none)")
	traceRing := fs.Int("trace-ring", 0, "completed traces retained for /debug/traces (0: 64, negative: tracing off)")
	slowReq := fs.Duration("slow-request", time.Second, "log requests at least this slow at WARN with their span tree (0: never)")
	logLevel := fs.String("log-level", "info", `structured log level: "debug", "info", "warn" or "error"`)
	debugAddr := fs.String("debug-addr", "", "extra listener for net/http/pprof and /debug/traces (empty: off)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("flexd"))
		return nil
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be non-negative (0 means one per CPU), got %d", *workers)
	}
	if *cap < 0 {
		return fmt.Errorf("-cap must be non-negative (0 means uncapped), got %d", *cap)
	}
	if *incFallback < 0 || *incFallback > 1 {
		return fmt.Errorf("-inc-fallback must be in [0, 1], got %g", *incFallback)
	}
	if *inflight < 0 {
		return fmt.Errorf("-max-inflight must be non-negative (0 means 4x workers), got %d", *inflight)
	}
	if *maxBody < 0 || *block < 0 {
		return fmt.Errorf("-max-body and -block must be non-negative")
	}
	policy, err := persist.ParseFsyncPolicy(*fsync)
	if err != nil {
		return err
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The tracer is the process-wide observability hub: per-request
	// traces land in its ring (served by /debug/traces) and every stage
	// span feeds its metrics sink, which /metrics renders as the
	// flexd_stage_seconds families. The WAL shares the same sink so
	// background fsyncs are counted alongside request-path ones.
	var tracer *obs.Tracer
	if *traceRing >= 0 {
		tracer = obs.NewTracer(*traceRing, 0)
	}

	se := flex.NewSharded(*shards,
		flex.WithWorkers(*workers),
		flex.WithSafe(*safe),
		flex.WithPeakCap(*cap),
		flex.WithIncremental(*incremental),
		flex.WithIncrementalThreshold(*incFallback),
	)
	defer se.Close()

	var store persist.Store
	if *dataDir != "" {
		wal, err := persist.OpenWAL(persist.Options{
			Dir:           *dataDir,
			Router:        shard.Router{Shards: se.Shards()},
			Fsync:         policy,
			FsyncInterval: *fsyncEvery,
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvery,
			Executor:      se.Executor(),
			Metrics:       tracer.Metrics(),
		})
		if err != nil {
			return err
		}
		// Closed after HTTP shutdown (below) and before the engines: no
		// request can be mutating it, and it never outlives the pools
		// its replay borrowed.
		defer wal.Close()
		st := wal.Stats()
		logger.Info("replayed WAL",
			"dir", *dataDir,
			"snapshot_records", st.SnapshotRecords,
			"log_records", st.Records,
			"segments", st.Segments,
			"bytes", st.Bytes,
			"torn_bytes_dropped", st.DroppedBytes,
			"duration", st.Duration.Round(time.Millisecond))
		store = wal
	}

	srv := server.NewSharded(se, server.Options{
		MaxInFlight:        *inflight,
		MaxBodyBytes:       *maxBody,
		IngestBlockBytes:   *block,
		Store:              store,
		StreamWriteTimeout: *writeTimeout,
		Tracer:             tracer,
		Logger:             logger,
		SlowRequest:        *slowReq,
	})

	// The debug listener is a separate address on purpose: pprof and
	// raw traces stay off the service port, so exposing :8080 through a
	// load balancer never exposes profiling.
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(srv),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		defer dbg.Close()
		logger.Info("debug listener on", "addr", *debugAddr)
	}

	// WriteTimeout is safe for streamed /v1/schedule bodies because the
	// handler pushes the deadline forward on every write (see
	// server.Options.StreamWriteTimeout): it bounds a stalled client,
	// not the response size.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	poolWorkers, _ := se.PoolStats()
	logger.Info("serving",
		"addr", *addr, "shards", se.Shards(), "pool_workers", poolWorkers,
		"version", buildinfo.Version)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: advertise unhealthiness first so load balancers stop
	// sending traffic, then stop accepting and let in-flight requests
	// finish within the deadline. The engines close last (deferred),
	// after no request can still be using their pools.
	srv.MarkDraining()
	logger.Info("draining", "deadline", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained")
	return nil
}

// debugMux builds the -debug-addr handler: the standard pprof pages
// plus the service's own /debug/traces, so a profiling session and the
// trace ring are reachable without touching the service port.
func debugMux(srv http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/traces", srv)
	return mux
}
