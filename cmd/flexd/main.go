// Command flexd serves the flex-offer engine over HTTP: a long-running
// service that ingests NDJSON flex-offer streams with the decode work
// sharded across the engine's persistent worker pool, and exposes the
// paper's Scenario-1 chain — aggregate, schedule, disaggregate — plus
// the eight flexibility measures as endpoints.
//
// Usage:
//
//	flexd                          # serve on :8080, one worker per CPU
//	flexd -addr :9000 -workers 8   # pin address and pool size
//	flexd -cap 500                 # default soft peak cap for /v1/schedule
//
// Endpoints:
//
//	POST   /v1/offers     ingest NDJSON offers (flexgen -format ndjson)
//	GET    /v1/offers     stored offer count
//	DELETE /v1/offers     reset the store
//	POST   /v1/aggregate  aggregate stored offers (?est,tft,max-group,mode)
//	POST   /v1/schedule   full pipeline (?horizon,target,cap,est,tft,max-group)
//	GET    /v1/measures   the paper's measures (?norm=l1|l2|linf)
//	GET    /healthz       liveness probe
//	GET    /metrics       Prometheus text metrics
//
// A /v1/schedule response is byte-identical to `flexctl schedule
// -pipeline -json` over the same offers and parameters — the service
// and the CLI render through the same wire builder, and the e2e test
// in cmd/flexctl pins the equality.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "engine worker-pool size (0: one per CPU, 1: serial)")
	safe := fs.Bool("safe", true, "safe aggregation: tighten constituents so every schedule disaggregates")
	cap := fs.Int64("cap", 0, "default soft peak cap for scheduling (0: uncapped; per-request ?cap overrides)")
	inflight := fs.Int("max-inflight", 0, "concurrent expensive requests before 429 (0: 4x workers)")
	maxBody := fs.Int64("max-body", 0, "ingest request body limit in bytes (0: 1 GiB)")
	block := fs.Int("block", 0, "ingest decode block size in bytes (0: 1 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := flex.New(
		flex.WithWorkers(*workers),
		flex.WithSafe(*safe),
		flex.WithPeakCap(*cap),
	)
	defer eng.Close()
	srv := server.New(eng, server.Options{
		MaxInFlight:      *inflight,
		MaxBodyBytes:     *maxBody,
		IngestBlockBytes: *block,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	poolWorkers, _ := eng.PoolStats()
	log.Printf("flexd: serving on %s (%d pool workers)", *addr, poolWorkers)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("flexd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
