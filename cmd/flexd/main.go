// Command flexd serves the flex-offer engine over HTTP: a long-running
// service that ingests NDJSON flex-offer streams with the decode work
// sharded across the engine's persistent worker pool, and exposes the
// paper's Scenario-1 chain — aggregate, schedule, disaggregate — plus
// the eight flexibility measures as endpoints.
//
// With -shards N the population is partitioned across N engine shards
// (routed by offer zone, then ID hash, then round-robin; see package
// shard) and /v1/schedule runs scatter-gather across them. The response
// bytes are independent of N: the merge is deterministic and the
// pipeline bit-identical to a single engine, so shards only change
// where the work runs.
//
// Usage:
//
//	flexd                          # serve on :8080, one worker per CPU
//	flexd -addr :9000 -workers 8   # pin address and pool size
//	flexd -shards 4                # four engine shards, scatter-gather
//	flexd -cap 500                 # default soft peak cap for /v1/schedule
//
// Endpoints:
//
//	POST   /v1/offers     ingest NDJSON offers (flexgen -format ndjson)
//	GET    /v1/offers     stored offer count
//	DELETE /v1/offers     reset the store
//	POST   /v1/aggregate  aggregate stored offers (?est,tft,max-group,mode)
//	POST   /v1/schedule   full pipeline, streamed (?horizon,target,cap,est,tft,max-group)
//	GET    /v1/measures   the paper's measures (?norm=l1|l2|linf)
//	GET    /healthz       liveness probe (503 once draining)
//	GET    /metrics       Prometheus text metrics (per-shard labels)
//
// A /v1/schedule response is byte-identical to `flexctl schedule
// -pipeline -json` over the same offers and parameters — the service
// and the CLI render through the same wire builder, and the e2e tests
// in cmd/flexctl pin the equality for shard counts 1 and 4.
//
// On SIGINT/SIGTERM flexd drains: /healthz flips to 503 so load
// balancers stop routing, the listener stops accepting, in-flight
// requests get -drain to finish, then the engine shards shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "per-shard worker-pool size (0: one per CPU, 1: serial)")
	shards := fs.Int("shards", 1, "engine shard count; /v1/schedule scatter-gathers across them")
	safe := fs.Bool("safe", true, "safe aggregation: tighten constituents so every schedule disaggregates")
	cap := fs.Int64("cap", 0, "default soft peak cap for scheduling (0: uncapped; per-request ?cap overrides)")
	inflight := fs.Int("max-inflight", 0, "concurrent expensive requests before 429 (0: 4x workers)")
	maxBody := fs.Int64("max-body", 0, "ingest request body limit in bytes (0: 1 GiB)")
	block := fs.Int("block", 0, "ingest decode block size in bytes (0: 1 MiB)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown deadline for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}

	se := flex.NewSharded(*shards,
		flex.WithWorkers(*workers),
		flex.WithSafe(*safe),
		flex.WithPeakCap(*cap),
	)
	defer se.Close()
	srv := server.NewSharded(se, server.Options{
		MaxInFlight:      *inflight,
		MaxBodyBytes:     *maxBody,
		IngestBlockBytes: *block,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	poolWorkers, _ := se.PoolStats()
	log.Printf("flexd: serving on %s (%d shards, %d pool workers)", *addr, se.Shards(), poolWorkers)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: advertise unhealthiness first so load balancers stop
	// sending traffic, then stop accepting and let in-flight requests
	// finish within the deadline. The engines close last (deferred),
	// after no request can still be using their pools.
	srv.MarkDraining()
	log.Printf("flexd: draining (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("flexd: drained")
	return nil
}
