package main

import (
	"strings"
	"testing"
)

// TestFlagValidation: run rejects nonsensical flag values up front,
// with an error naming the flag, instead of booting a broken server.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-shards", "0"}, "-shards"},
		{[]string{"-shards", "-2"}, "-shards"},
		{[]string{"-workers", "-1"}, "-workers"},
		{[]string{"-cap", "-500"}, "-cap"},
		{[]string{"-max-inflight", "-1"}, "-max-inflight"},
		{[]string{"-max-body", "-1"}, "-max-body"},
		{[]string{"-block", "-1"}, "-block"},
		{[]string{"-fsync", "sometimes"}, "fsync"},
	} {
		err := run(tc.args)
		if err == nil {
			t.Errorf("run(%v) accepted bad flags", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}
