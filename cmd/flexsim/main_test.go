package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/server"
	"flexmeasures/internal/sim"
)

// newFlexd boots an in-process flexd with a memory store, configured
// like the binary's defaults (safe aggregation on).
func newFlexd(t *testing.T) *httptest.Server {
	t.Helper()
	eng := flex.New(flex.WithWorkers(2), flex.WithSafe(true))
	srv := httptest.NewServer(server.New(eng, server.Options{}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv
}

// TestClosedLoopSmoke is the CI smoke run: ev-morning, 2 virtual
// slots, seed 1, closed loop — a non-empty report with zero failed
// requests.
func TestClosedLoopSmoke(t *testing.T) {
	srv := newFlexd(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-scenario", "ev-morning", "-duration", "2s", "-seed", "1", "-addr", srv.URL, "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep sim.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Scenario != "ev-morning" || rep.Mode != "closed" || rep.Seed != 1 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if rep.OffersSubmitted == 0 || rep.Requests == 0 || len(rep.Endpoints) == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("smoke run had %d failed requests", rep.Failed)
	}
	if rep.TraceDigest == "" {
		t.Fatal("report has no trace digest")
	}
}

// TestTraceOracle pins the CLI-level determinism contract: two runs
// with the same scenario, seed and duration — against fresh servers —
// print byte-identical event traces.
func TestTraceOracle(t *testing.T) {
	runOnce := func() string {
		srv := newFlexd(t)
		var out bytes.Buffer
		err := run(context.Background(), []string{
			"-scenario", "ev-morning", "-duration", "2s", "-seed", "42", "-addr", srv.URL, "-trace", "-json",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		// The trace precedes the JSON report, separated by a blank line.
		text := out.String()
		idx := strings.Index(text, "\n\n")
		if idx < 0 {
			t.Fatalf("no trace/report separator in output:\n%s", text)
		}
		return text[:idx]
	}
	a, b := runOnce(), runOnce()
	if a == "" {
		t.Fatal("empty event trace")
	}
	if a != b {
		t.Fatalf("event traces differ between identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestOpenLoopSmoke(t *testing.T) {
	srv := newFlexd(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-mode", "open", "-rate", "400", "-clients", "2", "-duration", "250ms",
		"-schedule-every", "20", "-addr", srv.URL, "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep sim.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.OffersSubmitted == 0 {
		t.Fatalf("open-loop report: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("open-loop run had %d failed requests", rep.Failed)
	}
}

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ev-morning", "ev-evening", "demand-response", "zone-stress", "city-day"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing scenario %q:\n%s", name, out.String())
		}
	}
}

// TestFlagValidation: bad values are rejected with clear errors before
// any request is made (the addr points nowhere).
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", "no-such-thing"}, "unknown scenario"},
		{[]string{"-duration", "-3s"}, "must be non-negative"},
		{[]string{"-duration", "10ms"}, "under one virtual slot"},
		{[]string{"-addr", ""}, "-addr"},
		{[]string{"-mode", "sideways"}, "-mode"},
		{[]string{"-mode", "open", "-rate", "0"}, "-rate"},
		{[]string{"-mode", "open", "-rate", "-2"}, "-rate"},
		{[]string{"-mode", "open", "-clients", "0"}, "-clients"},
	} {
		var out bytes.Buffer
		err := run(context.Background(), tc.args, &out)
		if err == nil {
			t.Errorf("run(%v) accepted bad flags", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}
