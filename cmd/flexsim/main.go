// Command flexsim drives a running flexd with city-scale simulated
// workloads: a deterministic, seedable, discrete-event closed-loop
// simulator (virtual clock, scenario event queue) and an open-loop
// wall-clock load generator. See internal/sim for the engine.
//
// Closed loop (the default) replays a scenario — time-varying offer
// arrival waves, periodic intraday re-dispatch with price-curve
// scoring and target feedback, demand-response price spikes, zone
// capacity checks — against the server. One second of -duration is one
// virtual slot (an hour of scenario time), so -duration 60s simulates
// 60 hours regardless of how fast the server answers. For a fixed
// -seed the event trace and the deterministic half of the report are
// byte-identical across runs; CI pins this.
//
// Open loop (-mode open) is a conventional load generator: -clients
// concurrent submitters offered at a fixed aggregate -rate for the
// wall-clock -duration, a schedule request interleaved every
// -schedule-every submissions.
//
// Usage:
//
//	flexsim -list                                        # scenario catalogue
//	flexsim -scenario ev-morning -duration 60s -seed 42 -addr :8080
//	flexsim -scenario zone-stress -duration 24s -json    # JSON report
//	flexsim -scenario ev-morning -trace                  # dump the event trace
//	flexsim -mode open -rate 200 -clients 8 -duration 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexsim", flag.ContinueOnError)
	scenario := fs.String("scenario", "ev-morning", "scenario name (see -list)")
	duration := fs.Duration("duration", 0, "closed loop: 1s per virtual slot; open loop: wall-clock run length (0: scenario default)")
	seed := fs.Int64("seed", 1, "simulation seed; fixed seed means a byte-identical event trace")
	addr := fs.String("addr", ":8080", "flexd address (URL, host:port, or :port)")
	mode := fs.String("mode", "closed", `"closed" (discrete-event simulation) or "open" (wall-clock load generator)`)
	rate := fs.Float64("rate", 100, "open loop: aggregate offer submissions per second")
	clients := fs.Int("clients", 4, "open loop: concurrent submitter goroutines")
	schedEvery := fs.Int("schedule-every", 50, "open loop: schedule request every N submissions (negative: never)")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON instead of the summary table")
	trace := fs.Bool("trace", false, "closed loop: dump the event trace before the report")
	list := fs.Bool("list", false, "list registered scenarios and exit")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("flexsim"))
		return nil
	}
	if *list {
		for _, sc := range sim.Scenarios() {
			fmt.Fprintf(stdout, "%-16s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	sc, ok := sim.Lookup(*scenario)
	if !ok {
		return fmt.Errorf("unknown scenario %q (use -list)", *scenario)
	}
	if *duration < 0 {
		return fmt.Errorf("-duration must be non-negative, got %v", *duration)
	}
	if *addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}

	client := sim.NewClient(*addr, sim.NewMetrics())
	var (
		rep *sim.Report
		err error
	)
	switch *mode {
	case "closed":
		slots := int(*duration / time.Second)
		if *duration == 0 {
			slots = sc.DefaultSlots
		}
		if slots < 1 {
			return fmt.Errorf("-duration %v is under one virtual slot (1s)", *duration)
		}
		rep, err = sim.ClosedLoop(ctx, sc, client, *seed, slots)
	case "open":
		if *rate <= 0 {
			return fmt.Errorf("-rate must be positive, got %g", *rate)
		}
		if *clients < 1 {
			return fmt.Errorf("-clients must be at least 1, got %d", *clients)
		}
		d := *duration
		if d == 0 {
			d = 30 * time.Second
		}
		rep, err = sim.OpenLoop(ctx, sc, client, sim.LoadOptions{
			Rate:          *rate,
			Clients:       *clients,
			Duration:      d,
			ScheduleEvery: *schedEvery,
			Seed:          *seed,
		})
	default:
		return fmt.Errorf(`-mode must be "closed" or "open", got %q`, *mode)
	}
	if err != nil {
		return err
	}

	if *trace {
		for _, l := range rep.Trace() {
			fmt.Fprintln(stdout, l)
		}
		fmt.Fprintln(stdout)
	}
	if *jsonOut {
		return rep.WriteJSON(stdout)
	}
	return rep.WriteTable(stdout)
}
