// Command flexgen generates synthetic flex-offer datasets in the JSON
// document format understood by flexctl. The generators model the
// prosumer devices the paper motivates (EVs, heat pumps, dishwashers,
// refrigerators, solar panels, wind turbines, vehicle-to-grid) and are
// fully deterministic given -seed.
//
// Usage:
//
//	flexgen -n 1000 -days 3 -mix default -seed 42 > offers.json
//	flexgen -n 200 -mix consumption -o offers.json
//	flexgen -device ev -n 10        # a single device class
//	flexgen -n 1000 -zones 8        # stamp skewed grid zones (flexd -shards routing)
//
// -zones draws each offer's grid zone from a skewed distribution
// (zone i has weight ∝ 1/(i+1)) using an RNG independent of the offer
// stream, so the offers themselves are identical with and without it.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexgen", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of flex-offers to generate")
	days := fs.Int("days", 1, "spread offers over this many days")
	seed := fs.Int64("seed", 1, "random seed (generation is deterministic)")
	zones := fs.Int("zones", 0, "stamp a grid zone onto each offer, drawn skewed from this many zones (0: no zones)")
	mixName := fs.String("mix", "default", `population mix: "default" or "consumption"`)
	device := fs.String("device", "", "generate a single device class instead of a mix (ev, heat-pump, dishwasher, refrigerator, solar-panel, wind-turbine, vehicle-to-grid)")
	format := fs.String("format", "json", `output format: "json", "ndjson" (flexd ingest) or "binary"`)
	out := fs.String("o", "", "output file (default stdout)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.String("flexgen"))
		return nil
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	r := rand.New(rand.NewSource(*seed))
	var offers []*flexoffer.FlexOffer
	var err error
	if *device != "" {
		offers, err = generateDevice(r, *device, *n)
	} else {
		offers, err = generateMix(r, *mixName, *n, *days)
	}
	if err != nil {
		return err
	}
	if *zones < 0 {
		return fmt.Errorf("-zones must be non-negative, got %d", *zones)
	}
	if *zones > 0 {
		stampZones(offers, *zones, *seed)
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return flexoffer.Encode(w, offers)
	case "ndjson":
		return flexoffer.EncodeNDJSON(w, offers)
	case "binary":
		return flexoffer.EncodeBinary(w, offers)
	default:
		return fmt.Errorf("unknown format %q (want json, ndjson or binary)", *format)
	}
}

// zoneSeedSalt decouples the zone stream from the offer stream: zones
// are drawn from their own RNG (seeded from -seed xor this constant),
// so `-zones K` stamps zones onto the exact offers `-zones 0` emits —
// the zone-less and zoned datasets differ only in the zone field.
const zoneSeedSalt = 0x5a4f4e45 // "ZONE"

// stampZones draws each offer's zone via workload.StampZones — the
// skewed sampler the simulation harness shares — deterministically for
// a given seed.
func stampZones(offers []*flexoffer.FlexOffer, k int, seed int64) {
	workload.StampZones(rand.New(rand.NewSource(seed^zoneSeedSalt)), offers, k)
}

func generateMix(r *rand.Rand, name string, n, days int) ([]*flexoffer.FlexOffer, error) {
	var mix workload.Mix
	switch name {
	case "default":
		mix = workload.DefaultMix()
	case "consumption":
		mix = workload.ConsumptionMix()
	default:
		return nil, fmt.Errorf("unknown mix %q (want default or consumption)", name)
	}
	return workload.Population(r, n, days, mix)
}

func generateDevice(r *rand.Rand, name string, n int) ([]*flexoffer.FlexOffer, error) {
	var dev workload.Device
	found := false
	for _, d := range workload.AllDevices() {
		if d.String() == name {
			dev, found = d, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown device %q", name)
	}
	offers := make([]*flexoffer.FlexOffer, 0, n)
	for i := 0; i < n; i++ {
		f, err := workload.Generate(r, dev)
		if err != nil {
			return nil, err
		}
		offers = append(offers, f)
	}
	return offers, nil
}
