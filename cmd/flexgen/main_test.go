package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

func TestRunGeneratesDecodableDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "25", "-seed", "9", "-days", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 25 {
		t.Fatalf("generated %d offers, want 25", len(offers))
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-n", "10", "-seed", "4"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "10", "-seed", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must give identical output")
	}
}

func TestRunSingleDevice(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "solar-panel", "-n", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Negative {
			t.Fatalf("solar offer should be production: %v", f)
		}
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "offers.json")
	if err := run([]string{"-n", "3", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "flexOffers") {
		t.Fatal("output file missing document envelope")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-mix", "bogus"},
		{"-device", "bogus"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestZonesDeterministicAndOfferInvariant(t *testing.T) {
	var plain, zoned, zoned2 bytes.Buffer
	if err := run([]string{"-n", "60", "-seed", "7"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "60", "-seed", "7", "-zones", "6"}, &zoned); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "60", "-seed", "7", "-zones", "6"}, &zoned2); err != nil {
		t.Fatal(err)
	}
	if zoned.String() != zoned2.String() {
		t.Fatal("-zones must be deterministic for a fixed seed")
	}
	base, err := flexoffer.Decode(&plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := flexoffer.Decode(&zoned)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i, f := range got {
		if f.Zone == "" {
			t.Fatalf("offer %d: no zone stamped", i)
		}
		seen[f.Zone]++
		f.Zone = ""
		if !f.Equal(base[i]) {
			t.Fatalf("offer %d: -zones changed the offer itself", i)
		}
	}
	// The distribution is skewed (weight ∝ 1/(i+1)): with 60 draws over
	// 6 zones, more than one zone must appear and z00 must dominate z05.
	if len(seen) < 2 {
		t.Fatalf("only %d distinct zones in 60 offers", len(seen))
	}
	if seen["z00"] <= seen["z05"] {
		t.Errorf("skew inverted: z00=%d z05=%d", seen["z00"], seen["z05"])
	}
	if err := run([]string{"-n", "5", "-zones", "-1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("negative -zones should fail")
	}
}

func TestConsumptionMixFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "30", "-mix", "consumption", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Positive {
			t.Fatalf("consumption mix produced %v offer", f.Kind())
		}
	}
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "flexgen ") {
		t.Fatalf("-version output = %q, want flexgen banner", buf.String())
	}
}
