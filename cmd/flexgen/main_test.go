package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

func TestRunGeneratesDecodableDocument(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "25", "-seed", "9", "-days", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 25 {
		t.Fatalf("generated %d offers, want 25", len(offers))
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-n", "10", "-seed", "4"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "10", "-seed", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must give identical output")
	}
}

func TestRunSingleDevice(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-device", "solar-panel", "-n", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Negative {
			t.Fatalf("solar offer should be production: %v", f)
		}
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "offers.json")
	if err := run([]string{"-n", "3", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "flexOffers") {
		t.Fatal("output file missing document envelope")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-mix", "bogus"},
		{"-device", "bogus"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestConsumptionMixFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "30", "-mix", "consumption", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Positive {
			t.Fatalf("consumption mix produced %v offer", f.Kind())
		}
	}
}
