package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

// writeFixture writes a small document with the paper's Figure 1 offer
// and the mixed f6, returning its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	fig1, err := flexoffer.New(1, 6,
		flexoffer.Slice{Min: 1, Max: 3}, flexoffer.Slice{Min: 2, Max: 4},
		flexoffer.Slice{Min: 0, Max: 5}, flexoffer.Slice{Min: 0, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	fig1.ID = "figure-1"
	f6, err := flexoffer.New(0, 2,
		flexoffer.Slice{Min: -1, Max: 2}, flexoffer.Slice{Min: -4, Max: -1},
		flexoffer.Slice{Min: -3, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	f6.ID = "f6"
	path := filepath.Join(t.TempDir(), "offers.json")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := flexoffer.Encode(out, []*flexoffer.FlexOffer{fig1, f6}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"validate", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 valid flex-offers") ||
		!strings.Contains(buf.String(), "1 mixed") {
		t.Errorf("unexpected output: %q", buf.String())
	}
}

func TestMeasureSubcommandAllMeasures(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"measure", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Figure 1's product flexibility is 60; f6's area measures are n/a
	// only in the sense of mixed support, but still computable.
	if !strings.Contains(out, "figure-1") || !strings.Contains(out, "60") {
		t.Errorf("missing figure-1 row:\n%s", out)
	}
	if !strings.Contains(out, "SET") {
		t.Errorf("missing set row:\n%s", out)
	}
}

func TestMeasureSubcommandSingleMeasure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"measure", "-m", "assignments", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "240") { // f6's count
		t.Errorf("assignments column missing:\n%s", buf.String())
	}
	if err := run([]string{"measure", "-m", "bogus", writeFixture(t)}, &bytes.Buffer{}); err == nil {
		t.Error("unknown measure must fail")
	}
}

func TestRenderSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"render", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "░") {
		t.Errorf("no profile rendering:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"render", "-area", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|⋃area|=24 cells") {
		t.Errorf("f6 area missing:\n%s", buf.String())
	}
}

func TestEnumerateSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"enumerate", "-limit", "10", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "truncated at 10") {
		t.Errorf("limit not applied:\n%s", out)
	}
	if !strings.Contains(out, "240 assignments") {
		t.Errorf("Definition 8 count missing:\n%s", out)
	}
}

func TestAggregateSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"aggregate", "-est", "24", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 offers → 1 aggregates") {
		t.Errorf("aggregation summary wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"aggregate", "-balance", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aggregates") {
		t.Errorf("balance aggregation output wrong:\n%s", buf.String())
	}
}

// TestAggregateSubcommandParallel checks that -workers changes nothing
// about the output: the parallel pipeline is byte-identical to serial.
func TestAggregateSubcommandParallel(t *testing.T) {
	path := writeFixture(t)
	var serial, parallel bytes.Buffer
	if err := run([]string{"aggregate", "-est", "24", "-workers", "1", path}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"aggregate", "-est", "24", "-workers", "4", path}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel output differs from serial:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	parallel.Reset()
	if err := run([]string{"aggregate", "-balance", "-workers", "4", path}, &parallel); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(parallel.String(), "aggregates") {
		t.Errorf("balance aggregation with workers wrong:\n%s", parallel.String())
	}
}

func TestScheduleSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"schedule", "-horizon", "12", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "imbalance (L1)") {
		t.Errorf("schedule output wrong:\n%s", buf.String())
	}
}

// TestScheduleSubcommandLegacyEvaluator pins the oracle flag: both
// evaluators must report the same schedule quality.
func TestScheduleSubcommandLegacyEvaluator(t *testing.T) {
	path := writeFixture(t)
	var inc, legacy bytes.Buffer
	if err := run([]string{"schedule", "-horizon", "12", path}, &inc); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"schedule", "-horizon", "12", "-legacy", path}, &legacy); err != nil {
		t.Fatal(err)
	}
	if inc.String() != legacy.String() {
		t.Errorf("legacy evaluator output differs:\n%s\nvs\n%s", inc.String(), legacy.String())
	}
}

func TestScheduleSubcommandPipelineRejectsLegacy(t *testing.T) {
	if err := run([]string{"schedule", "-pipeline", "-legacy", writeFixture(t)}, &bytes.Buffer{}); err == nil {
		t.Fatal("-pipeline with -legacy must be rejected, not silently ignored")
	}
}

func TestScheduleSubcommandPipeline(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"schedule", "-pipeline", "-workers", "2", "-horizon", "12", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "prosumer assignments") || !strings.Contains(out, "imbalance (L1)") {
		t.Errorf("pipeline schedule output wrong:\n%s", out)
	}
	// Both offers must come out the other end of disaggregation.
	if !strings.Contains(out, "2 prosumer assignments") {
		t.Errorf("expected 2 prosumer assignments:\n%s", out)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no args must fail with usage")
	}
	if err := run([]string{"bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"validate", "does-not-exist.json"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file must fail")
	}
	if err := run([]string{"validate"}, &bytes.Buffer{}); err == nil {
		t.Error("missing operand must fail")
	}
}

func TestRefineSubcommand(t *testing.T) {
	var buf bytes.Buffer
	// Figure 1 amounts are not divisible by 2, so refine must fail…
	if err := run([]string{"refine", "-k", "2", writeFixture(t)}, &buf); err == nil {
		t.Fatal("odd amounts must fail to refine")
	}
	// …while k=1 passes through unchanged.
	buf.Reset()
	if err := run([]string{"refine", "-k", "1", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("refine emitted %d offers", len(offers))
	}
}

func TestTightenSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"tighten", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bits lost") {
		t.Errorf("report missing:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"tighten", "-json", writeFixture(t)}, &buf); err != nil {
		t.Fatal(err)
	}
	offers, err := flexoffer.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.SumMin() != f.TotalMin || f.SumMax() != f.TotalMax {
			t.Errorf("offer %s not slice-bounded after tighten", f.ID)
		}
	}
}

func TestTable1Subcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"table1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Captures Mixed flex-offers") ||
		!strings.Contains(out, "all behavioural cells verified by probing") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
	buf.Reset()
	if err := run([]string{"table1", "-extensions"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "entropy") || !strings.Contains(buf.String(), "displacement") {
		t.Errorf("extension columns missing:\n%s", buf.String())
	}
}
