package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/server"
	"flexmeasures/internal/workload"
)

// TestFlexdE2E is the PR's acceptance criterion, end to end: the same
// population is (a) ingested into a flexd server as NDJSON and
// scheduled over HTTP, and (b) written to disk and run through
// `flexctl schedule -pipeline -json`. The two response bodies must be
// bit-identical — same aggregates, same assignments, same load, same
// bytes — proving the service serves exactly what the batch CLI
// computes. CI runs this as the flexd smoke test.
func TestFlexdE2E(t *testing.T) {
	offers, err := workload.Population(rand.New(rand.NewSource(77)), 300, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}

	// Side (a): the service. Engine options mirror what cmd/flexd
	// builds by default (-safe=true), plus a pool.
	eng := flex.New(flex.WithWorkers(4), flex.WithSafe(true))
	defer eng.Close()
	srv := httptest.NewServer(server.New(eng, server.Options{}))
	defer srv.Close()

	var ndjson bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&ndjson, offers); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/offers", "application/x-ndjson", &ndjson)
	if err != nil {
		t.Fatal(err)
	}
	ingestBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, ingestBody)
	}

	const horizon, cap, est, maxGroup = 96, 60, 3, 32
	url := fmt.Sprintf("%s/v1/schedule?horizon=%d&cap=%d&est=%d&max-group=%d",
		srv.URL, horizon, cap, est, maxGroup)
	resp, err = http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	httpBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s: %s", resp.Status, httpBody)
	}

	// Side (b): the CLI on the same offers, same parameters.
	path := filepath.Join(t.TempDir(), "offers.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := flexoffer.Encode(f, offers); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var cliBody bytes.Buffer
	err = run([]string{"schedule", "-pipeline", "-json",
		fmt.Sprintf("-horizon=%d", horizon), fmt.Sprintf("-cap=%d", cap),
		fmt.Sprintf("-est=%d", est), fmt.Sprintf("-max-group=%d", maxGroup),
		"-workers=2", path}, &cliBody)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(httpBody, cliBody.Bytes()) {
		t.Fatalf("flexd response is not bit-identical to flexctl -json:\nHTTP (%d bytes): %.200s\nCLI  (%d bytes): %.200s",
			len(httpBody), httpBody, cliBody.Len(), cliBody.Bytes())
	}
}

// TestFlexdShardedE2E extends the acceptance criterion to multi-shard
// serving: the same zoned population is ingested into a single-engine
// flexd, a 4-shard flexd, and run through `flexctl schedule -pipeline
// -json -shards 4`. All three /v1/schedule bodies must be
// bit-identical — the shard count changes where the work runs, never a
// byte of the answer. CI runs this as the multi-shard smoke test.
func TestFlexdShardedE2E(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	offers, err := workload.Population(rng, 300, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		if i%4 != 0 {
			f.Zone = fmt.Sprintf("z%02d", rng.Intn(6))
		}
	}
	var ndjson bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&ndjson, offers); err != nil {
		t.Fatal(err)
	}

	const horizon, cap, est, maxGroup = 96, 60, 3, 32
	query := fmt.Sprintf("/v1/schedule?horizon=%d&cap=%d&est=%d&max-group=%d", horizon, cap, est, maxGroup)
	schedule := func(shards int) []byte {
		t.Helper()
		se := flex.NewSharded(shards, flex.WithWorkers(2), flex.WithSafe(true))
		defer se.Close()
		srv := httptest.NewServer(server.NewSharded(se, server.Options{}))
		defer srv.Close()
		resp, err := http.Post(srv.URL+"/v1/offers", "application/x-ndjson", bytes.NewReader(ndjson.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: ingest: %s: %s", shards, resp.Status, body)
		}
		resp, err = http.Post(srv.URL+query, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: schedule: %s: %s", shards, resp.Status, body)
		}
		return body
	}

	single := schedule(1)
	sharded := schedule(4)
	if !bytes.Equal(single, sharded) {
		t.Fatalf("-shards 4 response is not bit-identical to -shards 1:\n1 shard  (%d bytes): %.200s\n4 shards (%d bytes): %.200s",
			len(single), single, len(sharded), sharded)
	}

	path := filepath.Join(t.TempDir(), "offers.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := flexoffer.Encode(f, offers); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var cliBody bytes.Buffer
	err = run([]string{"schedule", "-pipeline", "-json", "-shards=4",
		fmt.Sprintf("-horizon=%d", horizon), fmt.Sprintf("-cap=%d", cap),
		fmt.Sprintf("-est=%d", est), fmt.Sprintf("-max-group=%d", maxGroup),
		"-workers=2", path}, &cliBody)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single, cliBody.Bytes()) {
		t.Fatalf("flexctl -shards 4 output is not bit-identical to flexd:\nHTTP (%d bytes): %.200s\nCLI  (%d bytes): %.200s",
			len(single), single, cliBody.Len(), cliBody.Bytes())
	}
}
