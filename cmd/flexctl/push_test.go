package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/server"
)

// fakeClock is a pusher sleep that records waits instead of taking
// them.
type fakeClock struct{ waits []time.Duration }

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	c.waits = append(c.waits, d)
	return ctx.Err()
}

// noJitter pins the jitter factor to 1 so waits are exact.
func noJitter() float64 { return 1 }

// retryServer answers fail requests with status (plus Retry-After when
// set), then succeeds.
func retryServer(t *testing.T, fail int, status int, retryAfter string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/offers" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL)
		}
		if int(calls.Add(1)) <= fail {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			fmt.Fprintln(w, `{"error":"busy"}`)
			return
		}
		fmt.Fprintln(w, `{"ingested":7,"replaced":0,"stored":7}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestPushRetriesBackpressure(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv, calls := retryServer(t, 2, status, "")
		clock := &fakeClock{}
		res, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
			pusher{attempts: 5, base: time.Second, sleep: clock.sleep, jitter: noJitter})
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if res.Ingested != 7 || tries != 3 || calls.Load() != 3 {
			t.Fatalf("status %d: res %+v, tries %d, calls %d", status, res, tries, calls.Load())
		}
		// Exponential: 1s then 2s (jitter pinned to 1).
		if len(clock.waits) != 2 || clock.waits[0] != time.Second || clock.waits[1] != 2*time.Second {
			t.Fatalf("status %d: waits %v", status, clock.waits)
		}
	}
}

func TestPushHonorsRetryAfter(t *testing.T) {
	srv, _ := retryServer(t, 1, http.StatusServiceUnavailable, "30")
	clock := &fakeClock{}
	_, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 3, base: time.Second, max: time.Hour, sleep: clock.sleep, jitter: noJitter})
	if err != nil || tries != 2 {
		t.Fatalf("push: tries %d, err %v", tries, err)
	}
	if len(clock.waits) != 1 || clock.waits[0] != 30*time.Second {
		t.Fatalf("Retry-After ignored: waits %v", clock.waits)
	}
}

func TestPushRetryAfterCapped(t *testing.T) {
	srv, _ := retryServer(t, 1, http.StatusServiceUnavailable, "3600")
	clock := &fakeClock{}
	_, _, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 3, base: time.Second, max: 10 * time.Second, sleep: clock.sleep, jitter: noJitter})
	if err != nil {
		t.Fatal(err)
	}
	if len(clock.waits) != 1 || clock.waits[0] != 10*time.Second {
		t.Fatalf("hour-long Retry-After not capped: waits %v", clock.waits)
	}
}

func TestPushGivesUp(t *testing.T) {
	srv, calls := retryServer(t, 100, http.StatusTooManyRequests, "")
	clock := &fakeClock{}
	_, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 4, base: time.Millisecond, sleep: clock.sleep, jitter: noJitter})
	if err == nil || !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("err = %v", err)
	}
	if tries != 4 || calls.Load() != 4 {
		t.Fatalf("tries %d, calls %d, want 4", tries, calls.Load())
	}
}

func TestPushDoesNotRetryClientErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"record 3: bad offer"}`)
	}))
	defer srv.Close()
	_, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 5, sleep: (&fakeClock{}).sleep, jitter: noJitter})
	if err == nil || tries != 1 {
		t.Fatalf("bad request retried: tries %d, err %v", tries, err)
	}
	if !strings.Contains(err.Error(), "bad offer") {
		t.Fatalf("server message lost: %v", err)
	}
}

func TestPushCancellable(t *testing.T) {
	srv, _ := retryServer(t, 100, http.StatusServiceUnavailable, "")
	ctx, cancel := context.WithCancel(context.Background())
	waited := false
	sleep := func(ctx context.Context, d time.Duration) error {
		waited = true
		cancel() // the user hits ^C mid-backoff
		return ctx.Err()
	}
	_, _, err := pushOffers(ctx, srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 10, sleep: sleep, jitter: noJitter})
	if !errors.Is(err, context.Canceled) || !waited {
		t.Fatalf("cancel during backoff: err %v, waited %t", err, waited)
	}
}

func TestPushRetriesTransportErrors(t *testing.T) {
	// A server that dies after the first refusal: the port stops
	// answering, which must also be retried — and eventually given up.
	srv, _ := retryServer(t, 100, http.StatusServiceUnavailable, "")
	srv.Close()
	_, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "", []byte("{}\n"),
		pusher{attempts: 3, base: time.Millisecond, sleep: (&fakeClock{}).sleep, jitter: noJitter})
	if err == nil || tries != 3 {
		t.Fatalf("dead server: tries %d, err %v", tries, err)
	}
}

// TestPushAgainstRealServer exercises the full ingest path: push to a
// live flexd handler and check the decoded response.
func TestPushAgainstRealServer(t *testing.T) {
	eng := flex.New(flex.WithWorkers(2), flex.WithSafe(true))
	defer eng.Close()
	srv := httptest.NewServer(server.New(eng, server.Options{}))
	defer srv.Close()
	body := []byte(`{"id":"a","earliestStart":0,"latestStart":2,"slices":[{"min":0,"max":4}]}` + "\n")
	res, tries, err := pushOffers(context.Background(), srv.Client(), srv.URL, "collect", body,
		pusher{attempts: 3, sleep: (&fakeClock{}).sleep, jitter: noJitter})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ingested != 1 || res.Stored != 1 || tries != 1 {
		t.Fatalf("push result %+v, tries %d", res, tries)
	}
}
