package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"flexmeasures/internal/obs"
	"flexmeasures/internal/server"
)

// cmdPush uploads an NDJSON offer stream to a running flexd. Unlike a
// bare curl, it retries on the server's backpressure answers — 429 from
// the in-flight gate, 503 from a degraded (read-only) store — with
// exponential backoff, honoring the Retry-After the server suggests, so
// a load spike or a disk hiccup on the far side degrades into a slower
// upload instead of a failed one.
func cmdPush(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "flexd base URL")
	mode := fs.String("mode", "", `ingest error mode: "first" or "collect" (empty: server default)`)
	attempts := fs.Int("attempts", 6, "delivery attempts before giving up")
	timeout := fs.Duration("timeout", 0, "overall deadline including retries (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New(`expected exactly one input file ("-" for stdin)`)
	}
	var body []byte
	var err error
	if fs.Arg(0) == "-" {
		body, err = io.ReadAll(os.Stdin)
	} else {
		body, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, tries, err := pushOffers(ctx, http.DefaultClient, *url, *mode, body, pusher{attempts: *attempts})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pushed %d offers (%d replaced, %d stored, %d attempts)\n",
		res.Ingested, res.Replaced, res.Stored, tries)
	return nil
}

// pusher holds the retry policy; tests shrink the delays and pin the
// jitter source.
type pusher struct {
	// attempts bounds delivery tries (minimum 1).
	attempts int
	// base is the first backoff delay (default 250ms), doubling per
	// retry up to max (default 15s).
	base, max time.Duration
	// sleep waits d or until ctx is done; nil means the real clock.
	sleep func(ctx context.Context, d time.Duration) error
	// jitter returns a random factor in [0.5, 1.5); nil means math/rand.
	jitter func() float64
}

func (p pusher) withDefaults() pusher {
	if p.attempts < 1 {
		p.attempts = 1
	}
	if p.base <= 0 {
		p.base = 250 * time.Millisecond
	}
	if p.max <= 0 {
		p.max = 15 * time.Second
	}
	if p.sleep == nil {
		p.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if p.jitter == nil {
		p.jitter = func() float64 { return 0.5 + rand.Float64() }
	}
	return p
}

// pushOffers POSTs body to baseURL's /v1/offers, retrying retriable
// failures (429, 503, transport errors) per the policy. It returns the
// server's ingest response and how many attempts it took. Cancelling
// ctx aborts both in-flight requests and backoff waits.
func pushOffers(ctx context.Context, c *http.Client, baseURL, mode string, body []byte, p pusher) (*server.IngestResponse, int, error) {
	p = p.withDefaults()
	url := baseURL + "/v1/offers"
	if mode != "" {
		url += "?mode=" + mode
	}
	delay := p.base
	var lastErr error
	for try := 1; ; try++ {
		res, retriable, err := pushOnce(ctx, c, url, body)
		if err == nil {
			return res, try, nil
		}
		if !retriable {
			return nil, try, err
		}
		lastErr = err
		if try >= p.attempts {
			return nil, try, fmt.Errorf("giving up after %d attempts: %w", try, lastErr)
		}
		wait := time.Duration(float64(delay) * p.jitter())
		if ra, ok := retryAfter(err); ok {
			// The server knows its own backlog better than our backoff
			// curve does; take its word, jitter included, capped like
			// every other wait.
			wait = time.Duration(float64(ra) * p.jitter())
		}
		if wait > p.max {
			wait = p.max
		}
		if err := p.sleep(ctx, wait); err != nil {
			return nil, try, fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
		if delay *= 2; delay > p.max {
			delay = p.max
		}
	}
}

// retryError is a retriable HTTP failure, carrying the server's
// Retry-After suggestion when it sent one.
type retryError struct {
	status     int
	msg        string
	retryAfter time.Duration
	hasRetry   bool
}

func (e *retryError) Error() string {
	return fmt.Sprintf("server answered %d: %s", e.status, e.msg)
}

func retryAfter(err error) (time.Duration, bool) {
	var re *retryError
	if errors.As(err, &re) && re.hasRetry {
		return re.retryAfter, true
	}
	return 0, false
}

// pushOnce performs a single delivery attempt. retriable reports
// whether the failure is worth another try: transport errors and the
// server's backpressure statuses are, anything else (bad records, too
// large, unexpected statuses) is not.
func pushOnce(ctx context.Context, c *http.Client, url string, body []byte) (res *server.IngestResponse, retriable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	// A fresh ID per attempt: retries of one batch then show up as
	// separate traces server-side instead of colliding in the ring.
	req.Header.Set("X-Request-Id", obs.NewRequestID())
	resp, err := c.Do(req)
	if err != nil {
		// Transport-level failure (refused, reset, DNS): retriable
		// unless the context itself was cancelled.
		return nil, ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var ir server.IngestResponse
		if err := server.DecodeResponse(resp.Body, &ir); err != nil {
			return nil, false, fmt.Errorf("decoding ingest response: %w", err)
		}
		return &ir, false, nil
	}
	msg := readErrorBody(resp.Body)
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		re := &retryError{status: resp.StatusCode, msg: msg}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				re.retryAfter, re.hasRetry = time.Duration(secs)*time.Second, true
			} else if t, perr := http.ParseTime(s); perr == nil {
				if d := time.Until(t); d > 0 {
					re.retryAfter, re.hasRetry = d, true
				}
			}
		}
		return nil, true, re
	}
	return nil, false, fmt.Errorf("server answered %d: %s", resp.StatusCode, msg)
}

// readErrorBody extracts the error message from a non-2xx response.
func readErrorBody(r io.Reader) string {
	var er server.ErrorResponse
	if err := server.DecodeResponse(io.LimitReader(r, 1<<20), &er); err == nil && er.Error != "" {
		return er.Error
	}
	return "(no error body)"
}
