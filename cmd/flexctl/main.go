// Command flexctl inspects and processes flex-offer JSON documents (as
// produced by flexgen): validation, flexibility measurement, assignment
// enumeration, aggregation, scheduling and ASCII rendering.
//
// Usage:
//
//	flexctl validate offers.json
//	flexctl measure  offers.json             # all 8 measures, per offer + set
//	flexctl measure  -m product offers.json  # one measure
//	flexctl render   offers.json             # profile + area diagrams
//	flexctl enumerate -limit 50 offers.json  # list valid assignments
//	flexctl aggregate -est 4 offers.json     # group + aggregate, report losses
//	flexctl aggregate -workers 8 offers.json # same, aggregating groups in parallel
//	flexctl schedule -horizon 72 offers.json # greedy schedule vs. flat target
//	flexctl schedule -pipeline -workers 8 offers.json
//	                                         # streaming group→aggregate→schedule→disaggregate
//	flexctl schedule -pipeline -json offers.json
//	                                         # emit the flexd wire format (bit-identical to POST /v1/schedule)
//	flexctl push -url http://host:8080 offers.ndjson
//	                                         # upload to flexd, retrying 429/503 with backoff
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	flex "flexmeasures"
	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/render"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/server"
	"flexmeasures/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flexctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: flexctl <validate|measure|render|enumerate|aggregate|schedule|push> [flags] <file.json>")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "version", "-version", "--version":
		fmt.Fprintln(out, buildinfo.String("flexctl"))
		return nil
	case "push":
		return cmdPush(rest, out)
	case "validate":
		return cmdValidate(rest, out)
	case "measure":
		return cmdMeasure(rest, out)
	case "render":
		return cmdRender(rest, out)
	case "enumerate":
		return cmdEnumerate(rest, out)
	case "aggregate":
		return cmdAggregate(rest, out)
	case "schedule":
		return cmdSchedule(rest, out)
	case "refine":
		return cmdRefine(rest, out)
	case "tighten":
		return cmdTighten(rest, out)
	case "table1":
		return cmdTable1(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// cmdTable1 prints the paper's Table 1 (optionally with the extension
// measures appended) and verifies every behavioural cell by probing.
func cmdTable1(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	ext := fs.Bool("extensions", false, "append this library's extension measures")
	if err := fs.Parse(args); err != nil {
		return err
	}
	measures := core.AllMeasures()
	if *ext {
		measures = append(measures, core.ExtensionMeasures()...)
	}
	cols, rowNames, cells := core.Table1(measures)
	header := append([]string{"Characteristics"}, cols...)
	rows := make([][]string, len(rowNames))
	for i, name := range rowNames {
		row := []string{name}
		for j := range cols {
			if cells[i][j] {
				row = append(row, "Yes")
			} else {
				row = append(row, "No")
			}
		}
		rows[i] = row
	}
	fmt.Fprint(out, render.Table(header, rows))
	for _, m := range measures {
		if err := core.VerifyCharacteristics(m); err != nil {
			return fmt.Errorf("probe disagrees with declaration: %w", err)
		}
	}
	fmt.Fprintln(out, "all behavioural cells verified by probing")
	return nil
}

// loadOffers reads a flex-offer document, auto-detecting the JSON and
// binary formats by their leading bytes.
func loadOffers(fs *flag.FlagSet) ([]*flexoffer.FlexOffer, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one input file, got %d", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && (string(head) == "FXO1" || string(head) == "FXO2") {
		return flexoffer.DecodeBinary(br)
	}
	return flexoffer.Decode(br)
}

func cmdValidate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	kinds := map[flexoffer.Kind]int{}
	for _, f := range offers {
		kinds[f.Kind()]++
	}
	fmt.Fprintf(out, "%d valid flex-offers (%d positive, %d negative, %d mixed)\n",
		len(offers), kinds[flexoffer.Positive], kinds[flexoffer.Negative], kinds[flexoffer.Mixed])
	return nil
}

func cmdMeasure(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("measure", flag.ContinueOnError)
	name := fs.String("m", "", "measure only this (e.g. product, vector_l2); default all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	var measures []core.Measure
	if *name != "" {
		m, err := core.LookupMeasure(*name)
		if err != nil {
			return err
		}
		measures = []core.Measure{m}
	} else {
		measures = core.AllMeasures()
	}
	header := []string{"offer"}
	for _, m := range measures {
		header = append(header, m.Name())
	}
	var rows [][]string
	for i, f := range offers {
		id := f.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i)
		}
		row := []string{id}
		for _, m := range measures {
			v, err := m.Value(f)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmt.Sprintf("%.3g", v))
		}
		rows = append(rows, row)
	}
	setRow := []string{"SET"}
	for _, m := range measures {
		v, err := m.SetValue(offers)
		if err != nil {
			setRow = append(setRow, "n/a")
			continue
		}
		setRow = append(setRow, fmt.Sprintf("%.3g", v))
	}
	rows = append(rows, setRow)
	fmt.Fprint(out, render.Table(header, rows))
	return nil
}

func cmdRender(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	area := fs.Bool("area", false, "render the joint flexibility area instead of the profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	for i, f := range offers {
		fmt.Fprintf(out, "-- offer %d %s --\n", i, f.ID)
		if *area {
			fmt.Fprint(out, render.Area(f))
		} else {
			fmt.Fprint(out, render.FlexOffer(f))
		}
	}
	return nil
}

func cmdEnumerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("enumerate", flag.ContinueOnError)
	limit := fs.Int("limit", 100, "maximum assignments to list per offer")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	for i, f := range offers {
		fmt.Fprintf(out, "-- offer %d %s: %s assignments by Definition 8 --\n",
			i, f.ID, f.AssignmentCount())
		n := 0
		err := f.EnumerateAssignments(*limit, func(a flexoffer.Assignment) bool {
			fmt.Fprintf(out, "  %s\n", a.Series())
			n++
			return true
		})
		if err != nil {
			fmt.Fprintf(out, "  … truncated at %d\n", n)
		}
	}
	return nil
}

func cmdAggregate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aggregate", flag.ContinueOnError)
	est := fs.Int("est", 2, "earliest-start-time tolerance")
	tft := fs.Int("tft", -1, "time-flexibility tolerance (-1: unbounded)")
	size := fs.Int("max-group", 0, "maximum group size (0: unbounded)")
	balance := fs.Bool("balance", false, "use balance-aware grouping instead")
	workers := fs.Int("workers", 0, "aggregation workers (0: one per CPU, 1: serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	// CollectAll keeps the error output deterministic when several
	// groups fail: every failure is reported, sorted by group index.
	eng := flex.New(
		flex.WithWorkers(*workers),
		flex.WithGrouping(flex.GroupParams{ESTTolerance: *est, TFTolerance: *tft, MaxGroupSize: *size}),
		flex.WithErrorMode(flex.CollectAll),
	)
	defer eng.Close()
	var ags []*flex.Aggregated
	if *balance {
		// Balance-aware grouping is a partitioning strategy, not an
		// engine option: hand the pre-computed groups to the engine.
		groups := aggregate.BalanceGroups(offers, aggregate.BalanceParams{ESTTolerance: *est, MaxGroupSize: *size})
		ags, err = eng.AggregateGroups(context.Background(), groups)
	} else {
		ags, err = eng.Aggregate(context.Background(), offers)
	}
	if err != nil {
		return err
	}
	header := []string{"group", "offers", "kind", "tf", "ef", "product loss", "vector_l1 loss"}
	var rows [][]string
	for i, ag := range ags {
		pLoss, err := ag.Loss(core.ProductMeasure{})
		if err != nil {
			return err
		}
		vLoss, err := ag.Loss(core.VectorMeasure{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i), fmt.Sprintf("%d", len(ag.Constituents)),
			ag.Offer.Kind().String(),
			fmt.Sprintf("%d", ag.Offer.TimeFlexibility()),
			fmt.Sprintf("%d", ag.Offer.EnergyFlexibility()),
			fmt.Sprintf("%.0f", pLoss), fmt.Sprintf("%.0f", vLoss),
		})
	}
	fmt.Fprint(out, render.Table(header, rows))
	fmt.Fprintf(out, "%d offers → %d aggregates\n", len(offers), len(ags))
	return nil
}

// cmdRefine rewrites the document at a k-times finer time granularity
// (Section 2's scaling coefficient).
func cmdRefine(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("refine", flag.ContinueOnError)
	k := fs.Int("k", 2, "time refinement factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	refined := make([]*flexoffer.FlexOffer, len(offers))
	for i, f := range offers {
		r, err := f.Refine(*k)
		if err != nil {
			return fmt.Errorf("offer %d (%s): %w", i, f.ID, err)
		}
		refined[i] = r
	}
	return flexoffer.Encode(out, refined)
}

// cmdTighten folds the total constraints into the slice bounds
// (slice-bounded form; guarantees aggregate disaggregability) and
// reports the flexibility each offer gave up.
func cmdTighten(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tighten", flag.ContinueOnError)
	quiet := fs.Bool("json", false, "emit the tightened document instead of the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	tightened := make([]*flexoffer.FlexOffer, len(offers))
	header := []string{"offer", "entropy before", "entropy after", "bits lost"}
	var rows [][]string
	for i, f := range offers {
		tightened[i] = f.TightenTotals()
		before := core.EntropyFlexibility(f)
		after := core.EntropyFlexibility(tightened[i])
		id := f.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i)
		}
		rows = append(rows, []string{id,
			fmt.Sprintf("%.1f", before), fmt.Sprintf("%.1f", after),
			fmt.Sprintf("%.1f", before-after)})
	}
	if *quiet {
		return flexoffer.Encode(out, tightened)
	}
	fmt.Fprint(out, render.Table(header, rows))
	return nil
}

func cmdSchedule(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedule", flag.ContinueOnError)
	horizon := fs.Int("horizon", 48, "scheduling horizon in time units")
	level := fs.Int64("target", -1, "flat target level per slot (-1: fleet average)")
	cap := fs.Int64("cap", 0, "soft peak cap (0: uncapped)")
	legacy := fs.Bool("legacy", false, "use the legacy full-recompute candidate evaluator")
	pipeline := fs.Bool("pipeline", false, "stream group→aggregate→schedule→disaggregate instead of scheduling raw offers")
	asJSON := fs.Bool("json", false, "emit the flexd wire format instead of the summary (with -pipeline)")
	workers := fs.Int("workers", 0, "pipeline worker-pool size (with -pipeline; 0: one per CPU)")
	shards := fs.Int("shards", 1, "engine shard count: >1 scatter-gathers across per-shard pools (bit-identical output)")
	est := fs.Int("est", 2, "earliest-start-time grouping tolerance (with -pipeline)")
	tft := fs.Int("tft", -1, "time-flexibility grouping tolerance (with -pipeline; -1: unbounded)")
	size := fs.Int("max-group", 0, "maximum group size (with -pipeline; 0: unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON && !*pipeline {
		return fmt.Errorf("-json requires -pipeline: only the full chain has a wire format")
	}
	offers, err := loadOffers(fs)
	if err != nil {
		return err
	}
	// The shared helper keeps the CLI's target semantics identical to
	// the flexd /v1/schedule endpoint's.
	lvl := server.FlatTargetLevel(offers, *horizon, *level)
	target := timeseries.Constant(0, *horizon, lvl)
	if *legacy {
		if *pipeline {
			return fmt.Errorf("-legacy applies to direct scheduling only: the streaming pipeline always uses the incremental evaluator")
		}
		res, err := sched.Schedule(offers, target, sched.Options{PeakCap: *cap, FullRecompute: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "scheduled %d offers against a flat target of %d/slot over %d slots\n",
			len(offers), lvl, *horizon)
		fmt.Fprintf(out, "imbalance (L1): %.0f   peak load: %d\n", res.Imbalance(target), res.PeakLoad())
		return nil
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	// One engine option set serves both the direct and the pipelined
	// schedule, so -cap means the same thing on either path.
	engOpts := []flex.Option{
		flex.WithWorkers(*workers),
		flex.WithGrouping(flex.GroupParams{ESTTolerance: *est, TFTolerance: *tft, MaxGroupSize: *size}),
		// Safe aggregation guarantees the disaggregation stage succeeds
		// for whatever assignments the scheduler picks.
		flex.WithSafe(true),
		flex.WithPeakCap(*cap),
	}
	// A single engine and a sharded one expose the same scheduling
	// surface — and, by the scatter-gather design, the same bytes — so
	// -shards only decides which one backs the run.
	var eng interface {
		Pipeline(ctx context.Context, offers []*flexoffer.FlexOffer, target flex.Series, opts ...flex.Option) (*flex.PipelineResult, error)
		Schedule(ctx context.Context, offers []*flexoffer.FlexOffer, target flex.Series, opts ...flex.Option) (*flex.ScheduleResult, error)
		Workers() int
		Close()
	}
	if *shards > 1 {
		eng = flex.NewSharded(*shards, engOpts...)
	} else {
		eng = flex.New(engOpts...)
	}
	defer eng.Close()
	if *pipeline {
		res, err := eng.Pipeline(context.Background(), offers, target)
		if err != nil {
			return err
		}
		if *asJSON {
			// The same wire builder and encoder the flexd endpoint uses:
			// these bytes are the acceptance criterion's reference.
			return server.EncodeResponse(out, server.BuildScheduleResponse(len(offers), res, target, *horizon, lvl))
		}
		prosumers := 0
		for _, parts := range res.Disaggregated {
			prosumers += len(parts)
		}
		fmt.Fprintf(out, "pipelined %d offers → %d aggregates → %d prosumer assignments (%d workers)\n",
			len(offers), len(res.Aggregates), prosumers, eng.Workers())
		fmt.Fprintf(out, "target %d/slot over %d slots\n", lvl, *horizon)
		fmt.Fprintf(out, "imbalance (L1): %.0f   peak load: %d\n",
			res.AggregateSchedule.Imbalance(target), res.AggregateSchedule.PeakLoad())
		return nil
	}
	res, err := eng.Schedule(context.Background(), offers, target)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scheduled %d offers against a flat target of %d/slot over %d slots\n",
		len(offers), lvl, *horizon)
	fmt.Fprintf(out, "imbalance (L1): %.0f   peak load: %d\n", res.Imbalance(target), res.PeakLoad())
	return nil
}
