package flex

import (
	"context"
	"errors"
	"math"
	"sync"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/core"
	"flexmeasures/internal/grouping"
	"flexmeasures/internal/inc"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/pool"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/timeseries"
)

// Engine is the library's long-lived entry point: one option-configured
// object that owns a persistent worker pool and presents the paper's
// operations — aggregation (Scenario 1), scheduling, the full streaming
// pipeline, disaggregation and the flexibility measures — as
// context-first methods. Create one with New at startup, share it
// freely (every method is safe for concurrent use; calls share the pool
// without sharing any per-call state), and Close it on shutdown.
//
// The Engine exists because a service handling heavy traffic should not
// pay goroutine-pool setup per request: the free functions this API
// replaces each spun up and tore down their own workers on every call.
// An Engine's pool outlives calls, so the per-request cost is the work
// itself. Results are bit-identical to the deprecated free functions
// for every worker count — the equivalence tests pin this down.
//
// One option set governs every method: WithPeakCap, for example,
// applies to Schedule and Pipeline alike, so the same cap can never
// silently differ between the two paths (the trap the legacy
// Config.PeakCap — consulted only by SchedulePipeline — left open).
type Engine struct {
	opts engineOptions
	// pool is nil when the engine is serial (WithWorkers(1)): methods
	// then run entirely on the calling goroutine.
	pool *pool.Pool
	// incState is the incremental-scheduling cache behind
	// WithIncremental, created lazily on the first incremental Pipeline
	// call. Runs serialize on the state's own mutex: placement against
	// one shared residual was always a serial stage per call, and the
	// cache swap must be atomic with it.
	incOnce  sync.Once
	incState *inc.State
}

// engineOptions is the resolved option set of one Engine.
type engineOptions struct {
	workers int
	group   GroupParams
	// grouper, when non-nil, replaces the built-in sharded threshold
	// grouper as the pipeline's entry stage (WithGrouper).
	grouper Grouper
	// placement is the greedy scheduler's placement order
	// (WithPlacement); placeMeasure ranks offers for the
	// flexibility-aware orders (WithPlacementMeasure).
	placement    ScheduleOrder
	placeMeasure Measure
	safe         bool
	peakCap      int64
	errMode      ErrorMode
	norm         Norm
	// incremental switches Pipeline to the stateful cached path
	// (WithIncremental); incThreshold is its dirty-fraction fallback
	// bound (WithIncrementalThreshold, 0 = inc.DefaultThreshold).
	incremental  bool
	incThreshold float64
}

// Option configures an Engine at construction (functional options) —
// and, passed to an Engine method, overrides the engine's option set
// for that one call: eng.Aggregate(ctx, offers, WithGrouping(p)) runs
// one aggregation under grouping p without touching the engine or its
// pool. Per-call overrides are what let a tolerance sweep share one
// engine instead of constructing one per tolerance. A per-call
// WithWorkers caps the call's share of the persistent pool (on a
// serial engine it spins up per-call goroutines instead, since there
// is no pool to share).
type Option func(*engineOptions)

// WithWorkers sizes the engine's persistent worker pool: 0 (the
// default) means one worker per logical CPU, 1 makes the engine fully
// serial (no pool, every method runs on the calling goroutine), and
// larger values pin the pool size.
func WithWorkers(n int) Option {
	return func(o *engineOptions) { o.workers = n }
}

// WithGrouping sets the similarity tolerances of the engine's built-in
// grouper — the parallel sharded threshold strategy Aggregate and
// Pipeline partition offers with, whose output is bit-identical to the
// serial aggregate.Group for every worker count. The default is the
// zero GroupParams (identical earliest starts and time flexibilities
// per group, unbounded group size). WithGrouping maps onto WithGrouper:
// it (re)selects the built-in grouper under p, replacing any custom
// Grouper installed earlier in the option list.
func WithGrouping(p GroupParams) Option {
	return func(o *engineOptions) {
		o.group = p
		o.grouper = nil
	}
}

// WithGrouper installs a custom grouping strategy as the pipeline's
// entry stage: Aggregate and Pipeline hand the offers to g and
// aggregate whatever partition it returns. The grouping package ships
// the strategies — grouping.Sharded (the default, attach the engine's
// Executor for pool-backed packing), grouping.Threshold,
// grouping.Balance — and aggregate.Optimizer adapts the loss-bounded
// optimizing strategy. A grouper that also implements grouping.Streamer
// (as Sharded does) lets Pipeline start aggregating the first shard's
// groups while later shards are still being packed. The Grouper must be
// safe for concurrent use; the engine shares it across calls.
func WithGrouper(g Grouper) Option {
	return func(o *engineOptions) { o.grouper = g }
}

// WithPlacement selects the greedy scheduler's placement order for
// Schedule and Pipeline — the option that retires the deprecated
// options-taking Schedule free function for every order except
// OrderRandom (which needs a caller-owned rand source and stays with
// the sched options). Pipeline streams placements and therefore
// supports OrderArrival only; other orders make it fail with
// sched.ErrStreamOrder. The default is OrderArrival.
func WithPlacement(order ScheduleOrder) Option {
	return func(o *engineOptions) { o.placement = order }
}

// WithPlacementMeasure sets the flexibility measure ranking offers for
// the flexibility-aware placement orders (OrderLeastFlexibleFirst,
// OrderMostFlexibleFirst). The default is the paper's vector measure.
// The measure must be safe for concurrent use — every measure in this
// library is.
func WithPlacementMeasure(m Measure) Option {
	return func(o *engineOptions) { o.placeMeasure = m }
}

// WithSafe makes Aggregate and Pipeline tighten every constituent's
// totals into its slice bounds before aggregating (AggregateSafe),
// guaranteeing that every valid aggregate assignment disaggregates.
func WithSafe(safe bool) Option {
	return func(o *engineOptions) { o.safe = safe }
}

// WithPeakCap sets a soft peak cap: Schedule and Pipeline treat |load|
// above the cap as prohibitively expensive — the paper's DSO congestion
// management. The cap is soft: when the fleet's mandatory energy cannot
// fit under it, a schedule is still produced with the overage
// minimised. 0 (the default) disables the cap.
func WithPeakCap(cap int64) Option {
	return func(o *engineOptions) { o.peakCap = cap }
}

// WithIncremental switches Pipeline (and PipelineRouted on a sharded
// engine) to incremental continuous scheduling: the engine keeps a
// content-addressed cache of each group's aggregate and placement
// across calls, so a call after a small fleet delta re-aggregates and
// re-places only the groups whose membership changed — O(changed
// groups) instead of O(fleet) — and replays the rest with O(profile)
// integer adds. The output is bit-identical to the stateless pipeline
// for every churn sequence, shard count and worker count (the
// equivalence property test pins this); the stateless path remains the
// oracle. Incremental runs serialize on the engine's cache; the
// stateless stages still fan out across the worker pool. Only
// OrderArrival placement is supported, exactly like the streaming
// pipeline.
func WithIncremental(on bool) Option {
	return func(o *engineOptions) { o.incremental = on }
}

// WithIncrementalThreshold sets the dirty-fraction fallback bound of
// incremental scheduling: when more than this fraction of groups
// changed since the last call, the run re-places everything instead of
// maintaining the reuse bookkeeping (cached aggregates are still
// reused). 0 selects inc.DefaultThreshold (0.5); 1 never falls back.
// The fallback changes cost only, never output.
func WithIncrementalThreshold(frac float64) Option {
	return func(o *engineOptions) { o.incThreshold = frac }
}

// WithErrorMode selects first-error or collect-all failure reporting
// for the per-group stages (Aggregate, Pipeline, Disaggregate). The
// default is FirstError.
func WithErrorMode(m ErrorMode) Option {
	return func(o *engineOptions) { o.errMode = m }
}

// WithNorm selects the norm (L1, L2, LInf) the vector and series
// measures use in Measures. The default is L1, matching AllMeasures.
func WithNorm(n Norm) Option {
	return func(o *engineOptions) { o.norm = n }
}

// New returns a long-lived Engine configured by the options. Unless
// WithWorkers(1) made it serial, the engine starts its worker pool
// immediately; the pool persists across calls until Close.
func New(opts ...Option) *Engine {
	e := &Engine{opts: engineOptions{norm: L1}}
	for _, opt := range opts {
		opt(&e.opts)
	}
	if e.opts.norm == 0 {
		e.opts.norm = L1
	}
	if e.opts.workers != 1 {
		e.pool = pool.New(e.opts.workers)
	}
	return e
}

// Workers reports the engine's resolved worker count (1 for a serial
// engine).
func (e *Engine) Workers() int {
	if e.pool == nil {
		return 1
	}
	return e.pool.Workers()
}

// Close releases the engine's worker pool. Calls already in flight
// complete; calls made after Close still work, degraded to the calling
// goroutine. Close is idempotent.
func (e *Engine) Close() { e.pool.Close() }

// Executor exposes the engine's persistent worker pool as an Executor,
// for subsystems that shard their own index-addressed work across it —
// the flexd service's NDJSON decode shards submit here. It is nil for
// a serial engine, which every Executor consumer treats as per-call
// spin-up.
func (e *Engine) Executor() Executor {
	if e.pool == nil {
		return nil
	}
	return e.pool
}

// PoolStats reports the pool's size and how many of its workers are
// executing a task right now — the occupancy gauge flexd's /metrics
// endpoint exports. A serial engine reports (1, 0).
func (e *Engine) PoolStats() (workers, busy int) {
	if e.pool == nil {
		return 1, 0
	}
	return e.pool.Workers(), e.pool.Busy()
}

// resolve returns the engine's option set with per-call overrides
// applied. The engine's own options are copied by value, so a call
// never mutates the engine.
func (e *Engine) resolve(opts []Option) engineOptions {
	o := e.opts
	for _, opt := range opts {
		opt(&o)
	}
	if o.norm == 0 {
		o.norm = L1
	}
	return o
}

// optionsOf lifts a legacy Config into the engine's option shape — the
// inverse bridge the deprecated shims enter the shared pipeline
// through. A Config carries no grouper or placement, so the lifted set
// uses the built-in grouper and arrival order, exactly what the legacy
// entry points always did.
func optionsOf(cfg Config) engineOptions {
	return engineOptions{
		workers: cfg.Workers,
		group:   cfg.Group,
		safe:    cfg.Safe,
		peakCap: cfg.PeakCap,
		errMode: cfg.ErrorMode,
		norm:    L1,
	}
}

// parallelParams attaches the engine's pool to per-call parallel
// params: pp.Workers == 1 stays serial (matching the legacy contract
// that 1 forces the serial path); anything else submits to the
// persistent pool, with pp.Workers capping this call's share of it.
func (e *Engine) parallelParams(pp ParallelParams) ParallelParams {
	// The nil check on e.pool matters: wrapping a nil *pool.Pool in the
	// Executor interface would make pp.Pool non-nil and silently
	// serialize the call instead of falling back to per-call spin-up.
	if pp.Workers != 1 && pp.Pool == nil && e.pool != nil {
		pp.Pool = e.pool
	}
	return pp
}

// grouper resolves the option set's grouping strategy: the custom
// Grouper when one is installed, otherwise the built-in parallel
// sharded threshold grouper over the engine's pool — whose output is
// bit-identical to the serial aggregate.Group, so switching an engine
// between worker counts (or to a serial engine) never changes the
// partition.
func (e *Engine) grouper(o engineOptions) Grouper {
	if o.grouper != nil {
		return o.grouper
	}
	return &grouping.Sharded{Params: o.group, Pool: e.Executor(), Workers: o.workers}
}

// Aggregate partitions the offers with the engine's grouper — the
// parallel sharded threshold strategy unless WithGrouper installed
// another — and aggregates every group on the worker pool (Scenario 1's
// aggregation stage). The result is identical to the serial
// AggregateAll in the same group order for every engine configuration;
// per-group failures are reported under the engine's error mode.
// Options override the engine's option set for this call only — e.g.
// Aggregate(ctx, offers, WithGrouping(p)) sweeps a tolerance without
// constructing a second engine.
func (e *Engine) Aggregate(ctx context.Context, offers []*FlexOffer, opts ...Option) ([]*Aggregated, error) {
	o := e.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	groups, err := e.grouper(o).Group(ctx, offers)
	if err != nil {
		return nil, err
	}
	return e.aggregateGroups(ctx, groups, o)
}

// AggregateGroups aggregates pre-computed groups — the output of
// GroupOffers, BalanceGroups or OptimizeGroups — on the worker pool,
// preserving group order, for callers whose partitioning strategy is
// not the engine's grouper. WithSafe (engine-level or per-call) selects
// safe aggregation; failures are reported under the error mode exactly
// like Aggregate.
func (e *Engine) AggregateGroups(ctx context.Context, groups [][]*FlexOffer, opts ...Option) ([]*Aggregated, error) {
	o := e.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.aggregateGroups(ctx, groups, o)
}

// aggregateGroups fans the aggregation of a materialized partition out
// across the pool under the resolved option set.
func (e *Engine) aggregateGroups(ctx context.Context, groups [][]*FlexOffer, o engineOptions) ([]*Aggregated, error) {
	pp := e.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
	if o.safe {
		return aggregate.AggregateGroupsSafeParallel(ctx, groups, pp)
	}
	return aggregate.AggregateGroupsParallel(ctx, groups, pp)
}

// aggregateWith is aggregation under an explicit legacy Config — the
// implementation behind the deprecated AggregateWithConfig shim, kept
// on the exact legacy code path (serial grouping, serial fast path for
// one first-error worker); Engine.Aggregate itself enters through the
// grouper. Both produce bit-identical output — the equivalence tests
// pin it.
func (e *Engine) aggregateWith(ctx context.Context, offers []*FlexOffer, cfg Config) ([]*Aggregated, error) {
	// The Workers == 1 fast path skips the per-group error slots, which
	// is only legal in first-error mode: collect-all must keep
	// aggregating past failures, so it goes through the slot machinery
	// below (with one worker that machinery still runs inline on the
	// calling goroutine, in group order).
	if cfg.Workers == 1 && cfg.ErrorMode == FirstError {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.Safe {
			return aggregate.AggregateAllSafe(offers, cfg.Group)
		}
		return aggregate.AggregateAll(offers, cfg.Group)
	}
	pp := e.parallelParams(ParallelParams{Workers: cfg.Workers, ErrorMode: cfg.ErrorMode})
	if cfg.Safe {
		return aggregate.AggregateAllSafeParallel(ctx, offers, cfg.Group, pp)
	}
	return aggregate.AggregateAllParallelCtx(ctx, offers, cfg.Group, pp)
}

// Schedule greedily assigns every offer a start time and energy values
// so the total load tracks the target series, using the incremental
// candidate evaluator, the engine's peak cap (overridable per call with
// WithPeakCap), and the engine's placement order (WithPlacement, with
// WithPlacementMeasure ranking offers for the flexibility-aware
// orders). OrderRandom needs a caller-owned rand source and therefore
// stays with the deprecated options-taking Schedule function.
func (e *Engine) Schedule(ctx context.Context, offers []*FlexOffer, target Series, opts ...Option) (*ScheduleResult, error) {
	o := e.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, obs.StageSchedule)
	defer sp.End()
	return sched.Schedule(offers, target, sched.Options{
		PeakCap: o.peakCap,
		Order:   o.placement,
		Measure: o.placeMeasure,
	})
}

// Improve refines a schedule by local search: each round re-places one
// offer at a time against the residual target and keeps moves that
// lower the L1 imbalance, until a full sweep makes no improvement or
// maxRounds is reached (0: until convergence). It runs on the
// incremental evaluator, so each re-placement is O(profile) rather
// than O(horizon) per candidate. Improve minimises imbalance only; the
// engine's peak cap does not constrain it.
func (e *Engine) Improve(ctx context.Context, offers []*FlexOffer, target Series, res *ScheduleResult, maxRounds int) (*ScheduleResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sched.Improve(offers, target, res, maxRounds)
}

// Pipeline runs the paper's full Scenario-1 chain — group → aggregate →
// schedule → disaggregate — as one streaming pipeline on the engine's
// worker pool, entered through the engine's grouper: the sharded
// grouper streams each shard's groups to the aggregation workers as
// soon as the shard is packed, each finished aggregate is handed
// straight to the scheduler, which places it as soon as its group index
// is next, and the scheduled aggregates are disaggregated by the same
// workers. No stage waits for the previous one to finish its whole
// batch. The result is identical to the materialized sequence Aggregate
// → Schedule (arrival order) → Disaggregate for every engine
// configuration, and the engine's peak cap applies exactly as in
// Schedule. Options override the engine's option set for this call
// only.
func (e *Engine) Pipeline(ctx context.Context, offers []*FlexOffer, target Series, opts ...Option) (*PipelineResult, error) {
	return e.pipeline(ctx, offers, target, e.resolve(opts))
}

// pipelineWith is Pipeline under an explicit legacy Config — the bridge
// the deprecated SchedulePipeline shim enters through.
func (e *Engine) pipelineWith(ctx context.Context, offers []*FlexOffer, target Series, cfg Config) (*PipelineResult, error) {
	return e.pipeline(ctx, offers, target, optionsOf(cfg))
}

// pipeline is the streaming chain under a resolved option set.
func (e *Engine) pipeline(ctx context.Context, offers []*FlexOffer, target Series, o engineOptions) (*PipelineResult, error) {
	// The streaming scheduler supports arrival order only; fail before
	// grouping and aggregating a whole fleet whose schedule can never
	// start. ScheduleStream re-checks, so the two cannot drift.
	if o.placement != OrderArrival {
		return nil, sched.ErrStreamOrder
	}
	if o.incremental {
		return e.pipelineIncremental(ctx, offers, target, o)
	}
	// Cancelling on return releases the grouping and aggregation workers
	// if scheduling or disaggregation aborts early.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	pp := e.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
	g := e.grouper(o)
	var (
		items <-chan AggregateStreamItem
		n     int
	)
	if sg, ok := g.(grouping.Streamer); ok {
		// Streaming entry: aggregation of the first shard's groups
		// overlaps the packing of later shards; the group count arrives
		// once the grouper has seen the whole input.
		var nch <-chan int
		if o.safe {
			items, nch = aggregate.AggregateGrouperSafeStream(ctx, offers, sg, pp)
		} else {
			items, nch = aggregate.AggregateGrouperStream(ctx, offers, sg, pp)
		}
		got, ok := <-nch
		if !ok {
			// The grouper stopped before the count was known; only a
			// cancelled ctx does that.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, errors.New("flex: grouping stream ended before the group count was known")
		}
		n = got
	} else {
		// A grouper without a streaming side (custom strategies,
		// fallible ones) materializes its partition first.
		groups, err := g.Group(ctx, offers)
		if err != nil {
			return nil, err
		}
		if o.safe {
			items, n = aggregate.AggregateGroupsSafeStream(ctx, groups, pp)
		} else {
			items, n = aggregate.AggregateGroupsStream(ctx, groups, pp)
		}
	}
	sr, err := sched.ScheduleStream(ctx, items, n, target, sched.Options{PeakCap: o.peakCap, Order: o.placement})
	if err != nil {
		return nil, err
	}
	// ScheduleStream returns once the last group is placed; the
	// producer closes the stream (ending its aggregate span first)
	// just after delivering it. Draining the already-exhausted channel
	// waits for that close, so a finished trace never reports the
	// aggregation stage of a successful pipeline as still running.
	for range items {
	}
	obs.AddGroups(ctx, n)
	if err := ctx.Err(); err != nil {
		// A cancellation racing the end of the group stream could
		// deliver a truncated-but-consistent prefix; never present one
		// as a complete schedule.
		return nil, err
	}
	parts, err := aggregate.DisaggregateAllParallel(ctx, sr.Aggregates, sr.Assignments, pp)
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Aggregates:        sr.Aggregates,
		AggregateSchedule: &sr.Result,
		Disaggregated:     parts,
		Load:              sr.Load,
	}, nil
}

// incrementalState returns the engine's incremental cache, creating it
// on first use.
func (e *Engine) incrementalState() *inc.State {
	e.incOnce.Do(func() { e.incState = inc.NewState() })
	return e.incState
}

// IncrementalStats reports the incremental-scheduling cache statistics
// (all zero when WithIncremental was never used).
func (e *Engine) IncrementalStats() inc.Stats {
	return e.incrementalState().Stats()
}

// InvalidateIncremental drops the incremental-scheduling cache — the
// hook a store reset calls. The next incremental Pipeline call runs
// full and rebuilds it. Never needed for correctness (the cache is
// content-addressed), only to release memory promptly.
func (e *Engine) InvalidateIncremental() {
	e.incrementalState().Invalidate()
}

// pipelineIncremental is the stateful cached pipeline behind
// WithIncremental: materialize the partition (grouping always runs —
// it is a cheap integer sort and the source of group identity), key
// every group against the cache, aggregate only the misses on the
// worker pool, merge-walk the placement, and disaggregate only the
// groups whose assignment changed. Bit-identical to the streaming
// stateless path for every input.
func (e *Engine) pipelineIncremental(ctx context.Context, offers []*FlexOffer, target Series, o engineOptions) (*PipelineResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	groups, err := e.grouper(o).Group(ctx, offers)
	if err != nil {
		return nil, err
	}
	obs.AddGroups(ctx, len(groups))
	pp := e.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
	res, err := e.incrementalState().Run(ctx, groups, target,
		inc.Config{PeakCap: o.peakCap, Safe: o.safe, Threshold: o.incThreshold},
		func(ctx context.Context, gs [][]*FlexOffer) ([]*Aggregated, error) {
			return e.aggregateGroups(ctx, gs, o)
		},
		func(ctx context.Context, ags []*Aggregated, asgs []Assignment) ([][]Assignment, error) {
			return aggregate.DisaggregateAllParallel(ctx, ags, asgs, pp)
		})
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Aggregates:        res.Aggregates,
		AggregateSchedule: &sched.Result{Assignments: res.Assignments, Load: res.Load},
		Disaggregated:     res.Disaggregated,
		Load:              res.Load,
	}, nil
}

// Disaggregate maps scheduled aggregate assignments back to their
// constituents on the worker pool: assignments[i] must be valid for
// ags[i].Offer, and the result holds one assignment per constituent in
// constituent order. Failures are reported under the engine's error
// mode (overridable per call with WithErrorMode), keyed by aggregate
// index.
func (e *Engine) Disaggregate(ctx context.Context, ags []*Aggregated, assignments []Assignment, opts ...Option) ([][]Assignment, error) {
	o := e.resolve(opts)
	pp := e.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
	return aggregate.DisaggregateAllParallel(ctx, ags, assignments, pp)
}

// MeasureTable is Engine.Measures' output: the paper's eight measures
// (Table 1 column order) evaluated over a set of offers.
type MeasureTable struct {
	// Names holds the measure names, Table 1 column order.
	Names []string
	// Values[i][j] is measure j evaluated on offer i; NaN where the
	// measure is undefined for the offer (e.g. the relative area
	// measure on a mixed offer).
	Values [][]float64
	// Set[j] is measure j's set-level value over all offers; NaN where
	// undefined.
	Set []float64
}

// Measures evaluates the paper's eight flexibility measures on every
// offer — the vector and series measures under the engine's norm,
// overridable per call with WithNorm — plus the set-level values,
// fanning the offers across the worker pool. Undefined values are
// reported as NaN rather than failing the batch.
func (e *Engine) Measures(ctx context.Context, offers []*FlexOffer, opts ...Option) (*MeasureTable, error) {
	o := e.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ms := measureSet(o.norm)
	t := &MeasureTable{
		Names:  make([]string, len(ms)),
		Values: make([][]float64, len(offers)),
		Set:    make([]float64, len(ms)),
	}
	for j, m := range ms {
		t.Names[j] = m.Name()
	}
	done := ctx.Done()
	e.runIndexed(len(offers), func(i int) {
		select {
		case <-done:
			return
		default:
		}
		row := make([]float64, len(ms))
		for j, m := range ms {
			v, err := m.Value(offers[i])
			if err != nil {
				v = math.NaN()
			}
			row[j] = v
		}
		t.Values[i] = row
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for j, m := range ms {
		v, err := m.SetValue(offers)
		if err != nil {
			v = math.NaN()
		}
		t.Set[j] = v
	}
	return t, nil
}

// measureSet is AllMeasures with the given norm applied to the vector
// and series measures (keeping the aligned series variant, whose
// behaviour matches every Table 1 cell).
func measureSet(n Norm) []Measure {
	return []Measure{
		core.TimeMeasure{},
		core.EnergyMeasure{},
		core.ProductMeasure{},
		core.VectorMeasure{NormKind: timeseries.Norm(n)},
		core.SeriesMeasure{NormKind: timeseries.Norm(n), Aligned: true},
		core.AssignmentsMeasure{},
		core.AbsoluteAreaMeasure{},
		core.RelativeAreaMeasure{},
	}
}

// runIndexed fans fn(i) over [0, n) across the engine's pool, or runs
// it inline on a serial engine.
func (e *Engine) runIndexed(n int, fn func(int)) {
	if e.pool != nil {
		e.pool.ForEach(n, 0, 0, fn)
		return
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// The default engine behind the deprecated free functions: created
// lazily on first use with default options, never closed. Its pool is
// shared by every shim call, so legacy callers get the persistent-pool
// execution model without code changes.
var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the lazily-created, process-wide engine the
// deprecated free functions route through. Prefer constructing your own
// Engine with New — it gives you option control and a Close — but the
// default engine is the right tool for one-off calls in short programs.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New() })
	return defaultEngine
}
