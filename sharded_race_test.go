package flex

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flexmeasures/internal/shard"
	"flexmeasures/internal/timeseries"
)

// TestShardedEngineHammer drives one ShardedEngine from 12 goroutines
// mixing ingest-style store mutation with schedule/aggregate/measure
// calls — the -race exercise for the scatter-gather machinery and the
// copy-on-write shard store it serves. Correctness of results is
// pinned elsewhere (TestShardedEngineMatchesEngine); this test is
// about the absence of data races and deadlocks under churn, plus the
// invariant that every call sees a consistent snapshot (never a torn
// one: result sizes must match the snapshot the call took).
func TestShardedEngineHammer(t *testing.T) {
	se := NewSharded(4, WithWorkers(2), WithSafe(true),
		WithGrouping(GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}))
	defer se.Close()
	stores := shard.NewStores(shard.Router{Shards: se.Shards()})
	target := timeseries.Constant(0, 48, 20)

	const goroutines = 12
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for it := 0; it < iters; it++ {
				switch it % 3 {
				case 0: // ingest: half fresh offers, half re-submissions
					batch := make([]*FlexOffer, 0, 8)
					for i := 0; i < 8; i++ {
						est := rng.Intn(40)
						f := &FlexOffer{
							ID:            fmt.Sprintf("g%d-p%d", g, rng.Intn(40)),
							Zone:          fmt.Sprintf("z%d", rng.Intn(5)),
							EarliestStart: est,
							LatestStart:   est + rng.Intn(6),
							Slices: []Slice{
								{Min: 0, Max: int64(1 + rng.Intn(5))},
								{Min: 1, Max: int64(2 + rng.Intn(5))},
							},
						}
						f.TotalMin, f.TotalMax = f.SumMin(), f.SumMax()
						batch = append(batch, f)
					}
					stores.Add(batch)
				case 1: // scatter-gather schedule over the current snapshot
					parts := stores.Snapshot()
					n := 0
					for _, p := range parts {
						n += len(p)
					}
					if n == 0 {
						continue
					}
					res, err := se.PipelineRouted(context.Background(), parts, target)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d iter %d: pipeline: %w", g, it, err)
						return
					}
					got := 0
					for _, ps := range res.Disaggregated {
						got += len(ps)
					}
					if got != n {
						errs <- fmt.Errorf("goroutine %d iter %d: %d assignments for %d stored offers", g, it, got, n)
						return
					}
				case 2: // aggregate + measures over the current snapshot
					parts := stores.Snapshot()
					n := 0
					for _, p := range parts {
						n += len(p)
					}
					if n == 0 {
						continue
					}
					ags, err := se.AggregateRouted(context.Background(), parts)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d iter %d: aggregate: %w", g, it, err)
						return
					}
					total := 0
					for _, ag := range ags {
						total += len(ag.Constituents)
					}
					if total != n {
						errs <- fmt.Errorf("goroutine %d iter %d: %d constituents for %d stored offers", g, it, total, n)
						return
					}
					tab, err := se.MeasuresRouted(context.Background(), parts)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d iter %d: measures: %w", g, it, err)
						return
					}
					if len(tab.Values) != n {
						errs <- fmt.Errorf("goroutine %d iter %d: %d measure rows for %d offers", g, it, len(tab.Values), n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
