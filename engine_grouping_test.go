package flex

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"flexmeasures/internal/grouping"
	"flexmeasures/internal/sched"
)

// TestEngineShardedGrouperForced drives the engine's aggregation
// through the full sharding machinery (MinOffers: -1 disables the
// small-input fallback) and requires the output to stay bit-identical
// to the serial free function for every worker count — the acceptance
// criterion at the engine level.
func TestEngineShardedGrouperForced(t *testing.T) {
	offers, _ := engineTestFleet(t, 400)
	want, err := AggregateAll(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		eng := New(WithWorkers(workers), WithGrouping(engineTestGroup))
		g := &ShardedGrouper{Params: engineTestGroup, Pool: eng.Executor(), Workers: workers, MinOffers: -1}
		got, err := eng.Aggregate(context.Background(), offers, WithGrouper(g))
		eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: forced-sharded Engine.Aggregate diverged from AggregateAll", workers)
		}
	}
}

// TestEngineWithGrouperBalance installs the balance-aware strategy as
// the engine's grouper and checks it against the explicit
// BalanceGroups → AggregateGroups route.
func TestEngineWithGrouperBalance(t *testing.T) {
	offers, _ := engineTestFleet(t, 150)
	bp := BalanceParams{ESTTolerance: 24, MaxGroupSize: 12}
	eng := New(WithWorkers(2), WithGrouper(BalanceGrouper{Params: bp}))
	defer eng.Close()
	want, err := eng.AggregateGroups(context.Background(), BalanceGroups(offers, bp))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Aggregate(context.Background(), offers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("WithGrouper(Balance) diverged from BalanceGroups → AggregateGroups")
	}
	// WithGrouping as a per-call override replaces the custom grouper.
	wantThreshold, err := AggregateAll(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	gotThreshold, err := eng.Aggregate(context.Background(), offers, WithGrouping(engineTestGroup))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantThreshold, gotThreshold) {
		t.Fatal("per-call WithGrouping did not replace the engine's custom grouper")
	}
}

// TestEnginePipelineGrouperBranches checks that the pipeline's two
// entry branches — the streaming grouper (the default sharded one) and
// a materialize-first custom grouper with the same partition — produce
// bit-identical results, which also pins the new streaming entry
// against the legacy SchedulePipeline output.
func TestEnginePipelineGrouperBranches(t *testing.T) {
	offers, target := engineTestFleet(t, 300)
	want, err := SchedulePipeline(context.Background(), offers, target,
		Config{Group: engineTestGroup, Workers: 1, Safe: true, PeakCap: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		eng := New(WithWorkers(workers), WithGrouping(engineTestGroup), WithSafe(true), WithPeakCap(40))
		streaming, err := eng.Pipeline(context.Background(), offers, target)
		if err != nil {
			eng.Close()
			t.Fatalf("workers=%d streaming: %v", workers, err)
		}
		materialized, err := eng.Pipeline(context.Background(), offers, target,
			WithGrouper(ThresholdGrouper{Params: engineTestGroup}))
		eng.Close()
		if err != nil {
			t.Fatalf("workers=%d materialized: %v", workers, err)
		}
		if !reflect.DeepEqual(want, streaming) {
			t.Fatalf("workers=%d: streaming-grouper Pipeline diverged from SchedulePipeline", workers)
		}
		if !reflect.DeepEqual(want, materialized) {
			t.Fatalf("workers=%d: materialized-grouper Pipeline diverged from SchedulePipeline", workers)
		}
	}
}

// TestEnginePlacement pins WithPlacement/WithPlacementMeasure against
// the options-taking sched route they retire, and the documented
// streaming restriction on Pipeline.
func TestEnginePlacement(t *testing.T) {
	offers, target := engineTestFleet(t, 120)
	eng := New(WithWorkers(2), WithGrouping(engineTestGroup), WithSafe(true))
	defer eng.Close()
	for _, order := range []ScheduleOrder{OrderArrival, OrderLeastFlexibleFirst, OrderMostFlexibleFirst} {
		want, err := sched.Schedule(offers, target, sched.Options{Order: order, Measure: VectorMeasure{}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Schedule(context.Background(), offers, target,
			WithPlacement(order), WithPlacementMeasure(VectorMeasure{}))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("order=%v: engine placement diverged from sched options", order)
		}
	}
	// The streaming pipeline supports arrival order only.
	if _, err := eng.Pipeline(context.Background(), offers, target,
		WithPlacement(OrderLeastFlexibleFirst)); !errors.Is(err, sched.ErrStreamOrder) {
		t.Fatalf("Pipeline with ranked placement returned %v, want ErrStreamOrder", err)
	}
}

// TestEngineGroupingConcurrentHammer drives grouping through one engine
// from many goroutines under -race: per-call tolerance overrides,
// forced-sharded groupers on the shared pool, and the full pipeline,
// every result compared against its serial baseline.
func TestEngineGroupingConcurrentHammer(t *testing.T) {
	offers, target := engineTestFleet(t, 200)
	ctx := context.Background()

	tols := []GroupParams{
		{ESTTolerance: 0, TFTolerance: -1},
		{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24},
		{ESTTolerance: 6, TFTolerance: 2},
	}
	wantAgs := make([][]*Aggregated, len(tols))
	for i, gp := range tols {
		ags, err := AggregateAll(offers, gp)
		if err != nil {
			t.Fatal(err)
		}
		wantAgs[i] = ags
	}
	wantPipe, err := SchedulePipeline(ctx, offers, target,
		Config{Group: engineTestGroup, Workers: 1, Safe: true})
	if err != nil {
		t.Fatal(err)
	}

	eng := New(WithWorkers(4), WithGrouping(engineTestGroup), WithSafe(true))
	defer eng.Close()

	const goroutines = 12
	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(tols)
				switch (g + r) % 3 {
				case 0:
					// Per-call tolerance override through the default
					// sharded grouper.
					got, err := eng.Aggregate(ctx, offers, WithGrouping(tols[i]), WithSafe(false))
					if err != nil {
						t.Errorf("Aggregate: %v", err)
						return
					}
					if !reflect.DeepEqual(wantAgs[i], got) {
						t.Errorf("concurrent grouped Aggregate diverged (tol set %d)", i)
						return
					}
				case 1:
					// Forced sharding on the shared pool.
					sg := &ShardedGrouper{Params: tols[i], Pool: eng.Executor(), MinOffers: -1}
					got, err := eng.Aggregate(ctx, offers, WithGrouper(sg), WithSafe(false))
					if err != nil {
						t.Errorf("sharded Aggregate: %v", err)
						return
					}
					if !reflect.DeepEqual(wantAgs[i], got) {
						t.Errorf("concurrent forced-sharded Aggregate diverged (tol set %d)", i)
						return
					}
				case 2:
					got, err := eng.Pipeline(ctx, offers, target)
					if err != nil {
						t.Errorf("Pipeline: %v", err)
						return
					}
					if !reflect.DeepEqual(wantPipe, got) {
						t.Error("concurrent grouper-entered Pipeline diverged")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEngineGrouperStreamCancelled checks that cancelling mid-pipeline
// surfaces the context error rather than a truncated result.
func TestEngineGrouperStreamCancelled(t *testing.T) {
	offers, target := engineTestFleet(t, 200)
	eng := New(WithWorkers(2), WithGrouping(engineTestGroup), WithSafe(true))
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Pipeline(ctx, offers, target); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Pipeline returned %v, want context.Canceled", err)
	}
}

// Compile-time check: the default grouper streams, so the pipeline's
// streaming entry is exercised by every default-configured engine.
var _ grouping.Streamer = (*ShardedGrouper)(nil)
