module flexmeasures

go 1.22
