package flex

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"flexmeasures/internal/shard"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// churnStore drives a shard store through a deterministic churn round:
// a few offers re-submitted under their existing IDs (replace), a few
// new arrivals, a few deletions — the steady-state traffic incremental
// scheduling exists for.
func churnStore(t *testing.T, rng *rand.Rand, stores *shard.Stores, next *int, replaces, adds, deletes int) {
	t.Helper()
	parts := stores.Snapshot()
	var ids []string
	for _, p := range parts {
		for _, e := range p {
			if e.Offer.ID != "" {
				ids = append(ids, e.Offer.ID)
			}
		}
	}
	var batch []*FlexOffer
	if replaces > 0 && len(ids) > 0 {
		repl, err := workload.Population(rng, replaces, 2, workload.DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range repl {
			f.ID = ids[rng.Intn(len(ids))]
		}
		batch = append(batch, repl...)
	}
	if adds > 0 {
		added, err := workload.Population(rng, adds, 2, workload.DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range added {
			*next++
			f.ID = fmt.Sprintf("churn-%05d", *next)
		}
		batch = append(batch, added...)
	}
	if len(batch) > 0 {
		stores.Add(batch)
	}
	if deletes > 0 && len(ids) > deletes {
		del := make([]string, 0, deletes)
		for len(del) < deletes {
			del = append(del, ids[rng.Intn(len(ids))])
		}
		stores.Delete(del)
	}
}

// TestIncrementalEquivalence is the tentpole's bit-identity property
// test: across churn sequences × shard counts × worker counts, a
// persistent WithIncremental engine — whose cache survives from round
// to round — produces PipelineResults DeepEqual to a stateless full
// recompute of the same snapshot. Target and cap changes, the
// dirty-fraction fallback, and the plain Engine surface are exercised
// too.
func TestIncrementalEquivalence(t *testing.T) {
	gp := GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 16}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("shards=%d,workers=%d", shards, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(100*shards + workers)))
				opts := []Option{WithWorkers(workers), WithSafe(true), WithGrouping(gp), WithPeakCap(55)}
				incSE := NewSharded(shards, append([]Option{WithIncremental(true)}, opts...)...)
				defer incSE.Close()
				oracle := NewSharded(shards, opts...)
				defer oracle.Close()
				incEng := New(append([]Option{WithIncremental(true)}, opts...)...)
				defer incEng.Close()

				stores := shard.NewStores(shard.Router{Shards: shards})
				base := shardedFleet(t, int64(shards), 300, 4)
				stores.Add(base)
				next := 0

				for round := 0; round < 8; round++ {
					switch round {
					case 0, 2, 6:
						// No churn: rounds 2 and 6 exercise the all-reused
						// replay fast path.
					case 4:
						// Heavy churn: trip the dirty-fraction fallback.
						churnStore(t, rng, stores, &next, 120, 60, 40)
					default:
						churnStore(t, rng, stores, &next, 3, 2, 1)
					}
					target := timeseries.Constant(0, 96, 40)
					callOpts := []Option{}
					if round == 3 {
						// Replay with dirty groups and the fallback disabled:
						// the retire/re-place walk must still be exact.
						callOpts = append(callOpts, WithIncrementalThreshold(1))
					}
					if round >= 5 {
						// Target change at round 5: placements invalidate,
						// aggregates stay cached; round 6 then replays
						// against the new target.
						target = timeseries.Constant(0, 96, 25)
					}
					if round == 7 {
						callOpts = append(callOpts, WithPeakCap(70), WithIncrementalThreshold(1))
					}
					parts := stores.Snapshot()
					want, err := oracle.PipelineRouted(context.Background(), parts, target, callOpts...)
					if err != nil {
						t.Fatalf("round %d: oracle: %v", round, err)
					}
					got, err := incSE.PipelineRouted(context.Background(), parts, target, callOpts...)
					if err != nil {
						t.Fatalf("round %d: incremental: %v", round, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: incremental sharded pipeline differs from full recompute", round)
					}
					gotEng, err := incEng.Pipeline(context.Background(), shard.Flatten(parts), target, callOpts...)
					if err != nil {
						t.Fatalf("round %d: incremental engine: %v", round, err)
					}
					if !reflect.DeepEqual(gotEng, want) {
						t.Fatalf("round %d: incremental single-engine pipeline differs from full recompute", round)
					}
				}
				st := incSE.IncrementalStats()
				if st.Runs != 8 {
					t.Fatalf("runs = %d, want 8", st.Runs)
				}
				if st.Hits == 0 || st.Reused == 0 {
					t.Fatalf("cache never hit: %+v", st)
				}
			})
		}
	}
}

// TestIncrementalNoChurnReusesEverything pins the steady-state claim
// the metrics advertise: with zero mutations between calls, the second
// run recomputes no aggregates and re-places no groups.
func TestIncrementalNoChurnReusesEverything(t *testing.T) {
	se := NewSharded(2, WithWorkers(2), WithSafe(true), WithIncremental(true),
		WithGrouping(GroupParams{ESTTolerance: 2, TFTolerance: -1}))
	defer se.Close()
	stores := shard.NewStores(shard.Router{Shards: 2})
	stores.Add(shardedFleet(t, 7, 200, 3))
	target := timeseries.Constant(0, 48, 30)
	for i := 0; i < 2; i++ {
		if _, err := se.PipelineRouted(context.Background(), stores.Snapshot(), target); err != nil {
			t.Fatal(err)
		}
	}
	st := se.IncrementalStats()
	if st.LastDirty != 0 {
		t.Errorf("second identical run recomputed %d aggregates, want 0", st.LastDirty)
	}
	if st.LastReused != st.LastGroups || st.LastGroups == 0 {
		t.Errorf("second identical run reused %d/%d placements, want all", st.LastReused, st.LastGroups)
	}
}

// clusteredFleet builds a fleet whose earliest starts sit in well-
// separated clusters, so EST-gap cuts partition the grouping into
// segments — the structure that bounds the blast radius of one offer
// change to its own segment's groups.
func clusteredFleet(t *testing.T, seed int64, n, clusters, spacing int) []*FlexOffer {
	t.Helper()
	offers := shardedFleet(t, seed, n, 4)
	for i, f := range offers {
		est := (i % clusters) * spacing
		delta := est - f.EarliestStart
		f.EarliestStart += delta
		f.LatestStart += delta
	}
	return offers
}

// TestIncrementalSmallDeltaDirtiesFewGroups pins the acceptance
// criterion directly at the engine layer: on a fleet with EST-gap
// structure, a ≤1% delta re-aggregates only the changed offers' own
// segments and replays placements for the untouched ones — O(changed
// groups), not O(fleet).
func TestIncrementalSmallDeltaDirtiesFewGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gp := GroupParams{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 16}
	se := NewSharded(4, WithWorkers(2), WithSafe(true), WithIncremental(true), WithGrouping(gp))
	defer se.Close()
	oracle := NewSharded(4, WithWorkers(2), WithSafe(true), WithGrouping(gp))
	defer oracle.Close()
	stores := shard.NewStores(shard.Router{Shards: 4})
	stores.Add(clusteredFleet(t, 13, 500, 8, 12))
	target := timeseries.Constant(0, 120, 40)
	if _, err := se.PipelineRouted(context.Background(), stores.Snapshot(), target); err != nil {
		t.Fatal(err)
	}
	// Re-submit 3 offers (≤1% of 500) under existing IDs.
	repl, err := workload.Population(rng, 3, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range repl {
		// Same EST cluster as the offer being replaced (index 1+3i of the
		// clustered fleet), so each replace perturbs one segment only.
		est := ((1 + 3*i) % 8) * 12
		f.LatestStart += est - f.EarliestStart
		f.EarliestStart = est
		f.ID = fmt.Sprintf("p-%05d", 1+3*i)
	}
	stores.Add(repl)
	parts := stores.Snapshot()
	got, err := se.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("incremental result differs from full recompute after small delta")
	}
	st := se.IncrementalStats()
	if st.LastGroups == 0 {
		t.Fatal("no groups formed")
	}
	if st.LastDirty > st.LastGroups/4 {
		t.Errorf("1%% delta dirtied %d of %d groups", st.LastDirty, st.LastGroups)
	}
	if st.LastReused == 0 {
		t.Errorf("1%% delta reused no placements (groups=%d dirty=%d)", st.LastGroups, st.LastDirty)
	}
}

// TestIncrementalHammer races concurrent schedules against store churn
// and cache invalidation — run under -race in CI. Every snapshot a
// scheduler takes is immutable, so each incremental result must still
// equal a stateless recompute of the same snapshot even while the
// store mutates underneath.
func TestIncrementalHammer(t *testing.T) {
	se := NewSharded(2, WithWorkers(2), WithSafe(true), WithIncremental(true),
		WithGrouping(GroupParams{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 12}))
	defer se.Close()
	oracle := NewSharded(2, WithWorkers(2), WithSafe(true),
		WithGrouping(GroupParams{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 12}))
	defer oracle.Close()
	stores := shard.NewStores(shard.Router{Shards: 2})
	stores.Add(shardedFleet(t, 3, 120, 3))
	target := timeseries.Constant(0, 48, 30)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		next := 0
		for i := 0; i < 25; i++ {
			churnStore(t, rng, stores, &next, 2, 2, 1)
			if i%10 == 9 {
				se.InvalidateIncremental()
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				parts := stores.Snapshot()
				got, err := se.PipelineRouted(context.Background(), parts, target)
				if err != nil {
					t.Errorf("incremental: %v", err)
					return
				}
				want, err := oracle.PipelineRouted(context.Background(), parts, target)
				if err != nil {
					t.Errorf("oracle: %v", err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("incremental result differs from full recompute under churn")
					return
				}
			}
		}()
	}
	wg.Wait()
}
