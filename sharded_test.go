package flex

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// shardedFleet samples a workload population and stamps deterministic
// IDs and (for zones > 0) a skewed zone distribution onto it, so the
// router exercises all three key paths: zone, ID hash, round-robin.
func shardedFleet(t *testing.T, seed int64, n, zones int) []*FlexOffer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	offers, err := workload.Population(rng, n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		switch i % 5 {
		case 0: // anonymous: routed round-robin
		default:
			f.ID = fmt.Sprintf("p-%05d", i)
		}
		if zones > 0 && i%3 != 0 {
			f.Zone = fmt.Sprintf("z%02d", rng.Intn(zones))
		}
	}
	return offers
}

// TestShardedEngineMatchesEngine is the PR's bit-identity property
// test: for every shard count × worker count × input permutation, the
// scatter-gather pipeline (and aggregation and measures) over the
// partitioned population equals a single engine's output on the same
// input, DeepEqual-exact.
func TestShardedEngineMatchesEngine(t *testing.T) {
	base := shardedFleet(t, 41, 400, 5)
	horizon := 96
	target := timeseries.Constant(0, horizon, 40)
	groupings := []GroupParams{
		{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 32},
		{ESTTolerance: 0, TFTolerance: 0},
	}
	permRng := rand.New(rand.NewSource(42))
	for _, workers := range []int{1, 2, 3} {
		for gi, gp := range groupings {
			opts := []Option{WithWorkers(workers), WithSafe(true), WithGrouping(gp), WithPeakCap(55)}
			eng := New(opts...)
			for perm := 0; perm < 3; perm++ {
				offers := append([]*FlexOffer(nil), base...)
				if perm > 0 {
					permRng.Shuffle(len(offers), func(i, j int) {
						offers[i], offers[j] = offers[j], offers[i]
					})
				}
				want, err := eng.Pipeline(context.Background(), offers, target)
				if err != nil {
					t.Fatalf("workers=%d gp=%d perm=%d: single engine: %v", workers, gi, perm, err)
				}
				wantAgs, err := eng.Aggregate(context.Background(), offers)
				if err != nil {
					t.Fatal(err)
				}
				wantTab, err := eng.Measures(context.Background(), offers)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 4, 8} {
					se := NewSharded(shards, opts...)
					got, err := se.Pipeline(context.Background(), offers, target)
					if err != nil {
						t.Fatalf("shards=%d workers=%d gp=%d perm=%d: %v", shards, workers, gi, perm, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("shards=%d workers=%d gp=%d perm=%d: pipeline result differs from single engine", shards, workers, gi, perm)
					}
					gotAgs, err := se.Aggregate(context.Background(), offers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotAgs, wantAgs) {
						t.Errorf("shards=%d workers=%d gp=%d perm=%d: aggregates differ from single engine", shards, workers, gi, perm)
					}
					gotTab, err := se.Measures(context.Background(), offers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotTab, wantTab) {
						t.Errorf("shards=%d workers=%d gp=%d perm=%d: measures differ from single engine", shards, workers, gi, perm)
					}
					se.Close()
				}
				eng2 := New(WithWorkers(1), WithSafe(true), WithGrouping(gp), WithPeakCap(55))
				serial, err := eng2.Pipeline(context.Background(), offers, target)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, want) {
					t.Errorf("workers=%d gp=%d perm=%d: parallel single engine differs from serial", workers, gi, perm)
				}
				eng2.Close()
			}
			eng.Close()
		}
	}
}

// TestShardedEngineRoutedStability checks that pre-routed calls (the
// path flexd takes through its shard store) agree with the partition
// convenience path and with a single engine.
func TestShardedEngineRoutedStability(t *testing.T) {
	offers := shardedFleet(t, 43, 250, 3)
	target := timeseries.Constant(0, 48, 25)
	opts := []Option{WithWorkers(2), WithSafe(true), WithGrouping(GroupParams{ESTTolerance: 2, TFTolerance: -1})}
	eng := New(opts...)
	defer eng.Close()
	want, err := eng.Pipeline(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(4, opts...)
	defer se.Close()
	parts := se.Partition(offers)
	got, err := se.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("PipelineRouted differs from single engine")
	}
	sr, err := se.ScheduleRouted(context.Background(), parts, target)
	if err != nil {
		t.Fatal(err)
	}
	wantSR, err := eng.Schedule(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, wantSR) {
		t.Fatal("ScheduleRouted differs from single engine Schedule")
	}
}

// TestShardedEngineCustomKey checks bit-identity is preserved under a
// custom (pathological) routing key: routing never changes results,
// only locality.
func TestShardedEngineCustomKey(t *testing.T) {
	offers := shardedFleet(t, 44, 200, 0)
	target := timeseries.Constant(0, 48, 30)
	opts := []Option{WithWorkers(2), WithSafe(true), WithGrouping(GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 16})}
	eng := New(opts...)
	defer eng.Close()
	want, err := eng.Pipeline(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSharded(3, opts...)
	defer se.Close()
	// Key by earliest start parity: adversarially correlated with the
	// grouping key itself.
	se.SetRouterKey(func(f *FlexOffer) string { return fmt.Sprintf("parity-%d", f.EarliestStart%2) })
	got, err := se.Pipeline(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("custom routing key changed pipeline output")
	}
}

// TestShardedEngineEmptyAndErrors pins the edge and error paths to the
// single-engine behaviour.
func TestShardedEngineEmptyAndErrors(t *testing.T) {
	target := timeseries.Constant(0, 24, 10)
	se := NewSharded(4, WithWorkers(2))
	defer se.Close()
	eng := New(WithWorkers(2))
	defer eng.Close()

	_, gotErr := se.Pipeline(context.Background(), nil, target)
	_, wantErr := eng.Pipeline(context.Background(), nil, target)
	if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("empty pipeline: sharded err %v, single err %v", gotErr, wantErr)
	}

	offers := shardedFleet(t, 45, 50, 2)
	if _, err := se.Pipeline(context.Background(), offers, target, WithPlacement(OrderLeastFlexibleFirst)); err == nil {
		t.Fatal("non-arrival placement should fail like the single engine")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.Pipeline(ctx, offers, target); err == nil {
		t.Fatal("cancelled ctx should fail")
	}
	if _, err := se.Aggregate(ctx, offers); err == nil {
		t.Fatal("cancelled ctx should fail aggregation")
	}
}
