package flex

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/grouping"
	"flexmeasures/internal/inc"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/shard"
)

// RoutedOffer is one offer in a shard store together with its global
// sequence number — the unit a shard router deals in. Parts handed to
// the *Routed methods must keep each shard's entries in ascending Seq
// order with globally unique Seqs, which is exactly what
// ShardedEngine.Partition and the flexd shard store produce.
type RoutedOffer = shard.Entry

// ShardedEngine presents the Engine's context-first surface over N
// engine shards: each shard owns its own persistent worker pool and
// serves a slice of the population chosen by a shard router (grid
// zone/tenant when the offer carries one, consistent hash of the
// prosumer ID otherwise, round-robin for anonymous offers).
//
// Pipeline and Aggregate run scatter-gather: every shard stable-sorts
// its part on its own pool, the runs are k-way merged by (earliest
// start, time flexibility, sequence) — which reproduces the global
// stable grouping order bit for bit, because sequence order is store
// order — the merged run is greedily packed (segmented in parallel at
// the EST-gap cuts), per-group aggregation fans out across the shard
// pools in contiguous blocks streamed into the global greedy
// scheduler, and disaggregation fans back out the same way. The output
// is therefore bit-identical to a single Engine over the same
// population for every shard count, worker count, and routing key —
// the property test in sharded_test.go pins this.
//
// A ShardedEngine is safe for concurrent use exactly like an Engine.
// Close it on shutdown to release every shard's pool.
type ShardedEngine struct {
	engines []*Engine
	router  shard.Router
	opts    engineOptions
	// incState is the incremental-scheduling cache behind
	// WithIncremental — the sharded surface keeps its own (distinct
	// from any shard engine's) because its aggregation fan-out spans
	// every shard pool. Created lazily; runs serialize on its mutex.
	incOnce  sync.Once
	incState *inc.State
}

// NewSharded returns a ShardedEngine of `shards` engine shards (values
// below 1 mean 1), each constructed with the same options — so every
// shard gets its own pool of the configured size. Options work exactly
// as on New, including per-call overrides on every method.
func NewSharded(shards int, opts ...Option) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = New(opts...)
	}
	return newShardedFrom(engines)
}

// NewShardedFrom wraps existing engines as the shards of a
// ShardedEngine — the bridge that lets a single-engine caller (or
// test) enter the sharded surface without re-constructing pools. The
// wrapper's option set is taken from the first engine; Close closes
// every wrapped engine (Engine.Close is idempotent, so closing them
// yourself too is harmless). No engines means one default shard.
func NewShardedFrom(engines ...*Engine) *ShardedEngine {
	if len(engines) == 0 {
		engines = []*Engine{New()}
	}
	return newShardedFrom(engines)
}

func newShardedFrom(engines []*Engine) *ShardedEngine {
	return &ShardedEngine{
		engines: engines,
		router:  shard.Router{Shards: len(engines)},
		opts:    engines[0].opts,
	}
}

// SetRouterKey replaces the router's partitioning key — the pluggable
// seam for deployments whose affinity is neither zone nor prosumer ID
// (an empty key falls back to round-robin). Call it before the engine
// starts partitioning offers; it is not synchronized with in-flight
// calls. The scatter-gather output is bit-identical to a single engine
// under every key, so changing the key never changes results, only
// locality.
func (se *ShardedEngine) SetRouterKey(key func(*FlexOffer) string) {
	se.router.Key = key
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.engines) }

// Workers reports the per-shard worker count (every shard is sized
// alike by NewSharded).
func (se *ShardedEngine) Workers() int { return se.engines[0].Workers() }

// Executor exposes shard 0's persistent pool for subsystems that shard
// their own index-addressed work (flexd's NDJSON decode submits here);
// nil when the shards are serial engines.
func (se *ShardedEngine) Executor() Executor { return se.engines[0].Executor() }

// PoolStats reports the pools' total size and busy workers, summed
// across shards.
func (se *ShardedEngine) PoolStats() (workers, busy int) {
	for _, eng := range se.engines {
		w, b := eng.PoolStats()
		workers += w
		busy += b
	}
	return workers, busy
}

// ShardPoolStats reports shard k's pool size and busy workers — the
// per-shard gauge flexd's /metrics labels by shard.
func (se *ShardedEngine) ShardPoolStats(k int) (workers, busy int) {
	return se.engines[k].PoolStats()
}

// Close releases every shard's worker pool. Like Engine.Close it is
// idempotent, and calls after Close still work, degraded to per-call
// goroutines.
func (se *ShardedEngine) Close() {
	for _, eng := range se.engines {
		eng.Close()
	}
}

// Partition routes a materialized offer slice through the shard router
// into per-shard parts, assigning global sequence numbers in input
// order — the entry point the non-Routed convenience methods use. A
// long-lived service keeps offers pre-routed (flexd's shard store)
// and calls the Routed methods directly instead.
func (se *ShardedEngine) Partition(offers []*FlexOffer) [][]RoutedOffer {
	return shard.Partition(offers, se.router)
}

// resolve mirrors Engine.resolve over the sharded option set.
func (se *ShardedEngine) resolve(opts []Option) engineOptions {
	o := se.opts
	for _, opt := range opts {
		opt(&o)
	}
	if o.norm == 0 {
		o.norm = L1
	}
	return o
}

// engineFor returns the engine serving shard k, tolerating parts
// slices wider than the shard count.
func (se *ShardedEngine) engineFor(k int) *Engine {
	return se.engines[k%len(se.engines)]
}

// blockBounds splits n work items into one contiguous block per shard:
// bounds[k]..bounds[k+1] is shard k's block. Contiguity is what makes
// re-indexing a block's output a single offset add.
func blockBounds(n, shards int) []int {
	bounds := make([]int, shards+1)
	for k := 0; k <= shards; k++ {
		bounds[k] = k * n / shards
	}
	return bounds
}

// Aggregate partitions the offers with the shard router and runs the
// scatter-gather grouping + aggregation — bit-identical to
// Engine.Aggregate over the same offers for every shard count.
func (se *ShardedEngine) Aggregate(ctx context.Context, offers []*FlexOffer, opts ...Option) ([]*Aggregated, error) {
	return se.AggregateRouted(ctx, se.Partition(offers), opts...)
}

// AggregateRouted is Aggregate over pre-routed parts (see RoutedOffer
// for the part invariants).
func (se *ShardedEngine) AggregateRouted(ctx context.Context, parts [][]RoutedOffer, opts ...Option) ([]*Aggregated, error) {
	o := se.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	groups, err := se.scatterGroup(ctx, parts, o)
	if err != nil {
		return nil, err
	}
	obs.AddGroups(ctx, len(groups))
	return se.scatterAggregateGroups(ctx, groups, o)
}

// scatterAggregateGroups fans per-group aggregation out across the
// shard engines in contiguous blocks — the materialized counterpart of
// scatterAggregateStream, shared by AggregateRouted and the incremental
// pipeline's miss aggregation.
func (se *ShardedEngine) scatterAggregateGroups(ctx context.Context, groups [][]*FlexOffer, o engineOptions) ([]*Aggregated, error) {
	n := len(groups)
	if n == 0 {
		// Delegate the empty case so the result (nil vs empty slice)
		// matches Engine.Aggregate exactly.
		return se.engines[0].aggregateGroups(ctx, groups, o)
	}
	bounds := blockBounds(n, len(se.engines))
	out := make([]*Aggregated, n)
	errs := make([]error, len(se.engines))
	var wg sync.WaitGroup
	for k := range se.engines {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			// Each shard's block aggregates under its own shard-labeled
			// span (started inside aggregateGroups' parallel stage).
			ags, err := se.engines[k].aggregateGroups(obs.WithShard(ctx, k), groups[lo:hi], o)
			if err != nil {
				errs[k] = offsetBlockErr(err, lo)
				return
			}
			copy(out[lo:hi], ags)
		}(k, lo, hi)
	}
	wg.Wait()
	if err := mergeBlockErrs(errs, o.errMode); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Schedule flattens the population back into store order and runs the
// global greedy scheduler — scheduling against one shared residual is
// inherently sequential, so it is the gather-side serial stage, not a
// fan-out. Identical to Engine.Schedule on the flattened offers.
func (se *ShardedEngine) Schedule(ctx context.Context, offers []*FlexOffer, target Series, opts ...Option) (*ScheduleResult, error) {
	o := se.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := obs.Start(ctx, obs.StageSchedule)
	defer sp.End()
	return sched.Schedule(offers, target, sched.Options{
		PeakCap: o.peakCap,
		Order:   o.placement,
		Measure: o.placeMeasure,
	})
}

// ScheduleRouted is Schedule over pre-routed parts.
func (se *ShardedEngine) ScheduleRouted(ctx context.Context, parts [][]RoutedOffer, target Series, opts ...Option) (*ScheduleResult, error) {
	return se.Schedule(ctx, shard.Flatten(parts), target, opts...)
}

// Pipeline partitions the offers with the shard router and runs the
// full Scenario-1 chain scatter-gather; see PipelineRouted.
func (se *ShardedEngine) Pipeline(ctx context.Context, offers []*FlexOffer, target Series, opts ...Option) (*PipelineResult, error) {
	return se.PipelineRouted(ctx, se.Partition(offers), target, opts...)
}

// PipelineRouted runs group → aggregate → schedule → disaggregate over
// pre-routed parts as one scatter-gather pipeline: per-shard sorting
// and per-group aggregation fan out across the shard pools, the
// deterministic merge and the greedy placement run at the gather
// point, and each finished aggregate is placed as soon as its group
// index is next — aggregation of later groups overlaps placement of
// earlier ones exactly as in Engine.Pipeline. The result is
// bit-identical to Engine.Pipeline over the flattened population for
// every configuration; like it, only OrderArrival placement is
// supported (sched.ErrStreamOrder otherwise).
func (se *ShardedEngine) PipelineRouted(ctx context.Context, parts [][]RoutedOffer, target Series, opts ...Option) (*PipelineResult, error) {
	o := se.resolve(opts)
	if o.placement != OrderArrival {
		return nil, sched.ErrStreamOrder
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Cancelling on return releases the aggregation workers if
	// scheduling or disaggregation aborts early.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	groups, err := se.scatterGroup(ctx, parts, o)
	if err != nil {
		return nil, err
	}
	obs.AddGroups(ctx, len(groups))
	if o.incremental {
		return se.pipelineRoutedIncremental(ctx, groups, target, o)
	}
	items, n := se.scatterAggregateStream(ctx, groups, o)
	sr, err := sched.ScheduleStream(ctx, items, n, target, sched.Options{PeakCap: o.peakCap, Order: o.placement})
	if err != nil {
		return nil, err
	}
	// Drain the exhausted stream so the merge goroutine has closed it —
	// and ended the parent aggregate span — before the trace finishes
	// (see Engine.pipeline for the same idiom).
	for range items {
	}
	if err := ctx.Err(); err != nil {
		// Never present a cancellation-truncated schedule as complete.
		return nil, err
	}
	disagg, err := se.scatterDisaggregate(ctx, sr.Aggregates, sr.Assignments, o)
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Aggregates:        sr.Aggregates,
		AggregateSchedule: &sr.Result,
		Disaggregated:     disagg,
		Load:              sr.Load,
	}, nil
}

// incrementalState returns the sharded engine's incremental cache,
// creating it on first use.
func (se *ShardedEngine) incrementalState() *inc.State {
	se.incOnce.Do(func() { se.incState = inc.NewState() })
	return se.incState
}

// IncrementalStats reports the incremental-scheduling cache statistics
// (all zero when WithIncremental was never used) — the numbers behind
// flexd's flexd_sched_cache_hits_total and flexd_sched_dirty_groups.
func (se *ShardedEngine) IncrementalStats() inc.Stats {
	return se.incrementalState().Stats()
}

// InvalidateIncremental drops the incremental-scheduling cache — the
// hook the server's store reset calls. Never needed for correctness
// (the cache is content-addressed), only to release memory promptly.
func (se *ShardedEngine) InvalidateIncremental() {
	se.incrementalState().Invalidate()
}

// pipelineRoutedIncremental is the sharded incremental pipeline: the
// partition comes from the scatter-gather grouping stage exactly as in
// the stateless path (so group identity is bit-identical across shard
// counts), aggregate-cache misses fan out across the shard pools in
// contiguous blocks, the merge-walk placement runs at the gather point,
// and only the changed groups disaggregate.
func (se *ShardedEngine) pipelineRoutedIncremental(ctx context.Context, groups [][]*FlexOffer, target Series, o engineOptions) (*PipelineResult, error) {
	res, err := se.incrementalState().Run(ctx, groups, target,
		inc.Config{PeakCap: o.peakCap, Safe: o.safe, Threshold: o.incThreshold},
		func(ctx context.Context, gs [][]*FlexOffer) ([]*Aggregated, error) {
			return se.scatterAggregateGroups(ctx, gs, o)
		},
		func(ctx context.Context, ags []*Aggregated, asgs []Assignment) ([][]Assignment, error) {
			return se.scatterDisaggregate(ctx, ags, asgs, o)
		})
	if err != nil {
		return nil, err
	}
	return &PipelineResult{
		Aggregates:        res.Aggregates,
		AggregateSchedule: &sched.Result{Assignments: res.Assignments, Load: res.Load},
		Disaggregated:     res.Disaggregated,
		Load:              res.Load,
	}, nil
}

// Disaggregate maps scheduled aggregate assignments back to their
// constituents, fanned out in contiguous blocks across the shard
// pools; identical to Engine.Disaggregate.
func (se *ShardedEngine) Disaggregate(ctx context.Context, ags []*Aggregated, assignments []Assignment, opts ...Option) ([][]Assignment, error) {
	return se.scatterDisaggregate(ctx, ags, assignments, se.resolve(opts))
}

// Measures evaluates the paper's eight measures over the partitioned
// population; see MeasuresRouted.
func (se *ShardedEngine) Measures(ctx context.Context, offers []*FlexOffer, opts ...Option) (*MeasureTable, error) {
	return se.MeasuresRouted(ctx, se.Partition(offers), opts...)
}

// MeasuresRouted evaluates the measure table over pre-routed parts:
// the parts are flattened back into store order (rows are
// order-sensitive output) and the per-offer rows fan out in contiguous
// blocks across the shard pools; the set-level row is computed at the
// gather point. Identical to Engine.Measures on the flattened offers.
func (se *ShardedEngine) MeasuresRouted(ctx context.Context, parts [][]RoutedOffer, opts ...Option) (*MeasureTable, error) {
	o := se.resolve(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := shard.Flatten(parts)
	ms := measureSet(o.norm)
	t := &MeasureTable{
		Names:  make([]string, len(ms)),
		Values: make([][]float64, len(merged)),
		Set:    make([]float64, len(ms)),
	}
	for j, m := range ms {
		t.Names[j] = m.Name()
	}
	done := ctx.Done()
	bounds := blockBounds(len(merged), len(se.engines))
	var wg sync.WaitGroup
	for k := range se.engines {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			se.engines[k].runIndexed(hi-lo, func(i int) {
				select {
				case <-done:
					return
				default:
				}
				row := make([]float64, len(ms))
				for j, m := range ms {
					v, err := m.Value(merged[lo+i])
					if err != nil {
						v = math.NaN()
					}
					row[j] = v
				}
				t.Values[lo+i] = row
			})
		}(k, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for j, m := range ms {
		v, err := m.SetValue(merged)
		if err != nil {
			v = math.NaN()
		}
		t.Set[j] = v
	}
	return t, nil
}

// scatterGroup is the scatter-gather grouping stage: each non-empty
// part is stable-sorted by the grouping key on its shard's pool (the
// parts run concurrently with each other), the runs are k-way merged
// by (est, tf, seq) into the global stable grouping order, and the
// merged run is greedily packed — in parallel per EST-gap segment when
// the cut produces more than one (the same independence argument
// grouping.Sharded rests on). With a custom Grouper installed the
// parts are flattened and handed to it whole, as Engine does.
func (se *ShardedEngine) scatterGroup(ctx context.Context, parts [][]RoutedOffer, o engineOptions) ([][]*FlexOffer, error) {
	if o.grouper != nil {
		return o.grouper.Group(ctx, shard.Flatten(parts))
	}
	merged := se.scatterSort(ctx, parts, o)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if merged.Len() == 0 {
		return nil, nil
	}
	_, psp := obs.Start(ctx, obs.StageGroupPack)
	defer psp.End()
	ends := grouping.Cuts(merged.ESTs, o.group.ESTTolerance)
	if len(ends) == 1 {
		return grouping.Pack(merged.Offers, merged.TFs, o.group), nil
	}
	per := make([][][]*FlexOffer, len(ends))
	done := ctx.Done()
	se.engines[0].runIndexed(len(ends), func(k int) {
		select {
		case <-done:
			return
		default:
		}
		lo := 0
		if k > 0 {
			lo = ends[k-1]
		}
		hi := ends[k]
		per[k] = grouping.Pack(merged.Offers[lo:hi], merged.TFs[lo:hi], o.group)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, g := range per {
		total += len(g)
	}
	out := make([][]*FlexOffer, 0, total)
	for _, g := range per {
		out = append(out, g...)
	}
	return out, nil
}

// scatterSort sorts every part on its shard's pool and merges the
// runs. The whole stage runs under one group_sort span with a
// shard-labeled child per non-empty part, so a trace shows both the
// critical path (parent) and the per-shard skew (children).
func (se *ShardedEngine) scatterSort(ctx context.Context, parts [][]RoutedOffer, o engineOptions) shard.Run {
	ctx, sp := obs.Start(ctx, obs.StageGroupSort)
	defer sp.End()
	runs := make([]shard.Run, len(parts))
	var wg sync.WaitGroup
	for k := range parts {
		if len(parts[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, ssp := obs.Start(obs.WithShard(ctx, k), obs.StageGroupSort)
			defer ssp.End()
			part := parts[k]
			offers := make([]*FlexOffer, len(part))
			seqs := make([]uint64, len(part))
			for i, e := range part {
				offers[i] = e.Offer
				seqs[i] = e.Seq
			}
			eng := se.engineFor(k)
			perm, ests, tfs := grouping.SortRun(offers, eng.Executor(), o.workers)
			run := shard.Run{
				Offers: make([]*FlexOffer, len(part)),
				Seqs:   make([]uint64, len(part)),
				ESTs:   make([]int, len(part)),
				TFs:    make([]int, len(part)),
			}
			for i, pi := range perm {
				run.Offers[i] = offers[pi]
				run.Seqs[i] = seqs[pi]
				run.ESTs[i] = ests[pi]
				run.TFs[i] = tfs[pi]
			}
			runs[k] = run
		}(k)
	}
	wg.Wait()
	return shard.MergeRuns(runs)
}

// scatterAggregateStream fans per-group aggregation out across the
// shard engines in contiguous blocks and merges the blocks' streams
// into one channel feeding the global scheduler, re-indexing every
// item by its block offset. The merged channel is buffered to the
// group count, so forwarders never block and abandoning the stream
// mid-way leaks nothing; block producers are likewise buffered.
func (se *ShardedEngine) scatterAggregateStream(ctx context.Context, groups [][]*FlexOffer, o engineOptions) (<-chan AggregateStreamItem, int) {
	n := len(groups)
	merged := make(chan aggregate.StreamItem, n)
	bounds := blockBounds(n, len(se.engines))
	// One parent aggregate span covers the whole fan-out; each shard's
	// block stream starts its own shard-labeled child. The parent ends
	// just before the merged channel closes, so draining the stream is
	// enough to see it completed (PipelineRouted does).
	actx, asp := obs.Start(ctx, obs.StageAggregate)
	var wg sync.WaitGroup
	for k := range se.engines {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			continue
		}
		eng := se.engines[k]
		pp := eng.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
		sctx := obs.WithShard(actx, k)
		var items <-chan aggregate.StreamItem
		if o.safe {
			items, _ = aggregate.AggregateGroupsSafeStream(sctx, groups[lo:hi], pp)
		} else {
			items, _ = aggregate.AggregateGroupsStream(sctx, groups[lo:hi], pp)
		}
		wg.Add(1)
		go func(off int, items <-chan aggregate.StreamItem) {
			defer wg.Done()
			for it := range items {
				it.Index += off
				it.Err = offsetGroupErr(it.Err, off)
				merged <- it
			}
		}(lo, items)
	}
	go func() {
		wg.Wait()
		asp.End()
		close(merged)
	}()
	return merged, n
}

// scatterDisaggregate fans disaggregation out across the shard engines
// in contiguous aggregate blocks and stitches the per-constituent
// assignments back together in aggregate order.
func (se *ShardedEngine) scatterDisaggregate(ctx context.Context, ags []*Aggregated, assignments []Assignment, o engineOptions) ([][]Assignment, error) {
	n := len(ags)
	if n == 0 || len(assignments) != n {
		// Delegate the trivial and malformed cases so the results and
		// errors match Engine.Disaggregate exactly.
		pp := se.engines[0].parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
		return aggregate.DisaggregateAllParallel(ctx, ags, assignments, pp)
	}
	ctx, sp := obs.Start(ctx, obs.StageDisaggregate)
	defer sp.End()
	bounds := blockBounds(n, len(se.engines))
	out := make([][]Assignment, n)
	errs := make([]error, len(se.engines))
	var wg sync.WaitGroup
	for k := range se.engines {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			eng := se.engines[k]
			pp := eng.parallelParams(ParallelParams{Workers: o.workers, ErrorMode: o.errMode})
			parts, err := aggregate.DisaggregateAllParallel(obs.WithShard(ctx, k), ags[lo:hi], assignments[lo:hi], pp)
			if err != nil {
				errs[k] = offsetBlockErr(err, lo)
				return
			}
			copy(out[lo:hi], parts)
		}(k, lo, hi)
	}
	wg.Wait()
	if err := mergeBlockErrs(errs, o.errMode); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// offsetGroupErr shifts a streamed group failure by its block offset so
// the merged stream reports global group indices.
func offsetGroupErr(err *aggregate.GroupError, off int) *aggregate.GroupError {
	if err == nil || off == 0 {
		return err
	}
	ge := *err
	ge.Group += off
	return &ge
}

// offsetBlockErr shifts the group indices inside a block's error by
// the block offset, leaving non-group errors (context cancellation)
// untouched.
func offsetBlockErr(err error, off int) error {
	if off == 0 {
		return err
	}
	var ges aggregate.GroupErrors
	if errors.As(err, &ges) {
		out := make(aggregate.GroupErrors, len(ges))
		for i, e := range ges {
			c := *e
			c.Group += off
			out[i] = &c
		}
		return out
	}
	var ge *aggregate.GroupError
	if errors.As(err, &ge) {
		c := *ge
		c.Group += off
		return &c
	}
	return err
}

// mergeBlockErrs combines per-block failures into one error under the
// error mode: first-error keeps the lowest block's error (blocks are
// index-ordered, so that is the lowest-indexed failure region);
// collect-all concatenates every block's group errors sorted by global
// group index, with non-group errors (cancellation) taking precedence.
func mergeBlockErrs(errs []error, mode ErrorMode) error {
	if mode != CollectAll {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	var all aggregate.GroupErrors
	var other error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var ges aggregate.GroupErrors
		var ge *aggregate.GroupError
		switch {
		case errors.As(err, &ges):
			all = append(all, ges...)
		case errors.As(err, &ge):
			all = append(all, ge)
		default:
			if other == nil {
				other = err
			}
		}
	}
	if other != nil {
		return other
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Group < all[j].Group })
	return all
}
