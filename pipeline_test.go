package flex

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"flexmeasures/internal/timeseries"
)

func pipelineFixture(t *testing.T, n int) ([]*FlexOffer, Series, Config) {
	t.Helper()
	r := rand.New(rand.NewSource(2026))
	offers, err := Population(r, n, 2, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	horizon := 3 * SlotsPerDay
	target := WindProfile(r, horizon, expected/int64(horizon))
	cfg := Config{
		Group: GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24},
		// Safe aggregation guarantees the disaggregation stage succeeds
		// for whatever assignment the scheduler picks.
		Safe: true,
	}
	return offers, target, cfg
}

// TestSchedulePipelineMatchesBatch pins the pipeline's defining
// property: the streaming group→aggregate→schedule→disaggregate chain
// produces exactly the schedule of the materialized batch sequence, for
// several worker counts.
func TestSchedulePipelineMatchesBatch(t *testing.T) {
	offers, target, cfg := pipelineFixture(t, 400)

	// Materialized reference path.
	batchCfg := cfg
	batchCfg.Workers = 1
	ags, err := AggregateWithConfig(context.Background(), offers, batchCfg)
	if err != nil {
		t.Fatal(err)
	}
	aggOffers := make([]*FlexOffer, len(ags))
	for i, ag := range ags {
		aggOffers[i] = ag.Offer
	}
	batch, err := Schedule(aggOffers, target, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		cfg.Workers = workers
		res, err := SchedulePipeline(context.Background(), offers, target, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.AggregateSchedule.Assignments, batch.Assignments) {
			t.Fatalf("workers=%d: pipeline schedule diverges from batch", workers)
		}
		if !res.Load.Equal(batch.Load) {
			t.Fatalf("workers=%d: pipeline load diverges from batch", workers)
		}
		if len(res.Aggregates) != len(ags) || len(res.Disaggregated) != len(ags) {
			t.Fatalf("workers=%d: %d aggregates, %d disaggregations, want %d",
				workers, len(res.Aggregates), len(res.Disaggregated), len(ags))
		}
	}
}

// TestSchedulePipelineDisaggregationValid checks the last stage: every
// constituent assignment is valid and the slot-wise sums reproduce the
// aggregate schedule (the grid-level profile survives disaggregation).
func TestSchedulePipelineDisaggregationValid(t *testing.T) {
	offers, target, cfg := pipelineFixture(t, 250)
	cfg.Workers = 4
	res, err := SchedulePipeline(context.Background(), offers, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prosumers := 0
	for i, ag := range res.Aggregates {
		var sum Series
		for j, p := range res.Disaggregated[i] {
			if err := ag.Constituents[j].ValidateAssignment(p); err != nil {
				t.Fatalf("aggregate %d constituent %d: %v", i, j, err)
			}
			sum = timeseries.Add(sum, p.Series())
			prosumers++
		}
		if !sum.EquivalentZeroPadded(res.AggregateSchedule.Assignments[i].Series()) {
			t.Fatalf("aggregate %d: disaggregation changed the profile", i)
		}
	}
	if prosumers != len(offers) {
		t.Fatalf("disaggregated %d prosumers of %d", prosumers, len(offers))
	}
}

// TestSchedulePipelinePeakCap: the cap reaches the streaming scheduler.
func TestSchedulePipelinePeakCap(t *testing.T) {
	offers, target, cfg := pipelineFixture(t, 150)
	cfg.Workers = 2
	uncapped, err := SchedulePipeline(context.Background(), offers, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := uncapped.AggregateSchedule.PeakLoad()
	cfg.PeakCap = base * 3 / 4
	capped, err := SchedulePipeline(context.Background(), offers, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if capped.AggregateSchedule.PeakLoad() > base {
		t.Errorf("capped peak %d exceeds uncapped %d", capped.AggregateSchedule.PeakLoad(), base)
	}
}

func TestSchedulePipelineNoOffers(t *testing.T) {
	_, target, cfg := pipelineFixture(t, 10)
	if _, err := SchedulePipeline(context.Background(), nil, target, cfg); err == nil {
		t.Fatal("empty pipeline must error")
	}
}

func TestSchedulePipelineCancelled(t *testing.T) {
	offers, target, cfg := pipelineFixture(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SchedulePipeline(ctx, offers, target, cfg); err == nil {
		t.Fatal("cancelled pipeline must error")
	}
}
