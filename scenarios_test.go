package flex

import (
	"math/rand"
	"testing"
)

func TestFacadeWorkloadHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ev, err := GenerateOffer(r, EV)
	if err != nil || ev.Kind() != Positive {
		t.Fatalf("GenerateOffer(EV) = %v, %v", ev, err)
	}
	pv, err := GenerateOffer(r, SolarPanel)
	if err != nil || pv.Kind() != Negative {
		t.Fatalf("GenerateOffer(SolarPanel) = %v, %v", pv, err)
	}
	if _, err := GenerateOffer(r, VehicleToGrid); err != nil {
		t.Fatal(err)
	}
	for _, d := range []Device{HeatPump, Dishwasher, Refrigerator, WindTurbine} {
		if _, err := GenerateOffer(r, d); err != nil {
			t.Fatalf("GenerateOffer(%v): %v", d, err)
		}
	}
	wind := WindProfile(r, 2*SlotsPerDay, 20)
	if wind.Len() != 2*SlotsPerDay {
		t.Fatalf("wind horizon = %d", wind.Len())
	}
	prices := DayAheadPrices(r, 2*SlotsPerDay)
	if len(prices) != 2*SlotsPerDay {
		t.Fatalf("price horizon = %d", len(prices))
	}
	if len(DefaultMix()) == 0 || len(ConsumptionMix()) == 0 {
		t.Fatal("mixes empty")
	}
}

func TestFacadeMarketHelpers(t *testing.T) {
	f, err := NewFlexOffer(0, 4, Slice{Min: 3, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	prices := PriceCurve{10, 10, 1, 10, 10}
	v, err := ValueOfFlexibility(f, prices)
	if err != nil || v.Value() != 27 {
		t.Fatalf("value = %g, %v; want 27", v.Value(), err)
	}
	a, err := CheapestAssignment(f, prices)
	if err != nil || a.Start != 2 {
		t.Fatalf("cheapest start = %d, %v; want 2", a.Start, err)
	}
	cost, err := Settlement(a.Series(), a.Series(), prices, 5)
	if err != nil || cost != 3 {
		t.Fatalf("settlement = %g, %v; want 3", cost, err)
	}
}

func TestFacadePortfolio(t *testing.T) {
	big, err := NewFlexOffer(0, 2, Slice{Min: 40, Max: 50})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewFlexOffer(0, 2, Slice{Min: 1, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ags []*Aggregated
	for _, f := range []*FlexOffer{big, small} {
		ag, err := AggregateSafe([]*FlexOffer{f})
		if err != nil {
			t.Fatal(err)
		}
		ags = append(ags, ag)
	}
	p, err := BuildPortfolio(ags, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tradeable) != 1 || len(p.Remainder) != 1 {
		t.Fatalf("portfolio split %d/%d", len(p.Tradeable), len(p.Remainder))
	}
	lots, total, err := p.Value(PriceCurve{5, 5, 1, 5, 5}, ProductMeasure{})
	if err != nil || len(lots) != 1 || total <= 0 {
		t.Fatalf("portfolio value = %d lots, %g, %v", len(lots), total, err)
	}
}

func TestFacadeOptimizeGroupsAndAlignment(t *testing.T) {
	a, err := NewFlexOffer(0, 4, Slice{Min: 1, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFlexOffer(0, 0, Slice{Min: 1, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := OptimizeGroups([]*FlexOffer{a, a.Clone(), b}, OptimizeParams{
		Measure:         VectorMeasure{},
		MaxLossFraction: 0.45,
		ESTTolerance:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	ag, err := AggregateAligned([]*FlexOffer{a, b}, AlignLatest)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Offer.TimeFlexibility() != 0 {
		t.Fatalf("latest-aligned tf = %d, want min = 0", ag.Offer.TimeFlexibility())
	}
	if AlignEarliest.String() != "earliest" || AlignLatest.String() != "latest" {
		t.Error("alignment names wrong through the facade")
	}
}

func TestFacadeScheduleAndImprove(t *testing.T) {
	offers := []*FlexOffer{}
	for i := 0; i < 6; i++ {
		f, err := NewFlexOffer(0, 6, Slice{Min: 2, Max: 2})
		if err != nil {
			t.Fatal(err)
		}
		offers = append(offers, f)
	}
	target := NewSeries(0, 2, 2, 2, 2, 2, 2, 2)
	res, err := ScheduleAndImprove(offers, target, ScheduleOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance(target) > 4 {
		t.Fatalf("imbalance = %g", res.Imbalance(target))
	}
	capped, err := Schedule(offers, target, ScheduleOptions{PeakCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if capped.PeakLoad() > 2 {
		t.Fatalf("peak = %d with cap 2", capped.PeakLoad())
	}
}

func TestFacadeExtensionMeasures(t *testing.T) {
	if len(ExtensionMeasures()) != 3 {
		t.Fatal("expected 3 extension measures")
	}
	f, err := NewFlexOffer(0, 2, Slice{Min: 0, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := EntropyFlexibility(f); e <= 3 || e >= 3.3 {
		t.Fatalf("entropy = %g, want log2(9)", e)
	}
	for _, m := range ExtensionMeasures() {
		if err := VerifyCharacteristics(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestFacadeBalanceGroupsAndSafeAll(t *testing.T) {
	a, err := NewFlexOffer(0, 2, Slice{Min: 3, Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	neg := a.ScaleEnergy(-1)
	groups := BalanceGroups([]*FlexOffer{a, neg}, BalanceParams{ESTTolerance: 3})
	if len(groups) != 1 {
		t.Fatalf("balance groups = %d, want 1", len(groups))
	}
	ags, err := AggregateAllSafe([]*FlexOffer{a, a.Clone()}, GroupParams{ESTTolerance: 1, TFTolerance: -1})
	if err != nil || len(ags) != 1 {
		t.Fatalf("safe all = %d, %v", len(ags), err)
	}
	kept, err := RetainedFraction(ags, VectorMeasure{})
	if err != nil || kept <= 0 {
		t.Fatalf("retained = %g, %v", kept, err)
	}
}
