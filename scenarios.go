package flex

import (
	"math/rand"

	"flexmeasures/internal/market"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/workload"
)

// Scheduling (Scenario 1).
type (
	// ScheduleOptions configures the greedy scheduler.
	ScheduleOptions = sched.Options
	// ScheduleResult is a complete schedule with its load series.
	ScheduleResult = sched.Result
	// ScheduleOrder selects the greedy placement order.
	ScheduleOrder = sched.Order
)

// Placement orders for ScheduleOptions.Order.
const (
	OrderArrival            = sched.OrderArrival
	OrderLeastFlexibleFirst = sched.OrderLeastFlexibleFirst
	OrderMostFlexibleFirst  = sched.OrderMostFlexibleFirst
	OrderRandom             = sched.OrderRandom
)

// Schedule greedily assigns all offers so the total load tracks the
// target series; see the sched package for the heuristic's details.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Schedule] — [WithPlacement] and [WithPlacementMeasure] cover
// the flexibility-ranked placement orders. This shim remains only for
// OrderRandom (which needs a caller-owned rand source) and the legacy
// full-recompute evaluator.
func Schedule(offers []*FlexOffer, target Series, opts ScheduleOptions) (*ScheduleResult, error) {
	return sched.Schedule(offers, target, opts)
}

// Improve refines a schedule by local search (re-placing each offer
// against the residual target) until convergence or maxRounds; the
// imbalance never increases.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Improve].
func Improve(offers []*FlexOffer, target Series, res *ScheduleResult, maxRounds int) (*ScheduleResult, error) {
	return sched.Improve(offers, target, res, maxRounds)
}

// ScheduleAndImprove runs Schedule followed by Improve.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Schedule] followed by [Engine.Improve].
func ScheduleAndImprove(offers []*FlexOffer, target Series, opts ScheduleOptions, maxRounds int) (*ScheduleResult, error) {
	return sched.ScheduleAndImprove(offers, target, opts, maxRounds)
}

// Market (Scenario 2).
type (
	// PriceCurve holds one spot price per time unit.
	PriceCurve = market.PriceCurve
	// Valuation prices an offer's flexibility against a curve.
	Valuation = market.Valuation
	// Portfolio is an aggregator's book of tradeable lots.
	Portfolio = market.Portfolio
	// Lot is one tradeable aggregate with its valuation.
	Lot = market.Lot
)

// BuildPortfolio partitions aggregates by the market's minimum lot
// energy (Scenario 2: "only large aggregated flex-offers are allowed to
// be traded").
func BuildPortfolio(ags []*Aggregated, minLotEnergy int64) (*Portfolio, error) {
	return market.BuildPortfolio(ags, minLotEnergy)
}

// ValueOfFlexibility returns the market value of an offer's flexibility:
// inflexible baseline cost minus price-optimal cost.
func ValueOfFlexibility(f *FlexOffer, p PriceCurve) (Valuation, error) {
	return market.ValueOfFlexibility(f, p)
}

// CheapestAssignment returns the cost-minimal valid assignment of f
// under the curve.
func CheapestAssignment(f *FlexOffer, p PriceCurve) (Assignment, error) {
	return p.CheapestAssignment(f)
}

// Settlement prices a delivered series against a traded baseline with
// imbalance penalties.
func Settlement(delivered, traded Series, p PriceCurve, penaltyRate float64) (float64, error) {
	return market.Settlement(delivered, traded, p, penaltyRate)
}

// Synthetic workloads (the TotalFlex-data substitute).
type (
	// Device enumerates prosumer device classes.
	Device = workload.Device
	// Mix weights device classes for Population.
	Mix = workload.Mix
)

// Device classes.
const (
	EV            = workload.EV
	HeatPump      = workload.HeatPump
	Dishwasher    = workload.Dishwasher
	Refrigerator  = workload.Refrigerator
	SolarPanel    = workload.SolarPanel
	WindTurbine   = workload.WindTurbine
	VehicleToGrid = workload.VehicleToGrid
)

// SlotsPerDay is the number of time units per day (hourly resolution).
const SlotsPerDay = workload.SlotsPerDay

// GenerateOffer creates one synthetic flex-offer of the device class.
func GenerateOffer(r *rand.Rand, d Device) (*FlexOffer, error) {
	return workload.Generate(r, d)
}

// Population samples n offers from the mix, spread over days.
func Population(r *rand.Rand, n, days int, mix Mix) ([]*FlexOffer, error) {
	return workload.Population(r, n, days, mix)
}

// DefaultMix is a residential neighbourhood mix; ConsumptionMix contains
// only consumption devices (required by the area measures).
func DefaultMix() Mix     { return workload.DefaultMix() }
func ConsumptionMix() Mix { return workload.ConsumptionMix() }

// WindProfile returns a synthetic wind-production target series.
func WindProfile(r *rand.Rand, horizon int, scale int64) Series {
	return workload.WindProfile(r, horizon, scale)
}

// DayAheadPrices returns a synthetic day-ahead spot price curve.
func DayAheadPrices(r *rand.Rand, horizon int) PriceCurve {
	return workload.DayAheadPrices(r, horizon)
}
