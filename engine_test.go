package flex

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// engineTestFleet builds a reproducible mixed population and a wind
// target sized to its expected energy.
func engineTestFleet(t testing.TB, n int) ([]*FlexOffer, Series) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	offers, err := Population(rng, n, 2, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	horizon := 3 * SlotsPerDay
	target := WindProfile(rng, horizon, expected/int64(horizon))
	return offers, target
}

var engineTestGroup = GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}

// TestEngineAggregateEquivalence pins the acceptance criterion that the
// Engine's aggregation output is bit-identical to the legacy serial
// free function for every worker count.
func TestEngineAggregateEquivalence(t *testing.T) {
	offers, _ := engineTestFleet(t, 300)
	want, err := AggregateAll(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8} {
		eng := New(WithWorkers(workers), WithGrouping(engineTestGroup))
		got, err := eng.Aggregate(context.Background(), offers)
		eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: Engine.Aggregate diverged from AggregateAll", workers)
		}
	}
}

// TestEnginePipelineEquivalence pins the same criterion for the full
// chain: Engine.Pipeline must reproduce the legacy SchedulePipeline's
// serial output — aggregates, schedule, disaggregation and load — for
// every worker count.
func TestEnginePipelineEquivalence(t *testing.T) {
	offers, target := engineTestFleet(t, 300)
	want, err := SchedulePipeline(context.Background(), offers, target,
		Config{Group: engineTestGroup, Workers: 1, Safe: true, PeakCap: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8} {
		eng := New(WithWorkers(workers), WithGrouping(engineTestGroup), WithSafe(true), WithPeakCap(40))
		got, err := eng.Pipeline(context.Background(), offers, target)
		eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: Engine.Pipeline diverged from SchedulePipeline", workers)
		}
	}
}

// TestEngineScheduleEquivalence checks Engine.Schedule against the
// legacy free function, cap included.
func TestEngineScheduleEquivalence(t *testing.T) {
	offers, target := engineTestFleet(t, 120)
	for _, cap := range []int64{0, 50} {
		want, err := Schedule(offers, target, ScheduleOptions{PeakCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		eng := New(WithWorkers(2), WithPeakCap(cap))
		got, err := eng.Schedule(context.Background(), offers, target)
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cap=%d: Engine.Schedule diverged from Schedule", cap)
		}
	}
}

// TestEnginePeakCapConsistentAcrossPaths pins the Config.PeakCap fix:
// one engine option set must apply the same cap whether the aggregates
// are scheduled through Pipeline or handed to Schedule directly, so the
// two paths can never silently disagree.
func TestEnginePeakCapConsistentAcrossPaths(t *testing.T) {
	offers, target := engineTestFleet(t, 200)
	const cap = 35
	eng := New(WithWorkers(3), WithGrouping(engineTestGroup), WithSafe(true), WithPeakCap(cap))
	defer eng.Close()
	pipe, err := eng.Pipeline(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	aggOffers := make([]*FlexOffer, len(pipe.Aggregates))
	for i, ag := range pipe.Aggregates {
		aggOffers[i] = ag.Offer
	}
	direct, err := eng.Schedule(context.Background(), aggOffers, target)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Assignments, pipe.AggregateSchedule.Assignments) {
		t.Error("Schedule and Pipeline placed the same aggregates differently under one engine cap")
	}
	if !direct.Load.Equal(pipe.Load) {
		t.Error("Schedule and Pipeline produced different loads under one engine cap")
	}
}

// TestEngineImproveEquivalence checks Engine.Improve against the legacy
// free function.
func TestEngineImproveEquivalence(t *testing.T) {
	offers, target := engineTestFleet(t, 80)
	base, err := Schedule(offers, target, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Improve(offers, target, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithWorkers(2))
	defer eng.Close()
	got, err := eng.Improve(context.Background(), offers, target, base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Engine.Improve diverged from Improve")
	}
}

// TestEngineDisaggregateEquivalence checks Engine.Disaggregate against
// the legacy parallel free function in serial mode.
func TestEngineDisaggregateEquivalence(t *testing.T) {
	offers, target := engineTestFleet(t, 200)
	eng := New(WithWorkers(4), WithGrouping(engineTestGroup), WithSafe(true))
	defer eng.Close()
	ags, err := eng.Aggregate(context.Background(), offers)
	if err != nil {
		t.Fatal(err)
	}
	aggOffers := make([]*FlexOffer, len(ags))
	for i, ag := range ags {
		aggOffers[i] = ag.Offer
	}
	sr, err := eng.Schedule(context.Background(), aggOffers, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DisaggregateAllParallel(context.Background(), ags, sr.Assignments, ParallelParams{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Disaggregate(context.Background(), ags, sr.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Engine.Disaggregate diverged from DisaggregateAllParallel")
	}
}

// expectedMeasureTable computes Engine.Measures' result serially
// through the public measure API — the baseline the engine must match.
func expectedMeasureTable(t *testing.T, measures []Measure, offers []*FlexOffer) *MeasureTable {
	t.Helper()
	mt := &MeasureTable{
		Names:  make([]string, len(measures)),
		Values: make([][]float64, len(offers)),
		Set:    make([]float64, len(measures)),
	}
	for j, m := range measures {
		mt.Names[j] = m.Name()
		v, err := m.SetValue(offers)
		if err != nil {
			v = math.NaN()
		}
		mt.Set[j] = v
	}
	for i, f := range offers {
		row := make([]float64, len(measures))
		for j, m := range measures {
			v, err := m.Value(f)
			if err != nil {
				v = math.NaN()
			}
			row[j] = v
		}
		mt.Values[i] = row
	}
	return mt
}

// measureTablesEqual compares tables treating NaN as equal to NaN.
func measureTablesEqual(a, b *MeasureTable) bool {
	if !reflect.DeepEqual(a.Names, b.Names) || len(a.Values) != len(b.Values) || len(a.Set) != len(b.Set) {
		return false
	}
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	for j := range a.Set {
		if !eq(a.Set[j], b.Set[j]) {
			return false
		}
	}
	for i := range a.Values {
		if len(a.Values[i]) != len(b.Values[i]) {
			return false
		}
		for j := range a.Values[i] {
			if !eq(a.Values[i][j], b.Values[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestEngineMeasures checks the fan-out measure evaluation against the
// serial baseline, under the default norm and WithNorm(L2), for serial
// and pooled engines. DefaultMix includes producers, so NaN cells (the
// area measures on production/mixed offers) are exercised too.
func TestEngineMeasures(t *testing.T) {
	offers, _ := engineTestFleet(t, 150)
	for _, norm := range []Norm{L1, L2} {
		for _, workers := range []int{1, 4} {
			eng := New(WithWorkers(workers), WithNorm(norm))
			want := expectedMeasureTable(t, measureSet(eng.opts.norm), offers)
			got, err := eng.Measures(context.Background(), offers)
			eng.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !measureTablesEqual(want, got) {
				t.Fatalf("norm=%v workers=%d: Engine.Measures diverged from serial baseline", norm, workers)
			}
		}
	}
	// The norm option must actually reach the vector measure.
	l1 := New(WithWorkers(1))
	defer l1.Close()
	l2 := New(WithWorkers(1), WithNorm(L2))
	defer l2.Close()
	a, err := l1.Measures(context.Background(), offers[:1])
	if err != nil {
		t.Fatal(err)
	}
	b, err := l2.Measures(context.Background(), offers[:1])
	if err != nil {
		t.Fatal(err)
	}
	if a.Names[3] == b.Names[3] {
		t.Errorf("vector measure name did not change with the norm: %q vs %q", a.Names[3], b.Names[3])
	}
}

// TestEngineSerialCollectAll pins that WithErrorMode(CollectAll) is
// honored even on a fully serial engine: every failing group must be
// reported, not just the first, matching the parallel path.
func TestEngineSerialCollectAll(t *testing.T) {
	// Two singleton groups (disjoint start windows) corrupted after
	// construction so each fails aggregation.
	bad1, err := NewFlexOffer(0, 0, Slice{Min: 1, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad2, err := NewFlexOffer(5, 5, Slice{Min: 1, Max: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad1.TotalMin, bad1.TotalMax = 10, 0
	bad2.TotalMin, bad2.TotalMax = 10, 0
	offers := []*FlexOffer{bad1, bad2}

	for _, workers := range []int{1, 2} {
		eng := New(WithWorkers(workers), WithErrorMode(CollectAll))
		_, err := eng.Aggregate(context.Background(), offers)
		eng.Close()
		if err == nil {
			t.Fatalf("workers=%d: corrupted offers aggregated successfully", workers)
		}
		var ges GroupErrors
		if !errors.As(err, &ges) {
			t.Fatalf("workers=%d: error is %T, want GroupErrors: %v", workers, err, err)
		}
		if len(ges) != 2 {
			t.Fatalf("workers=%d: collected %d failures, want 2: %v", workers, len(ges), err)
		}
	}
}

// TestEngineCancelledContext checks that every method refuses a
// cancelled context up front.
func TestEngineCancelledContext(t *testing.T) {
	offers, target := engineTestFleet(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(WithWorkers(2), WithGrouping(engineTestGroup))
	defer eng.Close()
	if _, err := eng.Aggregate(ctx, offers); err == nil {
		t.Error("Aggregate accepted a cancelled context")
	}
	if _, err := eng.Schedule(ctx, offers, target); err == nil {
		t.Error("Schedule accepted a cancelled context")
	}
	if _, err := eng.Pipeline(ctx, offers, target); err == nil {
		t.Error("Pipeline accepted a cancelled context")
	}
	if _, err := eng.Measures(ctx, offers); err == nil {
		t.Error("Measures accepted a cancelled context")
	}
}

// TestEngineCloseDegradesGracefully: calls after Close must still
// produce correct results (on the calling goroutine).
func TestEngineCloseDegradesGracefully(t *testing.T) {
	offers, _ := engineTestFleet(t, 100)
	want, err := AggregateAll(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(WithWorkers(4), WithGrouping(engineTestGroup))
	eng.Close()
	eng.Close() // idempotent
	got, err := eng.Aggregate(context.Background(), offers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Aggregate after Close diverged from AggregateAll")
	}
}

func TestEngineWorkers(t *testing.T) {
	serial := New(WithWorkers(1))
	defer serial.Close()
	if serial.Workers() != 1 {
		t.Errorf("serial engine Workers() = %d, want 1", serial.Workers())
	}
	pooled := New(WithWorkers(5))
	defer pooled.Close()
	if pooled.Workers() != 5 {
		t.Errorf("pooled engine Workers() = %d, want 5", pooled.Workers())
	}
	if Default() != Default() {
		t.Error("Default() is not a singleton")
	}
}

// TestEnginePerCallOverrides pins the satellite contract that options
// passed to a method override the engine's option set for that one
// call only: a tolerance sweep over one shared engine produces exactly
// what a dedicated engine per tolerance produces, and the shared
// engine's own options are untouched afterwards.
func TestEnginePerCallOverrides(t *testing.T) {
	offers, target := engineTestFleet(t, 200)
	shared := New(WithWorkers(3), WithGrouping(engineTestGroup), WithSafe(true))
	defer shared.Close()

	for _, tol := range []int{0, 2, 5, 9} {
		gp := GroupParams{ESTTolerance: tol, TFTolerance: -1, MaxGroupSize: 24}
		dedicated := New(WithWorkers(3), WithGrouping(gp), WithSafe(true))
		want, err := dedicated.Aggregate(context.Background(), offers)
		dedicated.Close()
		if err != nil {
			t.Fatal(err)
		}
		got, err := shared.Aggregate(context.Background(), offers, WithGrouping(gp))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("tol=%d: per-call WithGrouping diverged from dedicated engine", tol)
		}
	}

	// The override must not stick: the next plain call uses the
	// engine's own grouping again.
	want, err := AggregateAllSafe(offers, engineTestGroup)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shared.Aggregate(context.Background(), offers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("per-call override leaked into the engine's option set")
	}

	// Per-call WithPeakCap governs Schedule and Pipeline alike.
	capped := New(WithWorkers(1), WithGrouping(engineTestGroup), WithSafe(true), WithPeakCap(40))
	wantSched, err := capped.Schedule(context.Background(), offers, target)
	capped.Close()
	if err != nil {
		t.Fatal(err)
	}
	gotSched, err := shared.Schedule(context.Background(), offers, target, WithPeakCap(40))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantSched, gotSched) {
		t.Fatal("per-call WithPeakCap diverged from dedicated engine on Schedule")
	}

	// Per-call WithNorm on Measures.
	wantTab := expectedMeasureTable(t, measureSet(L2), offers)
	gotTab, err := shared.Measures(context.Background(), offers, WithNorm(L2))
	if err != nil {
		t.Fatal(err)
	}
	if !measureTablesEqual(wantTab, gotTab) {
		t.Fatal("per-call WithNorm diverged from the L2 baseline")
	}
}

// TestEngineAggregateGroups pins the pre-computed-groups entry point:
// balance-aware groups aggregate to exactly what the parallel free
// function produces, for serial and pooled engines, safe and not.
func TestEngineAggregateGroups(t *testing.T) {
	offers, _ := engineTestFleet(t, 200)
	groups := BalanceGroups(offers, BalanceParams{ESTTolerance: 24, MaxGroupSize: 12})
	wantAgs := make([]*Aggregated, 0, len(groups))
	for _, g := range groups {
		ag, err := Aggregate(g)
		if err != nil {
			t.Fatal(err)
		}
		wantAgs = append(wantAgs, ag)
	}
	for _, workers := range []int{1, 2, 4} {
		eng := New(WithWorkers(workers))
		got, err := eng.AggregateGroups(context.Background(), groups)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantAgs, got) {
			eng.Close()
			t.Fatalf("workers=%d: AggregateGroups diverged from per-group Aggregate", workers)
		}
		// Safe per-call override matches AggregateSafe per group.
		gotSafe, err := eng.AggregateGroups(context.Background(), groups, WithSafe(true))
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range groups {
			ag, err := AggregateSafe(g)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ag, gotSafe[i]) {
				t.Fatalf("workers=%d group=%d: safe AggregateGroups diverged", workers, i)
			}
		}
	}
}

// TestEnginePoolStats sanity-checks the serving-layer gauges.
func TestEnginePoolStats(t *testing.T) {
	serial := New(WithWorkers(1))
	defer serial.Close()
	if w, b := serial.PoolStats(); w != 1 || b != 0 {
		t.Errorf("serial PoolStats() = (%d,%d), want (1,0)", w, b)
	}
	if serial.Executor() != nil {
		t.Error("serial engine must expose a nil Executor")
	}
	pooled := New(WithWorkers(3))
	defer pooled.Close()
	if w, _ := pooled.PoolStats(); w != 3 {
		t.Errorf("pooled PoolStats() workers = %d, want 3", w)
	}
	if pooled.Executor() == nil {
		t.Error("pooled engine must expose its pool as an Executor")
	}
}
