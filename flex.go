// Package flex is the public API of flexmeasures, a Go implementation of
// the flex-offer energy-flexibility model and the eight flexibility
// measures of
//
//	E. Valsomatzis, K. Hose, T. B. Pedersen, L. Šikšnys:
//	"Measuring and Comparing Energy Flexibilities",
//	Proceedings of the Workshops of the EDBT/ICDT 2015 Joint Conference.
//
// A flex-offer (Definition 1) describes a prosumer's flexible energy
// need: a start-time window [tes, tls], a profile of unit-duration
// slices each carrying an energy range [amin, amax], and total energy
// constraints [cmin, cmax]. An Assignment (Definition 2) instantiates
// the offer into a concrete start time and energy values. The package
// quantifies how much flexibility an offer (or a set of offers) holds
// via the paper's measures — time, energy, product, vector, time-series,
// assignments, absolute area and relative area — plus a displacement
// extension, and ships the substrates the paper's two application
// scenarios need: aggregation with disaggregation, target-tracking
// scheduling, and market valuation.
//
// # The Engine
//
// The primary entry point is the Engine: one long-lived,
// goroutine-safe object, configured once with functional options, that
// owns a persistent worker pool and presents every batch operation as a
// context-first method:
//
//	eng := flex.New(
//		flex.WithWorkers(8),
//		flex.WithGrouping(flex.GroupParams{ESTTolerance: 2, TFTolerance: -1}),
//		flex.WithSafe(true),
//		flex.WithPeakCap(500),
//	)
//	defer eng.Close()
//
//	ags, err := eng.Aggregate(ctx, offers)          // Scenario 1 aggregation
//	res, err := eng.Pipeline(ctx, offers, target)   // group→aggregate→schedule→disaggregate
//	tab, err := eng.Measures(ctx, offers)           // the paper's eight measures
//
// Create one Engine at startup, share it across requests (concurrent
// calls share the pool without sharing per-call state), and Close it on
// shutdown. One option set governs every method — WithPeakCap, for
// example, applies to Schedule and Pipeline alike — so the same setting
// can never silently differ between paths. Any method also accepts
// per-call options that override the engine's set for that one call
// (eng.Aggregate(ctx, offers, WithGrouping(p)) sweeps a grouping
// tolerance without a second engine), and pre-computed groups — from
// BalanceGroups or OptimizeGroups — go straight to
// Engine.AggregateGroups.
//
// Every stage of the chain is parallel, grouping included: the
// pipeline's entry stage is a pluggable Grouper (internal/grouping),
// and the engine's default — the sharded threshold grouper — sorts the
// offers with a parallel merge sort, cuts the sorted order into
// independent shards at every earliest-start gap wider than the
// tolerance, and packs the shards concurrently on the pool,
// bit-identical to the serial GroupOffers for every worker count.
// WithGrouper installs another strategy (BalanceGrouper,
// OptimizeGrouper, or your own); WithGrouping tunes the default's
// tolerances. Aggregation across groups is embarrassingly parallel, so
// Engine.Aggregate shards the grouping output across the pool and still
// yields results identical to the serial path in the same group order
// for every worker count; per-group failures are reported as GroupError
// (first-error mode) or GroupErrors (collect-all mode), each
// identifying the failing group by index, size and first constituent
// ID. Engine.Pipeline chains the paper's entire Scenario 1 — group →
// aggregate → schedule → disaggregate — without materializing any
// stage's batch: each packed shard's groups go straight to the
// aggregation workers, each finished aggregate is handed straight to
// the scheduler, which places it the moment its group index is next,
// and the scheduled aggregates fan back out to per-prosumer assignments
// on the same pool. The scheduler scores every candidate start in
// O(profile) with zero allocations via an incremental load−target
// residual (timeseries.Accumulator); ScheduleOptions.FullRecompute
// retains the legacy full-recompute evaluator as an equivalence oracle,
// for scheduling and for the Improve local search alike.
//
// # Deprecated free functions
//
// The batch operations used to be free functions — AggregateAll,
// AggregateAllParallel(Ctx), AggregateWithConfig, AggregateAllStream,
// SchedulePipeline, Schedule, Improve, DisaggregateAllParallel — the
// parallel ones each spinning a goroutine pool up and down per call.
// They all still work as thin deprecated shims: the parallel and
// streaming ones borrow the shared Default engine's persistent pool,
// the inherently serial ones (AggregateAll, AggregateAllSafe, Schedule,
// Improve, ScheduleAndImprove) stay serial and never instantiate the
// Default engine. Their outputs remain bit-identical to the
// corresponding Engine methods; new code should construct an Engine.
// The per-offer primitives (constructors, the measure functions,
// market valuation, workload generation, codecs) are not deprecated.
//
// # Quick start
//
//	f, err := flex.NewFlexOffer(1, 6,
//		flex.Slice{Min: 1, Max: 3}, flex.Slice{Min: 2, Max: 4},
//		flex.Slice{Min: 0, Max: 5}, flex.Slice{Min: 0, Max: 3})
//	if err != nil { ... }
//	fmt.Println(flex.ProductFlexibility(f)) // 60, the paper's Example 3
//
// The examples/ directory contains runnable programs for the paper's EV
// use case, aggregation (Scenario 1) and flexibility trading
// (Scenario 2); cmd/flexbench regenerates every table and figure of the
// paper, cmd/flexctl drives the Engine from the command line, and
// cmd/flexd serves it over HTTP — NDJSON offer ingestion sharded
// across the engine's pool (internal/ingest), the full Scenario-1
// chain as POST /v1/schedule, and the measures as GET /v1/measures.
package flex

import (
	"context"
	"math/big"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grid"
	"flexmeasures/internal/grouping"
	"flexmeasures/internal/timeseries"
)

// Model types (Definitions 1 and 2).
type (
	// FlexOffer is the paper's Definition 1.
	FlexOffer = flexoffer.FlexOffer
	// Slice is one unit-duration element of the energy profile.
	Slice = flexoffer.Slice
	// Assignment is the paper's Definition 2.
	Assignment = flexoffer.Assignment
	// Kind classifies offers as consumption, production or mixed.
	Kind = flexoffer.Kind
	// Builder assembles flex-offers fluently.
	Builder = flexoffer.Builder
	// Series is an integer-valued time series.
	Series = timeseries.Series
	// Norm selects a norm (L1, L2, LInf) for vectors and series.
	Norm = timeseries.Norm
)

// Kind values.
const (
	Positive = flexoffer.Positive
	Negative = flexoffer.Negative
	Mixed    = flexoffer.Mixed
)

// Norm values.
const (
	L1   = timeseries.L1
	L2   = timeseries.L2
	LInf = timeseries.LInf
)

// NewFlexOffer returns a validated flex-offer with the totals defaulted
// to the slice sums; see flexoffer.New.
func NewFlexOffer(earliestStart, latestStart int, slices ...Slice) (*FlexOffer, error) {
	return flexoffer.New(earliestStart, latestStart, slices...)
}

// NewFlexOfferWithTotals returns a validated flex-offer with explicit
// total energy constraints cmin and cmax.
func NewFlexOfferWithTotals(earliestStart, latestStart int, slices []Slice, totalMin, totalMax int64) (*FlexOffer, error) {
	return flexoffer.NewWithTotals(earliestStart, latestStart, slices, totalMin, totalMax)
}

// NewBuilder starts a fluent flex-offer builder.
func NewBuilder() *Builder { return flexoffer.NewBuilder() }

// NewAssignment returns an assignment with a copy of the values.
func NewAssignment(start int, values ...int64) Assignment {
	return flexoffer.NewAssignment(start, values...)
}

// NewSeries returns a time series starting at start.
func NewSeries(start int, values ...int64) Series {
	return timeseries.New(start, values...)
}

// Measure presents any of the paper's flexibility measures uniformly;
// see the core package documentation for the Section 4 set semantics.
type Measure = core.Measure

// Characteristics is one column of the paper's Table 1.
type Characteristics = core.Characteristics

// Vector is the Definition 4 flexibility vector ⟨tf, ef⟩.
type Vector = core.Vector

// The eight canonical measures as Measure implementations.
type (
	// TimeMeasure is Section 3.1's time flexibility.
	TimeMeasure = core.TimeMeasure
	// EnergyMeasure is Section 3.1's energy flexibility.
	EnergyMeasure = core.EnergyMeasure
	// ProductMeasure is Definition 3.
	ProductMeasure = core.ProductMeasure
	// VectorMeasure is Definition 4 under a norm.
	VectorMeasure = core.VectorMeasure
	// SeriesMeasure is Definition 7 under a norm.
	SeriesMeasure = core.SeriesMeasure
	// AssignmentsMeasure is Definition 8.
	AssignmentsMeasure = core.AssignmentsMeasure
	// AbsoluteAreaMeasure is Definition 10.
	AbsoluteAreaMeasure = core.AbsoluteAreaMeasure
	// RelativeAreaMeasure is Definition 11.
	RelativeAreaMeasure = core.RelativeAreaMeasure
	// WeightedMeasure combines measures as Section 4 suggests.
	WeightedMeasure = core.WeightedMeasure
)

// TimeFlexibility returns tf(f) = tls − tes.
func TimeFlexibility(f *FlexOffer) int { return core.TimeFlexibility(f) }

// EnergyFlexibility returns ef(f) = cmax − cmin.
func EnergyFlexibility(f *FlexOffer) int64 { return core.EnergyFlexibility(f) }

// ProductFlexibility returns tf(f)·ef(f) (Definition 3).
func ProductFlexibility(f *FlexOffer) int64 { return core.ProductFlexibility(f) }

// VectorFlexibility returns ⟨tf(f), ef(f)⟩ (Definition 4).
func VectorFlexibility(f *FlexOffer) Vector { return core.VectorFlexibility(f) }

// SeriesFlexibility returns the Definition 7 value under the norm.
func SeriesFlexibility(f *FlexOffer, n Norm) (float64, error) {
	return core.SeriesFlexibility(f, n)
}

// AssignmentFlexibility returns the Definition 8 assignment count.
func AssignmentFlexibility(f *FlexOffer) *big.Int { return core.AssignmentFlexibility(f) }

// AbsoluteAreaFlexibility returns the Definition 10 value.
func AbsoluteAreaFlexibility(f *FlexOffer) int64 { return core.AbsoluteAreaFlexibility(f) }

// RelativeAreaFlexibility returns the Definition 11 value.
func RelativeAreaFlexibility(f *FlexOffer) (float64, error) {
	return core.RelativeAreaFlexibility(f)
}

// DisplacementFlexibility is this library's extension measure curing the
// time blindness of the series measure (paper Example 13).
func DisplacementFlexibility(f *FlexOffer) (float64, error) {
	return core.DisplacementFlexibility(f)
}

// UnionAreaSize returns |⋃ area(fa)| over all assignments (Definition 10's
// first operand).
func UnionAreaSize(f *FlexOffer) int64 { return grid.UnionAreaSize(f) }

// AllMeasures returns the paper's eight measures in Table 1 order.
func AllMeasures() []Measure { return core.AllMeasures() }

// LookupMeasure resolves a measure by name (e.g. "product", "vector_l2").
func LookupMeasure(name string) (Measure, error) { return core.LookupMeasure(name) }

// MeasureNames lists the canonical measure names in Table 1 order.
func MeasureNames() []string { return core.MeasureNames() }

// NewWeightedMeasure validates and returns a weighted composite measure
// (Section 4's "Weighting is one way of combining different flexibility
// measures").
func NewWeightedMeasure(label string, measures []Measure, weights []float64) (*WeightedMeasure, error) {
	return core.NewWeightedMeasure(label, measures, weights)
}

// Table1 reproduces the paper's Table 1 for the given measures.
func Table1(measures []Measure) (cols []string, rows []string, cells [][]bool) {
	return core.Table1(measures)
}

// VerifyCharacteristics empirically checks a measure's declared Table 1
// row by probing it with witness flex-offers.
func VerifyCharacteristics(m Measure) error { return core.VerifyCharacteristics(m) }

// Aggregation (Scenario 1). See the aggregate package for the start-
// alignment semantics and the grouping package for the partitioning
// strategies.
type (
	// Aggregated couples an aggregate flex-offer with its constituents.
	Aggregated = aggregate.Aggregated
	// GroupParams controls similarity-based grouping.
	GroupParams = aggregate.GroupParams
	// BalanceParams controls balance-aware grouping.
	BalanceParams = aggregate.BalanceParams
	// Grouper is a pluggable partitioning strategy — the entry stage of
	// the pipeline. Install one on an Engine with WithGrouper; the
	// grouping package ships the implementations.
	Grouper = grouping.Grouper
	// ShardedGrouper is the parallel threshold strategy: offers are
	// stably sorted by (earliest start, time flexibility) with a
	// parallel merge sort, cut into independent shards at every
	// earliest-start gap wider than the tolerance, and greedily packed
	// per shard — bit-identical to GroupOffers for every worker count.
	// Engines run it by default; construct one directly (optionally
	// with Pool set to an Engine's Executor) to tune its thresholds.
	ShardedGrouper = grouping.Sharded
	// ThresholdGrouper is the serial threshold strategy (the
	// ShardedGrouper's oracle).
	ThresholdGrouper = grouping.Threshold
	// BalanceGrouper is the balance-aware strategy of BalanceGroups as
	// a Grouper.
	BalanceGrouper = grouping.Balance
)

// OptimizeGrouper adapts the loss-bounded optimizing strategy of
// OptimizeGroups into a Grouper for WithGrouper.
func OptimizeGrouper(p OptimizeParams) Grouper {
	return aggregate.Optimizer(p)
}

// Aggregate combines a group of flex-offers into one by start alignment.
func Aggregate(group []*FlexOffer) (*Aggregated, error) { return aggregate.Aggregate(group) }

// GroupOffers partitions offers into aggregation-compatible groups.
func GroupOffers(offers []*FlexOffer, p GroupParams) [][]*FlexOffer {
	return aggregate.Group(offers, p)
}

// BalanceGroups partitions offers into groups mixing production and
// consumption so each aggregate nets out near zero (reference [14]).
func BalanceGroups(offers []*FlexOffer, p BalanceParams) [][]*FlexOffer {
	return aggregate.BalanceGroups(offers, p)
}

// AggregateAll groups and aggregates in one call.
//
// Deprecated: create a long-lived [Engine] with [New] (configuring the
// grouping via [WithGrouping] and [WithWorkers](1) for the serial
// path) and call [Engine.Aggregate]. This shim stays fully serial — it
// does not instantiate the [Default] engine.
func AggregateAll(offers []*FlexOffer, p GroupParams) ([]*Aggregated, error) {
	return aggregate.AggregateAll(offers, p)
}

// Parallel aggregation pipeline types; see the aggregate package for the
// scheduling and determinism guarantees.
type (
	// ParallelParams controls the aggregation worker pool.
	ParallelParams = aggregate.ParallelParams
	// Executor is the execution substrate of a parallel call
	// (ParallelParams.Pool): an Engine's persistent pool implements
	// it, nil means per-call goroutine spin-up.
	Executor = aggregate.Executor
	// ErrorMode selects first-error or collect-all failure reporting.
	ErrorMode = aggregate.ErrorMode
	// GroupError identifies one failing group (index, size, first ID).
	GroupError = aggregate.GroupError
	// GroupErrors is the collect-all failure report, sorted by group.
	GroupErrors = aggregate.GroupErrors
)

// ErrorMode values.
const (
	FirstError = aggregate.FirstError
	CollectAll = aggregate.CollectAll
)

// AggregateAllParallel is AggregateAll executed by a worker pool; the
// result is identical to AggregateAll for every worker count.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Aggregate]; this shim borrows the shared [Default] engine's
// persistent pool instead of spinning up goroutines per call.
func AggregateAllParallel(offers []*FlexOffer, gp GroupParams, pp ParallelParams) ([]*Aggregated, error) {
	return AggregateAllParallelCtx(context.Background(), offers, gp, pp)
}

// AggregateAllParallelCtx is AggregateAllParallel with cancellation.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Aggregate]; this shim borrows the shared [Default] engine's
// persistent pool instead of spinning up goroutines per call.
func AggregateAllParallelCtx(ctx context.Context, offers []*FlexOffer, gp GroupParams, pp ParallelParams) ([]*Aggregated, error) {
	return aggregate.AggregateAllParallelCtx(ctx, offers, gp, Default().parallelParams(pp))
}

// Config bundles the options of the legacy one-call entry points
// AggregateWithConfig and SchedulePipeline. It is the per-call
// counterpart of an Engine's option set — New's functional options
// cover exactly these fields — and the engine applies one Config-shaped
// option set uniformly across all its methods, so a setting like
// PeakCap can never differ between the scheduling paths.
//
// Deprecated: configure a long-lived [Engine] with [New]'s options
// ([WithGrouping], [WithWorkers], [WithErrorMode], [WithSafe],
// [WithPeakCap]) instead.
type Config struct {
	// Group controls similarity-based grouping.
	Group GroupParams
	// Workers sizes the aggregation worker pool: 0 means one worker
	// per logical CPU, 1 forces the serial pipeline, and larger values
	// fan the groups out across that many goroutines.
	Workers int
	// ErrorMode selects first-error or collect-all failure reporting.
	// Collect-all is honored for every Workers value, including the
	// serial Workers == 1 path.
	ErrorMode ErrorMode
	// Safe tightens every constituent's totals into its slice bounds
	// before aggregating (AggregateSafe), guaranteeing that every valid
	// aggregate assignment disaggregates.
	Safe bool
	// PeakCap, when positive, makes the scheduler treat |load| above
	// the cap as prohibitively expensive (soft cap; see
	// ScheduleOptions.PeakCap). Of the legacy entry points only
	// SchedulePipeline schedules, so only it consults the cap; on an
	// Engine the equivalent option (WithPeakCap) applies to Schedule
	// and Pipeline alike.
	PeakCap int64
}

// AggregateWithConfig groups and aggregates under cfg, routing to the
// serial or parallel pipeline according to cfg.Workers. A cancelled ctx
// is honored on both routes (the serial pipeline checks it up front;
// the parallel one also stops claiming groups mid-batch).
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Aggregate]; this shim borrows the shared [Default] engine's
// persistent pool instead of spinning up goroutines per call.
func AggregateWithConfig(ctx context.Context, offers []*FlexOffer, cfg Config) ([]*Aggregated, error) {
	return Default().aggregateWith(ctx, offers, cfg)
}

// AggregateStreamItem is one completed group of a streaming
// aggregation: items arrive in completion order and Index identifies
// the group in grouping order.
type AggregateStreamItem = aggregate.StreamItem

// AggregateAllStream groups and aggregates concurrently, emitting each
// aggregate as soon as its worker finishes it; the returned count tells
// the consumer how many items to expect. The streaming input side of
// the pipeline, exposed for consumers with their own placement logic.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Pipeline] for the full chain; this shim borrows the shared
// [Default] engine's persistent pool.
func AggregateAllStream(ctx context.Context, offers []*FlexOffer, gp GroupParams, pp ParallelParams) (<-chan AggregateStreamItem, int) {
	return aggregate.AggregateAllStream(ctx, offers, gp, Default().parallelParams(pp))
}

// DisaggregateAllParallel maps scheduled aggregate assignments back to
// their constituents concurrently: assignments[i] must be valid for
// ags[i].Offer, and the result holds one assignment per constituent in
// constituent order. Failure reporting follows pp.ErrorMode exactly
// like the aggregation pipeline.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Disaggregate]; this shim borrows the shared [Default]
// engine's persistent pool.
func DisaggregateAllParallel(ctx context.Context, ags []*Aggregated, assignments []Assignment, pp ParallelParams) ([][]Assignment, error) {
	return aggregate.DisaggregateAllParallel(ctx, ags, assignments, Default().parallelParams(pp))
}

// PipelineResult is the output of SchedulePipeline: the complete
// Scenario-1 chain from raw offers to per-prosumer assignments.
type PipelineResult struct {
	// Aggregates holds the aggregated groups in group order.
	Aggregates []*Aggregated
	// AggregateSchedule is the schedule of the aggregates:
	// AggregateSchedule.Assignments[i] instantiates Aggregates[i].Offer.
	AggregateSchedule *ScheduleResult
	// Disaggregated[i][j] is the assignment of
	// Aggregates[i].Constituents[j]. Disaggregation preserves slot-wise
	// sums, so the constituent assignments reproduce Load exactly.
	Disaggregated [][]Assignment
	// Load is the slot-wise total load of the schedule.
	Load Series
}

// SchedulePipeline runs the paper's full Scenario-1 chain — group →
// aggregate → schedule → disaggregate — as one streaming pipeline:
// aggregation workers (cfg.Workers, one per CPU when 0) hand each
// finished aggregate straight to the scheduler, which places it as soon
// as its group index is next, overlapping aggregation CPU with
// placement instead of materializing the full aggregate batch first;
// the scheduled aggregates are then disaggregated by the same worker
// pool. The resulting schedule is identical to the materialized
// sequence AggregateWithConfig → Schedule (arrival order) →
// Disaggregate for every worker count.
//
// Scheduling uses arrival (group) order and the incremental evaluator;
// cfg.PeakCap applies a soft peak cap, and cfg.Safe guarantees
// disaggregability by tightening constituents before aggregation.
//
// Deprecated: create a long-lived [Engine] with [New] and call
// [Engine.Pipeline]; this shim borrows the shared [Default] engine's
// persistent pool instead of spinning up goroutines per call.
func SchedulePipeline(ctx context.Context, offers []*FlexOffer, target Series, cfg Config) (*PipelineResult, error) {
	return Default().pipelineWith(ctx, offers, target, cfg)
}

// Alignment selects the anchoring of constituents inside an aggregate
// (AlignEarliest or AlignLatest).
type Alignment = aggregate.Alignment

// Alignment strategies.
const (
	AlignEarliest = aggregate.AlignEarliest
	AlignLatest   = aggregate.AlignLatest
)

// AggregateAligned combines a group under the chosen alignment.
func AggregateAligned(group []*FlexOffer, al Alignment) (*Aggregated, error) {
	return aggregate.AggregateAligned(group, al)
}

// AggregateSafe aggregates after tightening total constraints into the
// slice bounds, guaranteeing that every valid aggregate assignment
// disaggregates; AggregateAllSafe is the grouped form.
func AggregateSafe(group []*FlexOffer) (*Aggregated, error) {
	return aggregate.AggregateSafe(group)
}

// AggregateAllSafe groups and safe-aggregates in one call.
//
// Deprecated: create a long-lived [Engine] with [New] (configuring
// [WithGrouping], [WithSafe](true) and [WithWorkers](1) for the serial
// path) and call [Engine.Aggregate]. This shim stays fully serial — it
// does not instantiate the [Default] engine.
func AggregateAllSafe(offers []*FlexOffer, p GroupParams) ([]*Aggregated, error) {
	return aggregate.AggregateAllSafe(offers, p)
}

// OptimizeParams controls loss-bounded optimizing aggregation.
type OptimizeParams = aggregate.OptimizeParams

// OptimizeGroups partitions offers by greedy agglomerative merging under
// a relative flexibility-loss bound — the paper's Section 6 future work
// of performing aggregation jointly with flexibility optimization.
func OptimizeGroups(offers []*FlexOffer, p OptimizeParams) ([][]*FlexOffer, error) {
	return aggregate.OptimizeGroups(offers, p)
}

// RetainedFraction reports the share of the constituents' flexibility
// the aggregates keep under measure m (1 = lossless).
func RetainedFraction(ags []*Aggregated, m Measure) (float64, error) {
	return aggregate.RetainedFraction(ags, m)
}

// Extension measures beyond the paper's eight (Section 6 direction).
type (
	// EntropyMeasure is log₂ of the assignment count.
	EntropyMeasure = core.EntropyMeasure
	// DisplacementMeasure is the earth-mover travel of the maximal
	// profile across the start window.
	DisplacementMeasure = core.DisplacementMeasure
	// TemporalSeriesMeasure is Definition 7 under the temporal Lp norm
	// of the paper's reference [7].
	TemporalSeriesMeasure = core.TemporalSeriesMeasure
)

// ExtensionMeasures returns this library's measures beyond the paper's
// eight.
func ExtensionMeasures() []Measure { return core.ExtensionMeasures() }

// EntropyFlexibility returns log₂ of the Definition 8 assignment count.
func EntropyFlexibility(f *FlexOffer) float64 { return core.EntropyFlexibility(f) }

// EncodeJSON writes offers as an indented JSON document; DecodeJSON
// reads one back. EncodeBinary/DecodeBinary use the compact varint
// stream format for bulk storage.
var (
	EncodeJSON   = flexoffer.Encode
	DecodeJSON   = flexoffer.Decode
	EncodeBinary = flexoffer.EncodeBinary
	DecodeBinary = flexoffer.DecodeBinary
)
