package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledPathIsInert pins the disabled-path contract: with no
// trace in the context every obs call is a no-op, nil spans accept
// End, and the context comes back unchanged (no allocation of a new
// context on the hot path).
func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, StageAggregate)
	if sp != nil {
		t.Fatal("Start without a trace returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a trace allocated a new context")
	}
	sp.End() // must not panic
	RecordSince(ctx, StagePoolQueue, time.Now())
	AddOffers(ctx, 5)
	AddGroups(ctx, 5)
	if got := WithShard(ctx, 3); got != ctx {
		t.Fatal("WithShard without a trace allocated a new context")
	}
	var nilTracer *Tracer
	if nilTracer.Start("x") != nil {
		t.Fatal("nil tracer returned a trace")
	}
	if nilTracer.Last(10) != nil {
		t.Fatal("nil tracer returned traces")
	}
	nilTracer.Metrics().Observe(StageSchedule, -1, time.Millisecond)
}

// TestTraceSpanTree pins nesting, shard attributes, counters and the
// ring: a parent span with two sharded children must come back from
// Finish with correct Parent indices, and the tracer must serve it
// newest-first from Last.
func TestTraceSpanTree(t *testing.T) {
	tc := NewTracer(4, 16)
	tr := tc.Start("req-1")
	ctx := NewContext(context.Background(), tr)

	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the installed trace")
	}
	pctx, parent := Start(ctx, StageAggregate)
	for shard := 0; shard < 2; shard++ {
		_, child := Start(WithShard(pctx, shard), StageGroupSort)
		child.End()
	}
	parent.End()
	AddOffers(ctx, 10)
	AddGroups(ctx, 3)

	td := tr.Finish()
	if td.ID != "req-1" || td.Offers != 10 || td.Groups != 3 {
		t.Fatalf("trace header wrong: %+v", td)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(td.Spans))
	}
	if td.Spans[0].Name != StageAggregate || td.Spans[0].Parent != -1 || td.Spans[0].Shard != -1 {
		t.Fatalf("parent span wrong: %+v", td.Spans[0])
	}
	for i := 1; i <= 2; i++ {
		if td.Spans[i].Parent != 0 || td.Spans[i].Shard != i-1 || td.Spans[i].DurationNs <= 0 {
			t.Fatalf("child span %d wrong: %+v", i, td.Spans[i])
		}
	}
	// Second Finish is a no-op.
	if again := tr.Finish(); again.ID != "" {
		t.Fatal("second Finish returned data")
	}
	last := tc.Last(10)
	if len(last) != 1 || last[0].ID != "req-1" {
		t.Fatalf("ring contents wrong: %+v", last)
	}
	tree := td.Tree()
	for _, want := range []string{"req-1", StageAggregate, StageGroupSort + "[shard=1]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestRingBoundedNewestFirst fills the ring past capacity and checks
// eviction order.
func TestRingBoundedNewestFirst(t *testing.T) {
	tc := NewTracer(3, 4)
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		tc.Start(id).Finish()
	}
	got := tc.Last(0)
	if len(got) != 3 || got[0].ID != "e" || got[1].ID != "d" || got[2].ID != "c" {
		t.Fatalf("ring order wrong: %+v", got)
	}
	if one := tc.Last(1); len(one) != 1 || one[0].ID != "e" {
		t.Fatalf("Last(1) wrong: %+v", one)
	}
}

// TestArenaOverflowCountsDropped claims more spans than the arena
// holds; the excess must be counted, not recorded, and recording must
// not panic.
func TestArenaOverflowCountsDropped(t *testing.T) {
	tc := NewTracer(2, 4)
	tr := tc.Start("")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, StageSchedule)
		sp.End()
	}
	td := tr.Finish()
	if len(td.Spans) != 4 || td.DroppedSpans != 6 {
		t.Fatalf("got %d spans, %d dropped; want 4 and 6", len(td.Spans), td.DroppedSpans)
	}
	if td.ID == "" {
		t.Fatal("generated request ID is empty")
	}
}

// TestRecordSince pins the retroactive-span path used for pool
// queue-wait: the span must cover t0..now.
func TestRecordSince(t *testing.T) {
	tc := NewTracer(2, 4)
	tr := tc.Start("r")
	ctx := NewContext(context.Background(), tr)
	t0 := time.Now().Add(-5 * time.Millisecond)
	RecordSince(ctx, StagePoolQueue, t0)
	td := tr.Finish()
	if len(td.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(td.Spans))
	}
	if d := td.Spans[0].DurationNs; d < int64(4*time.Millisecond) {
		t.Fatalf("queue-wait span too short: %v", time.Duration(d))
	}
}

// TestMetricsSeries pins the exposition snapshot: deterministic
// ordering, shard -1 first, cumulative totals.
func TestMetricsSeries(t *testing.T) {
	m := NewMetrics()
	m.Observe(StageSchedule, -1, 2*time.Millisecond)
	m.Observe(StageAggregate, 1, time.Millisecond)
	m.Observe(StageAggregate, 0, time.Millisecond)
	m.Observe(StageAggregate, 0, 3*time.Second)
	s := m.Series()
	if len(s) != 3 {
		t.Fatalf("got %d series, want 3", len(s))
	}
	if s[0].Stage != StageAggregate || s[0].Shard != 0 || s[0].Total != 2 {
		t.Fatalf("series[0] wrong: %+v", s[0])
	}
	if s[1].Stage != StageAggregate || s[1].Shard != 1 {
		t.Fatalf("series[1] wrong: %+v", s[1])
	}
	if s[2].Stage != StageSchedule || s[2].Shard != -1 {
		t.Fatalf("series[2] wrong: %+v", s[2])
	}
	var n int64
	for _, c := range s[0].Counts {
		n += c
	}
	if n != s[0].Total {
		t.Fatalf("bucket counts sum to %d, total %d", n, s[0].Total)
	}
	if s[0].Sum < 3.0 {
		t.Fatalf("sum %v, want >= 3s", s[0].Sum)
	}
}

// TestTraceConcurrentHammer drives one trace from 12 goroutines
// starting, ending and retro-recording spans while another goroutine
// finishes the trace mid-flight — the -race exercise for the arena's
// publish protocol. No assertion beyond "no race, no panic, sane
// output".
func TestTraceConcurrentHammer(t *testing.T) {
	tc := NewTracer(8, 64)
	for round := 0; round < 20; round++ {
		tr := tc.Start("")
		ctx := NewContext(context.Background(), tr)
		var wg sync.WaitGroup
		for g := 0; g < 12; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					sctx, sp := Start(WithShard(ctx, g%4), StageAggregate)
					_, child := Start(sctx, StagePoolQueue)
					child.End()
					sp.End()
					AddOffers(ctx, 1)
				}
			}(g)
		}
		if round%2 == 0 {
			tr.Finish() // race Finish against in-flight spans
		}
		wg.Wait()
		td := tr.Finish()
		_ = td.Tree()
	}
	if len(tc.Last(0)) != 8 {
		t.Fatalf("ring should be full, got %d", len(tc.Last(0)))
	}
}

// BenchmarkStartEndDisabled measures the disabled path: a context
// lookup plus a nil check. This is the overhead every pipeline stage
// pays when tracing is off.
func BenchmarkStartEndDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, StageSchedule)
		sp.End()
	}
}

// BenchmarkStartEndEnabled measures the enabled path: one atomic slot
// claim, field writes, and a histogram observe on End.
func BenchmarkStartEndEnabled(b *testing.B) {
	tc := NewTracer(4, 1<<20)
	tr := tc.Start("bench")
	ctx := NewContext(context.Background(), tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%(1<<19) == 0 { // fresh arena before overflow
			tr.Finish()
			tr = tc.Start("bench")
			ctx = NewContext(context.Background(), tr)
		}
		_, sp := Start(ctx, StageSchedule)
		sp.End()
	}
}
