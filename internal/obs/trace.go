package obs

import (
	"fmt"
	"strings"
	"time"
)

// TraceData is the immutable snapshot of one completed trace — the
// JSON shape served by GET /debug/traces.
type TraceData struct {
	// ID is the request ID (from X-Request-Id/traceparent, or
	// generated at the server edge).
	ID string `json:"id"`
	// Start is the wall-clock trace start.
	Start time.Time `json:"start"`
	// DurationNs is the whole request's duration in nanoseconds.
	DurationNs int64 `json:"durationNs"`
	// Offers and Groups count the offers ingested / groups formed
	// while this trace was active.
	Offers int64 `json:"offers"`
	Groups int64 `json:"groups"`
	// DroppedSpans counts spans that did not fit the arena.
	DroppedSpans int64 `json:"droppedSpans,omitempty"`
	// Spans are the recorded spans in arena (claim) order; Parent
	// indexes into this slice.
	Spans []SpanData `json:"spans"`
}

// SpanData is one recorded span.
type SpanData struct {
	// Name is the stage name (see Stages).
	Name string `json:"name"`
	// Parent is the index of the parent span in Spans, -1 for roots.
	Parent int `json:"parent"`
	// Shard is the engine shard the span ran for, -1 when the stage
	// was not shard-scoped.
	Shard int `json:"shard"`
	// StartNs is the span start as an offset from the trace start.
	StartNs int64 `json:"startNs"`
	// DurationNs is the span's duration; 0 means the span had not
	// ended when the trace finished.
	DurationNs int64 `json:"durationNs"`
}

// Tree renders the span forest as an indented text block — one span
// per line with duration, shard and start offset — for slow-request
// log lines and flexbench -trace output.
func (td TraceData) Tree() string {
	children := make([][]int, len(td.Spans))
	var roots []int
	for i, sp := range td.Spans {
		if sp.Parent >= 0 && sp.Parent < len(td.Spans) && sp.Parent != i {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s total=%s offers=%d groups=%d\n",
		td.ID, time.Duration(td.DurationNs), td.Offers, td.Groups)
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		sp := td.Spans[idx]
		b.WriteString(strings.Repeat("  ", depth+1))
		b.WriteString(sp.Name)
		if sp.Shard >= 0 {
			fmt.Fprintf(&b, "[shard=%d]", sp.Shard)
		}
		if sp.DurationNs > 0 {
			fmt.Fprintf(&b, " %s", time.Duration(sp.DurationNs))
		} else {
			b.WriteString(" (unended)")
		}
		fmt.Fprintf(&b, " @+%s\n", time.Duration(sp.StartNs))
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if td.DroppedSpans > 0 {
		fmt.Fprintf(&b, "  (%d spans dropped)\n", td.DroppedSpans)
	}
	return strings.TrimRight(b.String(), "\n")
}

// StageNames returns the distinct span names present in the trace —
// a convenience for tests asserting stage coverage.
func (td TraceData) StageNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sp := range td.Spans {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			out = append(out, sp.Name)
		}
	}
	return out
}
