package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StageBuckets are the histogram upper bounds (seconds) for
// per-stage latencies: stages run from microseconds (a pool handoff)
// to seconds (a large schedule), so the range is wider and the floor
// lower than the request histogram's.
var stageBuckets = [...]float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// StageBuckets is the bucket list in slice form for renderers.
var StageBuckets = stageBuckets[:]

// Hist is a fixed-bucket latency histogram with atomic counters,
// shaped like the server's request histogram so the exposition
// renderer can emit cumulative buckets at scrape time.
type Hist struct {
	counts [len(stageBuckets) + 1]atomic.Int64 // +1: +Inf overflow
	sumNs  atomic.Int64
	total  atomic.Int64
}

// Observe files one duration.
func (h *Hist) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(StageBuckets, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// Snapshot returns per-bucket (non-cumulative) counts including the
// +Inf overflow slot, the sum in seconds, and the total count.
func (h *Hist) Snapshot() (counts []int64, sum float64, total int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, time.Duration(h.sumNs.Load()).Seconds(), h.total.Load()
}

// stageKey identifies one (stage, shard) histogram series. shard -1
// means "no shard label".
type stageKey struct {
	stage string
	shard int
}

// Metrics is the sink for stage observations: one histogram per
// (stage, shard) pair plus pipeline throughput counters. All methods
// are safe on a nil *Metrics (they record nothing), so callers
// instrumenting background work — WAL interval fsyncs, say — need no
// tracer or context.
type Metrics struct {
	stages sync.Map // stageKey -> *Hist
	offers atomic.Int64
	groups atomic.Int64
}

// NewMetrics returns an empty stage-metrics sink.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe files one stage duration under (stage, shard). shard < 0
// means the stage was not shard-scoped.
func (m *Metrics) Observe(stage string, shard int, d time.Duration) {
	if m == nil {
		return
	}
	if shard < 0 {
		shard = -1
	}
	k := stageKey{stage, shard}
	v, ok := m.stages.Load(k)
	if !ok {
		v, _ = m.stages.LoadOrStore(k, &Hist{})
	}
	v.(*Hist).Observe(d)
}

// StageSeries is one (stage, shard) histogram snapshot for rendering.
type StageSeries struct {
	Stage string
	Shard int // -1: no shard label
	// Counts are per-bucket (non-cumulative), one per StageBuckets
	// entry plus a trailing +Inf slot.
	Counts []int64
	Sum    float64
	Total  int64
}

// Series returns a snapshot of every (stage, shard) histogram,
// sorted by stage then shard for deterministic exposition output.
func (m *Metrics) Series() []StageSeries {
	if m == nil {
		return nil
	}
	var out []StageSeries
	m.stages.Range(func(k, v any) bool {
		key := k.(stageKey)
		counts, sum, total := v.(*Hist).Snapshot()
		out = append(out, StageSeries{
			Stage:  key.stage,
			Shard:  key.shard,
			Counts: counts,
			Sum:    sum,
			Total:  total,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// ObserveOffers adds directly to the global ingested-offers counter —
// for paths that have offer counts but no request trace.
func (m *Metrics) ObserveOffers(n int) {
	if m != nil && n > 0 {
		m.offers.Add(int64(n))
	}
}

// Offers returns the total offers ingested across all requests.
func (m *Metrics) Offers() int64 {
	if m == nil {
		return 0
	}
	return m.offers.Load()
}

// Groups returns the total groups formed across all requests.
func (m *Metrics) Groups() int64 {
	if m == nil {
		return 0
	}
	return m.groups.Load()
}
