// Package obs is the pipeline's observability layer: low-overhead
// per-request tracing, per-stage latency histograms, and helpers for
// structured request logging.
//
// A Tracer hands out one Trace per request at the server edge; the
// trace travels through the pipeline inside the context. Every stage
// calls obs.Start(ctx, stage) and ends the returned span; when no
// trace is in the context (tracing disabled, or a library used
// outside flexd) Start returns immediately with a nil span whose End
// is a no-op — the disabled path is a context lookup and a nil check,
// with no allocation and no atomic traffic.
//
// The enabled path is a single atomic slot claim into a fixed span
// arena allocated once per trace, so recording a span never allocates
// and never takes a lock. Completed traces land in a bounded ring the
// server exposes as GET /debug/traces.
package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names used throughout the pipeline. They are the values of
// the {stage} label on flexd_stage_seconds and the span names in
// /debug/traces.
const (
	StageIngestDecode = "ingest_decode"
	StageGroupSort    = "group_sort"
	StageGroupPack    = "group_pack"
	StageAggregate    = "aggregate"
	StageSchedule     = "schedule"
	StageDisaggregate = "disaggregate"
	StageWALAppend    = "wal_append"
	StageWALFsync     = "wal_fsync"
	StagePoolQueue    = "pool_queue"
)

// Stages lists every stage name, in pipeline order. Used by the
// metrics renderer and tests.
var Stages = []string{
	StageIngestDecode,
	StageGroupSort,
	StageGroupPack,
	StageAggregate,
	StageSchedule,
	StageDisaggregate,
	StageWALAppend,
	StageWALFsync,
	StagePoolQueue,
}

// Tracer owns the stage metrics and the ring of completed traces. The
// zero value is not usable; construct with NewTracer. A nil *Tracer
// is safe to use everywhere and records nothing.
type Tracer struct {
	metrics  *Metrics
	maxSpans int

	mu   sync.Mutex
	ring []TraceData
	next int
	size int

	idSeq atomic.Uint64
}

// NewTracer returns a tracer keeping the last ringSize completed
// traces (<=0: 64), each with room for maxSpans spans (<=0: 256);
// spans past the arena are counted as dropped, never recorded.
func NewTracer(ringSize, maxSpans int) *Tracer {
	if ringSize <= 0 {
		ringSize = 64
	}
	if maxSpans <= 0 {
		maxSpans = 256
	}
	return &Tracer{
		metrics:  NewMetrics(),
		maxSpans: maxSpans,
		ring:     make([]TraceData, ringSize),
	}
}

// Metrics returns the tracer's stage-metrics sink, or nil for a nil
// tracer.
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Start allocates a trace with the given ID (empty: a generated
// request ID) and returns it. Returns nil for a nil tracer.
func (t *Tracer) Start(id string) *Trace {
	if t == nil {
		return nil
	}
	if id == "" {
		id = t.newID()
	}
	return &Trace{
		tracer: t,
		id:     id,
		start:  time.Now(),
		spans:  make([]Span, t.maxSpans),
	}
}

// newID returns a process-unique request ID: a monotonic sequence
// prefixed with the tracer's start-of-process nanosecond timestamp so
// IDs from different flexd runs do not collide in aggregated logs.
func (t *Tracer) newID() string {
	seq := t.idSeq.Add(1)
	return "req-" + strconv.FormatInt(time.Now().UnixNano(), 36) + "-" + strconv.FormatUint(seq, 10)
}

// NewRequestID generates a client-side request ID suitable for the
// X-Request-Id header: unique within the process and compact.
func NewRequestID() string {
	seq := clientIDSeq.Add(1)
	return "cli-" + strconv.FormatInt(time.Now().UnixNano(), 36) + "-" + strconv.FormatUint(seq, 10)
}

var clientIDSeq atomic.Uint64

// push files a completed trace into the bounded ring, newest
// overwriting oldest.
func (t *Tracer) push(td TraceData) {
	t.mu.Lock()
	t.ring[t.next] = td
	t.next = (t.next + 1) % len(t.ring)
	if t.size < len(t.ring) {
		t.size++
	}
	t.mu.Unlock()
}

// Last returns up to n completed traces, newest first. n <= 0 means
// all retained traces.
func (t *Tracer) Last(n int) []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.size {
		n = t.size
	}
	out := make([]TraceData, 0, n)
	for i := 1; i <= n; i++ {
		idx := (t.next - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Trace is one request's span arena. Methods are safe for concurrent
// use by the fan-out goroutines of a single request; a nil *Trace
// records nothing.
type Trace struct {
	tracer *Tracer
	id     string
	start  time.Time

	spans    []Span
	next     atomic.Int32
	dropped  atomic.Int64
	offers   atomic.Int64
	groups   atomic.Int64
	finished atomic.Bool
}

// ID returns the trace's request ID ("" for nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Span slot states. A span becomes visible to Finish only once its
// fields are published by the started->state store; the release store
// on state pairs with Finish's acquire load.
const (
	spanEmpty int32 = iota
	spanStarted
	spanEnded
)

// Span is one recorded stage interval. The zero value is an
// unclaimed arena slot. A nil *Span is inert: End is a no-op.
type Span struct {
	tr      *Trace
	name    string
	parent  int32 // arena index of parent span, -1 for root
	shard   int32 // shard attribute, -1 when not shard-scoped
	startNs int64 // offset from trace start
	durNs   int64 // 0 until ended
	state   atomic.Int32
}

// startSpan claims a span slot. Returns the slot index and span, or
// (-1, nil) when the arena is full (the drop is counted). All fields
// including the start offset are written before the state store
// publishes the slot, so Finish never observes a half-written span.
func (tr *Trace) startSpan(name string, parent, shard int32, startNs int64) (int32, *Span) {
	idx := tr.next.Add(1) - 1
	if int(idx) >= len(tr.spans) {
		tr.dropped.Add(1)
		return -1, nil
	}
	sp := &tr.spans[idx]
	sp.tr = tr
	sp.name = name
	sp.parent = parent
	sp.shard = shard
	sp.startNs = startNs
	sp.state.Store(spanStarted)
	return idx, sp
}

// End completes the span and feeds its duration into the tracer's
// stage metrics. Safe on a nil span and idempotent enough for defer
// use (a second End overwrites the duration; spans are not reused
// within a trace).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.endWith(int64(time.Since(sp.tr.start)) - sp.startNs)
}

// endWith completes the span with an explicit duration — used by
// RecordSince, whose measured interval may start before the trace
// did (the span's start offset is clamped to 0 but the duration must
// stay honest).
func (sp *Span) endWith(d int64) {
	if d < 0 {
		d = 0
	}
	atomic.StoreInt64(&sp.durNs, d)
	sp.state.Store(spanEnded)
	sp.tr.tracer.metrics.Observe(sp.name, int(sp.shard), time.Duration(d))
}

// Finish snapshots the trace into a TraceData, files it in the
// tracer's ring, and returns it. Only the first call does work;
// subsequent calls return a zero TraceData with OK=false semantics
// (empty ID). Spans still in flight at Finish time appear with
// DurationNs 0.
func (tr *Trace) Finish() TraceData {
	if tr == nil || !tr.finished.CompareAndSwap(false, true) {
		return TraceData{}
	}
	n := int(tr.next.Load())
	if n > len(tr.spans) {
		n = len(tr.spans)
	}
	td := TraceData{
		ID:           tr.id,
		Start:        tr.start,
		DurationNs:   int64(time.Since(tr.start)),
		Offers:       tr.offers.Load(),
		Groups:       tr.groups.Load(),
		DroppedSpans: tr.dropped.Load(),
		Spans:        make([]SpanData, 0, n),
	}
	for i := 0; i < n; i++ {
		sp := &tr.spans[i]
		st := sp.state.Load() // acquire: pairs with startSpan's publish
		if st == spanEmpty {
			// Slot claimed but fields not yet published; a racing span
			// that Finish caught mid-start. Keep indices 1:1 with the
			// arena so Parent references stay valid.
			td.Spans = append(td.Spans, SpanData{Name: "unpublished", Parent: -1, Shard: -1})
			continue
		}
		td.Spans = append(td.Spans, SpanData{
			Name:       sp.name,
			Parent:     int(sp.parent),
			Shard:      int(sp.shard),
			StartNs:    sp.startNs,
			DurationNs: atomic.LoadInt64(&sp.durNs),
		})
	}
	tr.tracer.push(td)
	return td
}

// ctxKey is the context key space for obs values.
type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
	shardKey
)

// NewContext returns ctx carrying the trace. A nil trace returns ctx
// unchanged, keeping the disabled path allocation-free.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// WithShard returns ctx carrying a shard attribute; spans started
// under it carry shard as their label. No-op when ctx has no trace.
func WithShard(ctx context.Context, shard int) context.Context {
	if TraceFrom(ctx) == nil {
		return ctx
	}
	return context.WithValue(ctx, shardKey, int32(shard))
}

func shardFrom(ctx context.Context) int32 {
	if s, ok := ctx.Value(shardKey).(int32); ok {
		return s
	}
	return -1
}

// Start begins a span named stage under the current span in ctx and
// returns a context carrying it (for nesting) plus the span itself.
// When ctx has no trace it returns (ctx, nil) — the caller's deferred
// End is then a nil-check no-op.
func Start(ctx context.Context, stage string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := int32(-1)
	if pidx, ok := ctx.Value(spanKey).(int32); ok {
		parent = pidx
	}
	idx, sp := tr.startSpan(stage, parent, shardFrom(ctx), int64(time.Since(tr.start)))
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, idx), sp
}

// RecordSince records a completed span for stage covering t0..now —
// for stages whose start predates trace plumbing (e.g. pool
// queue-wait measured from the enqueue timestamp). No-op without a
// trace in ctx.
func RecordSince(ctx context.Context, stage string, t0 time.Time) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return
	}
	parent := int32(-1)
	if pidx, ok := ctx.Value(spanKey).(int32); ok {
		parent = pidx
	}
	start := int64(t0.Sub(tr.start))
	if start < 0 {
		start = 0
	}
	_, sp := tr.startSpan(stage, parent, shardFrom(ctx), start)
	if sp == nil {
		return
	}
	sp.endWith(int64(time.Since(t0)))
}

// AddOffers adds n to the trace's offer count (and the tracer's
// global ingested-offers counter). No-op without a trace.
func AddOffers(ctx context.Context, n int) {
	if tr := TraceFrom(ctx); tr != nil && n > 0 {
		tr.offers.Add(int64(n))
		tr.tracer.metrics.offers.Add(int64(n))
	}
}

// AddGroups adds n to the trace's group count (and the tracer's
// global groups counter). No-op without a trace.
func AddGroups(ctx context.Context, n int) {
	if tr := TraceFrom(ctx); tr != nil && n > 0 {
		tr.groups.Add(int64(n))
		tr.tracer.metrics.groups.Add(int64(n))
	}
}
