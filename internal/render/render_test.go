package render

import (
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

// sl is shorthand for a slice literal in test fixtures.
func sl(min, max int64) flexoffer.Slice { return flexoffer.Slice{Min: min, Max: max} }

func TestFlexOfferFigure1(t *testing.T) {
	f := flexoffer.MustNew(1, 6, sl(1, 3), sl(2, 4), sl(0, 5), sl(0, 3))
	out := FlexOffer(f)
	if !strings.Contains(out, "start ∈ [1,6]") || !strings.Contains(out, "tf=5") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "█") || !strings.Contains(out, "░") {
		t.Errorf("mandatory/flexible bands missing:\n%s", out)
	}
	if !strings.Contains(out, "cmin=3") || !strings.Contains(out, "cmax=15") {
		t.Errorf("totals missing:\n%s", out)
	}
}

func TestFlexOfferInvalid(t *testing.T) {
	bad := &flexoffer.FlexOffer{EarliestStart: 2, LatestStart: 1, Slices: []flexoffer.Slice{{Min: 0, Max: 1}}}
	if out := FlexOffer(bad); !strings.Contains(out, "invalid") {
		t.Errorf("invalid offer not reported: %q", out)
	}
}

func TestAssignmentRendersBars(t *testing.T) {
	// The paper's Example 7 assignment ⟨2,1,3⟩ at t=1.
	out := Assignment(flexoffer.NewAssignment(1, 2, 1, 3))
	if !strings.Contains(out, "█") {
		t.Errorf("bars missing:\n%s", out)
	}
	if !strings.Contains(out, "start=1 total=6") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestAssignmentNegativeValues(t *testing.T) {
	out := Assignment(flexoffer.NewAssignment(0, -2, 1))
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	if !strings.Contains(out, "█") {
		t.Errorf("production bars missing:\n%s", out)
	}
}

func TestAreaFigure5(t *testing.T) {
	// f4 = ([0,4],⟨[2,2]⟩) jointly covers 10 cells.
	f4 := flexoffer.MustNew(0, 4, sl(2, 2))
	out := Area(f4)
	if !strings.Contains(out, "|⋃area|=10 cells") {
		t.Errorf("area size missing or wrong:\n%s", out)
	}
	if strings.Count(out, "▒")/2 != 10 {
		t.Errorf("hatched cell count = %d, want 10:\n%s", strings.Count(out, "▒")/2, out)
	}
}

func TestAreaMixedFigure7(t *testing.T) {
	f6 := flexoffer.MustNew(0, 2, sl(-1, 2), sl(-4, -1), sl(-3, 1))
	out := Area(f6)
	if !strings.Contains(out, "|⋃area|=24 cells") {
		t.Errorf("f6 area wrong:\n%s", out)
	}
}

func TestAreaInvalid(t *testing.T) {
	bad := &flexoffer.FlexOffer{}
	if out := Area(bad); !strings.Contains(out, "invalid") {
		t.Errorf("invalid offer not reported: %q", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"a", "1"}, {"long-name", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "─") {
		t.Errorf("header or separator wrong:\n%s", out)
	}
	// All rows align to the same width for the first column.
	if len(lines[2]) == 0 || len(lines[3]) == 0 {
		t.Errorf("rows missing:\n%s", out)
	}
}
