// Package render draws flex-offers, assignments and flexibility areas as
// ASCII diagrams, regenerating the paper's Figures 1–7 in the terminal.
//
// Conventions, matching the paper's figures:
//
//	█  mandatory energy (below every assignment: the slice minimum, or
//	   the fixed value when amin = amax)
//	░  flexible energy range (between amin and amax)
//	▒  cells of the joint flexibility area (Definitions 9–10)
//	──  the time axis; rows above are positive energy, rows below negative
//
// The profile is drawn anchored at the earliest start time, and the
// start-time flexibility interval is indicated under the axis.
package render

import (
	"fmt"
	"strings"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grid"
)

// FlexOffer draws the offer's profile (anchored at the earliest start)
// with its energy ranges, plus a legend line with the start window and
// totals, in the style of the paper's Figure 1.
func FlexOffer(f *flexoffer.FlexOffer) string {
	if err := f.Validate(); err != nil {
		return fmt.Sprintf("invalid flex-offer: %v", err)
	}
	lo, hi := profileBounds(f)
	var b strings.Builder
	cols := columnRange{from: f.EarliestStart, to: f.EarliestEnd()}
	drawRows(&b, lo, hi, cols, func(t int, e int64) rune {
		i := t - f.EarliestStart
		s := f.Slices[i]
		return cellRune(s, e)
	})
	drawAxis(&b, cols)
	fmt.Fprintf(&b, "start ∈ [%d,%d]  tf=%d  cmin=%d  cmax=%d  kind=%s\n",
		f.EarliestStart, f.LatestStart, f.TimeFlexibility(), f.TotalMin, f.TotalMax, f.Kind())
	return b.String()
}

// Assignment draws a concrete assignment as solid bars, in the style of
// the bold lines of the paper's Figure 1 and the hatched cells of
// Figure 4.
func Assignment(a flexoffer.Assignment) string {
	s := a.Series()
	var lo, hi int64
	for _, v := range s.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	cols := columnRange{from: s.Start, to: s.End()}
	drawRows(&b, lo, hi, cols, func(t int, e int64) rune {
		v := s.At(t)
		if e >= 0 && e < v {
			return '█'
		}
		if e < 0 && e >= v {
			return '█'
		}
		return ' '
	})
	drawAxis(&b, cols)
	fmt.Fprintf(&b, "start=%d total=%d\n", a.Start, a.TotalEnergy())
	return b.String()
}

// Area draws the joint area covered by all assignments of the offer
// (Definition 10), in the style of the paper's Figures 5–7.
func Area(f *flexoffer.FlexOffer) string {
	if err := f.Validate(); err != nil {
		return fmt.Sprintf("invalid flex-offer: %v", err)
	}
	cells := grid.UnionArea(f)
	var lo, hi int64
	for c := range cells {
		if c.E < lo {
			lo = c.E
		}
		if c.E+1 > hi {
			hi = c.E + 1
		}
	}
	var b strings.Builder
	cols := columnRange{from: f.EarliestStart, to: f.LatestEnd()}
	drawRows(&b, lo, hi, cols, func(t int, e int64) rune {
		if cells.Contains(grid.Cell{T: t, E: e}) {
			return '▒'
		}
		return ' '
	})
	drawAxis(&b, cols)
	fmt.Fprintf(&b, "|⋃area|=%d cells\n", cells.Size())
	return b.String()
}

// profileBounds returns the lowest and highest energy coordinate any
// slice of the offer can reach.
func profileBounds(f *flexoffer.FlexOffer) (lo, hi int64) {
	for _, s := range f.Slices {
		if s.Min < lo {
			lo = s.Min
		}
		if s.Max > hi {
			hi = s.Max
		}
	}
	return lo, hi
}

type columnRange struct{ from, to int }

// drawRows renders rows from hi−1 down to lo; cell returns the rune for
// the grid cell with lower-left corner (t, e).
func drawRows(b *strings.Builder, lo, hi int64, cols columnRange, cell func(t int, e int64) rune) {
	if hi < 1 {
		hi = 1
	}
	if lo > 0 {
		lo = 0
	}
	for e := hi - 1; e >= lo; e-- {
		fmt.Fprintf(b, "%4d │", e+boundAdjust(e))
		for t := cols.from; t < cols.to; t++ {
			r := cell(t, e)
			b.WriteRune(r)
			b.WriteRune(r)
		}
		b.WriteByte('\n')
	}
}

// boundAdjust labels positive rows by their upper bound and negative
// rows by their lower bound, so the labels read like the paper's axes.
func boundAdjust(e int64) int64 {
	if e >= 0 {
		return 1
	}
	return 0
}

func drawAxis(b *strings.Builder, cols columnRange) {
	b.WriteString("     └")
	for t := cols.from; t < cols.to; t++ {
		b.WriteString("──")
	}
	b.WriteString("→ t\n      ")
	for t := cols.from; t < cols.to; t++ {
		fmt.Fprintf(b, "%-2d", t%100)
	}
	b.WriteByte('\n')
}

func cellRune(s flexoffer.Slice, e int64) rune {
	switch {
	case e >= 0 && e < s.Min: // mandatory consumption
		return '█'
	case e >= 0 && e < s.Max: // flexible consumption
		return '░'
	case e < 0 && e >= s.Max: // mandatory production
		return '█'
	case e < 0 && e >= s.Min: // flexible production
		return '░'
	default:
		return ' '
	}
}

// Table renders a simple aligned text table: header row, separator, then
// rows. Used by the experiment reports and cmd/flexbench.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = runeLen(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && runeLen(c) > widths[i] {
				widths[i] = runeLen(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-runeLen(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("─", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func runeLen(s string) int { return len([]rune(s)) }
