package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/pool"
	"flexmeasures/internal/workload"
)

// encodeNDJSON builds a reproducible NDJSON stream of n synthetic
// offers.
func encodeNDJSON(t *testing.T, seed int64, n int) ([]byte, []*flexoffer.FlexOffer) {
	t.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(seed)), n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), offers
}

// TestShardedMatchesSerial is the tentpole equivalence property: for
// every worker count and block size, the sharded decode produces
// exactly the serial decode's offers — which in turn round-trip the
// encoded population.
func TestShardedMatchesSerial(t *testing.T) {
	data, offers := encodeNDJSON(t, 7, 500)
	want, err := DecodeNDJSONSerial(bytes.NewReader(data), FirstError)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(offers) {
		t.Fatalf("serial decoded %d of %d offers", len(want), len(offers))
	}
	for i := range offers {
		if !want[i].Equal(offers[i]) {
			t.Fatalf("serial offer %d does not round-trip", i)
		}
	}
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		for _, block := range []int{1, 64, 257, 4 << 10, 1 << 20} {
			t.Run(fmt.Sprintf("workers=%d block=%d", workers, block), func(t *testing.T) {
				got, err := DecodeNDJSON(context.Background(), bytes.NewReader(data),
					Params{Workers: workers, BlockBytes: block})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("sharded decode diverged from serial (%d vs %d offers)", len(got), len(want))
				}
			})
		}
	}
}

// TestShardedOnPersistentPool proves the engine-pool execution model
// decodes identically to per-call spin-up.
func TestShardedOnPersistentPool(t *testing.T) {
	data, _ := encodeNDJSON(t, 11, 300)
	want, err := DecodeNDJSONSerial(bytes.NewReader(data), FirstError)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New(4)
	defer p.Close()
	got, err := DecodeNDJSON(context.Background(), bytes.NewReader(data),
		Params{Workers: 4, BlockBytes: 2048, Pool: p})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pool-backed decode diverged from serial")
	}
}

// corrupt returns the stream with record rec's line replaced.
func corrupt(t *testing.T, data []byte, rec int, line string) []byte {
	t.Helper()
	lines := strings.Split(string(data), "\n")
	n := 0
	for i, l := range lines {
		if strings.TrimSpace(l) == "" {
			continue
		}
		if n == rec {
			lines[i] = line
			return []byte(strings.Join(lines, "\n"))
		}
		n++
	}
	t.Fatalf("stream has no record %d", rec)
	return nil
}

// TestMalformedRecordFirstError pins per-record error reporting: the
// sharded decode fails with a *RecordError naming the same record and
// line as the serial oracle, for every worker count.
func TestMalformedRecordFirstError(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"syntax", `{"earliestStart":`},
		{"unknown field", `{"earliestStart":0,"latestStart":1,"slices":[{"min":0,"max":1}],"totalMin":0,"totalMax":1,"bogus":9}`},
		{"invalid offer", `{"earliestStart":3,"latestStart":1,"slices":[{"min":0,"max":1}],"totalMin":0,"totalMax":1}`},
		{"trailing data", `{"earliestStart":0,"latestStart":1,"slices":[{"min":0,"max":1}],"totalMin":0,"totalMax":1} {"x":1}`},
	}
	data, _ := encodeNDJSON(t, 3, 120)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := corrupt(t, data, 57, c.line)
			_, serr := DecodeNDJSONSerial(bytes.NewReader(bad), FirstError)
			var want *RecordError
			if !errors.As(serr, &want) {
				t.Fatalf("serial error is %T, want *RecordError", serr)
			}
			if want.Record != 57 {
				t.Fatalf("serial failure at record %d, want 57", want.Record)
			}
			for _, workers := range []int{1, 3, 8} {
				_, err := DecodeNDJSON(context.Background(), bytes.NewReader(bad),
					Params{Workers: workers, BlockBytes: 512})
				var got *RecordError
				if !errors.As(err, &got) {
					t.Fatalf("workers=%d: error is %T (%v), want *RecordError", workers, err, err)
				}
				if got.Record != want.Record || got.Line != want.Line {
					t.Errorf("workers=%d: failure at record %d line %d, serial says record %d line %d",
						workers, got.Record, got.Line, want.Record, want.Line)
				}
			}
		})
	}
}

// TestFirstErrorDeterministicWithManyFailures pins the stronger
// FirstError guarantee: even with several malformed records in the
// same block, the reported failure is always the lowest-indexed one —
// the same record the serial decoder stops at — for every worker
// count, regardless of which shard happened to fail first.
func TestFirstErrorDeterministicWithManyFailures(t *testing.T) {
	data, _ := encodeNDJSON(t, 19, 150)
	bad := corrupt(t, data, 9, "nonsense")
	bad = corrupt(t, bad, 11, "]")
	bad = corrupt(t, bad, 140, "{")
	_, serr := DecodeNDJSONSerial(bytes.NewReader(bad), FirstError)
	var want *RecordError
	if !errors.As(serr, &want) {
		t.Fatalf("serial error is %T", serr)
	}
	if want.Record != 9 {
		t.Fatalf("serial failure at record %d, want 9", want.Record)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for round := 0; round < 20; round++ {
			_, err := DecodeNDJSON(context.Background(), bytes.NewReader(bad),
				Params{Workers: workers, BlockBytes: 1 << 20})
			var got *RecordError
			if !errors.As(err, &got) {
				t.Fatalf("workers=%d: error is %T", workers, err)
			}
			if got.Record != want.Record || got.Line != want.Line {
				t.Fatalf("workers=%d round=%d: reported record %d line %d, serial says record %d line %d",
					workers, round, got.Record, got.Line, want.Record, want.Line)
			}
		}
	}
}

// TestMalformedRecordsCollectAll pins the collect-all report: every
// failing record appears, sorted, identical to the serial oracle for
// every worker count and block size — including the failure spread
// across multiple blocks.
func TestMalformedRecordsCollectAll(t *testing.T) {
	data, _ := encodeNDJSON(t, 5, 200)
	bad := corrupt(t, data, 10, "nonsense")
	bad = corrupt(t, bad, 100, `{"earliestStart":5,"latestStart":2,"slices":[{"min":0,"max":1}],"totalMin":0,"totalMax":1}`)
	bad = corrupt(t, bad, 199, `[1,2`)
	_, serr := DecodeNDJSONSerial(bytes.NewReader(bad), CollectAll)
	var want RecordErrors
	if !errors.As(serr, &want) {
		t.Fatalf("serial error is %T, want RecordErrors", serr)
	}
	if len(want) != 3 {
		t.Fatalf("serial collected %d failures, want 3", len(want))
	}
	for _, workers := range []int{1, 2, 5} {
		for _, block := range []int{128, 1 << 20} {
			_, err := DecodeNDJSON(context.Background(), bytes.NewReader(bad),
				Params{Workers: workers, BlockBytes: block, ErrorMode: CollectAll})
			var got RecordErrors
			if !errors.As(err, &got) {
				t.Fatalf("workers=%d block=%d: error is %T, want RecordErrors", workers, block, err)
			}
			if !reflect.DeepEqual(errorKeys(got), errorKeys(want)) {
				t.Errorf("workers=%d block=%d: failures %v, serial says %v",
					workers, block, errorKeys(got), errorKeys(want))
			}
		}
	}
}

func errorKeys(es RecordErrors) [][2]int {
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.Record, e.Line}
	}
	return out
}

// TestBlankLinesAndCRLF: records separated by blank lines and CRLF
// decode identically on both paths, and line numbers count the blanks.
func TestBlankLinesAndCRLF(t *testing.T) {
	good := `{"earliestStart":0,"latestStart":2,"slices":[{"min":1,"max":3}],"totalMin":1,"totalMax":3}`
	stream := good + "\r\n\r\n  \r\n" + good + "\r\n\r\nbroken\r\n"
	_, serr := DecodeNDJSONSerial(strings.NewReader(stream), FirstError)
	var want *RecordError
	if !errors.As(serr, &want) {
		t.Fatalf("serial error is %T", serr)
	}
	if want.Record != 2 || want.Line != 6 {
		t.Fatalf("serial failure at record %d line %d, want record 2 line 6", want.Record, want.Line)
	}
	_, err := DecodeNDJSON(context.Background(), strings.NewReader(stream),
		Params{Workers: 3, BlockBytes: 16})
	var got *RecordError
	if !errors.As(err, &got) {
		t.Fatalf("sharded error is %T", err)
	}
	if got.Record != want.Record || got.Line != want.Line {
		t.Errorf("sharded failure at record %d line %d, serial says record %d line %d",
			got.Record, got.Line, want.Record, want.Line)
	}

	ok, err := DecodeNDJSON(context.Background(), strings.NewReader(good+"\r\n\r\n"+good+"\n"),
		Params{Workers: 2, BlockBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 2 {
		t.Fatalf("decoded %d records, want 2", len(ok))
	}
}

// TestRecordLargerThanBlock: a single record bigger than the block
// still decodes whole.
func TestRecordLargerThanBlock(t *testing.T) {
	slices := make([]flexoffer.Slice, 400)
	for i := range slices {
		slices[i] = flexoffer.Slice{Min: int64(i), Max: int64(i + 3)}
	}
	big := flexoffer.MustNew(0, 4, slices...)
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, []*flexoffer.FlexOffer{big, big}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNDJSON(context.Background(), bytes.NewReader(buf.Bytes()),
		Params{Workers: 2, BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(big) || !got[1].Equal(big) {
		t.Fatal("oversized records did not round-trip")
	}
}

// TestEmptyStream: no records is success, not an error.
func TestEmptyStream(t *testing.T) {
	for _, in := range []string{"", "\n", "\r\n  \n\n"} {
		got, err := DecodeNDJSON(context.Background(), strings.NewReader(in), Params{Workers: 2})
		if err != nil {
			t.Fatalf("input %q: %v", in, err)
		}
		if len(got) != 0 {
			t.Fatalf("input %q: decoded %d records", in, len(got))
		}
	}
}

// cancelReader cancels a context after delivering n bytes, then keeps
// serving the stream — the decode must notice and abort.
type cancelReader struct {
	r      io.Reader
	cancel context.CancelFunc
	after  int
	read   int
}

func (c *cancelReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.read += n
	if c.read >= c.after && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

// TestMidStreamCancel: cancellation during decode returns ctx.Err()
// promptly rather than decoding the remainder of the stream.
func TestMidStreamCancel(t *testing.T) {
	data, _ := encodeNDJSON(t, 13, 400)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancelReader{r: bytes.NewReader(data), cancel: cancel, after: len(data) / 4}
	_, err := DecodeNDJSON(ctx, cr, Params{Workers: 3, BlockBytes: 1024})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestPreCancelled: an already-cancelled context never touches the
// reader.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DecodeNDJSON(ctx, iotest{}, Params{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

type iotest struct{}

func (iotest) Read([]byte) (int, error) {
	panic("reader must not be touched after cancellation")
}

// TestReaderErrorPropagates: a mid-stream transport error surfaces as
// an error, not a truncated success.
func TestReaderErrorPropagates(t *testing.T) {
	data, _ := encodeNDJSON(t, 17, 50)
	broken := io.MultiReader(bytes.NewReader(data[:len(data)/2]), errReader{})
	_, err := DecodeNDJSON(context.Background(), broken, Params{Workers: 2, BlockBytes: 1 << 20})
	if err == nil || errors.As(err, new(*RecordError)) {
		t.Fatalf("got %v, want a transport error", err)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("connection reset") }

// benchData is the shared encoded population for the decode
// benchmarks.
func benchData(b *testing.B) []byte {
	b.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(99)), 2000, 3, workload.DefaultMix())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkDecodeNDJSONSerial(b *testing.B) {
	data := benchData(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeNDJSONSerial(bytes.NewReader(data), FirstError); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeNDJSONSharded(b *testing.B) {
	data := benchData(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeNDJSON(context.Background(), bytes.NewReader(data), Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
