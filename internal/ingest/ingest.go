// Package ingest decodes NDJSON flex-offer streams with the decode work
// sharded across a worker pool — the ingestion substrate of the flexd
// service and the ROADMAP's "shard offer ingestion/decoding" scale-out
// item.
//
// The wire format is NDJSON: one JSON flex-offer per line (the format
// flexoffer.EncodeNDJSON writes). DecodeNDJSON reads the stream in
// bounded blocks, splits each block into runs of whole lines, and fans
// the runs out across an Executor — the Engine's persistent pool in the
// flexd service, per-call goroutine spin-up otherwise. Each shard
// decodes its lines with its own json.Decoders; decoded offers land in
// per-record slots, so reassembly order is the input record order no
// matter which worker decoded what, and the output is bit-identical to
// the serial DecodeNDJSONSerial for every worker count and block size
// (the equivalence property test pins this).
//
// Failures are reported per record in the style of the aggregation
// pipeline's GroupError: a RecordError identifies the failing record by
// record index and physical line number, and ErrorMode selects
// first-error or collect-all reporting. Because the stream is consumed
// block by block, a service ingesting from a network connection gets
// natural backpressure: bytes are read only as fast as they are
// decoded.
package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/pool"
)

// ErrorMode selects first-error or collect-all failure reporting,
// mirroring (and aliasing) the aggregation pipeline's modes so one
// enum spans the whole offer path.
type ErrorMode = aggregate.ErrorMode

// ErrorMode values.
const (
	FirstError = aggregate.FirstError
	CollectAll = aggregate.CollectAll
)

// ErrTrailingData reports non-whitespace content after a record's JSON
// value on the same line — two objects on one line, or garbage after a
// valid object. All such failures wrap this sentinel.
var ErrTrailingData = errors.New("ingest: trailing data after record")

// Params controls the sharded decode. The zero value decodes with one
// goroutine per logical CPU, 1 MiB blocks and FirstError reporting.
type Params struct {
	// Workers is the number of concurrent decode shards; values below 1
	// mean runtime.GOMAXPROCS(0). When Pool is set, Workers instead caps
	// this call's share of the pool.
	Workers int
	// BlockBytes is the target number of bytes read and sharded per
	// round (the block always extends to the end of its last line, so a
	// record larger than the block still decodes). Values below 1 pick
	// 1 MiB. Smaller blocks bound memory and tighten backpressure;
	// larger blocks amortize the per-round fan-out.
	BlockBytes int
	// ErrorMode selects first-error or collect-all failure reporting.
	ErrorMode ErrorMode
	// Pool, when non-nil, submits the decode shards to a persistent
	// executor (the Engine's worker pool) instead of spawning Workers
	// goroutines per block.
	Pool pool.Executor
}

// RecordError reports the failure of one NDJSON record, carrying enough
// context to find it in a million-record stream: the 0-based record
// index (blank lines are not records) and the 1-based physical line
// number.
type RecordError struct {
	// Record is the 0-based index of the failing record.
	Record int
	// Line is the 1-based physical line number of the record.
	Line int
	// Err is the underlying decode or validation error.
	Err error
}

// Error identifies the record and preserves the underlying message.
func (e *RecordError) Error() string {
	return fmt.Sprintf("ingest: record %d (line %d): %v", e.Record, e.Line, e.Err)
}

// Unwrap exposes the underlying error to errors.Is and errors.As.
func (e *RecordError) Unwrap() error { return e.Err }

// RecordErrors is the CollectAll failure report: every failing record's
// error, sorted by record index.
type RecordErrors []*RecordError

// Error summarizes the failure count and lists the first few records.
func (es RecordErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ingest: %d records failed:", len(es))
	for i, e := range es {
		if i == 4 {
			fmt.Fprintf(&b, " …(%d more)", len(es)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", e)
	}
	return b.String()
}

// Unwrap exposes the per-record errors to errors.Is and errors.As.
func (es RecordErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// span locates one record inside a block: the byte range of its line
// (CR/LF trimmed) and the physical line offset within the block.
type span struct {
	start, end int
	line       int
}

// DecodeNDJSON reads NDJSON flex-offers from r with the decode work
// sharded under p. The result holds the offers in record order and is
// identical to DecodeNDJSONSerial on the same stream for every worker
// count and block size. On failure it returns a *RecordError
// (FirstError: always the lowest-indexed failing record, like the
// serial decoder, regardless of scheduling) or RecordErrors sorted by
// record (CollectAll); a cancelled ctx is honored between blocks and
// between records.
func DecodeNDJSON(ctx context.Context, r io.Reader, p Params) ([]*flexoffer.FlexOffer, error) {
	ctx, sp := obs.Start(ctx, obs.StageIngestDecode)
	defer sp.End()
	blockBytes := p.BlockBytes
	if blockBytes < 1 {
		blockBytes = 1 << 20
	}
	br := bufio.NewReaderSize(r, min(blockBytes, 1<<20))
	// One block buffer serves the whole stream: decodeBlock completes
	// before the next read, and everything that outlives a round
	// (offers, error messages) is copied out of it.
	buf := make([]byte, blockBytes)
	var (
		out     []*flexoffer.FlexOffer
		all     RecordErrors
		recBase int
		lnBase  int
	)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, spans, nlines, rerr := readBlock(br, buf)
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("ingest: reading block at record %d: %w", recBase, rerr)
		}
		if len(spans) > 0 {
			offers, errs := decodeBlock(ctx, data, spans, recBase, lnBase, p)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if len(errs) > 0 && p.ErrorMode == FirstError {
				return nil, errs[0]
			}
			all = append(all, errs...)
			if len(all) == 0 {
				out = append(out, offers...)
			}
		}
		recBase += len(spans)
		lnBase += nlines
		if rerr == io.EOF {
			break
		}
	}
	if len(all) > 0 {
		return nil, all
	}
	return out, nil
}

// DecodeNDJSONSerial is the one-goroutine reference decoder: a plain
// line-by-line loop with no blocks, no shards and no pool. It is the
// oracle the sharded path is equivalence-tested against, and the serial
// baseline flexbench -ingest measures the shards against.
func DecodeNDJSONSerial(r io.Reader, mode ErrorMode) ([]*flexoffer.FlexOffer, error) {
	br := bufio.NewReader(r)
	var (
		out  []*flexoffer.FlexOffer
		errs RecordErrors
		rec  int
		ln   int
	)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return nil, fmt.Errorf("ingest: reading line %d: %w", ln+1, rerr)
		}
		if len(line) > 0 {
			ln++
			if trimmed := trimLine(line); len(trimmed) > 0 {
				f, err := decodeRecord(trimmed)
				if err != nil {
					re := &RecordError{Record: rec, Line: ln, Err: err}
					if mode == FirstError {
						return nil, re
					}
					errs = append(errs, re)
				} else if len(errs) == 0 {
					out = append(out, f)
				}
				rec++
			}
		}
		if rerr == io.EOF {
			break
		}
	}
	if len(errs) > 0 {
		return nil, errs
	}
	return out, nil
}

// readBlock reads the next block into buf: len(buf) bytes, extended
// through the end of the last line so every record is whole (the
// extension appends, so an oversized final line never clobbers buf for
// the caller's next round). It returns the block data, the record
// spans within it, the number of physical lines it covers, and io.EOF
// once the stream is exhausted.
func readBlock(br *bufio.Reader, buf []byte) (data []byte, spans []span, lines int, err error) {
	n, rerr := io.ReadFull(br, buf)
	data = buf[:n]
	switch rerr {
	case nil:
		// Target filled mid-line: extend through the next newline so the
		// block ends on a record boundary. A single record larger than
		// the target grows the block as needed.
		if len(data) > 0 && data[len(data)-1] != '\n' {
			rest, lerr := br.ReadBytes('\n')
			data = append(data, rest...)
			if lerr == io.EOF {
				rerr = io.EOF
			} else if lerr != nil {
				return nil, nil, 0, lerr
			}
		}
	case io.EOF, io.ErrUnexpectedEOF:
		rerr = io.EOF
	default:
		return nil, nil, 0, rerr
	}
	spans, lines = scanLines(data)
	return data, spans, lines, rerr
}

// scanLines splits block data into record spans: one span per
// non-blank line, with trailing CR trimmed (CRLF input) and
// whitespace-only lines skipped (they are not records, matching what a
// stream of json.Encoder outputs plus blank separators decodes to).
func scanLines(data []byte) (spans []span, lines int) {
	for start := 0; start < len(data); {
		end := bytes.IndexByte(data[start:], '\n')
		var next int
		if end < 0 {
			end = len(data)
			next = end
		} else {
			end += start
			next = end + 1
		}
		lines++
		line := trimLine(data[start:end])
		if len(line) > 0 {
			// Relocate the trimmed line inside data: trimLine only cuts
			// from the ends, so offsets translate directly.
			off := start + leadingSpace(data[start:end])
			spans = append(spans, span{start: off, end: off + len(line), line: lines})
		}
		start = next
	}
	return spans, lines
}

// trimLine cuts JSON whitespace (space, tab, CR) from both ends of a
// line; a line that trims to nothing is not a record.
func trimLine(line []byte) []byte {
	return bytes.Trim(line, " \t\r\n")
}

// leadingSpace returns the number of leading JSON-whitespace bytes.
func leadingSpace(line []byte) int {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	return i
}

// decodeBlock fans the block's records out across the decode shards:
// each shard claims runs of consecutive records (the executor's
// batching) and decodes them with its own json.Decoders, landing each
// offer in its record's slot, so neither output order nor error
// attribution depends on scheduling. Every record of the block is
// attempted even after a failure — blocks are bounded, and draining
// the block is what makes the FirstError report deterministic: the
// lowest-indexed failure always wins, exactly as in the serial
// decoder, no matter which shard failed first. (The aggregation
// pipeline's FirstError is scheduling-dependent by documented design;
// ingest can afford the stronger guarantee because a block, unlike an
// unbounded group batch, is at most one BlockBytes read.)
func decodeBlock(ctx context.Context, data []byte, spans []span, recBase, lnBase int, p Params) ([]*flexoffer.FlexOffer, RecordErrors) {
	n := len(spans)
	offers := make([]*flexoffer.FlexOffer, n)
	errSlots := make([]*RecordError, n)
	done := ctx.Done()
	fn := func(i int) {
		select {
		case <-done:
			return
		default:
		}
		f, err := decodeRecord(data[spans[i].start:spans[i].end])
		if err != nil {
			errSlots[i] = &RecordError{Record: recBase + i, Line: lnBase + spans[i].line, Err: err}
			return
		}
		offers[i] = f
	}
	if ce, ok := p.Pool.(pool.CtxExecutor); ok {
		ce.ForEachCtx(ctx, n, p.Workers, 0, fn)
	} else if p.Pool != nil {
		p.Pool.ForEach(n, p.Workers, 0, fn)
	} else {
		pool.Run(n, p.Workers, 0, fn)
	}
	var errs RecordErrors
	for _, e := range errSlots {
		if e != nil {
			errs = append(errs, e)
		}
	}
	return offers, errs
}

// decodeRecord decodes exactly one flex-offer from one line: unknown
// fields are rejected (matching the document codec), trailing content
// after the value fails with ErrTrailingData, and the offer is
// validated. This is the shared per-record kernel of the serial and
// sharded paths, which is what makes their outputs bit-identical on
// every malformed input.
func decodeRecord(line []byte) (*flexoffer.FlexOffer, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var f flexoffer.FlexOffer
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	if rest := trimLine(line[dec.InputOffset():]); len(rest) > 0 {
		return nil, fmt.Errorf("%w: %q", ErrTrailingData, truncate(rest, 32))
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// truncate shortens b for error messages.
func truncate(b []byte, n int) []byte {
	if len(b) <= n {
		return b
	}
	return append(append([]byte{}, b[:n]...), "…"...)
}
