package sim

import (
	"fmt"
	"sort"
	"sync"

	"flexmeasures/internal/workload"
)

// Redispatch configures the scenario's intraday scheduling loop.
type Redispatch struct {
	// Every runs a scheduling round every this many slots (0: only the
	// final round).
	Every int
	// Horizon is how far past the simulated window the scheduling
	// horizon — and the price curve — extends (0: 48 slots, two days,
	// enough for every generator's latest offer to fit).
	Horizon int
	// Gain is the target feedback gain: the next round's flat target
	// moves toward the delivered load by gain × the mean per-slot
	// deviation (0: 0.5).
	Gain float64
	// PriceSpike, when set, is a demand-response event: the price
	// curve is multiplied over a window mid-run and a dispatch round
	// fires immediately against the new prices.
	PriceSpike *PriceSpike
}

// PriceSpike is a demand-response price event.
type PriceSpike struct {
	// At is the slot the spike starts; the event fires there.
	At int
	// Len is the spike's length in slots.
	Len int
	// Factor multiplies the spot price over [At, At+Len).
	Factor float64
}

// ZoneSpec configures grid-zone stamping and the capacity check.
type ZoneSpec struct {
	// Zones stamps each offer with one of this many zones, drawn
	// skewed (zone 0 hottest) via workload.StampZones — the shard
	// router's preferred key, so flexd -shards keeps a zone's offers
	// on one engine shard. 0 disables stamping.
	Zones int
	// Capacity, when positive, is the per-zone feeder capacity the
	// final zone check compares each zone's feasible peak
	// (grid.FeasibleBand) against.
	Capacity int64
}

// Scenario is one composable city-scale workload: arrival waves, a
// re-dispatch loop and an optional zone layer. Scenarios are plain Go
// values — a new one is a struct literal handed to Register.
type Scenario struct {
	// Name identifies the scenario (flexsim -scenario).
	Name string
	// Description is one line for flexsim -list.
	Description string
	// Start is the first simulated slot, in day-hours (a scenario
	// about a morning wave starts shortly before it so short runs
	// still hit the wave).
	Start int
	// DefaultSlots is the virtual window a duration-less run
	// simulates.
	DefaultSlots int
	// Waves are the scenario's arrival processes.
	Waves []Wave
	// Redispatch configures the closed re-dispatch loop.
	Redispatch Redispatch
	// Zones configures zone stamping and the capacity check.
	Zones ZoneSpec
}

// validate rejects scenarios the runner cannot execute.
func (sc Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("sim: scenario has no name")
	}
	if len(sc.Waves) == 0 {
		return fmt.Errorf("sim: scenario %q has no arrival waves", sc.Name)
	}
	if sc.Start < 0 {
		return fmt.Errorf("sim: scenario %q: negative start slot %d", sc.Name, sc.Start)
	}
	for _, w := range sc.Waves {
		if w.Rate == nil {
			return fmt.Errorf("sim: scenario %q: wave %q has no rate", sc.Name, w.Name)
		}
		if err := w.Mix.Validate(); err != nil {
			return fmt.Errorf("sim: scenario %q: wave %q: %w", sc.Name, w.Name, err)
		}
	}
	return nil
}

var (
	regMu    sync.Mutex
	registry = make(map[string]Scenario)
)

// Register adds a scenario to the registry flexsim resolves -scenario
// against. Registering a duplicate or invalid scenario errors.
func Register(sc Scenario) error {
	if err := sc.validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		return fmt.Errorf("sim: scenario %q already registered", sc.Name)
	}
	registry[sc.Name] = sc
	return nil
}

// MustRegister is Register for package init blocks.
func MustRegister(sc Scenario) {
	if err := Register(sc); err != nil {
		panic(err)
	}
}

// Scenarios lists every registered scenario, sorted by name.
func Scenarios() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	sc, ok := registry[name]
	return sc, ok
}

// The built-in scenario catalogue. Each is a struct literal; new
// scenarios are one more MustRegister.
func init() {
	evMix := workload.Mix{workload.EV: 1}
	applianceMix := workload.Mix{
		workload.Dishwasher:   0.4,
		workload.Refrigerator: 0.4,
		workload.HeatPump:     0.2,
	}

	// ev-morning: the commuter wave. EVs reach office chargers in a
	// Gaussian burst around 07:30, over a small appliance baseline;
	// the aggregator re-dispatches every 4 slots as the fleet grows.
	MustRegister(Scenario{
		Name:         "ev-morning",
		Description:  "morning EV commuter wave over an appliance baseline, 4-slot re-dispatch",
		Start:        5,
		DefaultSlots: 12,
		Waves: []Wave{
			{Name: "ev", Mix: evMix, Rate: Daily(Peak(7.5, 1.5, 40)), Churn: 0.15},
			{Name: "base", Mix: applianceMix, Rate: Flat(4)},
		},
		Redispatch: Redispatch{Every: 4},
	})

	// ev-evening: the home-charging wave, peaking around 18:30, with
	// more churn (households re-plug after errands).
	MustRegister(Scenario{
		Name:         "ev-evening",
		Description:  "evening home-charging EV wave, churny, 4-slot re-dispatch",
		Start:        16,
		DefaultSlots: 10,
		Waves: []Wave{
			{Name: "ev", Mix: evMix, Rate: Daily(Peak(18.5, 2, 35)), Churn: 0.3},
			{Name: "base", Mix: applianceMix, Rate: Flat(5)},
		},
		Redispatch: Redispatch{Every: 4},
	})

	// demand-response: a steady mixed population hit by an 8am price
	// spike (spot ×3 for 2 slots). The spike event re-dispatches
	// immediately, so the rounds before and after it show how much
	// tracking cost the fleet's flexibility absorbs.
	MustRegister(Scenario{
		Name:         "demand-response",
		Description:  "steady mixed fleet with a 3x price spike at 08:00 triggering re-dispatch",
		Start:        5,
		DefaultSlots: 10,
		Waves: []Wave{
			{Name: "fleet", Mix: workload.ConsumptionMix(), Rate: Flat(25), Churn: 0.1},
		},
		Redispatch: Redispatch{
			Every:      3,
			PriceSpike: &PriceSpike{At: 8, Len: 2, Factor: 3},
		},
	})

	// zone-stress: a heavy mixed population stamped over 6 skewed
	// zones (zone z00 hottest — the few-big-many-small shape), with a
	// per-zone feeder capacity the final check sweeps
	// grid.FeasibleBand against. Run against flexd -shards N to
	// exercise zone routing.
	MustRegister(Scenario{
		Name:         "zone-stress",
		Description:  "zone-skewed heavy fleet vs per-zone feeder capacity (run with flexd -shards)",
		Start:        0,
		DefaultSlots: 24,
		Waves: []Wave{
			{Name: "city", Mix: workload.DefaultMix(), Rate: Daily(Compose(Flat(15), Peak(8, 2, 25), Peak(19, 2, 30))), Churn: 0.1},
		},
		Redispatch: Redispatch{Every: 6},
		Zones:      ZoneSpec{Zones: 6, Capacity: 1200},
	})

	// city-day: everything at once — morning and evening EV waves,
	// midday solar, an appliance baseline, zones, and an evening
	// demand-response event. The kitchen-sink default for soak runs.
	MustRegister(Scenario{
		Name:         "city-day",
		Description:  "full day: EV waves + solar + baseline + zones + evening price spike",
		Start:        0,
		DefaultSlots: 24,
		Waves: []Wave{
			{Name: "ev-am", Mix: evMix, Rate: Daily(Peak(7.5, 1.5, 25)), Churn: 0.15},
			{Name: "ev-pm", Mix: evMix, Rate: Daily(Peak(18.5, 2, 25)), Churn: 0.3},
			{Name: "solar", Mix: workload.Mix{workload.SolarPanel: 1}, Rate: Daily(Peak(12, 2.5, 10))},
			{Name: "base", Mix: applianceMix, Rate: Flat(6)},
		},
		Redispatch: Redispatch{
			Every:      6,
			PriceSpike: &PriceSpike{At: 19, Len: 2, Factor: 2.5},
		},
		Zones: ZoneSpec{Zones: 4, Capacity: 4000},
	})
}
