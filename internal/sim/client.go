package sim

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/server"
)

// Client drives one flexd instance over HTTP, recording every
// request's latency and outcome in Metrics under the endpoint's path.
// It speaks the wire types of internal/server, so a response the
// server encodes is exactly what the client decodes.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil means a dedicated client with
	// a 2-minute timeout.
	HTTP *http.Client
	// Metrics receives one observation per request; nil disables
	// recording.
	Metrics *Metrics
}

// NewClient returns a client for the given base URL. addr may be a
// full URL, a host:port, or a bare ":8080" (meaning localhost).
func NewClient(addr string, m *Metrics) *Client {
	base := addr
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		Base:    strings.TrimRight(base, "/"),
		HTTP:    &http.Client{Timeout: 2 * time.Minute},
		Metrics: m,
	}
}

// RequestError is a non-2xx response, carrying the server's error body.
type RequestError struct {
	Path   string
	Status int
	Body   string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("sim: %s: HTTP %d: %s", e.Path, e.Status, e.Body)
}

// do issues one request, times it, records it under path, and decodes
// a 2xx JSON body into out (when non-nil). The query is excluded from
// the metrics label so all calls to one endpoint share a histogram.
func (c *Client) do(ctx context.Context, method, path, query string, body io.Reader, out any) error {
	url := c.Base + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	// A client-minted request ID ties the server's trace and log line
	// for this request back to the simulator's own records.
	req.Header.Set("X-Request-Id", obs.NewRequestID())
	start := time.Now()
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.observe(path, time.Since(start), false)
		return fmt.Errorf("sim: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if !ok {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		c.observe(path, time.Since(start), false)
		return &RequestError{Path: path, Status: resp.StatusCode, Body: strings.TrimSpace(string(data))}
	}
	if out != nil {
		if err := server.DecodeResponse(resp.Body, out); err != nil {
			c.observe(path, time.Since(start), false)
			return fmt.Errorf("sim: decoding %s response: %w", path, err)
		}
	}
	// Drain so the connection is reusable, then stop the clock: the
	// latency covers the full response body, like a real client.
	_, _ = io.Copy(io.Discard, resp.Body)
	c.observe(path, time.Since(start), true)
	return nil
}

func (c *Client) observe(path string, d time.Duration, ok bool) {
	if c.Metrics != nil {
		c.Metrics.Observe(path, d, ok)
	}
}

// PushOffers uploads offers as one NDJSON POST /v1/offers.
func (c *Client) PushOffers(ctx context.Context, offers []*flexoffer.FlexOffer) (server.IngestResponse, error) {
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		return server.IngestResponse{}, err
	}
	var out server.IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/offers", "", &buf, &out)
	return out, err
}

// PushOffer uploads a single offer.
func (c *Client) PushOffer(ctx context.Context, f *flexoffer.FlexOffer) (server.IngestResponse, error) {
	return c.PushOffers(ctx, []*flexoffer.FlexOffer{f})
}

// Schedule runs POST /v1/schedule over the stored offers: the full
// aggregate → schedule → disaggregate pipeline. level < 0 lets the
// server derive the flat target from the fleet's expected energy.
func (c *Client) Schedule(ctx context.Context, horizon int, level int64) (*server.ScheduleResponse, error) {
	q := "horizon=" + strconv.Itoa(horizon)
	if level >= 0 {
		q += "&target=" + strconv.FormatInt(level, 10)
	}
	var out server.ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", q, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reset empties the server's offer store (DELETE /v1/offers).
func (c *Client) Reset(ctx context.Context) error {
	return c.do(ctx, http.MethodDelete, "/v1/offers", "", nil, nil)
}

// Stored returns the server's stored offer count.
func (c *Client) Stored(ctx context.Context) (int, error) {
	var out server.StoreResponse
	if err := c.do(ctx, http.MethodGet, "/v1/offers", "", nil, &out); err != nil {
		return 0, err
	}
	return out.Stored, nil
}

// ServerLatencyCounts scrapes the server's /metrics and sums its
// flexd_request_seconds_count series by path — the server-side half of
// the latency cross-check: for a dedicated flexd, each path's count
// must equal the requests this client sent (plus the scrape itself
// for /metrics). The scrape is not recorded in c.Metrics.
func (c *Client) ServerLatencyCounts(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("sim: /metrics: HTTP %d", resp.StatusCode)
	}
	counts := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "flexd_request_seconds_count{") {
			continue
		}
		// flexd_request_seconds_count{path="/v1/offers",code="200"} 12
		pi := strings.Index(line, `path="`)
		if pi < 0 {
			continue
		}
		rest := line[pi+len(`path="`):]
		qi := strings.Index(rest, `"`)
		si := strings.LastIndex(line, " ")
		if qi < 0 || si < 0 {
			continue
		}
		n, err := strconv.ParseInt(line[si+1:], 10, 64)
		if err != nil {
			continue
		}
		counts[rest[:qi]] += n
	}
	return counts, sc.Err()
}
