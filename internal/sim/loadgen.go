package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/workload"
)

// LoadOptions configures an open-loop load-generation run.
type LoadOptions struct {
	// Rate is the target offer-submission rate in requests per second
	// across all clients.
	Rate float64
	// Clients is the number of concurrent submitters (0: 4).
	Clients int
	// Duration is the wall-clock run length.
	Duration time.Duration
	// ScheduleEvery interleaves a POST /v1/schedule every this many
	// submissions (0: 50); negative disables scheduling entirely.
	ScheduleEvery int
	// Horizon is the scheduling horizon (0: 48).
	Horizon int
	// Seed seeds the offer generators (per-client streams derived from
	// it). Open-loop runs measure a live server under wall-clock
	// pacing, so only the generated offers — not the interleaving —
	// are reproducible.
	Seed int64
}

func (o *LoadOptions) validate() error {
	if o.Rate <= 0 {
		return fmt.Errorf("sim: open-loop rate must be positive, got %g", o.Rate)
	}
	if o.Clients < 0 {
		return fmt.Errorf("sim: open-loop clients must be non-negative, got %d", o.Clients)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("sim: open-loop duration must be positive, got %v", o.Duration)
	}
	return nil
}

// OpenLoop drives flexd as a wall-clock load generator: Clients
// concurrent submitters pushing offers of the scenario's first wave's
// mix at a fixed aggregate Rate, with a schedule request interleaved
// every ScheduleEvery submissions. Unlike the closed loop, the offered
// rate does not slow down when the server does — the latency
// percentiles show the resulting queueing.
func OpenLoop(ctx context.Context, sc Scenario, client *Client, opts LoadOptions) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	clients := opts.Clients
	if clients == 0 {
		clients = 4
	}
	schedEvery := opts.ScheduleEvery
	if schedEvery == 0 {
		schedEvery = 50
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = 48
	}
	if client.Metrics == nil {
		client.Metrics = NewMetrics()
	}
	if err := client.Reset(ctx); err != nil {
		return nil, fmt.Errorf("sim: resetting store: %w", err)
	}

	mix := sc.Waves[0].Mix
	interval := time.Duration(float64(time.Second) / opts.Rate)
	// runCtx bounds admission only: the ticker stops handing out work
	// when the duration elapses, but in-flight requests run under the
	// parent ctx and finish cleanly instead of being recorded as
	// cancellation failures.
	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	var (
		wg        sync.WaitGroup
		submitted atomic.Int64
		replaced  atomic.Int64
		stored    atomic.Int64
		firstErr  atomic.Value
	)
	// One shared ticker paces the aggregate rate; each client owns a
	// derived RNG so offer generation needs no locking.
	ticks := make(chan int64)
	go func() {
		defer close(ticks)
		t := time.NewTicker(interval)
		defer t.Stop()
		var n int64
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				select {
				case ticks <- n:
					n++
				case <-runCtx.Done():
					return
				}
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(c)*0x9e3779b9))
			fails := 0
			for n := range ticks {
				dev, err := mix.Sample(rng)
				if err != nil {
					firstErr.CompareAndSwap(nil, error(err))
					cancel()
					return
				}
				f, err := workload.GenerateAt(rng, dev, int(n%(workload.SlotsPerDay)))
				if err != nil {
					firstErr.CompareAndSwap(nil, error(err))
					cancel()
					return
				}
				f.ID = fmt.Sprintf("load-%d-%08d", c, n)
				res, err := client.PushOffers(ctx, []*flexoffer.FlexOffer{f})
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					fails++
					if fails >= maxConsecutiveFailures {
						firstErr.CompareAndSwap(nil, fmt.Errorf("%w: last: %v", ErrTooManyFailures, err))
						cancel()
						return
					}
					continue
				}
				fails = 0
				submitted.Add(1)
				replaced.Add(int64(res.Replaced))
				stored.Store(int64(res.Stored))
				if schedEvery > 0 && (n+1)%int64(schedEvery) == 0 {
					if _, err := client.Schedule(ctx, horizon, -1); err != nil && ctx.Err() == nil {
						fails++
						if fails >= maxConsecutiveFailures {
							firstErr.CompareAndSwap(nil, fmt.Errorf("%w: last: %v", ErrTooManyFailures, err))
							cancel()
							return
						}
					}
				}
			}
		}(c)
	}

	start := time.Now()
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil && !errors.Is(ctx.Err(), context.Canceled) {
		return nil, err
	}

	rep := &Report{
		Scenario:        sc.Name,
		Mode:            "open",
		Seed:            opts.Seed,
		WallSeconds:     wall.Seconds(),
		OffersSubmitted: int(submitted.Load()),
		Replaced:        int(replaced.Load()),
		StoredFinal:     int(stored.Load()),
	}
	rep.fillEndpoints(client.Metrics, wall)
	return rep, nil
}
