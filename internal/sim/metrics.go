package sim

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// subBits sizes the histogram's linear sub-bucketing: 1<<subBits
// sub-buckets per power of two, which bounds the relative quantile
// error at 1/(1<<(subBits-1)) ≈ 6%. Values are recorded in
// microseconds, so the exact range covers 0–63µs and the log-linear
// range everything above it.
const subBits = 5

// numBuckets covers microsecond values up to 2^(subBits + maxExp);
// with maxExp 40 that is ~13 days, far beyond any request latency.
const numBuckets = (40 + 1) << subBits

// Histogram is an HDR-style log-linear latency histogram: constant
// memory, lock-free recording (one atomic add per observation), and
// quantiles with a bounded relative error. It is the client-side
// mirror of flexd's flexd_request_seconds server histogram, so the two
// ends of one request path can be compared percentile by percentile.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketOf maps a microsecond value to its bucket: values below
// 1<<subBits map exactly, larger values to (exponent, mantissa) pairs
// where the mantissa keeps the top subBits bits. Monotonic in v.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<subBits {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - subBits // ≥ 1 here
	idx := e<<subBits | int(v>>uint(e))&(1<<subBits-1)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound (in microseconds) of a
// bucket — the value quantiles report, so they are conservative.
func bucketUpper(idx int) int64 {
	e := idx >> subBits
	m := int64(idx & (1<<subBits - 1))
	if e == 0 {
		return m
	}
	// The mantissa mask keeps the leading bit (m ∈ [16, 31] for
	// subBits 5), so the bucket holds v ∈ [m<<e, (m+1)<<e − 1].
	return (m+1)<<uint(e) - 1
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns/1000)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket holding the q-th sample — within the histogram's ~6%
// relative error, never below the true quantile's bucket. Zero when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketUpper(i)) * time.Microsecond
		}
	}
	return h.Max()
}

// EndpointMetrics aggregates one endpoint's request outcomes.
type EndpointMetrics struct {
	// Hist holds the latency of every request, successful or not.
	Hist *Histogram
	// Failed counts requests that did not return a 2xx.
	Failed atomic.Int64
}

// Metrics is the per-endpoint latency and failure record of one
// simulation or load-generation run. Recording is safe for concurrent
// use (the open-loop generator's clients share one Metrics).
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointMetrics
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*EndpointMetrics)}
}

// Endpoint returns the named endpoint's metrics, creating them on
// first use.
func (m *Metrics) Endpoint(path string) *EndpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[path]
	if e == nil {
		e = &EndpointMetrics{Hist: NewHistogram()}
		m.endpoints[path] = e
	}
	return e
}

// Observe records one request against its endpoint.
func (m *Metrics) Observe(path string, d time.Duration, ok bool) {
	e := m.Endpoint(path)
	e.Hist.Observe(d)
	if !ok {
		e.Failed.Add(1)
	}
}

// Paths returns the observed endpoint paths in sorted order.
func (m *Metrics) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Requests returns the total request and failure counts across all
// endpoints.
func (m *Metrics) Requests() (total, failed int64) {
	for _, p := range m.Paths() {
		e := m.Endpoint(p)
		total += e.Hist.Count()
		failed += e.Failed.Load()
	}
	return total, failed
}
