package sim

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/server"
)

// newFlexd boots a fresh in-process flexd (memory store) the way the
// binary would configure it: safe aggregation on, small worker pool.
// Extra engine options are appended to that baseline.
func newFlexd(t *testing.T, shards int, engOpts ...flex.Option) *Client {
	t.Helper()
	opts := append([]flex.Option{flex.WithWorkers(2), flex.WithSafe(true)}, engOpts...)
	var h *server.Server
	if shards > 1 {
		se := flex.NewSharded(shards, opts...)
		t.Cleanup(se.Close)
		h = server.NewSharded(se, server.Options{})
	} else {
		eng := flex.New(opts...)
		t.Cleanup(func() { eng.Close() })
		h = server.New(eng, server.Options{})
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, NewMetrics())
}

// TestClosedLoopDeterministic is the determinism oracle: two
// closed-loop runs of the same scenario, seed and window against two
// fresh flexd instances must produce byte-identical event traces and
// deterministic-report JSON. This is the contract flexsim's CI step
// pins.
func TestClosedLoopDeterministic(t *testing.T) {
	sc, ok := Lookup("ev-morning")
	if !ok {
		t.Fatal("ev-morning not registered")
	}
	ctx := context.Background()

	run := func() *Report {
		rep, err := ClosedLoop(ctx, sc, newFlexd(t, 1), 42, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()

	if a.OffersSubmitted == 0 {
		t.Fatal("run submitted no offers — scenario window misses its waves")
	}
	if len(a.Rounds) == 0 {
		t.Fatal("run produced no dispatch rounds")
	}
	if a.Failed != 0 {
		t.Fatalf("run had %d failed requests", a.Failed)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("trace digests differ: %s vs %s", a.TraceDigest, b.TraceDigest)
	}
	at, bt := a.Trace(), b.Trace()
	if len(at) != len(bt) {
		t.Fatalf("trace lengths differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("trace line %d differs:\n  a: %s\n  b: %s", i, at[i], bt[i])
		}
	}
	da, db := a.Deterministic(), b.Deterministic()
	if !bytes.Equal(da, db) {
		t.Errorf("deterministic reports differ:\n%s\n---\n%s", da, db)
	}
}

// TestClosedLoopSeedSensitivity: different seeds must explore different
// arrival sequences (otherwise the oracle above proves nothing).
func TestClosedLoopSeedSensitivity(t *testing.T) {
	sc, _ := Lookup("ev-morning")
	ctx := context.Background()
	a, err := ClosedLoop(ctx, sc, newFlexd(t, 1), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClosedLoop(ctx, sc, newFlexd(t, 1), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest == b.TraceDigest {
		t.Fatalf("seeds 1 and 2 produced the same trace digest %s", a.TraceDigest)
	}
}

// TestClosedLoopZoneStress runs the zone scenario against a sharded
// flexd (zone labels route offers to shards) and checks the final
// capacity report.
func TestClosedLoopZoneStress(t *testing.T) {
	sc, ok := Lookup("zone-stress")
	if !ok {
		t.Fatal("zone-stress not registered")
	}
	client := newFlexd(t, 2)
	rep, err := ClosedLoop(context.Background(), sc, client, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("zone-stress run had %d failed requests", rep.Failed)
	}
	if len(rep.Zones) == 0 {
		t.Fatal("zone-stress produced no zone reports")
	}
	for _, z := range rep.Zones {
		if z.Zone == "" || z.Offers == 0 {
			t.Fatalf("empty zone report: %+v", z)
		}
		if z.PeakHi <= 0 {
			t.Fatalf("zone %s: non-positive consumption peak %d", z.Zone, z.PeakHi)
		}
		if z.Capacity != sc.Zones.Capacity {
			t.Fatalf("zone %s: capacity %d, want %d", z.Zone, z.Capacity, sc.Zones.Capacity)
		}
	}
}

// TestClosedLoopDemandResponse checks the price-spike event fires and
// re-dispatches.
func TestClosedLoopDemandResponse(t *testing.T) {
	sc, ok := Lookup("demand-response")
	if !ok {
		t.Fatal("demand-response not registered")
	}
	// Window [5, 9) covers the 08:00 spike.
	rep, err := ClosedLoop(context.Background(), sc, newFlexd(t, 1), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	var spiked bool
	for _, r := range rep.Rounds {
		if r.Kind == "demand-response" {
			spiked = true
		}
	}
	if !spiked {
		t.Fatalf("no demand-response round in %+v", rep.Rounds)
	}
	var sawSpike bool
	for _, l := range rep.Trace() {
		if strings.Contains(l, "price-spike") {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Fatal("price-spike event missing from trace")
	}
}

// TestClientServerLatencyCrossCheck: on a dedicated flexd, the server's
// flexd_request_seconds_count per path must equal the client's request
// count for that path — the two ends of the same histogram satellite.
func TestClientServerLatencyCrossCheck(t *testing.T) {
	sc, _ := Lookup("ev-morning")
	client := newFlexd(t, 1)
	ctx := context.Background()
	if _, err := ClosedLoop(ctx, sc, client, 42, 2); err != nil {
		t.Fatal(err)
	}
	serverCounts, err := client.ServerLatencyCounts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range client.Metrics.Paths() {
		want := client.Metrics.Endpoint(p).Hist.Count()
		if got := serverCounts[p]; got != want {
			t.Errorf("path %s: server saw %d requests, client sent %d", p, got, want)
		}
	}
}

// TestOpenLoop drives the wall-clock load generator briefly.
func TestOpenLoop(t *testing.T) {
	sc, _ := Lookup("ev-morning")
	client := newFlexd(t, 1)
	rep, err := OpenLoop(context.Background(), sc, client, LoadOptions{
		Rate:          500,
		Clients:       2,
		Duration:      300 * time.Millisecond,
		ScheduleEvery: 20,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("Mode = %q", rep.Mode)
	}
	if rep.OffersSubmitted == 0 {
		t.Fatal("open loop submitted no offers")
	}
	if rep.Failed != 0 {
		t.Fatalf("open loop had %d failed requests", rep.Failed)
	}
	var sawSchedule bool
	for _, e := range rep.Endpoints {
		if e.Path == "/v1/schedule" && e.Requests > 0 {
			sawSchedule = true
		}
	}
	if !sawSchedule {
		t.Fatal("open loop never interleaved a schedule request")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	sc, _ := Lookup("ev-morning")
	client := NewClient(":0", nil)
	for _, opts := range []LoadOptions{
		{Rate: 0, Duration: time.Second},
		{Rate: -5, Duration: time.Second},
		{Rate: 10, Duration: 0},
		{Rate: 10, Duration: time.Second, Clients: -1},
	} {
		if _, err := OpenLoop(context.Background(), sc, client, opts); err == nil {
			t.Errorf("OpenLoop(%+v) accepted invalid options", opts)
		}
	}
}

// TestRegistry pins the registry contract: the builtin catalogue is
// present and sorted, duplicates and invalid scenarios are rejected.
func TestRegistry(t *testing.T) {
	all := Scenarios()
	if len(all) < 3 {
		t.Fatalf("only %d builtin scenarios", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("Scenarios not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
	for _, name := range []string{"ev-morning", "ev-evening", "demand-response", "zone-stress", "city-day"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("builtin scenario %q missing", name)
		}
	}
	if err := Register(Scenario{Name: "ev-morning", Waves: []Wave{{Rate: Flat(1)}}}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(Scenario{Name: "no-waves"}); err == nil {
		t.Error("scenario without waves accepted")
	}
	if err := Register(Scenario{Name: "no-rate", Waves: []Wave{{Name: "w"}}}); err == nil {
		t.Error("wave without rate accepted")
	}
	if err := Register(Scenario{Name: "neg-start", Start: -1, Waves: []Wave{{Rate: Flat(1)}}}); err == nil {
		t.Error("negative start accepted")
	}
}

// TestClosedLoopBadInput: runner-level validation.
func TestClosedLoopBadInput(t *testing.T) {
	sc, _ := Lookup("ev-morning")
	client := NewClient(":0", nil)
	if _, err := ClosedLoop(context.Background(), sc, client, 1, 0); err == nil {
		t.Error("slots=0 accepted")
	}
	if _, err := ClosedLoop(context.Background(), Scenario{}, client, 1, 1); err == nil {
		t.Error("empty scenario accepted")
	}
}

// TestIncrementalServerParity drives the ev-morning and city-day
// scenarios — churn-heavy closed loops whose dispatch rounds
// re-schedule an evolving fleet, exactly the traffic incremental
// scheduling exists for — against a flexd with incremental scheduling
// on (the binary's default) and one recomputing from scratch. The
// deterministic reports must be byte-identical: the cache may change
// where time goes, never a byte of schedule output.
func TestIncrementalServerParity(t *testing.T) {
	for _, name := range []string{"ev-morning", "city-day"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			ctx := context.Background()
			inc, err := ClosedLoop(ctx, sc, newFlexd(t, 2, flex.WithIncremental(true)), 42, 2)
			if err != nil {
				t.Fatal(err)
			}
			full, err := ClosedLoop(ctx, sc, newFlexd(t, 2), 42, 2)
			if err != nil {
				t.Fatal(err)
			}
			if inc.OffersSubmitted == 0 || len(inc.Rounds) == 0 {
				t.Fatalf("run submitted %d offers over %d rounds — scenario window misses its waves",
					inc.OffersSubmitted, len(inc.Rounds))
			}
			if inc.Failed != 0 || full.Failed != 0 {
				t.Fatalf("failed requests: incremental %d, full %d", inc.Failed, full.Failed)
			}
			di, df := inc.Deterministic(), full.Deterministic()
			if !bytes.Equal(di, df) {
				t.Errorf("deterministic reports diverge between incremental and full-recompute flexd:\n%s\n---\n%s", di, df)
			}
		})
	}
}
