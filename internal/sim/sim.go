// Package sim is the city-scale simulation harness: a deterministic,
// seedable, discrete-event closed-loop simulator (and open-loop load
// generator, see loadgen.go) that drives a real flexd over HTTP.
//
// The closed loop composes three strands the serving stack previously
// left unwired:
//
//   - time-varying offer arrival processes built on internal/workload
//     (morning/evening EV waves, stochastic baselines, churn that
//     re-submits under the same offer ID);
//   - intraday re-dispatch against internal/market prices: the loop
//     periodically POSTs /v1/schedule, scores the returned load
//     against the price curve, and feeds the measured imbalance back
//     into the next round's target level;
//   - internal/grid constraint scenarios: zone-stamped populations
//     (exercising flexd -shards zone routing) checked against
//     per-zone feeder capacity via grid.FeasibleBand.
//
// Virtual time is measured in slots (one hour, matching workload);
// the event queue is ordered by (time, insertion sequence) and every
// random draw happens in one deterministic pass before the first
// event fires, so a run's event trace — and the deterministic half of
// its report — is byte-identical for a fixed seed, pinned by
// TestClosedLoopDeterministic. Request latencies are wall-clock
// measurements of the real flexd and are reported separately.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grid"
	"flexmeasures/internal/market"
	"flexmeasures/internal/workload"
)

// event is one scheduled simulation action.
type event struct {
	at   float64
	seq  int
	name string
	run  func(ctx context.Context) error
}

// eventQueue is a min-heap over (at, seq): virtual time first,
// insertion order as the deterministic tie-break.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// ErrTooManyFailures aborts a run when the server stops answering.
var ErrTooManyFailures = errors.New("sim: too many consecutive request failures")

// maxConsecutiveFailures is the abort threshold: a dead or unreachable
// flexd fails every request, and retrying for the rest of a long
// scenario would only bury the first error.
const maxConsecutiveFailures = 25

// Run is one closed-loop simulation in progress.
type Run struct {
	sc     Scenario
	client *Client
	rng    *rand.Rand
	seed   int64
	slots  int

	now   float64
	seq   int
	queue eventQueue
	trace []string

	horizon int
	prices  market.PriceCurve
	level   int64 // current flat target level; −1 lets the server derive it

	offersSubmitted int
	replaced        int
	stored          int
	consecFails     int64
	byZone          map[string][]*flexoffer.FlexOffer

	rounds []RoundReport
	zones  []ZoneReport
}

// tracef appends one event-trace line stamped with the virtual time.
// Everything interpolated here must be deterministic for a fixed seed:
// the trace is the determinism oracle.
func (r *Run) tracef(format string, args ...any) {
	r.trace = append(r.trace, fmt.Sprintf("t=%09.4f ", r.now)+fmt.Sprintf(format, args...))
}

// push schedules an event at virtual time at.
func (r *Run) push(at float64, name string, fn func(ctx context.Context) error) {
	r.seq++
	heap.Push(&r.queue, &event{at: at, seq: r.seq, name: name, run: fn})
}

// ClosedLoop runs the scenario as a deterministic discrete-event
// simulation over the given number of virtual slots, driving the flexd
// behind client. The store is reset first so runs are reproducible.
func ClosedLoop(ctx context.Context, sc Scenario, client *Client, seed int64, slots int) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if slots < 1 {
		return nil, fmt.Errorf("sim: slots must be at least 1, got %d", slots)
	}
	if client.Metrics == nil {
		client.Metrics = NewMetrics()
	}
	r := &Run{
		sc:     sc,
		client: client,
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
		slots:  slots,
		level:  -1,
		byZone: make(map[string][]*flexoffer.FlexOffer),
	}
	start := time.Now()
	if err := r.prepare(); err != nil {
		return nil, err
	}
	if err := client.Reset(ctx); err != nil {
		return nil, fmt.Errorf("sim: resetting store: %w", err)
	}
	r.tracef("reset store")
	end := float64(sc.Start + slots)
	for r.queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := heap.Pop(&r.queue).(*event)
		if e.at > end {
			break
		}
		r.now = e.at
		if err := e.run(ctx); err != nil {
			return nil, fmt.Errorf("sim: event %s at t=%.4f: %w", e.name, e.at, err)
		}
	}
	r.now = end
	if err := r.finish(ctx); err != nil {
		return nil, err
	}
	return r.report("closed", time.Since(start)), nil
}

// prepare makes every random draw of the run — prices, arrivals, zones
// — in one deterministic pass, then loads the event queue.
func (r *Run) prepare() error {
	rd := r.sc.Redispatch
	extra := rd.Horizon
	if extra <= 0 {
		extra = 48
	}
	r.horizon = r.sc.Start + r.slots + extra
	r.prices = workload.DayAheadPrices(r.rng, r.horizon)

	arrivals, err := materialize(r.rng, r.sc.Waves, r.sc.Start, r.slots)
	if err != nil {
		return err
	}
	if k := r.sc.Zones.Zones; k > 0 {
		// Stamp fresh arrivals in arrival order; churn re-submissions
		// inherit their original offer's zone by ID so a device cannot
		// hop zones when it re-plugs.
		var fresh []*flexoffer.FlexOffer
		for _, a := range arrivals {
			if !a.churn {
				fresh = append(fresh, a.offer)
			}
		}
		workload.StampZones(r.rng, fresh, k)
		zoneByID := make(map[string]string, len(fresh))
		for _, f := range fresh {
			zoneByID[f.ID] = f.Zone
		}
		for _, a := range arrivals {
			if a.churn {
				a.offer.Zone = zoneByID[a.offer.ID]
			}
		}
	}
	for _, a := range arrivals {
		a := a
		r.push(a.at, "arrival", func(ctx context.Context) error { return r.arrive(ctx, a) })
	}

	if rd.Every > 0 {
		for t := r.sc.Start + rd.Every; t < r.sc.Start+r.slots; t += rd.Every {
			at := float64(t)
			r.push(at, "redispatch", func(ctx context.Context) error { return r.redispatch(ctx, "periodic") })
		}
	}
	if sp := rd.PriceSpike; sp != nil {
		at := float64(sp.At)
		r.push(at, "price-spike", func(ctx context.Context) error { return r.spike(ctx, *sp) })
	}
	return nil
}

// arrive submits one offer to flexd and traces the outcome. Request
// failures are tolerated up to maxConsecutiveFailures so a transient
// 429/503 shows up in the failure counts without killing the run.
func (r *Run) arrive(ctx context.Context, a arrival) error {
	res, err := r.client.PushOffer(ctx, a.offer)
	if err != nil {
		r.consecFails++
		r.tracef("arrival wave=%s id=%s churn=%t FAILED", a.wave, a.offer.ID, a.churn)
		if r.consecFails >= maxConsecutiveFailures {
			return fmt.Errorf("%w: last: %v", ErrTooManyFailures, err)
		}
		return nil
	}
	r.consecFails = 0
	r.offersSubmitted++
	r.replaced += res.Replaced
	r.stored = res.Stored
	if a.churn {
		// A churn re-submission replaces the stored offer under the
		// same ID; the zone bookkeeping below already holds the ID.
	} else {
		r.byZone[a.offer.Zone] = append(r.byZone[a.offer.Zone], a.offer)
	}
	r.tracef("arrival wave=%s id=%s dev=%s zone=%q churn=%t replaced=%d stored=%d",
		a.wave, a.offer.ID, deviceOf(a.offer.ID), a.offer.Zone, a.churn, res.Replaced, res.Stored)
	return nil
}

// deviceOf recovers the wave label prefix of a generated offer ID for
// the trace (IDs are "<wave>-<waveIdx>-<seq>").
func deviceOf(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '-' {
			for j := i - 1; j >= 0; j-- {
				if id[j] == '-' {
					return id[:j]
				}
			}
		}
	}
	return id
}

// redispatch runs one intraday scheduling round: POST /v1/schedule,
// score the returned load against the price curve, and move the next
// round's target toward the delivered load by the feedback gain —
// the closed part of the loop.
func (r *Run) redispatch(ctx context.Context, kind string) error {
	if r.stored == 0 {
		r.tracef("round kind=%s skipped: no offers stored", kind)
		return nil
	}
	resp, err := r.client.Schedule(ctx, r.horizon, r.level)
	if err != nil {
		r.consecFails++
		r.tracef("round kind=%s FAILED", kind)
		if r.consecFails >= maxConsecutiveFailures {
			return fmt.Errorf("%w: last: %v", ErrTooManyFailures, err)
		}
		return nil
	}
	r.consecFails = 0

	var cost, loadSum float64
	for i, v := range resp.Load.Values {
		cost += float64(v) * r.prices.Lerp(float64(resp.Load.Start+i))
		loadSum += float64(v)
	}
	meanDev := (loadSum - float64(resp.TargetLevel)*float64(resp.Horizon)) / float64(resp.Horizon)
	gain := r.sc.Redispatch.Gain
	if gain == 0 {
		gain = 0.5
	}
	next := resp.TargetLevel + int64(math.Round(gain*meanDev))
	if next < 0 {
		next = 0
	}
	prosumers := resp.Prosumers
	round := RoundReport{
		At:          r.now,
		Kind:        kind,
		Offers:      resp.Offers,
		Groups:      resp.Aggregates,
		Prosumers:   prosumers,
		TargetLevel: resp.TargetLevel,
		Imbalance:   resp.Imbalance,
		PeakLoad:    resp.PeakLoad,
		Cost:        cost,
		NextTarget:  next,
	}
	r.rounds = append(r.rounds, round)
	r.level = next
	r.tracef("round kind=%s offers=%d groups=%d prosumers=%d target=%d imbalance=%g peak=%d cost=%.4f next=%d",
		kind, resp.Offers, resp.Aggregates, prosumers, resp.TargetLevel, resp.Imbalance, resp.PeakLoad, cost, next)
	return nil
}

// spike applies a demand-response price event — the spot price
// multiplied over a window — and immediately re-dispatches against the
// new curve.
func (r *Run) spike(ctx context.Context, sp PriceSpike) error {
	hi := sp.At + sp.Len
	if hi > len(r.prices) {
		hi = len(r.prices)
	}
	for t := sp.At; t < hi; t++ {
		if t >= 0 {
			r.prices[t] *= sp.Factor
		}
	}
	r.tracef("price-spike at=%d len=%d factor=%g", sp.At, sp.Len, sp.Factor)
	return r.redispatch(ctx, "demand-response")
}

// finish runs the final dispatch round and the zone-capacity check.
func (r *Run) finish(ctx context.Context) error {
	if err := r.redispatch(ctx, "final"); err != nil {
		return err
	}
	if capacity := r.sc.Zones.Capacity; capacity > 0 {
		zones := make([]string, 0, len(r.byZone))
		for z := range r.byZone {
			zones = append(zones, z)
		}
		sort.Strings(zones)
		for _, z := range zones {
			offers := r.byZone[z]
			lo, hi := grid.FeasibleBand(offers, 0, r.horizon)
			zr := ZoneReport{Zone: z, Offers: len(offers), Capacity: capacity}
			for t, h := range hi {
				if h > zr.PeakHi {
					zr.PeakHi = h
				}
				if -lo[t] > zr.PeakLo {
					zr.PeakLo = -lo[t]
				}
				if h > capacity {
					zr.ViolatedSlots++
					if h-capacity > zr.WorstExcess {
						zr.WorstExcess = h - capacity
					}
				}
			}
			r.zones = append(r.zones, zr)
			r.tracef("zone=%q offers=%d peakHi=%d peakLo=%d capacity=%d violatedSlots=%d worstExcess=%d",
				z, zr.Offers, zr.PeakHi, zr.PeakLo, capacity, zr.ViolatedSlots, zr.WorstExcess)
		}
	}
	return nil
}

// report assembles the run's Report.
func (r *Run) report(mode string, wall time.Duration) *Report {
	rep := &Report{
		Scenario:        r.sc.Name,
		Mode:            mode,
		Seed:            r.seed,
		Slots:           r.slots,
		Horizon:         r.horizon,
		WallSeconds:     wall.Seconds(),
		OffersSubmitted: r.offersSubmitted,
		Replaced:        r.replaced,
		StoredFinal:     r.stored,
		Rounds:          r.rounds,
		Zones:           r.zones,
		TraceEvents:     len(r.trace),
		TraceDigest:     traceDigest(r.trace),
		trace:           r.trace,
	}
	rep.fillEndpoints(r.client.Metrics, wall)
	return rep
}

// traceDigest hashes the event trace (FNV-64a over the lines) so two
// runs can be compared without shipping the full trace.
func traceDigest(lines []string) string {
	h := fnv.New64a()
	for _, l := range lines {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
