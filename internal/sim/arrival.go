package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/workload"
)

// RateFunc gives an arrival process's intensity — expected offers per
// slot — at virtual time t (in slots). Scenario clocks follow the
// workload convention: one slot is one hour, slot 0 is midnight of
// day 0, so a rate peaking at t=8 peaks at 08:00.
type RateFunc func(t float64) float64

// Flat returns a constant rate — the stochastic baseline process.
func Flat(rate float64) RateFunc {
	return func(float64) float64 { return rate }
}

// Peak returns a Gaussian bump: height offers/slot at center, decaying
// with the given width (standard deviation, in slots). This is the
// morning/evening EV wave shape.
func Peak(center, width, height float64) RateFunc {
	return func(t float64) float64 {
		d := (t - center) / width
		return height * math.Exp(-d*d/2)
	}
}

// Daily repeats a rate function with a 24-slot period, so a commuter
// wave recurs every simulated day.
func Daily(f RateFunc) RateFunc {
	return func(t float64) float64 {
		return f(math.Mod(t, workload.SlotsPerDay))
	}
}

// Compose sums rate functions — e.g. a flat baseline plus two peaks.
func Compose(fns ...RateFunc) RateFunc {
	return func(t float64) float64 {
		var sum float64
		for _, f := range fns {
			sum += f(t)
		}
		return sum
	}
}

// Wave is one arrival process: offers of a device mix arriving with a
// time-varying rate, optionally churning (the device re-plugs later
// and replaces its earlier offer — the store's last-write-wins dedup
// path).
type Wave struct {
	// Name labels the wave in traces and offer IDs.
	Name string
	// Mix is the device population the wave draws from.
	Mix workload.Mix
	// Rate is the wave's intensity over virtual time.
	Rate RateFunc
	// Churn is the probability that an arrival re-submits (same offer
	// ID, re-generated offer) after ChurnDelay slots.
	Churn float64
	// ChurnDelay bounds the uniform re-submission delay in slots.
	// Zero means [2, 6).
	ChurnDelay [2]float64
}

// arrival is one materialized offer arrival (or churn re-submission).
type arrival struct {
	at    float64
	wave  string
	churn bool
	offer *flexoffer.FlexOffer
}

// poisson draws a Poisson variate with mean lambda (Knuth's method;
// the per-slot rates here are small enough that the multiplicative
// loop is fine and, importantly, deterministic in the RNG stream).
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// materialize samples every arrival of every wave over the window
// [start, start+slots), in a single deterministic pass over the RNG:
// waves in declaration order, slots in order, arrivals within a slot
// at uniform offsets. Churn re-submissions are generated immediately
// after their arrival so the RNG consumption order is pinned. The
// result is sorted by time (stable, so equal times keep generation
// order) — byte-identical across runs with the same seed.
func materialize(r *rand.Rand, waves []Wave, start, slots int) ([]arrival, error) {
	var out []arrival
	for wi, w := range waves {
		if w.Rate == nil {
			return nil, fmt.Errorf("sim: wave %q has no rate function", w.Name)
		}
		delay := w.ChurnDelay
		if delay == [2]float64{} {
			delay = [2]float64{2, 6}
		}
		n := 0
		for s := start; s < start+slots; s++ {
			k := poisson(r, w.Rate(float64(s)+0.5))
			for i := 0; i < k; i++ {
				at := float64(s) + r.Float64()
				dev, err := w.Mix.Sample(r)
				if err != nil {
					return nil, fmt.Errorf("sim: wave %q: %w", w.Name, err)
				}
				f, err := workload.GenerateAt(r, dev, s)
				if err != nil {
					return nil, fmt.Errorf("sim: wave %q: %w", w.Name, err)
				}
				// Stable per-wave IDs: unique across waves, reused by
				// the churn re-submission to exercise dedup.
				f.ID = fmt.Sprintf("%s-%d-%05d", w.Name, wi, n)
				n++
				out = append(out, arrival{at: at, wave: w.Name, offer: f})

				if w.Churn > 0 && r.Float64() < w.Churn {
					churnAt := at + delay[0] + r.Float64()*(delay[1]-delay[0])
					g, err := workload.GenerateAt(r, dev, int(churnAt))
					if err != nil {
						return nil, fmt.Errorf("sim: wave %q churn: %w", w.Name, err)
					}
					g.ID = f.ID
					g.Zone = f.Zone
					out = append(out, arrival{at: churnAt, wave: w.Name, churn: true, offer: g})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}
