package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// RoundReport is one intraday re-dispatch round.
type RoundReport struct {
	// At is the round's virtual time in slots.
	At float64 `json:"at"`
	// Kind is what triggered the round: periodic, demand-response, or
	// final.
	Kind string `json:"kind"`
	// Offers is how many stored offers the round scheduled.
	Offers int `json:"offers"`
	// Groups is the number of aggregates the round scheduled.
	Groups int `json:"groups"`
	// Prosumers is the number of disaggregated constituent assignments.
	Prosumers int `json:"prosumers"`
	// TargetLevel is the flat target the round tracked (server-derived
	// on the first round).
	TargetLevel int64 `json:"targetLevel"`
	// Imbalance is the schedule's L1 distance from the target.
	Imbalance float64 `json:"imbalance"`
	// PeakLoad is the schedule's maximum absolute per-slot load.
	PeakLoad int64 `json:"peakLoad"`
	// Cost is the schedule's energy cost against the (possibly spiked)
	// day-ahead price curve.
	Cost float64 `json:"cost"`
	// NextTarget is the feedback-adjusted target fed into the next
	// round.
	NextTarget int64 `json:"nextTarget"`
}

// ZoneReport is the final capacity check of one grid zone.
type ZoneReport struct {
	// Zone is the zone label ("z00"…).
	Zone string `json:"zone"`
	// Offers is how many distinct offers the zone accumulated.
	Offers int `json:"offers"`
	// Capacity is the per-zone feeder capacity checked against.
	Capacity int64 `json:"capacity"`
	// PeakHi is the zone's worst-case consumption peak over the
	// horizon (upper edge of grid.FeasibleBand).
	PeakHi int64 `json:"peakHi"`
	// PeakLo is the zone's worst-case production peak (magnitude of
	// the band's lower edge).
	PeakLo int64 `json:"peakLo"`
	// ViolatedSlots counts slots where PeakHi exceeds Capacity.
	ViolatedSlots int `json:"violatedSlots"`
	// WorstExcess is the largest over-capacity margin across those
	// slots.
	WorstExcess int64 `json:"worstExcess"`
}

// EndpointReport is one endpoint's client-side latency summary.
type EndpointReport struct {
	Path     string  `json:"path"`
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	P50Ms    float64 `json:"p50Ms"`
	P95Ms    float64 `json:"p95Ms"`
	P99Ms    float64 `json:"p99Ms"`
	MaxMs    float64 `json:"maxMs"`
	MeanMs   float64 `json:"meanMs"`
	// RPS is the endpoint's request throughput over the run's wall
	// time.
	RPS float64 `json:"rps"`
}

// Report is one simulation or load-generation run's result. The
// simulation-logic fields (everything Deterministic returns) are
// byte-identical for a fixed seed and scenario; the latency fields are
// wall-clock measurements of the flexd under test and vary run to run.
type Report struct {
	Scenario        string        `json:"scenario"`
	Mode            string        `json:"mode"` // "closed" or "open"
	Seed            int64         `json:"seed"`
	Slots           int           `json:"slots,omitempty"`
	Horizon         int           `json:"horizon,omitempty"`
	WallSeconds     float64       `json:"wallSeconds"`
	OffersSubmitted int           `json:"offersSubmitted"`
	Replaced        int           `json:"replaced"`
	StoredFinal     int           `json:"storedFinal"`
	Rounds          []RoundReport `json:"rounds,omitempty"`
	Zones           []ZoneReport  `json:"zones,omitempty"`
	TraceEvents     int           `json:"traceEvents,omitempty"`
	// TraceDigest is the FNV-64a hash of the event trace — two runs
	// with the same seed and scenario must agree on it.
	TraceDigest string           `json:"traceDigest,omitempty"`
	Requests    int64            `json:"requests"`
	Failed      int64            `json:"failed"`
	Endpoints   []EndpointReport `json:"endpoints"`

	trace []string
}

// Trace returns the run's event-trace lines (closed loop only).
func (rep *Report) Trace() []string { return rep.trace }

// fillEndpoints summarizes the client metrics into the report.
func (rep *Report) fillEndpoints(m *Metrics, wall time.Duration) {
	if m == nil {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, p := range m.Paths() {
		e := m.Endpoint(p)
		er := EndpointReport{
			Path:     p,
			Requests: e.Hist.Count(),
			Failed:   e.Failed.Load(),
			P50Ms:    ms(e.Hist.Quantile(0.50)),
			P95Ms:    ms(e.Hist.Quantile(0.95)),
			P99Ms:    ms(e.Hist.Quantile(0.99)),
			MaxMs:    ms(e.Hist.Max()),
			MeanMs:   ms(e.Hist.Mean()),
		}
		if s := wall.Seconds(); s > 0 {
			er.RPS = float64(er.Requests) / s
		}
		rep.Endpoints = append(rep.Endpoints, er)
		rep.Requests += er.Requests
		rep.Failed += er.Failed
	}
}

// deterministicReport is the seed-reproducible subset of a Report: the
// simulation logic without the wall-clock latency measurements. Two
// closed-loop runs with the same seed, scenario and slot count must
// produce byte-identical JSON encodings of it — the determinism
// oracle's contract.
type deterministicReport struct {
	Scenario        string        `json:"scenario"`
	Seed            int64         `json:"seed"`
	Slots           int           `json:"slots"`
	Horizon         int           `json:"horizon"`
	OffersSubmitted int           `json:"offersSubmitted"`
	Replaced        int           `json:"replaced"`
	StoredFinal     int           `json:"storedFinal"`
	Rounds          []RoundReport `json:"rounds"`
	Zones           []ZoneReport  `json:"zones"`
	TraceEvents     int           `json:"traceEvents"`
	TraceDigest     string        `json:"traceDigest"`
}

// Deterministic returns the canonical JSON of the report's
// seed-reproducible subset.
func (rep *Report) Deterministic() []byte {
	data, err := json.MarshalIndent(deterministicReport{
		Scenario:        rep.Scenario,
		Seed:            rep.Seed,
		Slots:           rep.Slots,
		Horizon:         rep.Horizon,
		OffersSubmitted: rep.OffersSubmitted,
		Replaced:        rep.Replaced,
		StoredFinal:     rep.StoredFinal,
		Rounds:          rep.Rounds,
		Zones:           rep.Zones,
		TraceEvents:     rep.TraceEvents,
		TraceDigest:     rep.TraceDigest,
	}, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("sim: encoding deterministic report: %v", err))
	}
	return data
}

// WriteJSON writes the full report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteTable writes the human-readable run summary: the headline
// counters, the per-endpoint latency table, and the round and zone
// tables when present.
func (rep *Report) WriteTable(w io.Writer) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	p("scenario   %s (%s loop, seed %d)", rep.Scenario, rep.Mode, rep.Seed)
	if rep.Slots > 0 {
		p("window     %d slots, horizon %d", rep.Slots, rep.Horizon)
	}
	p("wall       %.2fs", rep.WallSeconds)
	p("offers     %d submitted (%d replaced), %d stored at end", rep.OffersSubmitted, rep.Replaced, rep.StoredFinal)
	p("requests   %d total, %d failed", rep.Requests, rep.Failed)
	if rep.TraceDigest != "" {
		p("trace      %d events, digest %s", rep.TraceEvents, rep.TraceDigest)
	}
	if len(rep.Endpoints) > 0 {
		p("")
		p("%-14s %9s %7s %9s %9s %9s %9s %9s", "endpoint", "requests", "failed", "p50", "p95", "p99", "max", "req/s")
		for _, e := range rep.Endpoints {
			p("%-14s %9d %7d %8.2fms %8.2fms %8.2fms %8.2fms %9.1f",
				e.Path, e.Requests, e.Failed, e.P50Ms, e.P95Ms, e.P99Ms, e.MaxMs, e.RPS)
		}
	}
	if len(rep.Rounds) > 0 {
		p("")
		p("%-7s %-16s %7s %7s %10s %12s %9s %12s %10s", "t", "round", "offers", "groups", "target", "imbalance", "peak", "cost", "next")
		for _, r := range rep.Rounds {
			p("%-7.2f %-16s %7d %7d %10d %12.1f %9d %12.2f %10d",
				r.At, r.Kind, r.Offers, r.Groups, r.TargetLevel, r.Imbalance, r.PeakLoad, r.Cost, r.NextTarget)
		}
	}
	if len(rep.Zones) > 0 {
		p("")
		p("%-6s %7s %9s %9s %9s %9s %9s", "zone", "offers", "capacity", "peakHi", "peakLo", "violated", "excess")
		for _, z := range rep.Zones {
			p("%-6s %7d %9d %9d %9d %9d %9d",
				z.Zone, z.Offers, z.Capacity, z.PeakHi, z.PeakLo, z.ViolatedSlots, z.WorstExcess)
		}
	}
	return nil
}
