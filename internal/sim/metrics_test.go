package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the histogram's bucket geometry: bucketOf is
// monotonic, every value lands in a bucket whose bounds contain it, and
// the sub-64µs range is exact.
func TestBucketRoundTrip(t *testing.T) {
	for v := int64(0); v < 1<<subBits; v++ {
		if got := bucketUpper(bucketOf(v)); got != v {
			t.Fatalf("exact range: bucketUpper(bucketOf(%d)) = %d", v, got)
		}
	}
	r := rand.New(rand.NewSource(7))
	prev := -1
	for v := int64(0); v < 1<<40; v = v*2 + int64(r.Intn(3)) + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotonic: bucketOf(%d) = %d < %d", v, b, prev)
		}
		prev = b
		upper := bucketUpper(b)
		if upper < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", b, upper, v)
		}
		if b > 0 && bucketUpper(b-1) >= v {
			t.Fatalf("value %d fits bucket %d but mapped to %d", v, b-1, b)
		}
	}
}

// TestHistogramQuantiles checks quantiles against a known distribution
// within the histogram's ~6% relative error bound.
func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1ms..1000ms uniformly: the q-quantile is ~q*1000ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if h.Max() != time.Second {
		t.Fatalf("Max = %v, want 1s", h.Max())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{1.00, 1000 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want {
			t.Errorf("Quantile(%g) = %v, below true quantile %v", tc.q, got, tc.want)
		}
		if float64(got) > float64(tc.want)*1.07 {
			t.Errorf("Quantile(%g) = %v, more than 7%% above %v", tc.q, got, tc.want)
		}
	}
	mean := h.Mean()
	if mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("Mean = %v, want ~500ms", mean)
	}
}

func TestHistogramEmptyAndClamping(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-time.Second) // clamped to zero, not a panic
	h.Observe(5 * time.Microsecond)
	if got := h.Quantile(-1); got != 0 {
		t.Fatalf("Quantile(-1) = %v, want 0 (clamped to min sample)", got)
	}
	if got := h.Quantile(2); got != 5*time.Microsecond {
		t.Fatalf("Quantile(2) = %v, want 5µs (clamped to max)", got)
	}
}

func TestMetricsObserve(t *testing.T) {
	m := NewMetrics()
	m.Observe("/v1/offers", time.Millisecond, true)
	m.Observe("/v1/offers", 2*time.Millisecond, false)
	m.Observe("/v1/schedule", 3*time.Millisecond, true)
	paths := m.Paths()
	if len(paths) != 2 || paths[0] != "/v1/offers" || paths[1] != "/v1/schedule" {
		t.Fatalf("Paths = %v", paths)
	}
	total, failed := m.Requests()
	if total != 3 || failed != 1 {
		t.Fatalf("Requests = (%d, %d), want (3, 1)", total, failed)
	}
}
