package flexoffer

import (
	"math/big"
)

// AssignmentCount implements Definition 8 exactly: the number of possible
// assignments
//
//	(tls − tes + 1) · ∏ᵢ (s(i).amax − s(i).amin + 1).
//
// As in the paper, the count deliberately ignores the total energy
// constraints cmin/cmax; use ValidAssignmentCount for the count of
// assignments that are valid in the sense of Definition 2. The result is
// a big integer because the product grows exponentially with the number
// of slices (the paper's own f6 with three modest slices already has 240
// assignments).
func (f *FlexOffer) AssignmentCount() *big.Int {
	n := big.NewInt(int64(f.TimeFlexibility() + 1))
	for _, s := range f.Slices {
		n.Mul(n, big.NewInt(s.Span()+1))
	}
	return n
}

// ValidAssignmentCount extends Definition 8 to honour the total energy
// constraints: it returns the exact number of assignments satisfying
// Definition 2, computed by dynamic programming over the reachable total
// sums (one pass per slice; the table is indexed by total-so-far offsets,
// so the cost is O(s · Σ span) rather than exponential).
func (f *FlexOffer) ValidAssignmentCount() *big.Int {
	// Offsets are relative to the running minimum sum, so the table
	// only spans the reachable width Σ span(i) + 1.
	width := int64(1)
	for _, s := range f.Slices {
		width += s.Span()
	}
	cur := make([]*big.Int, 1, width)
	cur[0] = big.NewInt(1)
	minSum := int64(0)
	for _, s := range f.Slices {
		minSum += s.Min
		span := s.Span()
		next := make([]*big.Int, int64(len(cur))+span)
		for off, cnt := range cur {
			if cnt == nil || cnt.Sign() == 0 {
				continue
			}
			for d := int64(0); d <= span; d++ {
				idx := int64(off) + d
				if next[idx] == nil {
					next[idx] = new(big.Int)
				}
				next[idx].Add(next[idx], cnt)
			}
		}
		cur = next
	}
	total := new(big.Int)
	for off, cnt := range cur {
		if cnt == nil {
			continue
		}
		sum := minSum + int64(off)
		if sum >= f.TotalMin && sum <= f.TotalMax {
			total.Add(total, cnt)
		}
	}
	return total.Mul(total, big.NewInt(int64(f.TimeFlexibility()+1)))
}

// EnumerateAssignments calls fn for every valid assignment (Definition 2)
// of the flex-offer, in lexicographic order of (start, values). Returning
// false from fn stops the enumeration early. The assignment passed to fn
// is reused between calls; clone it if it must be retained.
//
// limit bounds the number of assignments visited: if the offer admits
// more than limit valid assignments, enumeration stops after limit calls
// and ErrTooManyToEnum is returned. A limit <= 0 means no bound.
func (f *FlexOffer) EnumerateAssignments(limit int, fn func(Assignment) bool) error {
	if err := f.Validate(); err != nil {
		return err
	}
	visited := 0
	vals := make([]int64, len(f.Slices))
	a := Assignment{Values: vals}
	for start := f.EarliestStart; start <= f.LatestStart; start++ {
		a.Start = start
		stop, err := f.enumerateValues(0, 0, &visited, limit, &a, fn)
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// enumerateValues recurses over slice values, pruning branches whose
// partial sum cannot reach the total constraints.
func (f *FlexOffer) enumerateValues(i int, partial int64, visited *int, limit int, a *Assignment, fn func(Assignment) bool) (stop bool, err error) {
	if i == len(f.Slices) {
		if partial < f.TotalMin || partial > f.TotalMax {
			return false, nil
		}
		if limit > 0 && *visited >= limit {
			return true, ErrTooManyToEnum
		}
		*visited++
		return !fn(*a), nil
	}
	// Bounds of the remaining slices, for pruning.
	var remMin, remMax int64
	for _, s := range f.Slices[i+1:] {
		remMin += s.Min
		remMax += s.Max
	}
	s := f.Slices[i]
	for v := s.Min; v <= s.Max; v++ {
		sum := partial + v
		if sum+remMax < f.TotalMin || sum+remMin > f.TotalMax {
			continue
		}
		a.Values[i] = v
		stop, err = f.enumerateValues(i+1, sum, visited, limit, a, fn)
		if err != nil || stop {
			return stop, err
		}
	}
	return false, nil
}

// Assignments collects all valid assignments up to limit (see
// EnumerateAssignments). It is a convenience for tests and small offers;
// prefer the callback form for large spaces.
func (f *FlexOffer) Assignments(limit int) ([]Assignment, error) {
	var out []Assignment
	err := f.EnumerateAssignments(limit, func(a Assignment) bool {
		out = append(out, a.Clone())
		return true
	})
	return out, err
}
