package flexoffer

// Builder assembles a FlexOffer incrementally. It is convenient when the
// profile is constructed programmatically (e.g. by workload generators).
// The zero Builder starts an offer at time 0 with no slices.
//
//	f, err := flexoffer.NewBuilder().
//		ID("ev-42").
//		StartWindow(23, 27).
//		Slice(4, 6).Slice(4, 6).Slice(0, 6).
//		TotalRange(9, 18).
//		Build()
type Builder struct {
	offer     FlexOffer
	hasTotals bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// ID sets the offer's identifier.
func (b *Builder) ID(id string) *Builder {
	b.offer.ID = id
	return b
}

// StartWindow sets the start-time flexibility interval [tes, tls].
func (b *Builder) StartWindow(earliest, latest int) *Builder {
	b.offer.EarliestStart = earliest
	b.offer.LatestStart = latest
	return b
}

// Slice appends one profile slice with energy range [min, max].
func (b *Builder) Slice(min, max int64) *Builder {
	b.offer.Slices = append(b.offer.Slices, Slice{Min: min, Max: max})
	return b
}

// FixedSlice appends a slice with no energy flexibility (min == max).
func (b *Builder) FixedSlice(v int64) *Builder { return b.Slice(v, v) }

// Slices appends several prepared slices at once.
func (b *Builder) Slices(ss ...Slice) *Builder {
	b.offer.Slices = append(b.offer.Slices, ss...)
	return b
}

// TotalRange sets explicit total energy constraints [cmin, cmax]. When
// not called, Build defaults the totals to the slice sums.
func (b *Builder) TotalRange(min, max int64) *Builder {
	b.offer.TotalMin = min
	b.offer.TotalMax = max
	b.hasTotals = true
	return b
}

// Build validates and returns the flex-offer. The Builder can be reused
// afterwards; the returned offer is independent of it.
func (b *Builder) Build() (*FlexOffer, error) {
	f := b.offer.Clone()
	if !b.hasTotals {
		f.TotalMin = f.SumMin()
		f.TotalMax = f.SumMax()
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustBuild is Build but panics on error; for constant test fixtures.
func (b *Builder) MustBuild() *FlexOffer {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
