// Package flexoffer implements the flex-offer model of Definition 1 and
// Definition 2 in Valsomatzis et al., "Measuring and Comparing Energy
// Flexibilities" (EDBT/ICDT Workshops 2015), following the original model
// of Šikšnys et al. (SSDBM 2012).
//
// A flex-offer couples a start-time flexibility interval [tes, tls] with
// an energy profile of consecutive unit-duration slices, each carrying an
// allowed energy range [amin, amax], plus total minimum/maximum energy
// constraints cmin and cmax. A flex-offer is instantiated into an
// Assignment: a concrete start time plus one energy value per slice.
//
// Time has domain N0 and energy domain Z (paper Section 2); any finer
// real-world granularity is obtained by scaling with a coefficient.
package flexoffer

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel validation errors. All validation failures wrap one of these,
// so callers can classify problems with errors.Is.
var (
	ErrNoSlices        = errors.New("flexoffer: profile must contain at least one slice")
	ErrNegativeTime    = errors.New("flexoffer: start times must be non-negative")
	ErrStartOrder      = errors.New("flexoffer: earliest start must not exceed latest start")
	ErrSliceOrder      = errors.New("flexoffer: slice minimum must not exceed slice maximum")
	ErrTotalOrder      = errors.New("flexoffer: total minimum must not exceed total maximum")
	ErrTotalBounds     = errors.New("flexoffer: total constraints must lie within the slice sums")
	ErrNilOffer        = errors.New("flexoffer: nil flex-offer")
	ErrBadAssignment   = errors.New("flexoffer: invalid assignment")
	ErrTooManyToEnum   = errors.New("flexoffer: assignment space too large to enumerate")
	ErrInfeasibleTotal = errors.New("flexoffer: total constraints admit no assignment")
)

// Slice is one unit-duration element of a flex-offer's energy profile,
// holding the allowed energy range [Min, Max] (the paper's [amin, amax]).
type Slice struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// Span returns the width of the slice's energy range, Max−Min.
func (s Slice) Span() int64 { return s.Max - s.Min }

// Contains reports whether v lies within [Min, Max].
func (s Slice) Contains(v int64) bool { return s.Min <= v && v <= s.Max }

// Kind classifies a flex-offer by the sign of the energy it can exchange
// (paper Section 2).
type Kind int

const (
	// Positive flex-offers represent pure consumption (all energy
	// values non-negative), e.g. a dishwasher.
	Positive Kind = iota
	// Negative flex-offers represent pure production (all energy values
	// non-positive), e.g. a solar panel.
	Negative
	// Mixed flex-offers can both consume and produce, e.g. a
	// vehicle-to-grid battery.
	Mixed
)

// String returns the paper's name for the kind.
func (k Kind) String() string {
	switch k {
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FlexOffer is Definition 1: a start-time flexibility interval
// [EarliestStart, LatestStart], a profile of consecutive slices, and
// total energy constraints TotalMin (cmin) and TotalMax (cmax).
//
// Construct offers with New or the Builder, which apply the paper's
// defaults (totals equal to the slice sums) and validate; a hand-built
// literal should be checked with Validate before use.
type FlexOffer struct {
	// ID is an optional caller-supplied identifier carried through
	// aggregation and scheduling. It does not affect any semantics.
	ID string `json:"id,omitempty"`
	// Zone optionally names the grid zone (or tenant) the offer belongs
	// to. Like ID it carries no model semantics; the shard router uses
	// it as the preferred partitioning key so one zone's offers stay
	// co-located on one engine shard.
	Zone string `json:"zone,omitempty"`
	// EarliestStart is tes, the earliest allowed start time.
	EarliestStart int `json:"earliestStart"`
	// LatestStart is tls, the latest allowed start time.
	LatestStart int `json:"latestStart"`
	// Slices is the energy profile ⟨s(1)…s(s)⟩; each slice lasts one
	// time unit.
	Slices []Slice `json:"slices"`
	// TotalMin is cmin, the total minimum energy constraint.
	TotalMin int64 `json:"totalMin"`
	// TotalMax is cmax, the total maximum energy constraint.
	TotalMax int64 `json:"totalMax"`
}

// New returns a validated flex-offer whose total constraints default to
// the sums of the slice minima and maxima (the loosest totals Definition 1
// allows). Use NewWithTotals to tighten them.
func New(earliestStart, latestStart int, slices ...Slice) (*FlexOffer, error) {
	f := &FlexOffer{
		EarliestStart: earliestStart,
		LatestStart:   latestStart,
		Slices:        append([]Slice(nil), slices...),
	}
	f.TotalMin = f.SumMin()
	f.TotalMax = f.SumMax()
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// NewWithTotals returns a validated flex-offer with explicit total energy
// constraints cmin and cmax.
func NewWithTotals(earliestStart, latestStart int, slices []Slice, totalMin, totalMax int64) (*FlexOffer, error) {
	f := &FlexOffer{
		EarliestStart: earliestStart,
		LatestStart:   latestStart,
		Slices:        append([]Slice(nil), slices...),
		TotalMin:      totalMin,
		TotalMax:      totalMax,
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustNew is New but panics on error; intended for tests and package-level
// example data where the arguments are constants.
func MustNew(earliestStart, latestStart int, slices ...Slice) *FlexOffer {
	f, err := New(earliestStart, latestStart, slices...)
	if err != nil {
		panic(err)
	}
	return f
}

// Validate checks every structural constraint of Definition 1:
// 0 <= tes <= tls, a non-empty profile, amin <= amax per slice, and
// sum(amin) <= cmin <= cmax <= sum(amax).
func (f *FlexOffer) Validate() error {
	if f == nil {
		return ErrNilOffer
	}
	if len(f.Slices) == 0 {
		return ErrNoSlices
	}
	if f.EarliestStart < 0 {
		return fmt.Errorf("%w: tes=%d", ErrNegativeTime, f.EarliestStart)
	}
	if f.EarliestStart > f.LatestStart {
		return fmt.Errorf("%w: tes=%d tls=%d", ErrStartOrder, f.EarliestStart, f.LatestStart)
	}
	for i, s := range f.Slices {
		if s.Min > s.Max {
			return fmt.Errorf("%w: slice %d has [%d,%d]", ErrSliceOrder, i+1, s.Min, s.Max)
		}
	}
	if f.TotalMin > f.TotalMax {
		return fmt.Errorf("%w: cmin=%d cmax=%d", ErrTotalOrder, f.TotalMin, f.TotalMax)
	}
	if f.TotalMin < f.SumMin() || f.TotalMax > f.SumMax() {
		return fmt.Errorf("%w: cmin=%d cmax=%d, slice sums [%d,%d]",
			ErrTotalBounds, f.TotalMin, f.TotalMax, f.SumMin(), f.SumMax())
	}
	return nil
}

// NumSlices returns s, the number of profile slices (also the duration of
// the profile in time units, since slices last one unit each).
func (f *FlexOffer) NumSlices() int { return len(f.Slices) }

// SumMin returns the sum of the slice minima, the lower bound on cmin.
func (f *FlexOffer) SumMin() int64 {
	var sum int64
	for _, s := range f.Slices {
		sum += s.Min
	}
	return sum
}

// SumMax returns the sum of the slice maxima, the upper bound on cmax.
func (f *FlexOffer) SumMax() int64 {
	var sum int64
	for _, s := range f.Slices {
		sum += s.Max
	}
	return sum
}

// TimeFlexibility returns tf(f) = tls − tes (paper Section 3.1).
func (f *FlexOffer) TimeFlexibility() int { return f.LatestStart - f.EarliestStart }

// EnergyFlexibility returns ef(f) = cmax − cmin (paper Section 3.1).
func (f *FlexOffer) EnergyFlexibility() int64 { return f.TotalMax - f.TotalMin }

// EarliestEnd returns the first time unit after the profile when started
// as early as possible.
func (f *FlexOffer) EarliestEnd() int { return f.EarliestStart + f.NumSlices() }

// LatestEnd returns the first time unit after the profile when started as
// late as possible; the offer can occupy no time unit at or beyond it.
func (f *FlexOffer) LatestEnd() int { return f.LatestStart + f.NumSlices() }

// Kind classifies the offer as Positive (consumption only), Negative
// (production only) or Mixed, from the signs its slice ranges admit.
// An offer whose every slice is fixed at zero is classified Positive.
func (f *FlexOffer) Kind() Kind {
	canPos, canNeg := false, false
	for _, s := range f.Slices {
		if s.Max > 0 {
			canPos = true
		}
		if s.Min < 0 {
			canNeg = true
		}
	}
	switch {
	case canPos && canNeg:
		return Mixed
	case canNeg:
		return Negative
	default:
		return Positive
	}
}

// Clone returns a deep copy of the flex-offer.
func (f *FlexOffer) Clone() *FlexOffer {
	if f == nil {
		return nil
	}
	out := *f
	out.Slices = append([]Slice(nil), f.Slices...)
	return &out
}

// Equal reports whether two flex-offers have identical intervals,
// profiles and totals. IDs and zones are compared too.
func (f *FlexOffer) Equal(o *FlexOffer) bool {
	if f == nil || o == nil {
		return f == o
	}
	if f.ID != o.ID ||
		f.Zone != o.Zone ||
		f.EarliestStart != o.EarliestStart ||
		f.LatestStart != o.LatestStart ||
		f.TotalMin != o.TotalMin ||
		f.TotalMax != o.TotalMax ||
		len(f.Slices) != len(o.Slices) {
		return false
	}
	for i, s := range f.Slices {
		if o.Slices[i] != s {
			return false
		}
	}
	return true
}

// Shift returns a copy of the offer with its start window displaced by
// delta time units. It returns an error if the shift would make the
// earliest start negative.
func (f *FlexOffer) Shift(delta int) (*FlexOffer, error) {
	out := f.Clone()
	out.EarliestStart += delta
	out.LatestStart += delta
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleEnergy returns a copy with every energy quantity (slice ranges and
// totals) multiplied by k. Scaling by a negative k swaps range endpoints
// so the result remains valid; scaling by -1 converts consumption into
// the equivalent production offer.
func (f *FlexOffer) ScaleEnergy(k int64) *FlexOffer {
	out := f.Clone()
	for i, s := range out.Slices {
		lo, hi := s.Min*k, s.Max*k
		if lo > hi {
			lo, hi = hi, lo
		}
		out.Slices[i] = Slice{Min: lo, Max: hi}
	}
	lo, hi := out.TotalMin*k, out.TotalMax*k
	if lo > hi {
		lo, hi = hi, lo
	}
	out.TotalMin, out.TotalMax = lo, hi
	return out
}

// String renders the offer in the paper's notation, e.g.
// "([1,6],⟨[1,3],[2,4],[0,5],[0,3]⟩,cmin=3,cmax=15)".
func (f *FlexOffer) String() string {
	if f == nil {
		return "(nil)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "([%d,%d],⟨", f.EarliestStart, f.LatestStart)
	for i, s := range f.Slices {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", s.Min, s.Max)
	}
	fmt.Fprintf(&b, "⟩,cmin=%d,cmax=%d)", f.TotalMin, f.TotalMax)
	return b.String()
}
