package flexoffer

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	offers := []*FlexOffer{
		paperF(t),
		MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}),
	}
	offers[0].ID = "figure-1"
	tight, err := NewWithTotals(3, 9, []Slice{{0, 10}, {0, 10}}, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	offers = append(offers, tight)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, offers); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(offers) {
		t.Fatalf("decoded %d offers, want %d", len(got), len(offers))
	}
	for i := range offers {
		if !got[i].Equal(offers[i]) {
			t.Errorf("offer %d mismatch:\n got %v\nwant %v", i, got[i], offers[i])
		}
	}
}

func TestBinaryZonedRoundTrip(t *testing.T) {
	offers := []*FlexOffer{
		paperF(t),
		MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}),
		MustNew(5, 8, Slice{1, 3}),
	}
	offers[0].ID, offers[0].Zone = "figure-1", "z03"
	offers[2].Zone = "dk1-west" // zoned but anonymous
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, offers); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("FXO2")) {
		t.Fatalf("zoned stream should carry the FXO2 magic, got %q", buf.Bytes()[:4])
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(offers) {
		t.Fatalf("decoded %d offers, want %d", len(got), len(offers))
	}
	for i := range offers {
		if !got[i].Equal(offers[i]) {
			t.Errorf("offer %d mismatch:\n got %v\nwant %v", i, got[i], offers[i])
		}
	}
}

func TestBinaryZonelessKeepsV1Bytes(t *testing.T) {
	offers := []*FlexOffer{paperF(t), MustNew(1, 4, Slice{0, 2}, Slice{1, 3})}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, offers); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("FXO1")) {
		t.Fatalf("zone-less stream must stay FXO1, got %q", buf.Bytes()[:4])
	}
}

func TestBinaryIsSmallerThanJSON(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	offers := make([]*FlexOffer, 200)
	for i := range offers {
		offers[i] = randomOffer(r)
	}
	var jsonBuf, binBuf bytes.Buffer
	if err := Encode(&jsonBuf, offers); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&binBuf, offers); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*4 > jsonBuf.Len() {
		t.Errorf("binary %dB not <25%% of JSON %dB", binBuf.Len(), jsonBuf.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad magic":   "NOPE",
		"truncated":   "FXO1\x05",
		"only header": "FXO1",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeBinary(strings.NewReader(data)); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
}

func TestBinaryRejectsCorruptOffer(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, []*FlexOffer{paperF(t)}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate mid-offer.
	if _, err := DecodeBinary(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated offer = %v, want ErrCorrupt", err)
	}
}

func TestBinaryEncodeValidates(t *testing.T) {
	bad := &FlexOffer{EarliestStart: 2, LatestStart: 1, Slices: []Slice{{0, 1}}}
	if err := EncodeBinary(&bytes.Buffer{}, []*FlexOffer{bad}); err == nil {
		t.Fatal("invalid offer must be rejected")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %d offers, %v", len(got), err)
	}
}

func TestPropertyBinaryRoundTrips(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*FlexOffer, 1+r.Intn(10))
		for i := range offers {
			offers[i] = randomOffer(r)
			if r.Intn(2) == 0 {
				offers[i].ID = "id-with-ünïcode"
			}
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, offers); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil || len(got) != len(offers) {
			return false
		}
		for i := range offers {
			if !got[i].Equal(offers[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBinaryDecodeNeverPanicsOnCorruption(t *testing.T) {
	// Flip, truncate and splice random bytes: DecodeBinary must always
	// return (possibly an error), never panic, and never produce an
	// invalid offer.
	base := func() []byte {
		var buf bytes.Buffer
		offers := []*FlexOffer{
			MustNew(1, 6, Slice{1, 3}, Slice{2, 4}, Slice{0, 5}, Slice{0, 3}),
			MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}),
		}
		if err := EncodeBinary(&buf, offers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), base...)
		switch r.Intn(3) {
		case 0: // flip a byte
			data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		case 1: // truncate
			data = data[:r.Intn(len(data))]
		case 2: // splice garbage
			at := r.Intn(len(data))
			data = append(data[:at:at], byte(r.Intn(256)))
		}
		offers, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for _, f := range offers {
			if f.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJSONDecodeNeverPanicsOnCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []*FlexOffer{MustNew(0, 2, Slice{1, 3})}); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), base...)
		data[r.Intn(len(data))] ^= byte(1 + r.Intn(255))
		offers, err := Decode(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for _, f := range offers {
			if f.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
