package flexoffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRefineBasics(t *testing.T) {
	// One 1-hour slot of [2,4] at 15-minute granularity: 4 sub-slots of
	// [0.5, 1] — expressed in quarter-units after scaling by 4 first.
	f := MustNew(1, 3, Slice{2, 4}).ScaleEnergy(4) // [8,16] per hour
	r, err := f.Refine(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.EarliestStart != 4 || r.LatestStart != 12 {
		t.Errorf("window = [%d,%d], want [4,12]", r.EarliestStart, r.LatestStart)
	}
	if r.NumSlices() != 4 {
		t.Fatalf("slices = %d, want 4", r.NumSlices())
	}
	for _, s := range r.Slices {
		if s != (Slice{2, 4}) {
			t.Errorf("sub-slice = %v, want [2,4]", s)
		}
	}
	if r.TotalMin != f.TotalMin || r.TotalMax != f.TotalMax {
		t.Errorf("totals changed: [%d,%d]", r.TotalMin, r.TotalMax)
	}
}

func TestRefinePreservesSemantics(t *testing.T) {
	f := MustNew(0, 2, Slice{4, 8}, Slice{0, 4})
	r, err := f.Refine(2)
	if err != nil {
		t.Fatal(err)
	}
	// tf multiplies by k; ef and the joint area are preserved.
	if r.TimeFlexibility() != 2*f.TimeFlexibility() {
		t.Errorf("tf = %d, want %d", r.TimeFlexibility(), 2*f.TimeFlexibility())
	}
	if r.EnergyFlexibility() != f.EnergyFlexibility() {
		t.Errorf("ef = %d, want %d", r.EnergyFlexibility(), f.EnergyFlexibility())
	}
}

func TestRefineErrors(t *testing.T) {
	f := MustNew(0, 1, Slice{1, 3})
	if _, err := f.Refine(0); !errors.Is(err, ErrBadFactor) {
		t.Errorf("factor 0 = %v", err)
	}
	if _, err := f.Refine(2); !errors.Is(err, ErrNotDivisible) {
		t.Errorf("odd amounts by 2 = %v", err)
	}
	bad := &FlexOffer{EarliestStart: 2, LatestStart: 1, Slices: []Slice{{0, 2}}}
	if _, err := bad.Refine(2); err == nil {
		t.Error("invalid offer must be rejected")
	}
}

func TestRefineIdentity(t *testing.T) {
	f := MustNew(0, 1, Slice{1, 3})
	r, err := f.Refine(1)
	if err != nil || !r.Equal(f) {
		t.Errorf("Refine(1) = %v, %v", r, err)
	}
}

func TestCoarsenInvertsRefine(t *testing.T) {
	f := MustNew(1, 3, Slice{4, 8}, Slice{0, 12})
	for _, k := range []int{1, 2, 4} {
		r, err := f.Refine(k)
		if err != nil {
			t.Fatalf("Refine(%d): %v", k, err)
		}
		back, err := r.Coarsen(k)
		if err != nil {
			t.Fatalf("Coarsen(%d): %v", k, err)
		}
		if !back.Equal(f) {
			t.Errorf("Coarsen(Refine(%d)) = %v, want %v", k, back, f)
		}
	}
}

func TestCoarsenErrors(t *testing.T) {
	f := MustNew(0, 2, Slice{0, 2}, Slice{0, 2}, Slice{0, 2})
	if _, err := f.Coarsen(2); !errors.Is(err, ErrNotDivisible) {
		t.Errorf("3 slices by 2 = %v", err)
	}
	g := MustNew(1, 2, Slice{0, 2}, Slice{0, 2})
	if _, err := g.Coarsen(2); !errors.Is(err, ErrNotDivisible) {
		t.Errorf("odd window by 2 = %v", err)
	}
	if _, err := g.Coarsen(0); !errors.Is(err, ErrBadFactor) {
		t.Errorf("factor 0 = %v", err)
	}
}

func TestPropertyRefinePreservesEfAndScalesTf(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOffer(r).ScaleEnergy(6) // make amounts divisible by 2 and 3
		for _, k := range []int{2, 3} {
			ref, err := f.Refine(k)
			if err != nil {
				return false
			}
			if ref.TimeFlexibility() != k*f.TimeFlexibility() ||
				ref.EnergyFlexibility() != f.EnergyFlexibility() {
				return false
			}
			back, err := ref.Coarsen(k)
			if err != nil || !back.Equal(f) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
