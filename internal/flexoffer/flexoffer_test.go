package flexoffer

import (
	"errors"
	"strings"
	"testing"
)

// paperF returns the paper's Figure 1 flex-offer
// f = ([1,6],⟨[1,3],[2,4],[0,5],[0,3]⟩).
func paperF(t testing.TB) *FlexOffer {
	t.Helper()
	f, err := New(1, 6, Slice{1, 3}, Slice{2, 4}, Slice{0, 5}, Slice{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewDefaultsTotalsToSliceSums(t *testing.T) {
	f := paperF(t)
	// Example 2: cmin = 3 (sum of minima), cmax = 15 (sum of maxima).
	if f.TotalMin != 3 || f.TotalMax != 15 {
		t.Fatalf("totals = [%d,%d], want [3,15]", f.TotalMin, f.TotalMax)
	}
}

func TestPaperFigure1Flexibilities(t *testing.T) {
	f := paperF(t)
	if tf := f.TimeFlexibility(); tf != 5 {
		t.Errorf("tf = %d, want 5 (paper Example 1)", tf)
	}
	if ef := f.EnergyFlexibility(); ef != 12 {
		t.Errorf("ef = %d, want 12 (paper Example 2)", ef)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    FlexOffer
		want error
	}{
		{"no slices", FlexOffer{LatestStart: 1}, ErrNoSlices},
		{"negative time", FlexOffer{EarliestStart: -1, LatestStart: 1, Slices: []Slice{{0, 1}}}, ErrNegativeTime},
		{"start order", FlexOffer{EarliestStart: 3, LatestStart: 1, Slices: []Slice{{0, 1}}}, ErrStartOrder},
		{"slice order", FlexOffer{LatestStart: 1, Slices: []Slice{{2, 1}}}, ErrSliceOrder},
		{"total order", FlexOffer{LatestStart: 1, Slices: []Slice{{0, 5}}, TotalMin: 4, TotalMax: 2}, ErrTotalOrder},
		{"total below slice sum", FlexOffer{LatestStart: 1, Slices: []Slice{{1, 5}}, TotalMin: 0, TotalMax: 5}, ErrTotalBounds},
		{"total above slice sum", FlexOffer{LatestStart: 1, Slices: []Slice{{1, 5}}, TotalMin: 1, TotalMax: 6}, ErrTotalBounds},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.f.Validate()
			if !errors.Is(err, c.want) {
				t.Errorf("Validate = %v, want %v", err, c.want)
			}
		})
	}
	var nilOffer *FlexOffer
	if !errors.Is(nilOffer.Validate(), ErrNilOffer) {
		t.Error("nil offer must return ErrNilOffer")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(4, 2, Slice{0, 1}); !errors.Is(err, ErrStartOrder) {
		t.Errorf("New with bad window = %v", err)
	}
	if _, err := NewWithTotals(0, 1, []Slice{{0, 5}}, 6, 6); !errors.Is(err, ErrTotalBounds) {
		t.Errorf("NewWithTotals with bad totals = %v", err)
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid input")
		}
	}()
	MustNew(2, 1, Slice{0, 1})
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		name   string
		slices []Slice
		want   Kind
	}{
		{"dishwasher (consumption)", []Slice{{1, 3}, {2, 4}}, Positive},
		{"zero-capable consumption", []Slice{{0, 5}}, Positive},
		{"all zero", []Slice{{0, 0}}, Positive},
		{"solar (production)", []Slice{{-5, -1}}, Negative},
		{"zero-capable production", []Slice{{-5, 0}}, Negative},
		{"vehicle-to-grid (mixed)", []Slice{{-3, 4}}, Mixed},
		{"mixed across slices", []Slice{{1, 2}, {-2, -1}}, Mixed},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := MustNew(0, 1, c.slices...)
			if got := f.Kind(); got != c.want {
				t.Errorf("Kind = %v, want %v", got, c.want)
			}
		})
	}
}

func TestKindStrings(t *testing.T) {
	if Positive.String() != "positive" || Negative.String() != "negative" || Mixed.String() != "mixed" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include its number")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := paperF(t)
	c := f.Clone()
	c.Slices[0].Min = 99
	if f.Slices[0].Min != 1 {
		t.Fatal("Clone must copy slices")
	}
	if (*FlexOffer)(nil).Clone() != nil {
		t.Fatal("Clone of nil is nil")
	}
}

func TestEqual(t *testing.T) {
	f := paperF(t)
	if !f.Equal(f.Clone()) {
		t.Error("offer must equal its clone")
	}
	g := f.Clone()
	g.Slices[2].Max++
	if f.Equal(g) {
		t.Error("different slices must not be Equal")
	}
	h := f.Clone()
	h.ID = "other"
	if f.Equal(h) {
		t.Error("different IDs must not be Equal")
	}
	if f.Equal(nil) || !(*FlexOffer)(nil).Equal(nil) {
		t.Error("nil handling wrong")
	}
}

func TestShift(t *testing.T) {
	f := paperF(t)
	g, err := f.Shift(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.EarliestStart != 4 || g.LatestStart != 9 {
		t.Errorf("Shift window = [%d,%d], want [4,9]", g.EarliestStart, g.LatestStart)
	}
	if f.EarliestStart != 1 {
		t.Error("Shift must not mutate the receiver")
	}
	if _, err := f.Shift(-2); !errors.Is(err, ErrNegativeTime) {
		t.Errorf("Shift below zero = %v, want ErrNegativeTime", err)
	}
}

func TestScaleEnergy(t *testing.T) {
	f := MustNew(0, 1, Slice{1, 3})
	g := f.ScaleEnergy(10)
	if g.Slices[0] != (Slice{10, 30}) || g.TotalMin != 10 || g.TotalMax != 30 {
		t.Errorf("ScaleEnergy(10) = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("scaled offer invalid: %v", err)
	}
	n := f.ScaleEnergy(-1)
	if n.Slices[0] != (Slice{-3, -1}) || n.TotalMin != -3 || n.TotalMax != -1 {
		t.Errorf("ScaleEnergy(-1) = %v", n)
	}
	if n.Kind() != Negative {
		t.Errorf("negated consumption should be production, got %v", n.Kind())
	}
	if err := n.Validate(); err != nil {
		t.Errorf("negated offer invalid: %v", err)
	}
}

func TestStringNotation(t *testing.T) {
	f := paperF(t)
	want := "([1,6],⟨[1,3],[2,4],[0,5],[0,3]⟩,cmin=3,cmax=15)"
	if got := f.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (*FlexOffer)(nil).String() != "(nil)" {
		t.Error("nil String wrong")
	}
}

func TestSliceHelpers(t *testing.T) {
	s := Slice{-2, 3}
	if s.Span() != 5 {
		t.Errorf("Span = %d, want 5", s.Span())
	}
	if !s.Contains(-2) || !s.Contains(3) || s.Contains(4) || s.Contains(-3) {
		t.Error("Contains boundaries wrong")
	}
}

func TestEndHelpers(t *testing.T) {
	f := paperF(t)
	if f.EarliestEnd() != 5 {
		t.Errorf("EarliestEnd = %d, want 5", f.EarliestEnd())
	}
	if f.LatestEnd() != 10 {
		t.Errorf("LatestEnd = %d, want 10", f.LatestEnd())
	}
}

func TestBuilder(t *testing.T) {
	f, err := NewBuilder().
		ID("ev-1").
		StartWindow(23, 27).
		Slice(4, 6).Slice(4, 6).FixedSlice(5).
		TotalRange(13, 17).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "ev-1" || f.EarliestStart != 23 || f.LatestStart != 27 {
		t.Errorf("builder header wrong: %v", f)
	}
	if f.NumSlices() != 3 || f.Slices[2] != (Slice{5, 5}) {
		t.Errorf("builder slices wrong: %v", f.Slices)
	}
	if f.TotalMin != 13 || f.TotalMax != 17 {
		t.Errorf("builder totals wrong: %v", f)
	}
}

func TestBuilderDefaultsTotals(t *testing.T) {
	f, err := NewBuilder().StartWindow(0, 2).Slice(1, 4).Slice(0, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalMin != 1 || f.TotalMax != 6 {
		t.Errorf("default totals = [%d,%d], want [1,6]", f.TotalMin, f.TotalMax)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().StartWindow(0, 1).Build(); !errors.Is(err, ErrNoSlices) {
		t.Errorf("empty builder = %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on invalid input")
		}
	}()
	NewBuilder().MustBuild()
}

func TestBuilderReuseIsIndependent(t *testing.T) {
	b := NewBuilder().StartWindow(0, 1).Slice(0, 1)
	f1 := b.MustBuild()
	b.Slice(5, 5)
	f2 := b.MustBuild()
	if f1.NumSlices() != 1 || f2.NumSlices() != 2 {
		t.Fatalf("builds not independent: %d and %d slices", f1.NumSlices(), f2.NumSlices())
	}
}
