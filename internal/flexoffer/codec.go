package flexoffer

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Document is the on-disk JSON envelope for sets of flex-offers, used by
// the cmd/flexctl and cmd/flexgen tools.
type Document struct {
	// Version identifies the schema; currently always 1.
	Version int `json:"version"`
	// FlexOffers holds the payload.
	FlexOffers []*FlexOffer `json:"flexOffers"`
}

// CurrentVersion is the document schema version written by Encode.
const CurrentVersion = 1

// Encode writes the flex-offers to w as an indented JSON document. Every
// offer is validated first, so a document on disk is always well-formed.
func Encode(w io.Writer, offers []*FlexOffer) error {
	for i, f := range offers {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("flexoffer: encoding offer %d: %w", i, err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Version: CurrentVersion, FlexOffers: offers})
}

// EncodeNDJSON writes the flex-offers to w as NDJSON: one compact JSON
// object per line, no envelope. This is the streaming wire format of
// the flexd ingest endpoint — records can be produced, concatenated and
// decoded incrementally, which the document format's enclosing array
// prevents. Every offer is validated first, exactly like Encode.
func EncodeNDJSON(w io.Writer, offers []*FlexOffer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, f := range offers {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("flexoffer: encoding offer %d: %w", i, err)
		}
		// Encoder.Encode terminates each value with '\n', which is
		// exactly the NDJSON record separator.
		if err := enc.Encode(f); err != nil {
			return fmt.Errorf("flexoffer: encoding offer %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Decode reads a JSON document from r and validates every offer.
func Decode(r io.Reader) ([]*FlexOffer, error) {
	var doc Document
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("flexoffer: decoding document: %w", err)
	}
	if doc.Version != CurrentVersion {
		return nil, fmt.Errorf("flexoffer: unsupported document version %d", doc.Version)
	}
	for i, f := range doc.FlexOffers {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("flexoffer: offer %d invalid: %w", i, err)
		}
	}
	return doc.FlexOffers, nil
}
