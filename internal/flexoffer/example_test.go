package flexoffer_test

import (
	"fmt"
	"log"

	"flexmeasures/internal/flexoffer"
)

// Example builds the paper's Figure 1 flex-offer and validates the
// sample assignment fa1 from Section 2.
func Example() {
	f, err := flexoffer.New(1, 6,
		flexoffer.Slice{Min: 1, Max: 3}, flexoffer.Slice{Min: 2, Max: 4},
		flexoffer.Slice{Min: 0, Max: 5}, flexoffer.Slice{Min: 0, Max: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f)
	fa1 := flexoffer.NewAssignment(2, 2, 3, 1, 2)
	fmt.Println("fa1 valid:", f.ValidateAssignment(fa1) == nil)
	// Output:
	// ([1,6],⟨[1,3],[2,4],[0,5],[0,3]⟩,cmin=3,cmax=15)
	// fa1 valid: true
}

// ExampleFlexOffer_AssignmentCount reproduces the paper's Example 14.
func ExampleFlexOffer_AssignmentCount() {
	f6 := flexoffer.MustNew(0, 2,
		flexoffer.Slice{Min: -1, Max: 2},
		flexoffer.Slice{Min: -4, Max: -1},
		flexoffer.Slice{Min: -3, Max: 1})
	fmt.Println(f6.AssignmentCount())
	// Output: 240
}

// ExampleFlexOffer_EnumerateAssignments lists the four assignments of
// the paper's Example 5 flex-offer.
func ExampleFlexOffer_EnumerateAssignments() {
	f1 := flexoffer.MustNew(0, 1, flexoffer.Slice{Min: 0, Max: 1})
	err := f1.EnumerateAssignments(0, func(a flexoffer.Assignment) bool {
		fmt.Println(a.Series())
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// {0..0}⟨0⟩
	// {0..0}⟨1⟩
	// {1..1}⟨0⟩
	// {1..1}⟨1⟩
}

// ExampleBuilder assembles an EV offer fluently.
func ExampleBuilder() {
	ev, err := flexoffer.NewBuilder().
		ID("ev-1").
		StartWindow(23, 27).
		Slice(0, 37).Slice(0, 37).Slice(0, 37).
		TotalRange(66, 111).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ev.Kind(), ev.TimeFlexibility(), ev.EnergyFlexibility())
	// Output: positive 4 45
}

// ExampleFlexOffer_TightenTotals folds an EV's 60% minimum charge into
// its slice minima, producing the slice-bounded form.
func ExampleFlexOffer_TightenTotals() {
	ev, err := flexoffer.NewWithTotals(0, 2,
		[]flexoffer.Slice{{Min: 0, Max: 10}, {Min: 0, Max: 10}}, 12, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ev.TightenTotals())
	// Output: ([0,2],⟨[10,10],[2,10]⟩,cmin=12,cmax=20)
}
