package flexoffer

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	offers := []*FlexOffer{
		paperF(t),
		MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}),
	}
	offers[0].ID = "figure-1"
	var buf bytes.Buffer
	if err := Encode(&buf, offers); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(offers) {
		t.Fatalf("decoded %d offers, want %d", len(got), len(offers))
	}
	for i := range offers {
		if !got[i].Equal(offers[i]) {
			t.Errorf("offer %d round-trip mismatch:\n got %v\nwant %v", i, got[i], offers[i])
		}
	}
}

func TestEncodeNDJSONOneRecordPerLine(t *testing.T) {
	offers := []*FlexOffer{
		paperF(t),
		MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}),
	}
	offers[0].ID = "figure-1"
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, offers); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(offers) {
		t.Fatalf("got %d lines, want %d", len(lines), len(offers))
	}
	for i, line := range lines {
		if strings.ContainsAny(line, "\n") || strings.Contains(line, "  ") {
			t.Errorf("line %d is not compact single-line JSON: %q", i, line)
		}
	}
}

func TestEncodeNDJSONRejectsInvalidOffer(t *testing.T) {
	bad := &FlexOffer{EarliestStart: 2, LatestStart: 0, Slices: []Slice{{0, 1}}}
	if err := EncodeNDJSON(&bytes.Buffer{}, []*FlexOffer{bad}); err == nil {
		t.Fatal("EncodeNDJSON must validate offers")
	}
}

func TestEncodeRejectsInvalidOffer(t *testing.T) {
	bad := &FlexOffer{EarliestStart: 2, LatestStart: 0, Slices: []Slice{{0, 1}}}
	if err := Encode(&bytes.Buffer{}, []*FlexOffer{bad}); err == nil {
		t.Fatal("Encode must validate offers")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "not json"},
		{"unknown fields", `{"version":1,"flexOffers":[],"bogus":true}`},
		{"wrong version", `{"version":2,"flexOffers":[]}`},
		{"invalid offer", `{"version":1,"flexOffers":[{"earliestStart":3,"latestStart":1,"slices":[{"min":0,"max":1}],"totalMin":0,"totalMax":1}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(c.doc)); err == nil {
				t.Error("Decode must reject this document")
			}
		})
	}
}

func TestDecodeEmptyDocument(t *testing.T) {
	got, err := Decode(strings.NewReader(`{"version":1,"flexOffers":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d offers from empty document", len(got))
	}
}
