package flexoffer

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignmentCountPaperExamples(t *testing.T) {
	cases := []struct {
		name string
		f    *FlexOffer
		want int64
	}{
		// Example 6 / Figure 3: f2 = ([0,2],⟨[0,2]⟩) has 9 assignments.
		{"f2", MustNew(0, 2, Slice{0, 2}), 9},
		// Example 5: f1 = ([0,1],⟨[0,1]⟩) has 4 assignments.
		{"f1", MustNew(0, 1, Slice{0, 1}), 4},
		// Example 14 / Figure 7: f6 = ([0,2],⟨[-1,2],[-4,-1],[-3,1]⟩)
		// has 240 assignments.
		{"f6", MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1}), 240},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.f.AssignmentCount(); got.Cmp(big.NewInt(c.want)) != 0 {
				t.Errorf("AssignmentCount = %v, want %d", got, c.want)
			}
		})
	}
}

func TestAssignmentCountPaperExample14Ablations(t *testing.T) {
	// Example 14: with tf(f6)=0 f6 would have 80 assignments; with
	// ef(f6)=0 (i.e. no slice flexibility) it would have 3.
	noTime := MustNew(0, 0, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1})
	if got := noTime.AssignmentCount(); got.Cmp(big.NewInt(80)) != 0 {
		t.Errorf("tf=0 count = %v, want 80", got)
	}
	noEnergy := MustNew(0, 2, Slice{2, 2}, Slice{-4, -4}, Slice{1, 1})
	if got := noEnergy.AssignmentCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("ef=0 count = %v, want 3", got)
	}
	// f2's ablation: with tf=0 Definition 8 gives 3 assignments.
	// (The paper also states f2 with ef=0 "would have 2 possible
	// assignments"; Definition 8 gives (2−0+1)·1 = 3 — a typo in the
	// paper, recorded in EXPERIMENTS.md. f6's analogous ablation in the
	// same example is consistent with Definition 8.)
	f2NoTime := MustNew(0, 0, Slice{0, 2})
	if got := f2NoTime.AssignmentCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("f2 tf=0 count = %v, want 3", got)
	}
	f2NoEnergy := MustNew(0, 2, Slice{1, 1})
	if got := f2NoEnergy.AssignmentCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("f2 ef=0 count = %v, want 3 by Definition 8", got)
	}
}

func TestEnumerateMatchesCountWithoutTotals(t *testing.T) {
	f := MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1})
	as, err := f.Assignments(0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(as)) != f.AssignmentCount().Int64() {
		t.Fatalf("enumerated %d, count says %v", len(as), f.AssignmentCount())
	}
	// Every enumerated assignment must be valid and distinct.
	seen := make(map[string]bool, len(as))
	for _, a := range as {
		if err := f.ValidateAssignment(a); err != nil {
			t.Fatalf("enumerated invalid assignment %+v: %v", a, err)
		}
		key := a.Series().String()
		if seen[key] {
			t.Fatalf("duplicate assignment %+v", a)
		}
		seen[key] = true
	}
}

func TestEnumerateHonoursTotals(t *testing.T) {
	f, err := NewWithTotals(0, 1, []Slice{{0, 2}, {0, 2}}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	as, err := f.Assignments(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sums in [2,3]: pairs (0,2),(1,1),(1,2),(2,0),(2,1),(0,3)? values
	// max 2 so: sum2: (0,2),(1,1),(2,0); sum3: (1,2),(2,1) → 5 per
	// start, 2 starts → 10.
	if len(as) != 10 {
		t.Fatalf("enumerated %d assignments, want 10", len(as))
	}
	for _, a := range as {
		if tot := a.TotalEnergy(); tot < 2 || tot > 3 {
			t.Fatalf("assignment total %d outside [2,3]", tot)
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	f := MustNew(0, 2, Slice{0, 2})
	var n int
	err := f.EnumerateAssignments(4, func(Assignment) bool { n++; return true })
	if !errors.Is(err, ErrTooManyToEnum) {
		t.Fatalf("err = %v, want ErrTooManyToEnum", err)
	}
	if n != 4 {
		t.Fatalf("visited %d, want 4", n)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	f := MustNew(0, 2, Slice{0, 2})
	var n int
	err := f.EnumerateAssignments(0, func(Assignment) bool { n++; return n < 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestEnumerateInvalidOffer(t *testing.T) {
	bad := &FlexOffer{EarliestStart: 2, LatestStart: 1, Slices: []Slice{{0, 1}}}
	if err := bad.EnumerateAssignments(0, func(Assignment) bool { return true }); err == nil {
		t.Fatal("enumerating an invalid offer must fail")
	}
}

func TestValidAssignmentCountMatchesEnumeration(t *testing.T) {
	f, err := NewWithTotals(0, 1, []Slice{{0, 2}, {0, 2}}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ValidAssignmentCount(); got.Cmp(big.NewInt(10)) != 0 {
		t.Fatalf("ValidAssignmentCount = %v, want 10", got)
	}
}

func TestValidAssignmentCountEqualsDefinitionWhenTotalsLoose(t *testing.T) {
	f := MustNew(0, 2, Slice{-1, 2}, Slice{-4, -1}, Slice{-3, 1})
	if f.ValidAssignmentCount().Cmp(f.AssignmentCount()) != 0 {
		t.Fatalf("loose totals: DP count %v != formula %v",
			f.ValidAssignmentCount(), f.AssignmentCount())
	}
}

func TestValidAssignmentCountBigOffer(t *testing.T) {
	// A large offer that cannot be enumerated: 24 slices of span 9 and
	// tf=95 gives (95+1)*10^24 assignments; check no overflow occurs.
	slices := make([]Slice, 24)
	for i := range slices {
		slices[i] = Slice{0, 9}
	}
	f := MustNew(0, 95, slices...)
	want := new(big.Int).Exp(big.NewInt(10), big.NewInt(24), nil)
	want.Mul(want, big.NewInt(96))
	if got := f.AssignmentCount(); got.Cmp(want) != 0 {
		t.Fatalf("AssignmentCount = %v, want %v", got, want)
	}
	if got := f.ValidAssignmentCount(); got.Cmp(want) != 0 {
		t.Fatalf("ValidAssignmentCount = %v, want %v", got, want)
	}
}

func TestPropertyDPCountMatchesEnumeration(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOffer(r)
		if f.AssignmentCount().Cmp(big.NewInt(3000)) > 0 {
			return true // keep enumeration cheap
		}
		as, err := f.Assignments(0)
		if err != nil {
			return false
		}
		return f.ValidAssignmentCount().Cmp(big.NewInt(int64(len(as)))) == 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountsMonotoneInTotals(t *testing.T) {
	// Tightening totals can only reduce the valid-assignment count.
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOffer(r)
		tight := f.Clone()
		if tight.TotalMax > tight.TotalMin {
			tight.TotalMax--
		}
		return tight.ValidAssignmentCount().Cmp(f.ValidAssignmentCount()) <= 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
