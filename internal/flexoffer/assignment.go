package flexoffer

import (
	"fmt"

	"flexmeasures/internal/timeseries"
)

// Assignment is Definition 2: a concrete instantiation of a flex-offer,
// fixing the start time and one energy value per slice. Slice i executes
// during time unit Start+i.
type Assignment struct {
	// Start is the chosen start time tstart ∈ [tes, tls].
	Start int `json:"start"`
	// Values holds the chosen energy amount v(i) for each slice.
	Values []int64 `json:"values"`
}

// NewAssignment returns an assignment with a defensive copy of values.
func NewAssignment(start int, values ...int64) Assignment {
	v := make([]int64, len(values))
	copy(v, values)
	return Assignment{Start: start, Values: v}
}

// TotalEnergy returns the sum of the assignment's energy values.
func (a Assignment) TotalEnergy() int64 {
	var sum int64
	for _, v := range a.Values {
		sum += v
	}
	return sum
}

// Series converts the assignment into the time series
// {fa}^{Start+s-1}_{t=Start} = ⟨v(1),…,v(s)⟩.
func (a Assignment) Series() timeseries.Series {
	return timeseries.New(a.Start, a.Values...)
}

// Clone returns a deep copy of the assignment.
func (a Assignment) Clone() Assignment {
	return NewAssignment(a.Start, a.Values...)
}

// ValidateAssignment checks every condition of Definition 2 against the
// flex-offer:
//
//   - tes <= Start <= tls,
//   - one value per slice, each within its slice's [amin, amax],
//   - cmin <= Σ v(i) <= cmax.
//
// All failures wrap ErrBadAssignment.
func (f *FlexOffer) ValidateAssignment(a Assignment) error {
	if f == nil {
		return ErrNilOffer
	}
	if a.Start < f.EarliestStart || a.Start > f.LatestStart {
		return fmt.Errorf("%w: start %d outside [%d,%d]",
			ErrBadAssignment, a.Start, f.EarliestStart, f.LatestStart)
	}
	if len(a.Values) != len(f.Slices) {
		return fmt.Errorf("%w: %d values for %d slices",
			ErrBadAssignment, len(a.Values), len(f.Slices))
	}
	for i, v := range a.Values {
		if !f.Slices[i].Contains(v) {
			return fmt.Errorf("%w: value %d of slice %d outside [%d,%d]",
				ErrBadAssignment, v, i+1, f.Slices[i].Min, f.Slices[i].Max)
		}
	}
	if total := a.TotalEnergy(); total < f.TotalMin || total > f.TotalMax {
		return fmt.Errorf("%w: total energy %d outside [%d,%d]",
			ErrBadAssignment, total, f.TotalMin, f.TotalMax)
	}
	return nil
}

// MinAssignment is Definition 5: the assignment positioned at the
// earliest start time whose values equal the slice minima.
//
// Note that, exactly as in the paper, the minimum assignment ignores the
// total constraints: when cmin exceeds the sum of the slice minima the
// returned instantiation is not a valid assignment in the sense of
// Definition 2 (ValidateAssignment reports this). Definition 7 uses it
// regardless, as the extreme point of the energy envelope.
func (f *FlexOffer) MinAssignment() Assignment {
	vals := make([]int64, len(f.Slices))
	for i, s := range f.Slices {
		vals[i] = s.Min
	}
	return Assignment{Start: f.EarliestStart, Values: vals}
}

// MaxAssignment is Definition 6: the assignment positioned at the latest
// start time whose values equal the slice maxima. The caveat on
// MinAssignment about total constraints applies symmetrically.
func (f *FlexOffer) MaxAssignment() Assignment {
	vals := make([]int64, len(f.Slices))
	for i, s := range f.Slices {
		vals[i] = s.Max
	}
	return Assignment{Start: f.LatestStart, Values: vals}
}

// EarliestAssignment returns a valid assignment at the earliest start:
// slice minima raised just enough (left to right, within slice maxima) to
// meet cmin. It returns ErrInfeasibleTotal if the totals admit no
// assignment, which cannot happen for a Validated offer.
func (f *FlexOffer) EarliestAssignment() (Assignment, error) {
	a := f.MinAssignment()
	deficit := f.TotalMin - a.TotalEnergy()
	for i := 0; deficit > 0 && i < len(a.Values); i++ {
		room := f.Slices[i].Max - a.Values[i]
		if room > deficit {
			room = deficit
		}
		a.Values[i] += room
		deficit -= room
	}
	if deficit > 0 {
		return Assignment{}, ErrInfeasibleTotal
	}
	return a, nil
}
