package flexoffer

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Compact binary codec for flex-offer streams. Where the JSON document
// format (codec.go) is for interchange and inspection, the binary format
// is for bulk storage and transmission of large populations — an
// aggregator shipping a district's offers to a BRP moves orders of
// magnitude less data this way.
//
// Format (all integers varint-encoded, little-endian magic):
//
//	magic "FXO1" | count | offers…
//	offer: idLen | id bytes | tes | tls−tes | numSlices |
//	       (min, max−min) per slice | cmin−Σmin | cmax−cmin
//
// Deltas keep the varints short: tls ≥ tes, max ≥ min, cmin ≥ Σmin and
// cmax ≥ cmin always hold for valid offers, so the deltas are
// non-negative.
//
// Version 2 ("FXO2") inserts `zoneLen | zone bytes` between the id and
// tes, carrying the grid-zone routing key. The encoder emits FXO2 only
// when at least one offer has a zone — a zone-less population encodes
// to the exact FXO1 bytes it always did — and the decoder accepts both
// versions.

// Binary codec errors.
var (
	ErrBadMagic   = errors.New("flexoffer: not a binary flex-offer stream")
	ErrCorrupt    = errors.New("flexoffer: corrupt binary stream")
	ErrTooLarge   = errors.New("flexoffer: binary field exceeds sanity limit")
	binaryMagic   = [4]byte{'F', 'X', 'O', '1'}
	binaryMagicV2 = [4]byte{'F', 'X', 'O', '2'}
	maxBinLen     = 1 << 20 // per-field sanity cap: 1M slices / 1MB IDs
	maxBinOffers  = 1 << 26
)

// EncodeBinary writes the offers in the compact binary format. Every
// offer is validated first.
func EncodeBinary(w io.Writer, offers []*FlexOffer) error {
	for i, f := range offers {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("flexoffer: encoding offer %d: %w", i, err)
		}
	}
	// FXO2 only when a zone is actually present: zone-less streams keep
	// their historical FXO1 bytes.
	zoned := false
	for _, f := range offers {
		if f.Zone != "" {
			zoned = true
			break
		}
	}
	bw := bufio.NewWriter(w)
	magic := binaryMagic
	if zoned {
		magic = binaryMagicV2
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(offers)))
	for _, f := range offers {
		putUvarint(bw, uint64(len(f.ID)))
		if _, err := bw.WriteString(f.ID); err != nil {
			return err
		}
		if zoned {
			putUvarint(bw, uint64(len(f.Zone)))
			if _, err := bw.WriteString(f.Zone); err != nil {
				return err
			}
		}
		putUvarint(bw, uint64(f.EarliestStart))
		putUvarint(bw, uint64(f.LatestStart-f.EarliestStart))
		putUvarint(bw, uint64(len(f.Slices)))
		for _, s := range f.Slices {
			putVarint(bw, s.Min)
			putUvarint(bw, uint64(s.Max-s.Min))
		}
		putUvarint(bw, uint64(f.TotalMin-f.SumMin()))
		putUvarint(bw, uint64(f.TotalMax-f.TotalMin))
	}
	return bw.Flush()
}

// DecodeBinary reads a binary flex-offer stream and validates every
// offer.
func DecodeBinary(r io.Reader) ([]*FlexOffer, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	zoned := magic == binaryMagicV2
	if magic != binaryMagic && !zoned {
		return nil, ErrBadMagic
	}
	count, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > uint64(maxBinOffers) {
		return nil, fmt.Errorf("%w: %d offers", ErrTooLarge, count)
	}
	offers := make([]*FlexOffer, 0, count)
	for i := uint64(0); i < count; i++ {
		f, err := decodeOneBinary(br, zoned)
		if err != nil {
			return nil, fmt.Errorf("flexoffer: offer %d: %w", i, err)
		}
		offers = append(offers, f)
	}
	return offers, nil
}

func decodeOneBinary(br *bufio.Reader, zoned bool) (*FlexOffer, error) {
	idLen, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if idLen > uint64(maxBinLen) {
		return nil, fmt.Errorf("%w: id length %d", ErrTooLarge, idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(br, id); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var zone []byte
	if zoned {
		zoneLen, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		if zoneLen > uint64(maxBinLen) {
			return nil, fmt.Errorf("%w: zone length %d", ErrTooLarge, zoneLen)
		}
		zone = make([]byte, zoneLen)
		if _, err := io.ReadFull(br, zone); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	tes, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	tfDelta, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	nSlices, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nSlices > uint64(maxBinLen) {
		return nil, fmt.Errorf("%w: %d slices", ErrTooLarge, nSlices)
	}
	f := &FlexOffer{
		ID:            string(id),
		Zone:          string(zone),
		EarliestStart: int(tes),
		LatestStart:   int(tes + tfDelta),
		Slices:        make([]Slice, nSlices),
	}
	for j := range f.Slices {
		min, err := readVarint(br)
		if err != nil {
			return nil, err
		}
		span, err := readUvarint(br)
		if err != nil {
			return nil, err
		}
		f.Slices[j] = Slice{Min: min, Max: min + int64(span)}
	}
	cminDelta, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	cmaxDelta, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	f.TotalMin = f.SumMin() + int64(cminDelta)
	f.TotalMax = f.TotalMin + int64(cmaxDelta)
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return f, nil
}

// MarshalBinary encodes the offer as a one-offer binary stream —
// exactly the bytes EncodeBinary produces for a single-element slice,
// FXO1/FXO2 selection included. It implements encoding.BinaryMarshaler;
// the WAL in internal/persist stores offers record by record through
// this pair, so log payloads stay readable by any FXO decoder.
func (f *FlexOffer) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, []*FlexOffer{f}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a one-offer binary stream into f (the inverse
// of MarshalBinary). It implements encoding.BinaryUnmarshaler. Trailing
// bytes after the offer are an error: a WAL record frames exactly one
// offer, so extra data means the frame is corrupt.
func (f *FlexOffer) UnmarshalBinary(data []byte) error {
	br := bufio.NewReader(bytes.NewReader(data))
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	zoned := magic == binaryMagicV2
	if magic != binaryMagic && !zoned {
		return ErrBadMagic
	}
	count, err := readUvarint(br)
	if err != nil {
		return err
	}
	if count != 1 {
		return fmt.Errorf("%w: %d offers in a one-offer stream", ErrCorrupt, count)
	}
	out, err := decodeOneBinary(br, zoned)
	if err != nil {
		return err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after offer", ErrCorrupt)
	}
	*f = *out
	return nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) // bufio.Writer errors surface at Flush
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func readVarint(br *bufio.Reader) (int64, error) {
	v, err := binary.ReadVarint(br)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}
