package flexoffer

import (
	"errors"
	"fmt"
)

// ErrNotDivisible is returned by Refine when an energy quantity cannot
// be split evenly across the finer time units.
var ErrNotDivisible = errors.New("flexoffer: energy amounts not divisible by the refinement factor")

// ErrBadFactor is returned by Refine for factors < 1.
var ErrBadFactor = errors.New("flexoffer: refinement factor must be >= 1")

// Refine converts the flex-offer to a k-times finer time granularity,
// implementing Section 2's remark that "we can achieve any desired
// finer granularity/precision of time and energy by simply multiplying
// their values with the desirable coefficient":
//
//   - every time coordinate is multiplied by k (a 1-hour slot becomes k
//     sub-slots), and
//   - every slice is split into k consecutive sub-slices, each carrying
//     1/k of the original slice's energy range, so the power level is
//     preserved.
//
// To keep the integer domains exact, every slice bound and both total
// constraints must be divisible by k; otherwise ErrNotDivisible is
// returned (scale the offer's energy first with ScaleEnergy).
//
// Refinement preserves the offer's semantics, which the measures
// reflect predictably: tf multiplies by k (the same wall-clock window
// counts k× more units), ef is preserved, and the joint assignment area
// is preserved (k× more columns, each 1/k as tall). Refine(1) returns a
// plain copy.
func (f *FlexOffer) Refine(k int) (*FlexOffer, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadFactor, k)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if k == 1 {
		return f.Clone(), nil
	}
	k64 := int64(k)
	for i, s := range f.Slices {
		if s.Min%k64 != 0 || s.Max%k64 != 0 {
			return nil, fmt.Errorf("%w: slice %d [%d,%d] by %d", ErrNotDivisible, i+1, s.Min, s.Max, k)
		}
	}
	if f.TotalMin%k64 != 0 || f.TotalMax%k64 != 0 {
		return nil, fmt.Errorf("%w: totals [%d,%d] by %d", ErrNotDivisible, f.TotalMin, f.TotalMax, k)
	}
	out := &FlexOffer{
		ID:            f.ID,
		EarliestStart: f.EarliestStart * k,
		LatestStart:   f.LatestStart * k,
		Slices:        make([]Slice, 0, len(f.Slices)*k),
		TotalMin:      f.TotalMin,
		TotalMax:      f.TotalMax,
	}
	for _, s := range f.Slices {
		sub := Slice{Min: s.Min / k64, Max: s.Max / k64}
		for j := 0; j < k; j++ {
			out.Slices = append(out.Slices, sub)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("flexoffer: internal refinement bug: %w", err)
	}
	return out, nil
}

// TightenTotals returns a copy of the offer whose slice ranges are
// narrowed until their sums coincide with the total constraints: minima
// are raised left to right until Σ amin = cmin, and maxima lowered left
// to right until Σ amax = cmax. Afterwards every slice-valid assignment
// automatically satisfies the total constraints, and every assignment of
// the tightened offer is valid for the original.
//
// Tightening trades flexibility for decomposability: the tightened offer
// admits fewer assignments (measurably so, under any of the measures),
// but start-alignment aggregates built from tightened constituents can
// always be disaggregated by per-slot water-filling, with no
// total-constraint repair. This is the classic slice-bounded form the
// original flex-offer model (Šikšnys et al., SSDBM 2012) assumes.
func (f *FlexOffer) TightenTotals() *FlexOffer {
	out := f.Clone()
	deficit := out.TotalMin - out.SumMin()
	for i := 0; deficit > 0 && i < len(out.Slices); i++ {
		room := out.Slices[i].Max - out.Slices[i].Min
		if room > deficit {
			room = deficit
		}
		out.Slices[i].Min += room
		deficit -= room
	}
	excess := out.SumMax() - out.TotalMax
	for i := 0; excess > 0 && i < len(out.Slices); i++ {
		spare := out.Slices[i].Max - out.Slices[i].Min
		if spare > excess {
			spare = excess
		}
		out.Slices[i].Max -= spare
		excess -= spare
	}
	return out
}

// Coarsen is the inverse of Refine: it merges every k consecutive slices
// into one, multiplying the time granularity by k. The number of slices
// and both start times must be divisible by k. Coarsening is lossy in
// general (per-sub-slot flexibility within a merged slot collapses into
// one range); Coarsen(Refine(k)) restores the original offer exactly.
func (f *FlexOffer) Coarsen(k int) (*FlexOffer, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadFactor, k)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if k == 1 {
		return f.Clone(), nil
	}
	if len(f.Slices)%k != 0 {
		return nil, fmt.Errorf("%w: %d slices by %d", ErrNotDivisible, len(f.Slices), k)
	}
	if f.EarliestStart%k != 0 || f.LatestStart%k != 0 {
		return nil, fmt.Errorf("%w: start window [%d,%d] by %d", ErrNotDivisible, f.EarliestStart, f.LatestStart, k)
	}
	out := &FlexOffer{
		ID:            f.ID,
		EarliestStart: f.EarliestStart / k,
		LatestStart:   f.LatestStart / k,
		Slices:        make([]Slice, 0, len(f.Slices)/k),
		TotalMin:      f.TotalMin,
		TotalMax:      f.TotalMax,
	}
	for i := 0; i < len(f.Slices); i += k {
		var merged Slice
		for j := 0; j < k; j++ {
			merged.Min += f.Slices[i+j].Min
			merged.Max += f.Slices[i+j].Max
		}
		out.Slices = append(out.Slices, merged)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("flexoffer: internal coarsening bug: %w", err)
	}
	return out, nil
}
