package flexoffer

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/timeseries"
)

func TestPaperAssignmentFa1IsValid(t *testing.T) {
	// Section 2: fa1 with {fa1}^5_{t=2} = ⟨2,3,1,2⟩ is a valid assignment
	// of the Figure 1 flex-offer.
	f := paperF(t)
	a := NewAssignment(2, 2, 3, 1, 2)
	if err := f.ValidateAssignment(a); err != nil {
		t.Fatalf("paper's fa1 rejected: %v", err)
	}
	if a.TotalEnergy() != 8 {
		t.Errorf("TotalEnergy = %d, want 8", a.TotalEnergy())
	}
}

func TestValidateAssignmentRejections(t *testing.T) {
	f := paperF(t)
	cases := []struct {
		name string
		a    Assignment
	}{
		{"start too early", NewAssignment(0, 2, 3, 1, 2)},
		{"start too late", NewAssignment(7, 2, 3, 1, 2)},
		{"wrong arity", NewAssignment(2, 2, 3, 1)},
		{"slice below range", NewAssignment(2, 0, 3, 1, 2)},
		{"slice above range", NewAssignment(2, 2, 5, 1, 2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := f.ValidateAssignment(c.a); !errors.Is(err, ErrBadAssignment) {
				t.Errorf("got %v, want ErrBadAssignment", err)
			}
		})
	}
}

func TestValidateAssignmentTotalConstraints(t *testing.T) {
	f, err := NewWithTotals(0, 0, []Slice{{0, 5}, {0, 5}}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ValidateAssignment(NewAssignment(0, 1, 1)); !errors.Is(err, ErrBadAssignment) {
		t.Error("total below cmin must be rejected")
	}
	if err := f.ValidateAssignment(NewAssignment(0, 4, 4)); !errors.Is(err, ErrBadAssignment) {
		t.Error("total above cmax must be rejected")
	}
	if err := f.ValidateAssignment(NewAssignment(0, 2, 3)); err != nil {
		t.Errorf("total within range rejected: %v", err)
	}
}

func TestValidateAssignmentNilOffer(t *testing.T) {
	var f *FlexOffer
	if !errors.Is(f.ValidateAssignment(Assignment{}), ErrNilOffer) {
		t.Error("nil offer must return ErrNilOffer")
	}
}

func TestMinMaxAssignments(t *testing.T) {
	// Example 5: f1 = ([0,1],⟨[0,1]⟩): fmin = ⟨0⟩@0, fmax = ⟨1⟩@1.
	f1 := MustNew(0, 1, Slice{0, 1})
	mn := f1.MinAssignment()
	mx := f1.MaxAssignment()
	if mn.Start != 0 || mn.Values[0] != 0 {
		t.Errorf("MinAssignment = %+v", mn)
	}
	if mx.Start != 1 || mx.Values[0] != 1 {
		t.Errorf("MaxAssignment = %+v", mx)
	}
	d := timeseries.Sub(mx.Series(), mn.Series())
	if !d.Equal(timeseries.New(0, 0, 1)) {
		t.Errorf("difference series = %v, want ⟨0,1⟩ (paper Figure 2)", d)
	}
}

func TestMinMaxAssignmentsIgnoreTotals(t *testing.T) {
	// With tightened totals, Definition 5/6 extremes may be invalid
	// assignments; the paper still uses them for Definition 7.
	f, err := NewWithTotals(0, 2, []Slice{{0, 4}, {0, 4}}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	mn := f.MinAssignment()
	if mn.TotalEnergy() != 0 {
		t.Errorf("MinAssignment total = %d, want 0", mn.TotalEnergy())
	}
	if err := f.ValidateAssignment(mn); !errors.Is(err, ErrBadAssignment) {
		t.Error("extreme below cmin should be an invalid Definition-2 assignment")
	}
}

func TestEarliestAssignment(t *testing.T) {
	f, err := NewWithTotals(2, 5, []Slice{{0, 3}, {1, 2}, {0, 3}}, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.EarliestAssignment()
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 2 {
		t.Errorf("Start = %d, want earliest 2", a.Start)
	}
	if err := f.ValidateAssignment(a); err != nil {
		t.Errorf("EarliestAssignment invalid: %v", err)
	}
	if a.TotalEnergy() != f.TotalMin {
		t.Errorf("total = %d, want cmin=%d", a.TotalEnergy(), f.TotalMin)
	}
}

func TestAssignmentSeriesAndClone(t *testing.T) {
	a := NewAssignment(3, 1, 2)
	s := a.Series()
	if !s.Equal(timeseries.New(3, 1, 2)) {
		t.Errorf("Series = %v", s)
	}
	c := a.Clone()
	c.Values[0] = 9
	if a.Values[0] != 1 {
		t.Error("Clone must deep-copy values")
	}
}

func TestNewAssignmentCopies(t *testing.T) {
	vals := []int64{1, 2}
	a := NewAssignment(0, vals...)
	vals[0] = 9
	if a.Values[0] != 1 {
		t.Error("NewAssignment must copy values")
	}
}

// randomOffer builds a random valid flex-offer for property tests.
func randomOffer(r *rand.Rand) *FlexOffer {
	nSlices := 1 + r.Intn(4)
	slices := make([]Slice, nSlices)
	for i := range slices {
		lo := int64(r.Intn(9) - 4)
		hi := lo + int64(r.Intn(4))
		slices[i] = Slice{Min: lo, Max: hi}
	}
	es := r.Intn(5)
	ls := es + r.Intn(4)
	f := MustNew(es, ls, slices...)
	// Occasionally tighten the totals within the legal band.
	if r.Intn(2) == 0 && f.SumMax() > f.SumMin() {
		span := f.SumMax() - f.SumMin()
		lo := f.SumMin() + r.Int63n(span+1)
		hi := lo + r.Int63n(f.SumMax()-lo+1)
		f.TotalMin, f.TotalMax = lo, hi
	}
	return f
}

func TestPropertyEarliestAssignmentAlwaysValid(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOffer(r)
		a, err := f.EarliestAssignment()
		if err != nil {
			return false
		}
		return f.ValidateAssignment(a) == nil
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyScaleEnergyPreservesValidity(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOffer(r)
		for _, k := range []int64{-3, -1, 0, 2, 10} {
			if f.ScaleEnergy(k).Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
