package inc

import "sync/atomic"

// Tracker is flexd's dirty tracker: a lock-free count of store
// mutations (adds, replaces, deletes, resets) wired into the ingest and
// reset handlers, against the high-water mark of the last schedule run.
// It does not gate correctness — the content-addressed cache catches
// every change by keying, including replacements that keep their offer
// ID and sequence number — it makes the churn observable: Pending is
// the flexd_sched_pending_mutations gauge, the number of mutations the
// next schedule will have to absorb.
type Tracker struct {
	mutations atomic.Int64
	scheduled atomic.Int64
}

// Note records n store mutations.
func (t *Tracker) Note(n int) {
	if n > 0 {
		t.mutations.Add(int64(n))
	}
}

// MarkScheduled records that a schedule run has absorbed every mutation
// noted so far.
func (t *Tracker) MarkScheduled() {
	t.scheduled.Store(t.mutations.Load())
}

// Mutations returns the cumulative mutation count.
func (t *Tracker) Mutations() int64 { return t.mutations.Load() }

// Pending returns the mutations noted since the last schedule run
// (never negative, even when racing Note).
func (t *Tracker) Pending() int64 {
	p := t.mutations.Load() - t.scheduled.Load()
	if p < 0 {
		p = 0
	}
	return p
}
