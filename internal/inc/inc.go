// Package inc implements incremental continuous scheduling: a
// content-addressed aggregate cache plus delta re-placement, so a
// /v1/schedule call after a small fleet delta costs O(changed groups)
// instead of re-running group → aggregate → schedule → disaggregate
// over the whole population.
//
// # Content addressing
//
// The shard stores are copy-on-write: a stored *flexoffer.FlexOffer is
// never mutated in place — replacing an offer installs a new pointer
// (see shard.Stores). Pointer identity therefore implies content
// identity, and the cache keys each group by a hash of its members'
// pointer identities (small dense IDs handed out per pointer, retained
// across runs only for pointers still alive in the store). A group
// whose members are all unchanged hashes to its previous key and reuses
// the cached aggregate outright; any membership change — an offer
// added, replaced (new pointer, even under the same ID and sequence
// number) or deleted — changes the key and the group aggregates fresh.
// No explicit invalidation is needed for correctness: stale entries
// simply stop being addressed. EST-gap cuts bound the blast radius of
// one offer change to the groups of its own gap segment — groups in
// other segments keep their exact member pointers (the grouping
// stability test pins this), so they keep their keys.
//
// Hash collisions cannot corrupt results: a key hit is verified by
// comparing the stored member pointers, and a mismatch is treated as a
// miss (slower, never wrong).
//
// # Delta re-placement
//
// Greedy placement is order- and residual-dependent, so reusing a
// clean group's cached assignment is only sound when the residual it
// would scan is identical to the one the previous run scanned. The
// merge walk tracks exactly that with sched.Incremental's difference
// accumulator: clean groups whose scan window shows a zero difference
// replay their cached assignment with one O(profile) integer add;
// everything else — dirty groups, and clean groups whose window was
// perturbed by an earlier change — is re-placed against the true
// residual. The output is bit-identical to a full recompute for every
// churn sequence; when the dirty fraction exceeds Config.Threshold the
// walk skips the difference bookkeeping and re-places everything (still
// reusing cached aggregates, which are placement-independent).
//
// A State is the per-engine cached run; Engine/ShardedEngine own one
// behind WithIncremental and serialize runs on it.
package inc

import (
	"context"
	"errors"
	"sync"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/timeseries"
)

// DefaultThreshold is the dirty-group fraction above which a run stops
// maintaining the placement difference and re-places every group. Past
// this point most windows are perturbed anyway, so the bookkeeping
// costs more than the reuse saves; cached aggregates are still reused.
const DefaultThreshold = 0.5

// Config is the part of an engine's option set that incremental state
// depends on.
type Config struct {
	// PeakCap is the soft peak cap (0: uncapped). Changing it (or the
	// target) invalidates cached placements but not cached aggregates.
	PeakCap int64
	// Safe selects safe aggregation. Changing it invalidates the whole
	// cache: the same member set aggregates differently.
	Safe bool
	// Threshold is the dirty-fraction fallback bound; 0 means
	// DefaultThreshold, 1 disables the fallback.
	Threshold float64
}

// AggregateFunc aggregates the given groups in order — the engine's
// parallel fan-out plugs in here. Errors must be reported with group
// indices relative to the given slice (the walk remaps them to global
// group indices).
type AggregateFunc func(ctx context.Context, groups [][]*flexoffer.FlexOffer) ([]*aggregate.Aggregated, error)

// DisaggregateFunc disaggregates assignments[i] of ags[i] — the
// engine's parallel fan-out plugs in here, with the same index-remap
// contract as AggregateFunc.
type DisaggregateFunc func(ctx context.Context, ags []*aggregate.Aggregated, assignments []flexoffer.Assignment) ([][]flexoffer.Assignment, error)

// Result is one incremental pipeline run over materialized groups, in
// group order — the engine wraps it into a PipelineResult.
type Result struct {
	Aggregates    []*aggregate.Aggregated
	Assignments   []flexoffer.Assignment
	Disaggregated [][]flexoffer.Assignment
	Load          timeseries.Series
}

// Stats reports the cache's cumulative effectiveness plus the shape of
// the most recent run — the numbers behind flexd's
// flexd_sched_cache_hits_total and flexd_sched_dirty_groups metrics.
type Stats struct {
	// Runs counts completed incremental runs; FullRuns counts the ones
	// that re-placed every group (first run, config change, or the
	// dirty-fraction fallback).
	Runs, FullRuns int64
	// Hits and Misses count aggregate-cache lookups across all runs.
	Hits, Misses int64
	// Reused counts placements replayed from cache; Replaced counts
	// clean groups re-placed because their window was perturbed; Placed
	// counts dirty groups placed fresh.
	Reused, Replaced, Placed int64
	// LastGroups, LastDirty and LastReused describe the most recent run:
	// total groups, groups whose aggregate was recomputed, and
	// placements replayed from cache.
	LastGroups, LastDirty, LastReused int
}

// entry is one cached group: the members addressing it, the aggregate
// (a pure function of the members), the placement the previous run
// committed, its disaggregation, and the scan window the reuse check
// covers.
type entry struct {
	key     uint64
	members []*flexoffer.FlexOffer
	agg     *aggregate.Aggregated
	asg     flexoffer.Assignment
	parts   []flexoffer.Assignment
	lo, hi  int
}

// State is the cached side of incremental scheduling for one engine:
// the previous run's entries in group order, the pointer-identity map
// keying them, and the config fingerprint guarding reuse. Run replaces
// the whole state atomically on success and leaves it untouched on
// error, so a failed or cancelled run never poisons the cache.
type State struct {
	mu     sync.Mutex
	ids    map[*flexoffer.FlexOffer]uint64
	nextID uint64
	prev   []*entry
	byKey  map[uint64]int

	// Fingerprint of the run that produced prev: target and cap guard
	// placement reuse, safe guards aggregate reuse.
	target  timeseries.Series
	peakCap int64
	safe    bool
	valid   bool

	stats Stats
}

// NewState returns an empty incremental state.
func NewState() *State {
	return &State{ids: make(map[*flexoffer.FlexOffer]uint64)}
}

// Invalidate drops every cached entry — the store-reset hook. The
// pointer-identity map is dropped too; a reset store hands out fresh
// pointers anyway.
func (s *State) Invalidate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prev, s.byKey, s.valid = nil, nil, false
	s.ids = make(map[*flexoffer.FlexOffer]uint64)
}

// Stats returns a snapshot of the cache statistics.
func (s *State) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fnv1a folds one 64-bit word into an FNV-1a hash.
func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// sameMembers reports whether two member slices hold the same pointers
// in the same order — the collision-proof verification behind a key hit.
func sameMembers(a, b []*flexoffer.FlexOffer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run executes one incremental pipeline pass over the materialized
// groups: aggregate-cache lookups, parallel aggregation of the misses
// through aggFn, the serial merge-walk placement, and parallel
// disaggregation of the changed groups through disFn. On success the
// state is replaced wholesale; on error it is left exactly as the last
// successful run built it.
func (s *State) Run(ctx context.Context, groups [][]*flexoffer.FlexOffer, target timeseries.Series, cfg Config, aggFn AggregateFunc, disFn DisaggregateFunc) (*Result, error) {
	if len(groups) == 0 {
		return nil, sched.ErrNoOffers
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Safe-mode change: the cached aggregates were built the other way,
	// so nothing is addressable.
	if s.valid && s.safe != cfg.Safe {
		s.prev, s.byKey = nil, nil
	}
	// Target or cap change: aggregates stay valid (they never see the
	// target), placements don't.
	replayValid := s.valid && s.safe == cfg.Safe &&
		s.peakCap == cfg.PeakCap && s.target.Equal(target)

	n := len(groups)
	next := make([]*entry, n)
	newIDs := make(map[*flexoffer.FlexOffer]uint64, len(s.ids))

	// Phase 1: key every group and match it against the previous run.
	// Matches must advance monotonically through prev — clean groups
	// keep their relative order across runs (the grouping sort is stable
	// over unchanged keys), so an out-of-order hit is either a hash
	// collision or a reordering we defensively treat as a miss.
	match := make([]int, n) // prev index, or -1
	dirty := 0
	cursor := 0
	for i, g := range groups {
		key := uint64(14695981039346656037)
		for _, f := range g {
			id, ok := s.ids[f]
			if !ok {
				s.nextID++
				id = s.nextID
				s.ids[f] = id
			}
			newIDs[f] = id
			key = fnv1a(key, id)
		}
		match[i] = -1
		if p, ok := s.byKey[key]; ok && p >= cursor && sameMembers(s.prev[p].members, g) {
			match[i] = p
			cursor = p + 1
			s.stats.Hits++
		} else {
			dirty++
			s.stats.Misses++
		}
		next[i] = &entry{key: key, members: g}
	}

	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	// Past the threshold the difference bookkeeping cannot pay for
	// itself: place everything fresh (cached aggregates still reused).
	fallback := float64(dirty)/float64(n) > threshold
	replay := replayValid && !fallback
	fullRun := !replay

	// Phase 2: aggregate the misses in parallel, in global group order.
	missIdx := make([]int, 0, dirty)
	missGroups := make([][]*flexoffer.FlexOffer, 0, dirty)
	for i := range groups {
		if match[i] < 0 {
			missIdx = append(missIdx, i)
			missGroups = append(missGroups, groups[i])
		}
	}
	if len(missGroups) > 0 {
		ags, err := aggFn(ctx, missGroups)
		if err != nil {
			return nil, remapGroupErr(err, missIdx)
		}
		for j, ag := range ags {
			next[missIdx[j]].agg = ag
		}
	}
	for i := range groups {
		if p := match[i]; p >= 0 {
			next[i].agg = s.prev[p].agg
		}
		next[i].lo = next[i].agg.Offer.EarliestStart
		next[i].hi = next[i].agg.Offer.LatestEnd()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: the serial merge walk. rep scans dirty groups against the
	// true residual and replays clean ones whose windows the difference
	// accumulator proves undisturbed; prev entries passed over by the
	// walk (their groups vanished or changed) are retired from the
	// difference so later windows see the perturbation.
	_, sp := obs.Start(ctx, obs.StageSchedule)
	rep := sched.NewIncremental(target, cfg.PeakCap)
	res := &Result{
		Aggregates:  make([]*aggregate.Aggregated, n),
		Assignments: make([]flexoffer.Assignment, n),
	}
	var reused int
	j := 0 // retire cursor into prev
	for i := range groups {
		e := next[i]
		res.Aggregates[i] = e.agg
		p := match[i]
		if !replay || p < 0 {
			a, err := rep.Place(e.agg.Offer, i)
			if err != nil {
				sp.End()
				return nil, err
			}
			e.asg = a
			res.Assignments[i] = a
			continue
		}
		// Retire every prev entry the walk passes over before the
		// matched one: their load is in the previous run's prefix but
		// not in ours.
		for ; j < p; j++ {
			pe := s.prev[j]
			rep.Retire(pe.asg.Start, pe.asg.Values)
		}
		pe := s.prev[p]
		j = p + 1
		if rep.CanReuse(e.lo, e.hi) {
			// Zero difference over the scan window: a fresh scan would
			// reproduce the cached assignment exactly, so commit it
			// without scanning and keep its disaggregation too.
			rep.Commit(pe.asg.Start, pe.asg.Values)
			e.asg = pe.asg
			e.parts = pe.parts
			res.Assignments[i] = pe.asg
			reused++
			continue
		}
		// Clean group, perturbed window: lift the old assignment out of
		// the difference and re-place against the true residual.
		rep.Retire(pe.asg.Start, pe.asg.Values)
		a, err := rep.Place(e.agg.Offer, i)
		if err != nil {
			sp.End()
			return nil, err
		}
		e.asg = a
		res.Assignments[i] = a
		if assignmentsEqual(a, pe.asg) {
			// Same placement after all — the disaggregation is a pure
			// function of (aggregate, assignment), so it carries over.
			e.parts = pe.parts
		}
		s.stats.Replaced++
	}
	res.Load = rep.Load()
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 4: disaggregate the groups whose (aggregate, assignment)
	// changed, in parallel.
	disIdx := make([]int, 0, n)
	disAgs := make([]*aggregate.Aggregated, 0, n)
	disAsgs := make([]flexoffer.Assignment, 0, n)
	for i, e := range next {
		if e.parts == nil {
			disIdx = append(disIdx, i)
			disAgs = append(disAgs, e.agg)
			disAsgs = append(disAsgs, e.asg)
		}
	}
	if len(disIdx) > 0 {
		parts, err := disFn(ctx, disAgs, disAsgs)
		if err != nil {
			return nil, remapGroupErr(err, disIdx)
		}
		for j, p := range parts {
			next[disIdx[j]].parts = p
		}
	}
	res.Disaggregated = make([][]flexoffer.Assignment, n)
	for i, e := range next {
		res.Disaggregated[i] = e.parts
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Success: swap the state. Entries index by key (first wins on the
	// astronomically unlikely intra-run collision; the loser just
	// misses next time), and the identity map retains exactly the
	// pointers still addressable.
	byKey := make(map[uint64]int, n)
	for i, e := range next {
		if _, ok := byKey[e.key]; !ok {
			byKey[e.key] = i
		}
	}
	s.prev, s.byKey, s.ids = next, byKey, newIDs
	s.target, s.peakCap, s.safe, s.valid = target, cfg.PeakCap, cfg.Safe, true

	s.stats.Runs++
	if fullRun {
		s.stats.FullRuns++
	}
	s.stats.Reused += int64(reused)
	s.stats.Placed += int64(n - reused)
	s.stats.LastGroups = n
	s.stats.LastDirty = dirty
	s.stats.LastReused = reused
	return res, nil
}

// assignmentsEqual reports whether two assignments are identical.
func assignmentsEqual(a, b flexoffer.Assignment) bool {
	if a.Start != b.Start || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

// remapGroupErr rewrites the group indices inside an aggregation or
// disaggregation error from positions in the compacted miss slice to
// global group indices, leaving non-group errors (cancellation)
// untouched.
func remapGroupErr(err error, idx []int) error {
	remap := func(i int) int {
		if i >= 0 && i < len(idx) {
			return idx[i]
		}
		return i
	}
	var ges aggregate.GroupErrors
	if errors.As(err, &ges) {
		out := make(aggregate.GroupErrors, len(ges))
		for i, e := range ges {
			c := *e
			c.Group = remap(c.Group)
			out[i] = &c
		}
		return out
	}
	var ge *aggregate.GroupError
	if errors.As(err, &ge) {
		c := *ge
		c.Group = remap(c.Group)
		return &c
	}
	return err
}
