package inc

import (
	"errors"
	"sync"
	"testing"

	"flexmeasures/internal/aggregate"
)

func TestTrackerPending(t *testing.T) {
	var tr Tracker
	if tr.Pending() != 0 || tr.Mutations() != 0 {
		t.Fatal("fresh tracker not zero")
	}
	tr.Note(3)
	tr.Note(0)  // no-ops must not count
	tr.Note(-1) // defensive: negative deltas ignored
	if tr.Pending() != 3 || tr.Mutations() != 3 {
		t.Fatalf("pending = %d, mutations = %d, want 3, 3", tr.Pending(), tr.Mutations())
	}
	tr.MarkScheduled()
	if tr.Pending() != 0 {
		t.Fatalf("pending after schedule = %d, want 0", tr.Pending())
	}
	tr.Note(2)
	if tr.Pending() != 2 || tr.Mutations() != 5 {
		t.Fatalf("pending = %d, mutations = %d, want 2, 5", tr.Pending(), tr.Mutations())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	var tr Tracker
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Note(1)
				if i%100 == 0 {
					tr.MarkScheduled()
				}
				if tr.Pending() < 0 {
					t.Error("pending went negative")
					return
				}
			}
		}()
	}
	wg.Wait()
	if tr.Mutations() != 8000 {
		t.Fatalf("mutations = %d, want 8000", tr.Mutations())
	}
}

// TestRemapGroupErr pins that aggregation errors surfacing from the
// compacted miss slice are rewritten to global group indices — the
// same indices a full recompute would report — and that non-group
// errors pass through untouched.
func TestRemapGroupErr(t *testing.T) {
	idx := []int{4, 9}
	ge := &aggregate.GroupError{Group: 1, Size: 3, FirstID: "x", Err: errors.New("boom")}
	got := remapGroupErr(ge, idx)
	var rge *aggregate.GroupError
	if !errors.As(got, &rge) || rge.Group != 9 {
		t.Fatalf("remapped single error = %+v, want Group 9", got)
	}
	if ge.Group != 1 {
		t.Fatal("remap mutated the original error")
	}

	ges := aggregate.GroupErrors{
		{Group: 0, Err: errors.New("a")},
		{Group: 1, Err: errors.New("b")},
	}
	got = remapGroupErr(ges, idx)
	var rges aggregate.GroupErrors
	if !errors.As(got, &rges) || len(rges) != 2 || rges[0].Group != 4 || rges[1].Group != 9 {
		t.Fatalf("remapped multi error = %+v, want Groups 4, 9", got)
	}

	// An out-of-range index (defensive) and a plain error pass through.
	if e := remapGroupErr(&aggregate.GroupError{Group: 7}, idx); e.(*aggregate.GroupError).Group != 7 {
		t.Fatal("out-of-range index rewritten")
	}
	plain := errors.New("cancelled")
	if remapGroupErr(plain, idx) != plain {
		t.Fatal("plain error not passed through")
	}
}

// TestFNV1aDistinguishes sanity-checks the key fold: permutations and
// membership changes produce different keys (collision handling is
// verified separately by sameMembers on every hit).
func TestFNV1aDistinguishes(t *testing.T) {
	const basis = 14695981039346656037
	key := func(ids ...uint64) uint64 {
		h := uint64(basis)
		for _, id := range ids {
			h = fnv1a(h, id)
		}
		return h
	}
	a, b, c := key(1, 2, 3), key(3, 2, 1), key(1, 2)
	if a == b || a == c || b == c {
		t.Fatalf("key fold collides: %d %d %d", a, b, c)
	}
}
