// Package buildinfo holds the version string stamped into every flexd
// binary. It exists so cmd/flexd, cmd/flexctl, cmd/flexsim and
// cmd/flexbench share one -version implementation and one ldflags
// injection point:
//
//	go build -ldflags "-X flexmeasures/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// An unstamped build reports "dev".
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is the build's version string, overridden at link time.
var Version = "dev"

// String renders the one-line -version output for binary name.
func String(name string) string {
	return fmt.Sprintf("%s %s (%s)", name, Version, runtime.Version())
}
