package aggregate

import (
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grouping"
)

// The loss-bounded optimizing strategy moved to the grouping package;
// these shims inject this package's Aggregate as the combine step (the
// grouping package cannot depend on aggregation) and keep existing
// callers compiling.

// ErrNoMeasure is returned by OptimizeGroups without a measure.
var ErrNoMeasure = grouping.ErrNoMeasure

// OptimizeParams controls OptimizeGroups.
type OptimizeParams = grouping.OptimizeParams

// combineForMeasure builds the aggregate flex-offer a candidate merge
// would produce — the CombineFunc the optimizing strategy scores merges
// with.
func combineForMeasure(group []*flexoffer.FlexOffer) (*flexoffer.FlexOffer, error) {
	ag, err := Aggregate(group)
	if err != nil {
		return nil, err
	}
	return ag.Offer, nil
}

// OptimizeGroups implements the paper's Section 6 future work —
// "performing aggregation jointly with flexibility optimization": it
// partitions the offers so that aggregation preserves as much measured
// flexibility as possible, instead of grouping by start-time similarity
// alone. See grouping.OptimizeGroups for the greedy agglomerative
// algorithm.
func OptimizeGroups(offers []*flexoffer.FlexOffer, p OptimizeParams) ([][]*flexoffer.FlexOffer, error) {
	return grouping.OptimizeGroups(offers, p, combineForMeasure)
}

// Optimizer returns the Grouper adapter of the optimizing strategy with
// this package's aggregation as the combine step, for installing on an
// Engine via flex.WithGrouper.
func Optimizer(p OptimizeParams) grouping.Optimize {
	return grouping.Optimize{Params: p, Combine: combineForMeasure}
}

// RetainedFraction reports how much of the group set's flexibility the
// aggregates keep under measure m: Σ value(aggregate) / setValue(all
// constituents). 1 means lossless; the Scenario 1 goal is to stay close
// to 1 with far fewer objects.
func RetainedFraction(ags []*Aggregated, m core.Measure) (float64, error) {
	var all []*flexoffer.FlexOffer
	var after float64
	for _, ag := range ags {
		all = append(all, ag.Constituents...)
		v, err := m.Value(ag.Offer)
		if err != nil {
			return 0, err
		}
		after += v
	}
	before, err := m.SetValue(all)
	if err != nil {
		return 0, err
	}
	if before == 0 {
		return 1, nil
	}
	return after / before, nil
}
