package aggregate

import (
	"errors"
	"fmt"
	"sort"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

// ErrNoMeasure is returned by OptimizeGroups without a measure.
var ErrNoMeasure = errors.New("aggregate: optimizing grouping requires a measure")

// OptimizeParams controls OptimizeGroups.
type OptimizeParams struct {
	// Measure scores groups; the loss bound is expressed in its units.
	// Required.
	Measure core.Measure
	// MaxLossFraction bounds the relative flexibility loss a single
	// merge may cause: a merge is admissible when
	//
	//	setValue(parts) − value(merged aggregate)
	//	─────────────────────────────────────────  ≤ MaxLossFraction,
	//	          setValue(parts)
	//
	// so 0 permits only lossless merges and 1 permits everything.
	MaxLossFraction float64
	// ESTTolerance bounds the earliest-start spread within a group, as
	// in GroupParams; negative means unbounded.
	ESTTolerance int
	// MaxGroupSize caps constituents per group; 0 means unbounded.
	MaxGroupSize int
	// MaxPasses bounds the merge passes; 0 means until convergence.
	MaxPasses int
	// Workers bounds the goroutines evaluating merge candidates per
	// pass; values below 1 mean runtime.GOMAXPROCS(0). The result is
	// identical for every worker count — only the loss evaluations run
	// concurrently; candidate selection stays deterministic. Any
	// worker count other than 1 calls Measure from multiple
	// goroutines, so a custom Measure must be safe for concurrent use
	// (every measure in this library is — they are stateless value
	// types); set Workers to 1 to force a serial scan otherwise.
	Workers int
}

// OptimizeGroups implements the paper's Section 6 future work —
// "performing aggregation jointly with flexibility optimization": it
// partitions the offers so that aggregation preserves as much measured
// flexibility as possible, instead of grouping by start-time similarity
// alone.
//
// The algorithm is greedy agglomerative merging over the earliest-start
// ordering: starting from singleton groups, each pass evaluates merging
// every pair of adjacent groups, performs the admissible merge with the
// smallest relative loss first, and repeats until no admissible merge
// remains. Adjacency in start order keeps the scan linear per pass while
// capturing the merges start-alignment aggregation benefits from
// (offers far apart in time lose their whole window to the min-rule).
func OptimizeGroups(offers []*flexoffer.FlexOffer, p OptimizeParams) ([][]*flexoffer.FlexOffer, error) {
	if p.Measure == nil {
		return nil, ErrNoMeasure
	}
	if len(offers) == 0 {
		return nil, nil
	}
	sorted := append([]*flexoffer.FlexOffer(nil), offers...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].EarliestStart < sorted[j].EarliestStart
	})
	groups := make([][]*flexoffer.FlexOffer, len(sorted))
	for i, f := range sorted {
		groups[i] = []*flexoffer.FlexOffer{f}
	}
	maxPasses := p.MaxPasses
	if maxPasses <= 0 {
		maxPasses = len(groups)
	}
	for pass := 0; pass < maxPasses; pass++ {
		merged, err := mergePass(groups, p)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			break
		}
		groups = merged
	}
	return groups, nil
}

// mergePass performs every non-overlapping admissible adjacent merge in
// ascending order of loss. It returns nil when no merge was admissible.
//
// Measuring a merge candidate (two aggregations plus up to three measure
// evaluations) dominates the pass, and the candidates are independent, so
// the scan fans out across p.Workers goroutines; results land in
// per-index slots, keeping candidate selection byte-identical to a serial
// scan. With n singleton groups the first pass alone evaluates n−1
// candidates, which made the serial scan the O(n²) hot spot of
// OptimizeGroups.
func mergePass(groups [][]*flexoffer.FlexOffer, p OptimizeParams) ([][]*flexoffer.FlexOffer, error) {
	type candidate struct {
		left int
		loss float64
	}
	type evaluation struct {
		loss float64
		ok   bool
		err  error
	}
	evals := make([]evaluation, max(len(groups)-1, 0))
	forEachIndex(len(evals), p.Workers, func(i int) {
		loss, ok, err := mergeLoss(groups[i], groups[i+1], p)
		evals[i] = evaluation{loss: loss, ok: ok, err: err}
	})
	var cands []candidate
	for i, ev := range evals {
		if ev.err != nil {
			return nil, ev.err
		}
		if ev.ok {
			cands = append(cands, candidate{left: i, loss: ev.loss})
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].loss < cands[b].loss })
	taken := make(map[int]bool)
	mergeWith := make(map[int]bool) // left index of each accepted merge
	for _, c := range cands {
		if taken[c.left] || taken[c.left+1] {
			continue
		}
		taken[c.left], taken[c.left+1] = true, true
		mergeWith[c.left] = true
	}
	var out [][]*flexoffer.FlexOffer
	for i := 0; i < len(groups); i++ {
		if mergeWith[i] {
			merged := append(append([]*flexoffer.FlexOffer{}, groups[i]...), groups[i+1]...)
			out = append(out, merged)
			i++
			continue
		}
		out = append(out, groups[i])
	}
	return out, nil
}

// mergeLoss evaluates the relative flexibility loss of merging two
// groups, and whether the merge is admissible under the parameters.
func mergeLoss(a, b []*flexoffer.FlexOffer, p OptimizeParams) (float64, bool, error) {
	if p.MaxGroupSize > 0 && len(a)+len(b) > p.MaxGroupSize {
		return 0, false, nil
	}
	merged := append(append([]*flexoffer.FlexOffer{}, a...), b...)
	if p.ESTTolerance >= 0 && estSpread(merged) > p.ESTTolerance {
		return 0, false, nil
	}
	before, err := p.Measure.SetValue(merged)
	if err != nil {
		return 0, false, fmt.Errorf("aggregate: measuring parts: %w", err)
	}
	ag, err := Aggregate(merged)
	if err != nil {
		return 0, false, err
	}
	after, err := p.Measure.Value(ag.Offer)
	if err != nil {
		return 0, false, fmt.Errorf("aggregate: measuring merged aggregate: %w", err)
	}
	loss := before - after
	var frac float64
	switch {
	case before > 0:
		frac = loss / before
	case loss <= 0:
		frac = 0
	default:
		frac = 1
	}
	return frac, frac <= p.MaxLossFraction, nil
}

func estSpread(group []*flexoffer.FlexOffer) int {
	lo, hi := group[0].EarliestStart, group[0].EarliestStart
	for _, f := range group[1:] {
		if f.EarliestStart < lo {
			lo = f.EarliestStart
		}
		if f.EarliestStart > hi {
			hi = f.EarliestStart
		}
	}
	return hi - lo
}

// RetainedFraction reports how much of the group set's flexibility the
// aggregates keep under measure m: Σ value(aggregate) / setValue(all
// constituents). 1 means lossless; the Scenario 1 goal is to stay close
// to 1 with far fewer objects.
func RetainedFraction(ags []*Aggregated, m core.Measure) (float64, error) {
	var all []*flexoffer.FlexOffer
	var after float64
	for _, ag := range ags {
		all = append(all, ag.Constituents...)
		v, err := m.Value(ag.Offer)
		if err != nil {
			return 0, err
		}
		after += v
	}
	before, err := m.SetValue(all)
	if err != nil {
		return 0, err
	}
	if before == 0 {
		return 1, nil
	}
	return after / before, nil
}
