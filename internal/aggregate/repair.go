package aggregate

import (
	"flexmeasures/internal/flexoffer"
)

// Multi-hop repair for Disaggregate. The single-hop pass in aggregate.go
// moves energy directly between two constituents sharing a slot; when a
// deficient constituent's neighbours have no slack of their own, the
// transfer must chain through intermediaries (A gains from B at slot t,
// B regains from C at slot t', …, until the chain ends at a constituent
// with genuine slack). That is an augmenting path in the bipartite
// offers×slots transfer graph, and searching for one per missing unit
// solves the underlying transportation feasibility problem exactly: if
// no augmenting path exists, the aggregate assignment is genuinely
// undecomposable and ErrRepairInfeasible is correct.

// repairStep records one hop of an augmenting path: constituent gainer
// takes the bottleneck amount from constituent loser in absolute slot
// abs.
type repairStep struct {
	gainer, loser int
	abs           int
}

// pathState is one constituent's BFS bookkeeping.
type pathState struct {
	prev    int   // predecessor constituent, -1 for the source
	prevAbs int   // absolute slot used to reach this constituent
	cap     int64 // bottleneck capacity of the chain so far
}

// augmentInto raises constituent target's total by up to need using
// augmenting-path transfers, preserving all slot sums and slice bounds
// and never driving any other constituent below its own total minimum.
// It returns the amount actually moved.
func (ag *Aggregated) augmentInto(out []flexoffer.Assignment, target int, need int64) int64 {
	var moved int64
	for moved < need {
		path, bottleneck := ag.findPath(out, target, need-moved)
		if len(path) == 0 || bottleneck <= 0 {
			break
		}
		for _, st := range path {
			jg := st.abs - out[st.gainer].Start
			jl := st.abs - out[st.loser].Start
			out[st.gainer].Values[jg] += bottleneck
			out[st.loser].Values[jl] -= bottleneck
		}
		moved += bottleneck
	}
	return moved
}

// augmentOutOf lowers constituent target's total by up to excess, the
// mirror image of augmentInto: the chain pushes energy away from target
// towards a constituent with headroom below its total maximum.
func (ag *Aggregated) augmentOutOf(out []flexoffer.Assignment, target int, excess int64) int64 {
	var moved int64
	for moved < excess {
		path, bottleneck := ag.findDrainPath(out, target, excess-moved)
		if len(path) == 0 || bottleneck <= 0 {
			break
		}
		for _, st := range path {
			jg := st.abs - out[st.gainer].Start
			jl := st.abs - out[st.loser].Start
			out[st.gainer].Values[jg] += bottleneck
			out[st.loser].Values[jl] -= bottleneck
		}
		moved += bottleneck
	}
	return moved
}

// findPath searches breadth-first for a chain of same-slot transfers
// ending at a constituent that can give up energy while staying at or
// above its total minimum. Hops are returned in application order with
// the bottleneck amount (capped at want).
func (ag *Aggregated) findPath(out []flexoffer.Assignment, target int, want int64) ([]repairStep, int64) {
	n := len(ag.Constituents)
	visited := make([]bool, n)
	states := make([]pathState, n)
	queue := []int{target}
	visited[target] = true
	states[target] = pathState{prev: -1, cap: want}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		f := ag.Constituents[cur]
		for j := 0; j < f.NumSlices(); j++ {
			abs := out[cur].Start + j
			gainRoom := f.Slices[j].Max - out[cur].Values[j]
			if gainRoom <= 0 {
				continue
			}
			for k, g := range ag.Constituents {
				if visited[k] || k == cur {
					continue
				}
				jk := abs - out[k].Start
				if jk < 0 || jk >= g.NumSlices() {
					continue
				}
				slotSpare := out[k].Values[jk] - g.Slices[jk].Min
				if slotSpare <= 0 {
					continue
				}
				bottleneck := min(states[cur].cap, gainRoom, slotSpare)
				visited[k] = true
				states[k] = pathState{prev: cur, prevAbs: abs, cap: bottleneck}
				if totalSpare := out[k].TotalEnergy() - g.TotalMin; totalSpare > 0 {
					return tracePath(states, k), min(bottleneck, totalSpare)
				}
				queue = append(queue, k)
			}
		}
	}
	return nil, 0
}

// findDrainPath is findPath with the transfer direction reversed: the
// source sheds energy hop by hop until a constituent with total headroom
// absorbs it.
func (ag *Aggregated) findDrainPath(out []flexoffer.Assignment, target int, want int64) ([]repairStep, int64) {
	n := len(ag.Constituents)
	visited := make([]bool, n)
	states := make([]pathState, n)
	queue := []int{target}
	visited[target] = true
	states[target] = pathState{prev: -1, cap: want}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		f := ag.Constituents[cur]
		for j := 0; j < f.NumSlices(); j++ {
			abs := out[cur].Start + j
			loseSpare := out[cur].Values[j] - f.Slices[j].Min
			if loseSpare <= 0 {
				continue
			}
			for k, g := range ag.Constituents {
				if visited[k] || k == cur {
					continue
				}
				jk := abs - out[k].Start
				if jk < 0 || jk >= g.NumSlices() {
					continue
				}
				gainRoom := g.Slices[jk].Max - out[k].Values[jk]
				if gainRoom <= 0 {
					continue
				}
				bottleneck := min(states[cur].cap, loseSpare, gainRoom)
				visited[k] = true
				states[k] = pathState{prev: cur, prevAbs: abs, cap: bottleneck}
				if headroom := g.TotalMax - out[k].TotalEnergy(); headroom > 0 {
					return traceDrainPath(states, k), min(bottleneck, headroom)
				}
				queue = append(queue, k)
			}
		}
	}
	return nil, 0
}

// tracePath reconstructs hops for findPath: walking predecessors from
// the chain end towards the target, each predecessor gains from its
// successor.
func tracePath(states []pathState, end int) []repairStep {
	var path []repairStep
	for cur := end; states[cur].prev >= 0; cur = states[cur].prev {
		path = append(path, repairStep{
			gainer: states[cur].prev,
			loser:  cur,
			abs:    states[cur].prevAbs,
		})
	}
	return path
}

// traceDrainPath reconstructs hops for findDrainPath: each predecessor
// loses to its successor.
func traceDrainPath(states []pathState, end int) []repairStep {
	var path []repairStep
	for cur := end; states[cur].prev >= 0; cur = states[cur].prev {
		path = append(path, repairStep{
			gainer: cur,
			loser:  states[cur].prev,
			abs:    states[cur].prevAbs,
		})
	}
	return path
}
