// Package aggregate implements flex-offer aggregation and disaggregation,
// the substrate of the paper's Scenario 1 (Section 1) and the subject of
// its references [14] (Valsomatzis et al., DARE 2014) and [15] (Šikšnys
// et al., SSDBM 2012).
//
// Aggregation combines N flex-offers into one aggregated flex-offer so
// that scheduling has fewer objects to consider; disaggregation maps an
// assignment of the aggregate back to valid assignments of the
// constituents. Aggregation generally loses flexibility — quantifying
// that loss with the paper's measures is exactly what the measures are
// for ("it is essential to quantify and then to minimize flexibility
// losses", Scenario 1) — and the Loss helper computes it for any measure.
//
// The implementation uses start-alignment aggregation: every constituent
// is anchored at its own earliest start time, and one common shift
// δ ∈ [0, min tf(fᵢ)] is applied to all constituents when the aggregate
// is scheduled. The aggregate's profile is the slot-wise sum of the
// anchored constituent profiles, and its time flexibility is the minimum
// of the constituents' — the flexibility "lost" is visible to every
// measure that sees time.
package aggregate

import (
	"errors"
	"fmt"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grouping"
)

// Sentinel errors.
var (
	ErrEmptyGroup       = errors.New("aggregate: empty group")
	ErrNotConstituent   = errors.New("aggregate: assignment does not belong to this aggregate")
	ErrRepairInfeasible = errors.New("aggregate: could not satisfy constituent total constraints")
)

// Aggregated couples an aggregate flex-offer with the constituents it
// was built from, retaining what disaggregation needs.
type Aggregated struct {
	// Offer is the aggregate flex-offer. Its ID is "agg(n)" for n
	// constituents unless renamed by the caller.
	Offer *flexoffer.FlexOffer
	// Constituents are the original flex-offers, in input order.
	Constituents []*flexoffer.FlexOffer
	// anchors[i] is constituent i's start time when the aggregate is
	// scheduled at its earliest start (δ = 0); the common shift δ adds
	// to every anchor.
	anchors []int
}

// Alignment selects how constituents are anchored relative to each
// other inside an aggregate. The choice changes the shape of the
// aggregate profile whenever the group's time flexibilities differ, and
// therefore changes how much flexibility aggregation retains — an axis
// the paper's reference [15] explores and experiment X9 ablates.
type Alignment int

const (
	// AlignEarliest anchors every constituent at its earliest start
	// time: at δ = 0 each constituent starts as early as it can.
	AlignEarliest Alignment = iota
	// AlignLatest anchors every constituent at its latest start minus
	// the aggregate's time flexibility: at the aggregate's latest
	// start (δ = minTF) each constituent starts as late as it can.
	AlignLatest
)

// String names the alignment.
func (al Alignment) String() string {
	switch al {
	case AlignEarliest:
		return "earliest"
	case AlignLatest:
		return "latest"
	default:
		return fmt.Sprintf("Alignment(%d)", int(al))
	}
}

// Aggregate combines the group into one aggregated flex-offer by
// earliest-start alignment. It returns ErrEmptyGroup for an empty group;
// single-offer groups aggregate to (a copy of) the offer itself.
func Aggregate(group []*flexoffer.FlexOffer) (*Aggregated, error) {
	return AggregateAligned(group, AlignEarliest)
}

// AggregateAligned combines the group under the chosen alignment.
func AggregateAligned(group []*flexoffer.FlexOffer, al Alignment) (*Aggregated, error) {
	if len(group) == 0 {
		return nil, ErrEmptyGroup
	}
	for i, f := range group {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("aggregate: constituent %d: %w", i, err)
		}
	}
	minTF := group[0].TimeFlexibility()
	for _, f := range group[1:] {
		if tf := f.TimeFlexibility(); tf < minTF {
			minTF = tf
		}
	}
	anchors := make([]int, len(group))
	for i, f := range group {
		switch al {
		case AlignLatest:
			anchors[i] = f.LatestStart - minTF
		case AlignEarliest:
			anchors[i] = f.EarliestStart
		default:
			return nil, fmt.Errorf("aggregate: unknown alignment %d", int(al))
		}
	}
	base := anchors[0]
	end := anchors[0] + group[0].NumSlices()
	for i, f := range group {
		if anchors[i] < base {
			base = anchors[i]
		}
		if e := anchors[i] + f.NumSlices(); e > end {
			end = e
		}
	}
	slices := make([]flexoffer.Slice, end-base)
	var totalMin, totalMax int64
	for gi, f := range group {
		for i, s := range f.Slices {
			j := anchors[gi] - base + i
			slices[j].Min += s.Min
			slices[j].Max += s.Max
		}
		totalMin += f.TotalMin
		totalMax += f.TotalMax
	}
	agg, err := flexoffer.NewWithTotals(base, base+minTF, slices, totalMin, totalMax)
	if err != nil {
		return nil, fmt.Errorf("aggregate: building aggregate: %w", err)
	}
	agg.ID = fmt.Sprintf("agg(%d)", len(group))
	cs := make([]*flexoffer.FlexOffer, len(group))
	for i, f := range group {
		cs[i] = f.Clone()
	}
	return &Aggregated{Offer: agg, Constituents: cs, anchors: anchors}, nil
}

// Disaggregate maps a valid assignment of the aggregate flex-offer back
// to one valid assignment per constituent, preserving the slot-wise sum:
// at every time unit the constituent energies add up to the aggregate's
// energy, so a balanced aggregate schedule stays balanced after
// disaggregation.
//
// The common shift δ = a.Start − tes(aggregate) is applied to every
// constituent. Energy is distributed per slot by water-filling above the
// slice minima, followed by a repair pass that moves energy between
// constituents sharing a slot until every constituent's total constraint
// holds. Repair failure (possible only for adversarial total constraints
// needing multi-hop transfers) is reported as ErrRepairInfeasible.
func (ag *Aggregated) Disaggregate(a flexoffer.Assignment) ([]flexoffer.Assignment, error) {
	if err := ag.Offer.ValidateAssignment(a); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotConstituent, err)
	}
	delta := a.Start - ag.Offer.EarliestStart
	out := make([]flexoffer.Assignment, len(ag.Constituents))
	for i, f := range ag.Constituents {
		out[i] = flexoffer.Assignment{
			Start:  ag.anchor(i) + delta,
			Values: make([]int64, f.NumSlices()),
		}
	}
	// Per-slot distribution: minima first, then water-fill the surplus
	// left to right.
	for slot := 0; slot < len(a.Values); slot++ {
		abs := a.Start + slot
		remaining := a.Values[slot]
		type part struct {
			offer int
			slice int
		}
		var parts []part
		for i, f := range ag.Constituents {
			j := abs - out[i].Start
			if j >= 0 && j < f.NumSlices() {
				parts = append(parts, part{offer: i, slice: j})
				out[i].Values[j] = f.Slices[j].Min
				remaining -= f.Slices[j].Min
			}
		}
		for _, p := range parts {
			if remaining <= 0 {
				break
			}
			room := ag.Constituents[p.offer].Slices[p.slice].Max - out[p.offer].Values[p.slice]
			if room > remaining {
				room = remaining
			}
			out[p.offer].Values[p.slice] += room
			remaining -= room
		}
		if remaining != 0 {
			// Cannot happen for an assignment valid against the
			// aggregate's summed slice bounds.
			return nil, fmt.Errorf("aggregate: internal error: %d units undistributed at slot %d", remaining, abs)
		}
	}
	if err := ag.repairTotals(out); err != nil {
		return nil, err
	}
	for i, f := range ag.Constituents {
		if err := f.ValidateAssignment(out[i]); err != nil {
			return nil, fmt.Errorf("aggregate: disaggregated assignment %d invalid: %w", i, err)
		}
	}
	return out, nil
}

// repairTotals moves energy between constituents sharing a time slot
// until every constituent's total lies within [cmin, cmax]. Slot sums
// are preserved by construction. Cheap single-hop passes run first;
// remaining violations fall back to augmenting-path transfers
// (repair.go), which find a redistribution whenever one exists, so
// ErrRepairInfeasible is returned only for genuinely undecomposable
// aggregate assignments.
func (ag *Aggregated) repairTotals(out []flexoffer.Assignment) error {
	for pass := 0; pass < len(ag.Constituents)+1; pass++ {
		moved := false
		for i, f := range ag.Constituents {
			need := f.TotalMin - out[i].TotalEnergy()
			if need <= 0 {
				continue
			}
			if ag.transferInto(out, i, need) {
				moved = true
			}
		}
		for i, f := range ag.Constituents {
			excess := out[i].TotalEnergy() - f.TotalMax
			if excess <= 0 {
				continue
			}
			if ag.transferOutOf(out, i, excess) {
				moved = true
			}
		}
		if ag.totalsSatisfied(out) {
			return nil
		}
		if !moved {
			break
		}
	}
	// Multi-hop phase: chain transfers through intermediaries.
	for i, f := range ag.Constituents {
		if need := f.TotalMin - out[i].TotalEnergy(); need > 0 {
			ag.augmentInto(out, i, need)
		}
	}
	for i, f := range ag.Constituents {
		if excess := out[i].TotalEnergy() - f.TotalMax; excess > 0 {
			ag.augmentOutOf(out, i, excess)
		}
	}
	if ag.totalsSatisfied(out) {
		return nil
	}
	return ErrRepairInfeasible
}

func (ag *Aggregated) totalsSatisfied(out []flexoffer.Assignment) bool {
	for i, f := range ag.Constituents {
		tot := out[i].TotalEnergy()
		if tot < f.TotalMin || tot > f.TotalMax {
			return false
		}
	}
	return true
}

// transferInto raises constituent i's total by up to need, taking energy
// from co-resident constituents that can spare it (staying above their
// own cmin and slice minima). Reports whether any energy moved.
func (ag *Aggregated) transferInto(out []flexoffer.Assignment, i int, need int64) bool {
	f := ag.Constituents[i]
	moved := false
	for j := 0; j < f.NumSlices() && need > 0; j++ {
		abs := out[i].Start + j
		room := f.Slices[j].Max - out[i].Values[j]
		if room <= 0 {
			continue
		}
		for k, g := range ag.Constituents {
			if k == i || need <= 0 || room <= 0 {
				continue
			}
			jk := abs - out[k].Start
			if jk < 0 || jk >= g.NumSlices() {
				continue
			}
			spareSlot := out[k].Values[jk] - g.Slices[jk].Min
			spareTotal := out[k].TotalEnergy() - g.TotalMin
			amt := min(spareSlot, spareTotal, room, need)
			if amt <= 0 {
				continue
			}
			out[k].Values[jk] -= amt
			out[i].Values[j] += amt
			need -= amt
			room -= amt
			moved = true
		}
	}
	return moved
}

// transferOutOf lowers constituent i's total by up to excess, pushing
// energy to co-resident constituents with headroom (staying below their
// own cmax and slice maxima). Reports whether any energy moved.
func (ag *Aggregated) transferOutOf(out []flexoffer.Assignment, i int, excess int64) bool {
	f := ag.Constituents[i]
	moved := false
	for j := 0; j < f.NumSlices() && excess > 0; j++ {
		abs := out[i].Start + j
		spare := out[i].Values[j] - f.Slices[j].Min
		if spare <= 0 {
			continue
		}
		for k, g := range ag.Constituents {
			if k == i || excess <= 0 || spare <= 0 {
				continue
			}
			jk := abs - out[k].Start
			if jk < 0 || jk >= g.NumSlices() {
				continue
			}
			roomSlot := g.Slices[jk].Max - out[k].Values[jk]
			roomTotal := g.TotalMax - out[k].TotalEnergy()
			amt := min(roomSlot, roomTotal, spare, excess)
			if amt <= 0 {
				continue
			}
			out[i].Values[j] -= amt
			out[k].Values[jk] += amt
			excess -= amt
			spare -= amt
			moved = true
		}
	}
	return moved
}

// Loss quantifies the flexibility an aggregation gave up under measure m:
// the set value of the constituents minus the value of the aggregate
// (Scenario 1: "it is essential to quantify and then to minimize
// flexibility losses, and therefore a flexibility measure is needed").
// Positive values mean the aggregate is less flexible than the parts.
func (ag *Aggregated) Loss(m core.Measure) (float64, error) {
	before, err := m.SetValue(ag.Constituents)
	if err != nil {
		return 0, fmt.Errorf("aggregate: measuring constituents: %w", err)
	}
	after, err := m.Value(ag.Offer)
	if err != nil {
		return 0, fmt.Errorf("aggregate: measuring aggregate: %w", err)
	}
	return before - after, nil
}

// GroupParams controls Group's similarity thresholds, mirroring the
// grouping parameters of reference [15]. It is the grouping package's
// threshold Params; this alias keeps existing callers compiling.
type GroupParams = grouping.Params

// Group partitions the offers into aggregation-compatible groups: the
// offers are ordered by earliest start time and greedily packed while
// the group stays within the tolerances. The input slice is not
// modified; constituent order inside each group follows the sort.
//
// The implementation lives in the grouping package, which also provides
// the parallel sharded variant (grouping.Sharded) the Engine runs on;
// this shim is the serial oracle both are equivalent to.
func Group(offers []*flexoffer.FlexOffer, p GroupParams) [][]*flexoffer.FlexOffer {
	return grouping.Group(offers, p)
}

// AggregateSafe aggregates the group after tightening every
// constituent's total constraints into its slice bounds
// (flexoffer.TightenTotals). The resulting aggregate is guaranteed
// disaggregable for *every* valid assignment: water-filling within the
// tightened slice ranges satisfies each constituent's totals by
// construction, so Disaggregate never needs the repair pass and never
// returns ErrRepairInfeasible.
//
// The price is measurable flexibility: constituents whose totals were
// strictly tighter than their slice sums lose the corresponding slack.
// Use plain Aggregate when the caller controls which aggregate
// assignments occur (e.g. it always schedules near the energy minimum),
// and AggregateSafe when arbitrary valid assignments must disaggregate
// (e.g. the aggregate is sold into a market, Scenario 2).
//
// The returned Aggregated's Constituents hold the *tightened* offers;
// any assignment valid for a tightened constituent is valid for the
// original it was derived from (tightened ranges are subsets).
func AggregateSafe(group []*flexoffer.FlexOffer) (*Aggregated, error) {
	tightened := make([]*flexoffer.FlexOffer, len(group))
	for i, f := range group {
		if f == nil {
			return nil, fmt.Errorf("aggregate: constituent %d: %w", i, flexoffer.ErrNilOffer)
		}
		tightened[i] = f.TightenTotals()
	}
	return Aggregate(tightened)
}

// AggregateAll groups the offers with p and aggregates every group,
// returning the aggregates in group order.
func AggregateAll(offers []*flexoffer.FlexOffer, p GroupParams) ([]*Aggregated, error) {
	return aggregateGroups(Group(offers, p), Aggregate)
}

// AggregateAllSafe is AggregateAll using AggregateSafe per group.
func AggregateAllSafe(offers []*flexoffer.FlexOffer, p GroupParams) ([]*Aggregated, error) {
	return aggregateGroups(Group(offers, p), AggregateSafe)
}

// aggregateGroups is the serial pipeline. Failures carry the full
// identifying context of the failing group (index, size, first
// constituent ID) as a *GroupError, matching the parallel pipeline, so a
// failing group in a 10k-group batch is identifiable from the error
// alone.
func aggregateGroups(groups [][]*flexoffer.FlexOffer, agg func([]*flexoffer.FlexOffer) (*Aggregated, error)) ([]*Aggregated, error) {
	out := make([]*Aggregated, 0, len(groups))
	for i, g := range groups {
		ag, err := agg(g)
		if err != nil {
			return nil, newGroupError(i, g, err)
		}
		out = append(out, ag)
	}
	return out, nil
}

// anchor returns constituent i's δ=0 start time. Aggregated values built
// by callers without anchors (zero value) fall back to earliest-start
// alignment.
func (ag *Aggregated) anchor(i int) int {
	if ag.anchors == nil {
		return ag.Constituents[i].EarliestStart
	}
	return ag.anchors[i]
}
