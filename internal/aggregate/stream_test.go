package aggregate

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

func streamPopulation(t *testing.T, n int) ([]*flexoffer.FlexOffer, GroupParams) {
	t.Helper()
	return randomOffers(t, 5150, n), GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}
}

// TestAggregateAllStreamMatchesBatch: collecting the stream and sorting
// by index must reproduce AggregateAll exactly, for any worker count.
func TestAggregateAllStreamMatchesBatch(t *testing.T) {
	offers, gp := streamPopulation(t, 400)
	batch, err := AggregateAll(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		items, n := AggregateAllStream(context.Background(), offers, gp, ParallelParams{Workers: workers})
		if n != len(batch) {
			t.Fatalf("workers=%d: stream count %d, batch %d", workers, n, len(batch))
		}
		var got []StreamItem
		for item := range items {
			if item.Err != nil {
				t.Fatalf("workers=%d: unexpected failure %v", workers, item.Err)
			}
			got = append(got, item)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: delivered %d of %d items", workers, len(got), n)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
		for i, item := range got {
			if item.Index != i {
				t.Fatalf("workers=%d: missing or duplicate index %d", workers, i)
			}
			if !reflect.DeepEqual(item.Agg, batch[i]) {
				t.Fatalf("workers=%d: aggregate %d diverges from batch", workers, i)
			}
		}
	}
}

// TestAggregateAllSafeStreamDisaggregable: the safe streaming variant
// tightens constituents exactly like AggregateAllSafe.
func TestAggregateAllSafeStreamDisaggregable(t *testing.T) {
	offers, gp := streamPopulation(t, 120)
	batch, err := AggregateAllSafe(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	items, n := AggregateAllSafeStream(context.Background(), offers, gp, ParallelParams{Workers: 4})
	got := make([]*Aggregated, n)
	for item := range items {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
		got[item.Index] = item.Agg
	}
	for i, ag := range got {
		if !reflect.DeepEqual(ag, batch[i]) {
			t.Fatalf("safe aggregate %d diverges from batch", i)
		}
	}
}

// TestAggregateAllStreamDeliversFailures: a failing group arrives as a
// StreamItem carrying the same GroupError context as the batch path.
func TestAggregateAllStreamDeliversFailures(t *testing.T) {
	bad := &flexoffer.FlexOffer{ID: "bad", EarliestStart: 5, LatestStart: 1,
		Slices: []flexoffer.Slice{{Min: 0, Max: 1}}}
	groups := [][]*flexoffer.FlexOffer{
		{flexoffer.MustNew(0, 1, flexoffer.Slice{Min: 1, Max: 2})},
		{bad},
	}
	items, n := AggregateGroupsStream(context.Background(), groups, ParallelParams{Workers: 2, ErrorMode: CollectAll})
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	var sawErr *GroupError
	for item := range items {
		if item.Err != nil {
			sawErr = item.Err
		}
	}
	if sawErr == nil {
		t.Fatal("failing group not delivered")
	}
	if sawErr.Group != 1 || sawErr.FirstID != "bad" {
		t.Fatalf("error context = group %d id %q, want group 1 id \"bad\"", sawErr.Group, sawErr.FirstID)
	}
}

func TestAggregateAllStreamCancelledUpFront(t *testing.T) {
	offers, gp := streamPopulation(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, _ := AggregateAllStream(ctx, offers, gp, ParallelParams{Workers: 2})
	count := 0
	for range items {
		count++
	}
	if count != 0 {
		t.Fatalf("cancelled stream still delivered %d items", count)
	}
}

// disaggFixture aggregates a population and instantiates every
// aggregate at its earliest valid assignment, so there are real
// assignments to disaggregate (the scheduler is not involved: aggregate
// cannot import sched, which imports this package).
func disaggFixture(t *testing.T, n int) ([]*Aggregated, []flexoffer.Assignment) {
	t.Helper()
	offers, gp := streamPopulation(t, n)
	// Safe aggregation guarantees every valid aggregate assignment
	// disaggregates, so the fixture can instantiate arbitrarily.
	ags, err := AggregateAllSafe(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	assignments := make([]flexoffer.Assignment, len(ags))
	for i, ag := range ags {
		a, err := ag.Offer.EarliestAssignment()
		if err != nil {
			t.Fatalf("aggregate %d: %v", i, err)
		}
		assignments[i] = a
	}
	return ags, assignments
}

// TestDisaggregateAllParallelMatchesSerial: the parallel fan-out must
// reproduce serial per-aggregate Disaggregate exactly, for any worker
// count.
func TestDisaggregateAllParallelMatchesSerial(t *testing.T) {
	ags, assignments := disaggFixture(t, 300)
	serial := make([][]flexoffer.Assignment, len(ags))
	for i, ag := range ags {
		parts, err := ag.Disaggregate(assignments[i])
		if err != nil {
			t.Fatalf("serial disaggregation %d: %v", i, err)
		}
		serial[i] = parts
	}
	for _, workers := range []int{1, 2, 8} {
		parallel, err := DisaggregateAllParallel(context.Background(), ags, assignments, ParallelParams{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(parallel, serial) {
			t.Fatalf("workers=%d: parallel disaggregation diverged from serial", workers)
		}
	}
	// Validity and slot-sum preservation.
	for i, parts := range serial {
		var sum timeseries.Series
		for j, p := range parts {
			if err := ags[i].Constituents[j].ValidateAssignment(p); err != nil {
				t.Fatalf("aggregate %d constituent %d: %v", i, j, err)
			}
			sum = timeseries.Add(sum, p.Series())
		}
		if !sum.EquivalentZeroPadded(assignments[i].Series()) {
			t.Fatalf("aggregate %d: disaggregation changed the profile", i)
		}
	}
}

// TestDisaggregateAllParallelReportsFailures: invalid assignments are
// reported as GroupErrors keyed by aggregate index.
func TestDisaggregateAllParallelReportsFailures(t *testing.T) {
	ags, assignments := disaggFixture(t, 60)
	// Corrupt one assignment so it no longer belongs to its aggregate.
	corrupt := make([]flexoffer.Assignment, len(assignments))
	copy(corrupt, assignments)
	corrupt[2] = flexoffer.Assignment{Start: ags[2].Offer.EarliestStart, Values: []int64{}}
	_, err := DisaggregateAllParallel(context.Background(), ags, corrupt, ParallelParams{Workers: 4, ErrorMode: CollectAll})
	var errs GroupErrors
	if !errors.As(err, &errs) {
		t.Fatalf("got %v, want GroupErrors", err)
	}
	if len(errs) != 1 || errs[0].Group != 2 {
		t.Fatalf("errs = %v, want one failure at aggregate 2", errs)
	}
	if !errors.Is(err, ErrNotConstituent) {
		t.Fatalf("underlying error %v does not unwrap to ErrNotConstituent", err)
	}
}

func TestDisaggregateAllParallelLengthMismatch(t *testing.T) {
	ags, assignments := disaggFixture(t, 30)
	if _, err := DisaggregateAllParallel(context.Background(), ags, assignments[:len(assignments)-1], ParallelParams{}); err == nil {
		t.Fatal("length mismatch must error")
	}
}
