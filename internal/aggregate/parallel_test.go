package aggregate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

// randomOffers generates a reproducible population of mixed-sign offers
// with varied windows, profiles and (sometimes tightened) totals. The
// workload package would do this, but it depends on market, which
// depends on this package — an import cycle inside the test binary — so
// the generator is local.
func randomOffers(t *testing.T, seed int64, n int) []*flexoffer.FlexOffer {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	offers := make([]*flexoffer.FlexOffer, n)
	for i := range offers {
		est := r.Intn(72)
		tf := r.Intn(8)
		slices := make([]flexoffer.Slice, 1+r.Intn(5))
		for j := range slices {
			lo := int64(r.Intn(9) - 4)
			slices[j] = flexoffer.Slice{Min: lo, Max: lo + int64(r.Intn(5))}
		}
		f, err := flexoffer.New(est, est+tf, slices...)
		if err != nil {
			t.Fatal(err)
		}
		if span := f.TotalMax - f.TotalMin; r.Intn(3) == 0 && span >= 4 {
			f, err = flexoffer.NewWithTotals(est, est+tf, slices, f.TotalMin+span/4, f.TotalMax-span/4)
			if err != nil {
				t.Fatal(err)
			}
		}
		f.ID = fmt.Sprintf("o%d", i)
		offers[i] = f
	}
	return offers
}

// encodeAggregates serializes every aggregate offer and its constituents,
// so equality of the returned bytes means byte-identical pipelines.
func encodeAggregates(t *testing.T, ags []*Aggregated) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ag := range ags {
		if err := flexoffer.Encode(&buf, append([]*flexoffer.FlexOffer{ag.Offer}, ag.Constituents...)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestAggregateAllParallelMatchesSerial is the equivalence property test:
// across randomized offer sets and worker counts, the parallel pipeline
// must produce byte-identical output to the serial one.
func TestAggregateAllParallelMatchesSerial(t *testing.T) {
	params := []GroupParams{
		{ESTTolerance: 0, TFTolerance: -1},
		{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 8},
		{ESTTolerance: 12, TFTolerance: 2, MaxGroupSize: 3},
	}
	for seed := int64(0); seed < 8; seed++ {
		offers := randomOffers(t, seed, 50+int(seed)*40)
		gp := params[seed%int64(len(params))]
		serial, err := AggregateAll(offers, gp)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		want := encodeAggregates(t, serial)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			parallel, err := AggregateAllParallel(offers, gp, ParallelParams{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("seed %d workers %d: parallel output diverges from serial", seed, workers)
			}
			if got := encodeAggregates(t, parallel); !bytes.Equal(want, got) {
				t.Fatalf("seed %d workers %d: serialized output not byte-identical", seed, workers)
			}
		}
	}
}

// TestAggregateAllParallelDeterministicUnderRace runs concurrent
// pipelines under t.Parallel so `go test -race` exercises the pool's
// synchronization while checking determinism.
func TestAggregateAllParallelDeterministicUnderRace(t *testing.T) {
	offers := randomOffers(t, 42, 200)
	gp := GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 16}
	serial, err := AggregateAll(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			pp := ParallelParams{Workers: workers, BatchSize: workers % 3} // exercise explicit and automatic batching
			for rep := 0; rep < 4; rep++ {
				got, err := AggregateAllParallel(offers, gp, pp)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, got) {
					t.Fatalf("rep %d: nondeterministic output", rep)
				}
			}
		})
	}
}

func TestAggregateAllParallelEmptyAndSingle(t *testing.T) {
	got, err := AggregateAllParallel(nil, GroupParams{}, ParallelParams{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("empty input: want empty non-nil slice, got %#v", got)
	}
	f := flexoffer.MustNew(2, 5, flexoffer.Slice{Min: 1, Max: 3})
	got, err = AggregateAllParallel([]*flexoffer.FlexOffer{f}, GroupParams{}, ParallelParams{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Constituents) != 1 {
		t.Fatalf("single offer: got %d aggregates", len(got))
	}
	serial, err := AggregateAll([]*flexoffer.FlexOffer{f}, GroupParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, got) {
		t.Fatal("single-offer parallel output diverges from serial")
	}
}

func TestAggregateAllParallelPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	offers := randomOffers(t, 1, 50)
	_, err := AggregateAllParallelCtx(ctx, offers, GroupParams{ESTTolerance: 4, TFTolerance: -1}, ParallelParams{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAggregateAllParallelCancelMidBatch cancels the context from inside
// the third aggregation call and checks that the pipeline stops claiming
// groups and surfaces ctx's error.
func TestAggregateAllParallelCancelMidBatch(t *testing.T) {
	offers := randomOffers(t, 2, 400)
	groups := Group(offers, GroupParams{ESTTolerance: 0, TFTolerance: -1, MaxGroupSize: 4})
	if len(groups) < 10 {
		t.Fatalf("need ≥10 groups for a mid-batch cancel, got %d", len(groups))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls, after atomic.Int32
	agg := func(g []*flexoffer.FlexOffer) (*Aggregated, error) {
		if calls.Add(1) == 3 {
			cancel()
		} else if calls.Load() > 3 {
			after.Add(1)
		}
		return Aggregate(g)
	}
	_, err := aggregateGroupsParallel(ctx, groups, agg, ParallelParams{Workers: 2, BatchSize: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// In-flight groups may finish, but the pool must stop claiming new
	// ones: with 2 workers at most 1 other group can still have been
	// started after the cancelling call.
	if a := after.Load(); a > 1 {
		t.Fatalf("%d groups aggregated after cancellation", a)
	}
}

// invalidOffer builds an offer that fails Validate (no slices) at the
// given earliest start, bypassing the constructors.
func invalidOffer(id string, est int) *flexoffer.FlexOffer {
	return &flexoffer.FlexOffer{ID: id, EarliestStart: est, LatestStart: est + 1}
}

func TestAggregateAllParallelFirstError(t *testing.T) {
	offers := randomOffers(t, 3, 30)
	for i := range offers {
		offers[i].EarliestStart, offers[i].LatestStart = 0, offers[i].LatestStart-offers[i].EarliestStart
	}
	bad := invalidOffer("bad-offer", 500) // far EST → its own group, the last one
	offers = append(offers, bad)
	_, err := AggregateAllParallel(offers, GroupParams{ESTTolerance: 4, TFTolerance: -1}, ParallelParams{Workers: 4})
	if err == nil {
		t.Fatal("invalid constituent must fail")
	}
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("got %T (%v), want *GroupError", err, err)
	}
	if ge.Size != 1 || ge.FirstID != "bad-offer" {
		t.Fatalf("group context not preserved: %+v", ge)
	}
	if !errors.Is(err, flexoffer.ErrNoSlices) {
		t.Fatalf("underlying cause lost: %v", err)
	}
}

func TestAggregateAllParallelCollectAll(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, flexoffer.Slice{Min: 1, Max: 2}),
		invalidOffer("bad-a", 100),
		flexoffer.MustNew(200, 202, flexoffer.Slice{Min: 1, Max: 2}),
		invalidOffer("bad-b", 300),
	}
	_, err := AggregateAllParallel(offers, GroupParams{ESTTolerance: 0, TFTolerance: -1},
		ParallelParams{Workers: 4, ErrorMode: CollectAll})
	var ges GroupErrors
	if !errors.As(err, &ges) {
		t.Fatalf("got %T (%v), want GroupErrors", err, err)
	}
	if len(ges) != 2 {
		t.Fatalf("want 2 group errors, got %d: %v", len(ges), err)
	}
	if ges[0].Group >= ges[1].Group {
		t.Fatalf("errors not sorted by group index: %v", err)
	}
	if ges[0].FirstID != "bad-a" || ges[1].FirstID != "bad-b" {
		t.Fatalf("wrong groups identified: %v", err)
	}
	if !errors.Is(err, flexoffer.ErrNoSlices) {
		t.Fatalf("underlying cause lost through GroupErrors: %v", err)
	}
}

// TestAggregateAllSerialGroupContext checks that the serial pipeline
// carries the same identifying context as the parallel one.
func TestAggregateAllSerialGroupContext(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, flexoffer.Slice{Min: 1, Max: 2}),
		invalidOffer("needle", 100),
	}
	_, err := AggregateAll(offers, GroupParams{ESTTolerance: 0, TFTolerance: -1})
	var ge *GroupError
	if !errors.As(err, &ge) {
		t.Fatalf("got %T (%v), want *GroupError", err, err)
	}
	if ge.Group != 1 || ge.Size != 1 || ge.FirstID != "needle" {
		t.Fatalf("group context missing: %+v", ge)
	}
	if !errors.Is(err, flexoffer.ErrNoSlices) {
		t.Fatalf("underlying cause lost: %v", err)
	}
}

func TestAggregateAllSafeParallelMatchesSerial(t *testing.T) {
	offers := randomOffers(t, 5, 120)
	gp := GroupParams{ESTTolerance: 6, TFTolerance: -1, MaxGroupSize: 10}
	serial, err := AggregateAllSafe(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AggregateAllSafeParallel(context.Background(), offers, gp, ParallelParams{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("safe parallel output diverges from serial")
	}
}

func TestAggregateGroupsParallelBalanceGroups(t *testing.T) {
	offers := randomOffers(t, 6, 150)
	groups := BalanceGroups(offers, BalanceParams{ESTTolerance: 8, MaxGroupSize: 12})
	serial, err := aggregateGroups(groups, Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AggregateGroupsParallel(context.Background(), groups, ParallelParams{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("balance-grouped parallel output diverges from serial")
	}
}

// TestOptimizeGroupsWorkerCountInvariant checks that the concurrent
// mergePass scan is invisible in the result: any worker count yields the
// exact grouping of the serial scan.
func TestOptimizeGroupsWorkerCountInvariant(t *testing.T) {
	offers := randomOffers(t, 7, 60)
	base := OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 0.5,
		ESTTolerance:    -1,
		MaxGroupSize:    6,
		Workers:         1,
	}
	want, err := OptimizeGroups(offers, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 8} {
		p := base
		p.Workers = workers
		got, err := OptimizeGroups(offers, p)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers %d: grouping differs from serial scan", workers)
		}
	}
}

func TestErrorModeString(t *testing.T) {
	if FirstError.String() != "first-error" || CollectAll.String() != "collect-all" {
		t.Fatal("ErrorMode names changed")
	}
	if ErrorMode(9).String() != "ErrorMode(9)" {
		t.Fatal("unknown ErrorMode formatting changed")
	}
}
