package aggregate

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grouping"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/pool"
)

// This file implements the parallel aggregation pipeline: grouping output
// is sharded across a pool of workers, each aggregating whole groups
// independently. Aggregation is embarrassingly parallel across groups —
// groups share no state and Aggregate is deterministic — so the parallel
// pipeline produces results identical to the serial AggregateAll, in the
// same group order, for any worker count. That invariant is enforced by
// the equivalence property test in parallel_test.go.

// ErrorMode selects how the parallel pipeline reports per-group failures.
type ErrorMode int

const (
	// FirstError stops the pipeline at the first failing group and
	// returns that group's *GroupError. When several groups fail near-
	// simultaneously, the lowest-indexed error observed before the
	// pipeline drained is returned; which groups were reached depends on
	// scheduling.
	FirstError ErrorMode = iota
	// CollectAll aggregates every group regardless of failures and
	// returns all failures together as GroupErrors, sorted by group
	// index. Use it to triage a large batch in one pass.
	CollectAll
)

// String names the error mode.
func (m ErrorMode) String() string {
	switch m {
	case FirstError:
		return "first-error"
	case CollectAll:
		return "collect-all"
	default:
		return fmt.Sprintf("ErrorMode(%d)", int(m))
	}
}

// Executor abstracts the execution substrate a parallel call submits
// its index loop to. The pool package's persistent *Pool implements it;
// a nil Executor means per-call goroutine spin-up. It is an alias of
// pool.Executor so the ingest package's decode shards and this
// package's group fan-outs share one substrate type.
type Executor = pool.Executor

// ParallelParams controls the worker pool of the parallel aggregation
// pipeline. The zero value spins up one goroutine per logical CPU for
// the call, with automatic batching and FirstError reporting.
type ParallelParams struct {
	// Workers is the number of concurrent aggregation workers; values
	// below 1 mean runtime.GOMAXPROCS(0). The pipeline never uses more
	// workers than there are groups. When Pool is set — as the Engine
	// and the deprecated flex shims do — Workers instead caps this
	// call's share of the pool and cannot exceed the pool's own size.
	Workers int
	// BatchSize is the number of consecutive groups a worker claims at
	// a time. Larger batches amortize coordination; smaller batches
	// balance skewed group sizes. Values below 1 pick a batch that
	// spreads the groups roughly 4× over the workers.
	BatchSize int
	// ErrorMode selects first-error or collect-all failure reporting.
	ErrorMode ErrorMode
	// Pool, when non-nil, submits the group loop to a persistent
	// executor instead of spawning Workers goroutines for this one call
	// — the Engine's long-lived execution model, which removes
	// per-request pool setup from the hot path.
	Pool Executor
}

// forEach runs fn(i) for every group index in [0, n) under the params'
// execution model: the persistent pool when one is attached, otherwise
// per-call goroutine spin-up. Results land in per-index slots, so
// output never depends on which worker claimed which batch.
func (pp ParallelParams) forEach(n int, fn func(int)) {
	if pp.Pool != nil {
		pp.Pool.ForEach(n, pp.Workers, pp.BatchSize, fn)
		return
	}
	pool.Run(n, pp.Workers, pp.BatchSize, fn)
}

// forEachCtx is forEach with the request context threaded through, so
// a context-aware pool records pool_queue spans for the helpers it
// enlists. Executors that predate pool.CtxExecutor — and the
// per-call spin-up fallback — run exactly as before.
func (pp ParallelParams) forEachCtx(ctx context.Context, n int, fn func(int)) {
	if ce, ok := pp.Pool.(pool.CtxExecutor); ok {
		ce.ForEachCtx(ctx, n, pp.Workers, pp.BatchSize, fn)
		return
	}
	pp.forEach(n, fn)
}

// GroupError reports the failure of one group in a batched aggregation,
// carrying enough context to identify the group in a 10k-group batch:
// its index in grouping order, its size, and the ID of its first
// constituent.
type GroupError struct {
	// Group is the index of the failing group in grouping output order.
	Group int
	// Size is the number of constituents in the group.
	Size int
	// FirstID is the ID of the group's first constituent ("" if unset).
	FirstID string
	// Err is the underlying aggregation error.
	Err error
}

// newGroupError wraps err with the identifying context of group i.
func newGroupError(i int, group []*flexoffer.FlexOffer, err error) *GroupError {
	ge := &GroupError{Group: i, Size: len(group), Err: err}
	if len(group) > 0 {
		ge.FirstID = group[0].ID
	}
	return ge
}

// Error identifies the group and preserves the underlying message.
func (e *GroupError) Error() string {
	if e.FirstID != "" {
		return fmt.Sprintf("aggregate: group %d (%d offers, first %q): %v", e.Group, e.Size, e.FirstID, e.Err)
	}
	return fmt.Sprintf("aggregate: group %d (%d offers): %v", e.Group, e.Size, e.Err)
}

// Unwrap exposes the underlying error to errors.Is and errors.As.
func (e *GroupError) Unwrap() error { return e.Err }

// GroupErrors is the CollectAll failure report: every failing group's
// error, sorted by group index.
type GroupErrors []*GroupError

// Error summarizes the failure count and lists the first few groups.
func (es GroupErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "aggregate: %d groups failed:", len(es))
	for i, e := range es {
		if i == 4 {
			fmt.Fprintf(&b, " …(%d more)", len(es)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %v", e)
	}
	return b.String()
}

// Unwrap exposes the per-group errors to errors.Is and errors.As.
func (es GroupErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// AggregateAllParallel is AggregateAll executed by a worker pool: it
// groups the offers with gp and aggregates the groups concurrently under
// pp. The result is identical to AggregateAll — same aggregates, same
// group order — for every worker count.
func AggregateAllParallel(offers []*flexoffer.FlexOffer, gp GroupParams, pp ParallelParams) ([]*Aggregated, error) {
	return AggregateAllParallelCtx(context.Background(), offers, gp, pp)
}

// AggregateAllParallelCtx is AggregateAllParallel with cancellation: when
// ctx is cancelled mid-batch the pipeline stops claiming groups, drains,
// and returns ctx's error.
func AggregateAllParallelCtx(ctx context.Context, offers []*flexoffer.FlexOffer, gp GroupParams, pp ParallelParams) ([]*Aggregated, error) {
	return AggregateGroupsParallel(ctx, Group(offers, gp), pp)
}

// AggregateAllSafeParallel is AggregateAllSafe executed by the worker
// pool (AggregateSafe per group).
func AggregateAllSafeParallel(ctx context.Context, offers []*flexoffer.FlexOffer, gp GroupParams, pp ParallelParams) ([]*Aggregated, error) {
	return aggregateGroupsParallel(ctx, Group(offers, gp), AggregateSafe, pp)
}

// AggregateGroupsParallel aggregates pre-computed groups (from Group,
// BalanceGroups or OptimizeGroups) concurrently, preserving group order.
func AggregateGroupsParallel(ctx context.Context, groups [][]*flexoffer.FlexOffer, pp ParallelParams) ([]*Aggregated, error) {
	return aggregateGroupsParallel(ctx, groups, Aggregate, pp)
}

// AggregateGroupsSafeParallel is AggregateGroupsParallel using
// AggregateSafe per group (every valid aggregate assignment
// disaggregates).
func AggregateGroupsSafeParallel(ctx context.Context, groups [][]*flexoffer.FlexOffer, pp ParallelParams) ([]*Aggregated, error) {
	return aggregateGroupsParallel(ctx, groups, AggregateSafe, pp)
}

// aggregateGroupsParallel shards the groups across the worker pool:
// each aggregate and each failure lands in its group's slot, so
// neither output order nor error reporting depends on scheduling. Failures are wrapped with newGroupError exactly like the
// serial path. After cancellation (or, in FirstError mode, a failure)
// the remaining groups are skipped, not aggregated.
func aggregateGroupsParallel(ctx context.Context, groups [][]*flexoffer.FlexOffer, agg func([]*flexoffer.FlexOffer) (*Aggregated, error), pp ParallelParams) ([]*Aggregated, error) {
	n := len(groups)
	out := make([]*Aggregated, n)
	if n == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, obs.StageAggregate)
	defer sp.End()
	errSlots := make([]*GroupError, n)
	var failed atomic.Bool
	done := ctx.Done()
	pp.forEachCtx(ctx, n, func(i int) {
		if pp.ErrorMode == FirstError && failed.Load() {
			return
		}
		select {
		case <-done:
			return
		default:
		}
		ag, err := agg(groups[i])
		if err != nil {
			errSlots[i] = newGroupError(i, groups[i], err)
			failed.Store(true)
			return
		}
		out[i] = ag
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := collectFailures(errSlots, pp.ErrorMode); err != nil {
		return nil, err
	}
	return out, nil
}

// collectFailures folds per-index failure slots into the mode's error
// shape: the lowest-indexed failure alone (FirstError) or all of them
// sorted by index (CollectAll). Nil when nothing failed.
func collectFailures(errSlots []*GroupError, mode ErrorMode) error {
	var errs GroupErrors
	for _, e := range errSlots {
		if e != nil {
			errs = append(errs, e)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	if mode == FirstError {
		return errs[0]
	}
	return errs
}

// StreamItem is one completed group of a streaming aggregation. Items
// arrive in completion order, not group order; Index identifies the
// group in grouping-output order. Exactly one of Agg and Err is set.
type StreamItem struct {
	// Index is the group's position in grouping-output order.
	Index int
	// Agg is the group's aggregate (nil when the group failed).
	Agg *Aggregated
	// Err reports the group's failure (nil on success).
	Err *GroupError
}

// AggregateAllStream groups the offers with gp and aggregates the
// groups concurrently under pp, emitting each aggregate on the returned
// channel as soon as its worker finishes it — the streaming counterpart
// of AggregateAllParallel, for consumers (like sched.ScheduleStream)
// that overlap their own work with aggregation instead of waiting for
// the full batch. It returns the channel and the number of groups the
// consumer should expect.
//
// The channel is buffered to the group count, so producers never block:
// abandoning the channel mid-stream leaks no goroutines once the
// in-flight groups finish, and cancelling ctx stops workers from
// claiming further groups. The channel is closed when every group has
// been aggregated, failed, or been skipped. In FirstError mode workers
// stop claiming groups after the first failure (the failing item is
// still delivered); in CollectAll mode every group is attempted and
// every failure delivered.
func AggregateAllStream(ctx context.Context, offers []*flexoffer.FlexOffer, gp GroupParams, pp ParallelParams) (<-chan StreamItem, int) {
	return streamGroups(ctx, Group(offers, gp), Aggregate, pp)
}

// AggregateAllSafeStream is AggregateAllStream using AggregateSafe per
// group (every valid aggregate assignment disaggregates).
func AggregateAllSafeStream(ctx context.Context, offers []*flexoffer.FlexOffer, gp GroupParams, pp ParallelParams) (<-chan StreamItem, int) {
	return streamGroups(ctx, Group(offers, gp), AggregateSafe, pp)
}

// AggregateGroupsStream streams the aggregation of pre-computed groups
// (from Group, BalanceGroups or OptimizeGroups).
func AggregateGroupsStream(ctx context.Context, groups [][]*flexoffer.FlexOffer, pp ParallelParams) (<-chan StreamItem, int) {
	return streamGroups(ctx, groups, Aggregate, pp)
}

// AggregateGroupsSafeStream is AggregateGroupsStream using AggregateSafe
// per group — the streaming path of a custom Grouper on a safe Engine.
func AggregateGroupsSafeStream(ctx context.Context, groups [][]*flexoffer.FlexOffer, pp ParallelParams) (<-chan StreamItem, int) {
	return streamGroups(ctx, groups, AggregateSafe, pp)
}

// streamGroups fans the groups out across the worker pool and emits
// each result as it completes.
func streamGroups(ctx context.Context, groups [][]*flexoffer.FlexOffer, agg func([]*flexoffer.FlexOffer) (*Aggregated, error), pp ParallelParams) (<-chan StreamItem, int) {
	n := len(groups)
	ch := make(chan StreamItem, n)
	if n == 0 {
		close(ch)
		return ch, 0
	}
	done := ctx.Done()
	// The aggregate span covers the whole fan-out; it is started here
	// (not inside the goroutine) so it nests under the caller's span,
	// and ended before the channel closes — defers run LIFO — so a
	// consumer that drains the stream observes a completed span.
	sctx, sp := obs.Start(ctx, obs.StageAggregate)
	go func() {
		defer close(ch)
		defer sp.End()
		var failed atomic.Bool
		pp.forEachCtx(sctx, n, func(i int) {
			if pp.ErrorMode == FirstError && failed.Load() {
				return
			}
			select {
			case <-done:
				return
			default:
			}
			ag, err := agg(groups[i])
			if err != nil {
				failed.Store(true)
				ch <- StreamItem{Index: i, Err: newGroupError(i, groups[i], err)}
				return
			}
			ch <- StreamItem{Index: i, Agg: ag}
		})
	}()
	return ch, n
}

// DisaggregateAllParallel maps scheduled aggregate assignments back to
// their constituents concurrently: assignments[i] must be a valid
// assignment of ags[i].Offer, and out[i] holds one assignment per
// ags[i].Constituents in constituent order. Per-aggregate repair shares
// no state across aggregates, so the fan-out is the same worker-pool
// shape as the aggregation pipeline, with identical determinism (each
// result lands in its own slot) and failure reporting (GroupError /
// GroupErrors keyed by aggregate index).
func DisaggregateAllParallel(ctx context.Context, ags []*Aggregated, assignments []flexoffer.Assignment, pp ParallelParams) ([][]flexoffer.Assignment, error) {
	if len(assignments) != len(ags) {
		return nil, fmt.Errorf("aggregate: %d assignments for %d aggregates", len(assignments), len(ags))
	}
	n := len(ags)
	out := make([][]flexoffer.Assignment, n)
	if n == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, obs.StageDisaggregate)
	defer sp.End()
	errSlots := make([]*GroupError, n)
	var failed atomic.Bool
	done := ctx.Done()
	pp.forEachCtx(ctx, n, func(i int) {
		if pp.ErrorMode == FirstError && failed.Load() {
			return
		}
		select {
		case <-done:
			return
		default:
		}
		parts, err := ags[i].Disaggregate(assignments[i])
		if err != nil {
			errSlots[i] = newGroupError(i, ags[i].Constituents, err)
			failed.Store(true)
			return
		}
		out[i] = parts
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := collectFailures(errSlots, pp.ErrorMode); err != nil {
		return nil, err
	}
	return out, nil
}

// AggregateGrouperStream partitions the offers with the streaming
// grouper g — batch by batch, as its shards complete — and aggregates
// each batch's groups on the worker pool, emitting every aggregate on
// the item channel with its global grouping-order index. Aggregation of
// the first shard's groups therefore overlaps the packing of later
// shards, where AggregateAllStream runs one full grouping pass before
// the first aggregate exists.
//
// The total group count — what a placement consumer like
// sched.ScheduleStream needs up front — is delivered on the second
// channel once grouping completes; the channel is closed without a
// value when ctx was cancelled before the count was known. The item
// channel is buffered to len(offers), an upper bound on the group
// count, so producers never block and abandoning the stream leaks no
// goroutines. Error semantics match AggregateAllStream: in FirstError
// mode workers stop claiming groups after the first failure (which is
// still delivered); in CollectAll mode every group is attempted.
func AggregateGrouperStream(ctx context.Context, offers []*flexoffer.FlexOffer, g grouping.Streamer, pp ParallelParams) (<-chan StreamItem, <-chan int) {
	return streamGrouper(ctx, offers, g, Aggregate, pp)
}

// AggregateGrouperSafeStream is AggregateGrouperStream using
// AggregateSafe per group (every valid aggregate assignment
// disaggregates).
func AggregateGrouperSafeStream(ctx context.Context, offers []*flexoffer.FlexOffer, g grouping.Streamer, pp ParallelParams) (<-chan StreamItem, <-chan int) {
	return streamGrouper(ctx, offers, g, AggregateSafe, pp)
}

// streamGrouper consumes grouping batches as the grouper delivers them
// and fans each batch's aggregation out across the worker pool. The
// forwarding of batches and the aggregation of their groups run in
// separate goroutines: the group count is therefore delivered the
// moment the grouper finishes — while groups are still aggregating —
// so a placement consumer blocked on the count starts scheduling
// without waiting for aggregation to drain.
func streamGrouper(ctx context.Context, offers []*flexoffer.FlexOffer, g grouping.Streamer, agg func([]*flexoffer.FlexOffer) (*Aggregated, error), pp ParallelParams) (<-chan StreamItem, <-chan int) {
	// The item buffer must hold everything the producers might emit, or
	// an abandoned stream would block them forever; the exact group
	// count is only known once grouping ends, so the buffer is sized to
	// its upper bound, the offer count (every group holds ≥ 1 offer).
	ch := make(chan StreamItem, len(offers))
	nch := make(chan int, 1)
	batches := g.GroupStream(ctx, offers)
	// Batches queue between the forwarder and the aggregator through a
	// grown slice (a few header words per shard) rather than a second
	// offer-count-sized channel; the forwarder only appends and pokes
	// wake, so it can never block behind slow aggregation.
	var (
		mu       sync.Mutex
		queue    []groupRun
		complete bool
	)
	wake := make(chan struct{}, 1)
	poke := func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
	go func() {
		defer close(nch)
		total := 0
		for batch := range batches {
			mu.Lock()
			queue = append(queue, groupRun{base: total, groups: batch.Groups})
			mu.Unlock()
			poke()
			total += len(batch.Groups)
		}
		// The batch stream closes on completion and on cancellation
		// alike; deliver the count only when grouping actually finished,
		// so a consumer can tell a complete stream from a cut-short one.
		// The count is ready the moment grouping ends — groups are still
		// aggregating — which is what lets a placement consumer blocked
		// on it start scheduling without waiting for aggregation.
		if ctx.Err() == nil {
			nch <- total
		}
		mu.Lock()
		complete = true
		mu.Unlock()
		poke()
	}()
	done := ctx.Done()
	// One aggregate span covers the whole aggregation side of the
	// stream, batches included; ended before the item channel closes
	// (LIFO defers) so a draining consumer sees it completed.
	sctx, sp := obs.Start(ctx, obs.StageAggregate)
	go func() {
		defer close(ch)
		defer sp.End()
		var failed atomic.Bool
		for {
			mu.Lock()
			runs := queue
			queue = nil
			closed := complete
			mu.Unlock()
			if len(runs) == 0 {
				if closed {
					return
				}
				<-wake
				continue
			}
			// Taking the whole queue coalesces every run ready right
			// now, so one fan-out covers them all instead of paying a
			// barrier per tiny shard. Runs are contiguous, so the first
			// base indexes the combined slice.
			base := runs[0].base
			groups := runs[0].groups
			for _, r := range runs[1:] {
				groups = append(groups, r.groups...)
			}
			pp.forEachCtx(sctx, len(groups), func(j int) {
				if pp.ErrorMode == FirstError && failed.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				ag, err := agg(groups[j])
				if err != nil {
					failed.Store(true)
					ch <- StreamItem{Index: base + j, Err: newGroupError(base+j, groups[j], err)}
					return
				}
				ch <- StreamItem{Index: base + j, Agg: ag}
			})
		}
	}()
	return ch, nch
}

// groupRun is one contiguous run of groups queued between the grouper
// forwarder and the aggregation fan-out: groups[j] is global group
// base+j.
type groupRun struct {
	base   int
	groups [][]*flexoffer.FlexOffer
}
