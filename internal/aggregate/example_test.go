package aggregate_test

import (
	"fmt"
	"log"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

// Example aggregates two flex-offers by start alignment and quantifies
// the flexibility loss (Scenario 1).
func Example() {
	a := flexoffer.MustNew(0, 3, flexoffer.Slice{Min: 0, Max: 1})
	b := flexoffer.MustNew(0, 1, flexoffer.Slice{Min: 0, Max: 1})
	ag, err := aggregate.Aggregate([]*flexoffer.FlexOffer{a, b})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aggregate:", ag.Offer)
	loss, err := ag.Loss(core.ProductMeasure{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("product loss:", loss)
	// Output:
	// aggregate: ([0,1],⟨[0,2]⟩,cmin=0,cmax=2)
	// product loss: 2
}

// ExampleAggregated_Disaggregate maps an aggregate assignment back to
// valid constituent assignments, preserving every slot sum.
func ExampleAggregated_Disaggregate() {
	a := flexoffer.MustNew(0, 2, flexoffer.Slice{Min: 1, Max: 3})
	b := flexoffer.MustNew(0, 2, flexoffer.Slice{Min: 2, Max: 4})
	ag, err := aggregate.Aggregate([]*flexoffer.FlexOffer{a, b})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := ag.Disaggregate(flexoffer.NewAssignment(1, 5))
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range parts {
		fmt.Println(p.Series())
	}
	// The 5 units split as minima (1 and 2) plus water-filled surplus,
	// left constituent first.
	// Output:
	// {1..1}⟨3⟩
	// {1..1}⟨2⟩
}

// ExampleGroup partitions offers by start-time similarity before
// aggregation.
func ExampleGroup() {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, flexoffer.Slice{Min: 1, Max: 2}),
		flexoffer.MustNew(1, 3, flexoffer.Slice{Min: 1, Max: 2}),
		flexoffer.MustNew(10, 12, flexoffer.Slice{Min: 1, Max: 2}),
	}
	groups := aggregate.Group(offers, aggregate.GroupParams{ESTTolerance: 2, TFTolerance: -1})
	fmt.Println(len(groups), "groups of", len(groups[0]), "and", len(groups[1]))
	// Output: 2 groups of 2 and 1
}

// ExampleOptimizeGroups merges only while the relative flexibility loss
// stays under a bound — the paper's future-work "aggregation jointly
// with flexibility optimization".
func ExampleOptimizeGroups() {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 1, Max: 2}),
		flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 1, Max: 2}),
		flexoffer.MustNew(0, 0, flexoffer.Slice{Min: 1, Max: 2}), // would kill tf
	}
	groups, err := aggregate.OptimizeGroups(offers, aggregate.OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 0.45,
		ESTTolerance:    -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(groups), "groups") // the tf=0 offer stays alone
	// Output: 2 groups
}
