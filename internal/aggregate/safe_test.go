package aggregate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

func TestAggregateSafeDisaggregatesEveryAssignment(t *testing.T) {
	// The adversarial case that defeats plain Aggregate: constituents
	// with tight cmin covering disjoint time ranges, and an aggregate
	// assignment that parks the energy where the needy constituent
	// cannot reach it.
	ev1, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 0, Max: 40}, {Min: 0, Max: 40}}, 48, 80)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 0, Max: 40}, {Min: 0, Max: 40}}, 48, 80)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := AggregateSafe([]*flexoffer.FlexOffer{ev1, ev2})
	if err != nil {
		t.Fatal(err)
	}
	// Enumerating all assignments is infeasible; probe the extremes and
	// a random sample instead.
	probes := []flexoffer.Assignment{ag.Offer.MinAssignment(), ag.Offer.MaxAssignment()}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := flexoffer.Assignment{Start: ag.Offer.EarliestStart, Values: make([]int64, ag.Offer.NumSlices())}
		for j, s := range ag.Offer.Slices {
			a.Values[j] = s.Min + r.Int63n(s.Span()+1)
		}
		probes = append(probes, a)
	}
	for _, a := range probes {
		if err := ag.Offer.ValidateAssignment(a); err != nil {
			continue // extremes may violate the (tightened) totals
		}
		parts, err := ag.Disaggregate(a)
		if err != nil {
			t.Fatalf("safe aggregate failed to disaggregate %v: %v", a, err)
		}
		for j, p := range parts {
			if err := ag.Constituents[j].ValidateAssignment(p); err != nil {
				t.Fatalf("constituent %d invalid: %v", j, err)
			}
		}
	}
}

func TestTightenTotalsSemantics(t *testing.T) {
	f, err := flexoffer.NewWithTotals(0, 2, []flexoffer.Slice{{Min: 0, Max: 5}, {Min: 0, Max: 5}}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	tt := f.TightenTotals()
	if tt.SumMin() != tt.TotalMin || tt.SumMax() != tt.TotalMax {
		t.Fatalf("tightened sums [%d,%d] != totals [%d,%d]",
			tt.SumMin(), tt.SumMax(), tt.TotalMin, tt.TotalMax)
	}
	if err := tt.Validate(); err != nil {
		t.Fatalf("tightened offer invalid: %v", err)
	}
	// Tightening never increases flexibility under any measure.
	for _, m := range core.AllMeasures() {
		before, err1 := m.Value(f)
		after, err2 := m.Value(tt)
		if err1 != nil || err2 != nil {
			continue
		}
		if after > before+1e-9 {
			t.Errorf("%s grew under tightening: %g → %g", m.Name(), before, after)
		}
	}
}

func TestAggregateAllSafeMatchesGrouping(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(9, 11, sl(1, 2)),
	}
	safe, err := AggregateAllSafe(offers, GroupParams{ESTTolerance: 1, TFTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AggregateAll(offers, GroupParams{ESTTolerance: 1, TFTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(safe) != len(plain) {
		t.Fatalf("safe %d groups, plain %d", len(safe), len(plain))
	}
}

func TestAggregateSafeNilConstituent(t *testing.T) {
	if _, err := AggregateSafe([]*flexoffer.FlexOffer{nil}); err == nil {
		t.Fatal("nil constituent must be rejected")
	}
}

func TestPropertyTightenedAssignmentsValidForOriginal(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOfferForAgg(r)
		tt := f.TightenTotals()
		if tt.Validate() != nil {
			return false
		}
		// A random slice-valid assignment of the tightened offer must
		// satisfy the original's totals.
		a := flexoffer.Assignment{Start: tt.EarliestStart, Values: make([]int64, tt.NumSlices())}
		for j, s := range tt.Slices {
			a.Values[j] = s.Min + r.Int63n(s.Span()+1)
		}
		if tt.ValidateAssignment(a) != nil {
			// Tightened totals equal the slice sums, so every
			// slice-valid assignment must validate.
			return false
		}
		return f.ValidateAssignment(a) == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertySafeAggregateAlwaysDisaggregates(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		group := make([]*flexoffer.FlexOffer, 1+r.Intn(4))
		for i := range group {
			group[i] = randomOfferForAgg(r)
		}
		ag, err := AggregateSafe(group)
		if err != nil {
			return false
		}
		// A random valid assignment of the safe aggregate.
		a := flexoffer.Assignment{
			Start:  ag.Offer.EarliestStart + r.Intn(ag.Offer.TimeFlexibility()+1),
			Values: make([]int64, ag.Offer.NumSlices()),
		}
		for j, s := range ag.Offer.Slices {
			a.Values[j] = s.Min + r.Int63n(s.Span()+1)
		}
		if ag.Offer.ValidateAssignment(a) != nil {
			return false // safe aggregates are slice-bounded: cannot happen
		}
		parts, err := ag.Disaggregate(a)
		if err != nil {
			return false
		}
		for i, p := range parts {
			if ag.Constituents[i].ValidateAssignment(p) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAggregateAlignedLatest(t *testing.T) {
	// Two offers with different windows: under latest alignment the
	// profiles line up at their deadlines instead of their releases.
	a := flexoffer.MustNew(0, 6, sl(1, 1)) // tf 6
	b := flexoffer.MustNew(4, 6, sl(1, 1)) // tf 2
	early, err := Aggregate([]*flexoffer.FlexOffer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	late, err := AggregateAligned([]*flexoffer.FlexOffer{a, b}, AlignLatest)
	if err != nil {
		t.Fatal(err)
	}
	// Earliest alignment anchors at tes: offsets 0 and 4 → profile
	// spread over 5 slots. Latest alignment anchors at tls−minTF: 4 and
	// 4 → the two unit slices coincide.
	if early.Offer.NumSlices() != 5 {
		t.Errorf("earliest-aligned profile spans %d slots, want 5", early.Offer.NumSlices())
	}
	if late.Offer.NumSlices() != 1 {
		t.Errorf("latest-aligned profile spans %d slots, want 1", late.Offer.NumSlices())
	}
	if late.Offer.Slices[0] != (flexoffer.Slice{Min: 2, Max: 2}) {
		t.Errorf("latest-aligned slice = %v, want [2,2]", late.Offer.Slices[0])
	}
	if late.Offer.TimeFlexibility() != 2 {
		t.Errorf("latest-aligned tf = %d, want 2", late.Offer.TimeFlexibility())
	}
}

func TestAggregateAlignedLatestDisaggregates(t *testing.T) {
	a := flexoffer.MustNew(0, 6, sl(1, 3))
	b := flexoffer.MustNew(4, 6, sl(2, 5))
	ag, err := AggregateAligned([]*flexoffer.FlexOffer{a, b}, AlignLatest)
	if err != nil {
		t.Fatal(err)
	}
	for delta := 0; delta <= ag.Offer.TimeFlexibility(); delta++ {
		assignment := flexoffer.Assignment{
			Start:  ag.Offer.EarliestStart + delta,
			Values: make([]int64, ag.Offer.NumSlices()),
		}
		for j, s := range ag.Offer.Slices {
			assignment.Values[j] = s.Min
		}
		parts, err := ag.Disaggregate(assignment)
		if err != nil {
			t.Fatalf("δ=%d: %v", delta, err)
		}
		for i, p := range parts {
			if err := ag.Constituents[i].ValidateAssignment(p); err != nil {
				t.Fatalf("δ=%d constituent %d: %v", delta, i, err)
			}
		}
	}
}

func TestAggregateAlignedUnknown(t *testing.T) {
	if _, err := AggregateAligned([]*flexoffer.FlexOffer{flexoffer.MustNew(0, 1, sl(1, 1))}, Alignment(9)); err == nil {
		t.Fatal("unknown alignment must fail")
	}
	if Alignment(9).String() == "" || AlignEarliest.String() != "earliest" || AlignLatest.String() != "latest" {
		t.Error("alignment names wrong")
	}
}
