package aggregate

import (
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/grouping"
)

// Balance-aware grouping moved to the grouping package alongside the
// other partitioning strategies; these shims keep existing callers
// compiling. See grouping.BalanceGroups for the heuristic's semantics
// (the balance-aware aggregation of the paper's reference [14]).

// BalanceParams controls balance-aware grouping.
type BalanceParams = grouping.BalanceParams

// BalanceGroups partitions the offers into groups that mix energy
// consumption and production so each aggregate's expected total energy
// is close to zero (reference [14], Scenario 1).
func BalanceGroups(offers []*flexoffer.FlexOffer, p BalanceParams) [][]*flexoffer.FlexOffer {
	return grouping.BalanceGroups(offers, p)
}

// NetExpectedEnergy returns the sum of the group's expected energies;
// balance-aware grouping drives this towards zero.
func NetExpectedEnergy(group []*flexoffer.FlexOffer) int64 {
	return grouping.NetExpectedEnergy(group)
}
