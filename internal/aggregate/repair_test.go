package aggregate

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// chainFixture builds a three-constituent case that defeats single-hop
// repair and requires a transfer chain:
//
//   - A (slots 0–1) needs cmin 2 but water-filling hands slot 1's energy
//     to B first;
//   - B (slots 1–2, cmin 6) holds energy at slot 1 but has zero total
//     slack, so it can only donate to A if it simultaneously regains at
//     slot 2 from C;
//   - C (slot 2) has the total slack.
//
// The required repair is the two-hop chain A←B@1, B←C@2.
func chainFixture(t *testing.T) (*Aggregated, flexoffer.Assignment) {
	t.Helper()
	c := flexoffer.MustNew(2, 2, sl(0, 4))
	c.ID = "C"
	b, err := flexoffer.NewWithTotals(1, 1, []flexoffer.Slice{{Min: 0, Max: 4}, {Min: 0, Max: 6}}, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.ID = "B"
	a, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 0, Max: 2}, {Min: 0, Max: 2}}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.ID = "A"
	// Constituent order (C, B, A) steers the water-fill so B absorbs
	// slot 1 before A and C absorbs slot 2 before B.
	ag, err := Aggregate([]*flexoffer.FlexOffer{c, b, a})
	if err != nil {
		t.Fatal(err)
	}
	// Slots (0,1,2) carry (0,2,6): water-filling leaves A at 0 < cmin 2
	// and B at 4 < cmin 6; the single-hop pass can feed B from C but
	// cannot feed A, whose only co-resident B has no total slack.
	assignment := flexoffer.NewAssignment(0, 0, 2, 6)
	if err := ag.Offer.ValidateAssignment(assignment); err != nil {
		t.Fatal(err)
	}
	return ag, assignment
}

func TestMultiHopRepairSolvesChain(t *testing.T) {
	ag, assignment := chainFixture(t)
	parts, err := ag.Disaggregate(assignment)
	if err != nil {
		t.Fatalf("multi-hop repair failed: %v", err)
	}
	var sum timeseries.Series
	for i, p := range parts {
		if err := ag.Constituents[i].ValidateAssignment(p); err != nil {
			t.Fatalf("constituent %d invalid: %v", i, err)
		}
		sum = timeseries.Add(sum, p.Series())
	}
	if !sum.EquivalentZeroPadded(assignment.Series()) {
		t.Fatalf("slot sums changed: %v vs %v", sum, assignment.Series())
	}
	if got := parts[2].TotalEnergy(); got < 2 {
		t.Fatalf("A received %d, needs ≥ 2", got)
	}
}

func TestRepairReportsGenuineInfeasibility(t *testing.T) {
	// A needs 2 units but shares no slot chain that can reach the
	// energy: the donor D occupies disjoint slots with no intermediary.
	a, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 0, Max: 2}}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := flexoffer.MustNew(5, 5, sl(0, 2))
	ag, err := Aggregate([]*flexoffer.FlexOffer{a, d})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate slices: slot 0 [0,2], slots 1–4 [0,0], slot 5 [0,2];
	// totals [2,4]. Park the mandatory energy in slot 5.
	assignment := flexoffer.NewAssignment(0, 0, 0, 0, 0, 0, 2)
	if err := ag.Offer.ValidateAssignment(assignment); err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Disaggregate(assignment); !errors.Is(err, ErrRepairInfeasible) {
		t.Fatalf("got %v, want ErrRepairInfeasible", err)
	}
	// The same assignment shifted into A's slot disaggregates fine.
	ok := flexoffer.NewAssignment(0, 2, 0, 0, 0, 0, 0)
	if _, err := ag.Disaggregate(ok); err != nil {
		t.Fatalf("feasible assignment rejected: %v", err)
	}
}

func TestPropertyMultiHopRepairPreservesInvariants(t *testing.T) {
	// Whenever Disaggregate succeeds, slot sums and all constituent
	// constraints hold — under random aggregates AND random (not just
	// earliest) assignments.
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		group := make([]*flexoffer.FlexOffer, 1+r.Intn(5))
		for i := range group {
			group[i] = randomOfferForAgg(r)
		}
		ag, err := Aggregate(group)
		if err != nil {
			return false
		}
		a := flexoffer.Assignment{
			Start:  ag.Offer.EarliestStart + r.Intn(ag.Offer.TimeFlexibility()+1),
			Values: make([]int64, ag.Offer.NumSlices()),
		}
		for j, s := range ag.Offer.Slices {
			a.Values[j] = s.Min + r.Int63n(s.Span()+1)
		}
		if ag.Offer.ValidateAssignment(a) != nil {
			return true // random values missed the aggregate totals; skip
		}
		parts, err := ag.Disaggregate(a)
		if errors.Is(err, ErrRepairInfeasible) {
			return true // genuinely undecomposable assignments exist
		}
		if err != nil {
			return false
		}
		var sum timeseries.Series
		for i, p := range parts {
			if ag.Constituents[i].ValidateAssignment(p) != nil {
				return false
			}
			sum = timeseries.Add(sum, p.Series())
		}
		return sum.EquivalentZeroPadded(a.Series())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
