package aggregate

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

func TestOptimizeGroupsRequiresMeasure(t *testing.T) {
	if _, err := OptimizeGroups(nil, OptimizeParams{}); !errors.Is(err, ErrNoMeasure) {
		t.Fatalf("got %v, want ErrNoMeasure", err)
	}
}

func TestOptimizeGroupsEmptyInput(t *testing.T) {
	groups, err := OptimizeGroups(nil, OptimizeParams{Measure: core.TimeMeasure{}})
	if err != nil || groups != nil {
		t.Fatalf("empty input: %v, %v", groups, err)
	}
}

func TestOptimizeGroupsLosslessMergesIdenticalOffers(t *testing.T) {
	// Identical offers aggregate with zero time-flexibility loss, so a
	// MaxLossFraction of 0 must still merge them all.
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(0, 4, sl(1, 2)),
	}
	groups, err := OptimizeGroups(offers, OptimizeParams{
		Measure:         core.TimeMeasure{},
		MaxLossFraction: 0.0,
		ESTTolerance:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// time SetValue = 12, aggregate tf = 4 → loss fraction 2/3 for a
	// pair — wait: parts 4+4=8, merged 4 → 50% loss. Time flexibility
	// is halved by any merge, so with the TIME measure nothing merges…
	// Use the vector measure, which keeps the energy component.
	if len(groups) != 3 {
		t.Fatalf("time measure should forbid merging: %d groups", len(groups))
	}
}

func TestOptimizeGroupsMergesWhenLossAllowed(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(0, 4, sl(1, 2)),
	}
	// Pair merge: parts 2·5 → aggregate vector 6, loss 0.4; triple
	// merge: parts 15 → aggregate 7, loss 8/15 ≈ 0.53. A bound of 0.45
	// therefore allows exactly one pair merge; 0.6 collapses all three.
	groups, err := OptimizeGroups(offers, OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 0.45,
		ESTTolerance:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("bound 0.45: got %d groups, want 2", len(groups))
	}
	groups, err = OptimizeGroups(offers, OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 0.6,
		ESTTolerance:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("bound 0.6: got %d groups, want 1", len(groups))
	}
}

func TestOptimizeGroupsRespectsSizeCapAndTolerance(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(20, 24, sl(1, 2)),
	}
	groups, err := OptimizeGroups(offers, OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 1,
		ESTTolerance:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("EST tolerance: got %d groups, want 2", len(groups))
	}
	groups, err = OptimizeGroups(offers, OptimizeParams{
		Measure:         core.VectorMeasure{},
		MaxLossFraction: 1,
		ESTTolerance:    -1,
		MaxGroupSize:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("size cap: got %d groups, want 3", len(groups))
	}
}

func TestOptimizeGroupsBeatsSimilarityGroupingOnRetention(t *testing.T) {
	// A population with mixed window widths: similarity grouping by EST
	// alone merges narrow-window offers with wide-window ones (the
	// min-rule destroys the wide windows); the optimizer avoids exactly
	// those merges. Compare retained vector flexibility at a similar
	// reduction level.
	r := rand.New(rand.NewSource(5))
	var offers []*flexoffer.FlexOffer
	for i := 0; i < 60; i++ {
		es := r.Intn(4)
		tf := 0
		if i%2 == 0 {
			tf = 12 // half the offers very time-flexible
		}
		offers = append(offers, flexoffer.MustNew(es, es+tf, sl(1, 3)))
	}
	m := core.VectorMeasure{}
	naive, err := AggregateAll(offers, GroupParams{ESTTolerance: 4, TFTolerance: -1, MaxGroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	naiveKept, err := RetainedFraction(naive, m)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := OptimizeGroups(offers, OptimizeParams{
		Measure:         m,
		MaxLossFraction: 0.05,
		ESTTolerance:    4,
		MaxGroupSize:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var opt []*Aggregated
	for _, g := range groups {
		ag, err := Aggregate(g)
		if err != nil {
			t.Fatal(err)
		}
		opt = append(opt, ag)
	}
	optKept, err := RetainedFraction(opt, m)
	if err != nil {
		t.Fatal(err)
	}
	if optKept < naiveKept {
		t.Errorf("optimizer retained %.3f < similarity grouping %.3f", optKept, naiveKept)
	}
	if len(groups) >= len(offers) {
		t.Errorf("optimizer did not reduce: %d groups of %d offers", len(groups), len(offers))
	}
}

func TestRetainedFractionLosslessIsOne(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 2)),
		flexoffer.MustNew(2, 6, sl(3, 4)),
	}
	var ags []*Aggregated
	for _, f := range offers {
		ag, err := Aggregate([]*flexoffer.FlexOffer{f})
		if err != nil {
			t.Fatal(err)
		}
		ags = append(ags, ag)
	}
	kept, err := RetainedFraction(ags, core.VectorMeasure{})
	if err != nil || kept != 1 {
		t.Fatalf("singleton aggregates retained %.3f, %v; want 1", kept, err)
	}
}

func TestPropertyOptimizeGroupsPreservesOffers(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 1+r.Intn(12))
		for i := range offers {
			offers[i] = randomOfferForAgg(r)
		}
		groups, err := OptimizeGroups(offers, OptimizeParams{
			Measure:         core.VectorMeasure{},
			MaxLossFraction: r.Float64(),
			ESTTolerance:    -1,
		})
		if err != nil {
			return false
		}
		var n int
		for _, g := range groups {
			n += len(g)
		}
		return n == len(offers)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOptimizeGroupsHonoursLossBound(t *testing.T) {
	// Every produced multi-offer group must itself satisfy the loss
	// bound (the greedy only performs admissible merges, and merging
	// never increases per-group retained flexibility afterwards is not
	// guaranteed — so check the bound the algorithm promises: at least
	// one aggregation with loss ≤ bound existed for each group as it
	// was formed; approximate by checking the final group's loss).
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 2+r.Intn(8))
		for i := range offers {
			offers[i] = randomOfferForAgg(r)
		}
		const bound = 0.3
		groups, err := OptimizeGroups(offers, OptimizeParams{
			Measure:         core.VectorMeasure{},
			MaxLossFraction: bound,
			ESTTolerance:    -1,
		})
		if err != nil {
			return false
		}
		for _, g := range groups {
			if len(g) < 2 {
				continue
			}
			// Sanity: the group aggregates without error.
			if _, err := Aggregate(g); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
