package aggregate

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// sl is shorthand for a slice literal in test fixtures.
func sl(min, max int64) flexoffer.Slice { return flexoffer.Slice{Min: min, Max: max} }

func TestAggregateEmptyGroup(t *testing.T) {
	if _, err := Aggregate(nil); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("got %v, want ErrEmptyGroup", err)
	}
}

func TestAggregateSingleton(t *testing.T) {
	f := flexoffer.MustNew(2, 5, sl(1, 3), sl(0, 2))
	ag, err := Aggregate([]*flexoffer.FlexOffer{f})
	if err != nil {
		t.Fatal(err)
	}
	a := ag.Offer
	if a.EarliestStart != 2 || a.LatestStart != 5 {
		t.Errorf("window = [%d,%d], want [2,5]", a.EarliestStart, a.LatestStart)
	}
	if a.NumSlices() != 2 || a.Slices[0] != f.Slices[0] || a.Slices[1] != f.Slices[1] {
		t.Errorf("slices = %v", a.Slices)
	}
	if a.TotalMin != f.TotalMin || a.TotalMax != f.TotalMax {
		t.Errorf("totals = [%d,%d]", a.TotalMin, a.TotalMax)
	}
}

func TestAggregateTwoOffers(t *testing.T) {
	// f at [1,4] with 2 slices, g at [2,3] with 2 slices: aggregate is
	// anchored at min tes = 1, profile spans slots 1..3 (f at 1,2; g at
	// 2,3), tf = min(3,1) = 1.
	f := flexoffer.MustNew(1, 4, sl(1, 2), sl(1, 2))
	g := flexoffer.MustNew(2, 3, sl(10, 20), sl(10, 20))
	ag, err := Aggregate([]*flexoffer.FlexOffer{f, g})
	if err != nil {
		t.Fatal(err)
	}
	a := ag.Offer
	if a.EarliestStart != 1 || a.LatestStart != 2 {
		t.Errorf("window = [%d,%d], want [1,2]", a.EarliestStart, a.LatestStart)
	}
	wantSlices := []flexoffer.Slice{{Min: 1, Max: 2}, {Min: 11, Max: 22}, {Min: 10, Max: 20}}
	if a.NumSlices() != 3 {
		t.Fatalf("slices = %v", a.Slices)
	}
	for i, w := range wantSlices {
		if a.Slices[i] != w {
			t.Errorf("slice %d = %v, want %v", i, a.Slices[i], w)
		}
	}
	if a.TotalMin != 22 || a.TotalMax != 44 {
		t.Errorf("totals = [%d,%d], want [22,44]", a.TotalMin, a.TotalMax)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("aggregate invalid: %v", err)
	}
}

func TestAggregateRejectsInvalidConstituent(t *testing.T) {
	bad := &flexoffer.FlexOffer{EarliestStart: 3, LatestStart: 1, Slices: []flexoffer.Slice{{Min: 0, Max: 1}}}
	if _, err := Aggregate([]*flexoffer.FlexOffer{bad}); err == nil {
		t.Fatal("invalid constituent must be rejected")
	}
}

func TestAggregateTimeFlexibilityIsMinimum(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 7, sl(1, 2)),
		flexoffer.MustNew(0, 3, sl(1, 2)),
		flexoffer.MustNew(0, 5, sl(1, 2)),
	}
	ag, err := Aggregate(offers)
	if err != nil {
		t.Fatal(err)
	}
	if tf := ag.Offer.TimeFlexibility(); tf != 3 {
		t.Errorf("aggregate tf = %d, want min = 3", tf)
	}
}

func TestDisaggregatePreservesSlotSums(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(1, 4, sl(1, 3), sl(0, 2)),
		flexoffer.MustNew(2, 6, sl(2, 5)),
		flexoffer.MustNew(1, 3, sl(0, 1), sl(0, 1), sl(0, 1)),
	}
	ag, err := Aggregate(offers)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ag.Offer.EarliestAssignment()
	if err != nil {
		t.Fatal(err)
	}
	parts, err := ag.Disaggregate(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != len(offers) {
		t.Fatalf("%d parts for %d offers", len(parts), len(offers))
	}
	sum := parts[0].Series()
	for _, p := range parts[1:] {
		sum = addSeries(sum, p.Series())
	}
	if !sum.EquivalentZeroPadded(a.Series()) {
		t.Errorf("slot sums differ: parts %v vs aggregate %v", sum, a.Series())
	}
}

func TestDisaggregateAppliesCommonShift(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(1, 4, sl(1, 2)),
		flexoffer.MustNew(3, 5, sl(1, 2)),
	}
	ag, err := Aggregate(offers)
	if err != nil {
		t.Fatal(err)
	}
	// Shift the aggregate by δ=2 (within tf = min(3,2) = 2).
	a := flexoffer.NewAssignment(ag.Offer.EarliestStart+2, make([]int64, ag.Offer.NumSlices())...)
	for i := range a.Values {
		a.Values[i] = ag.Offer.Slices[i].Min
	}
	parts, err := ag.Disaggregate(a)
	if err != nil {
		t.Fatal(err)
	}
	if parts[0].Start != 3 || parts[1].Start != 5 {
		t.Errorf("starts = %d,%d; want 3,5", parts[0].Start, parts[1].Start)
	}
}

func TestDisaggregateRejectsForeignAssignment(t *testing.T) {
	ag, err := Aggregate([]*flexoffer.FlexOffer{flexoffer.MustNew(0, 2, sl(1, 2))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ag.Disaggregate(flexoffer.NewAssignment(9, 1)); !errors.Is(err, ErrNotConstituent) {
		t.Errorf("got %v, want ErrNotConstituent", err)
	}
}

func TestDisaggregateRepairsTotals(t *testing.T) {
	// Constituent g needs cmin=2 although its slice minima sum to 0;
	// naive left-to-right water-filling starves it when f absorbs the
	// surplus first.
	f := flexoffer.MustNew(0, 2, sl(0, 2), sl(0, 2))
	g, err := flexoffer.NewWithTotals(0, 2, []flexoffer.Slice{{Min: 0, Max: 2}, {Min: 0, Max: 2}}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Aggregate([]*flexoffer.FlexOffer{f, g})
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate totals: [2, 8]. Assign exactly 2 units.
	a := flexoffer.NewAssignment(0, 2, 0)
	if err := ag.Offer.ValidateAssignment(a); err != nil {
		t.Fatal(err)
	}
	parts, err := ag.Disaggregate(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if err := ag.Constituents[i].ValidateAssignment(p); err != nil {
			t.Errorf("part %d invalid after repair: %v", i, err)
		}
	}
	if got := parts[1].TotalEnergy(); got < 2 {
		t.Errorf("repair failed: g received %d, needs ≥ 2", got)
	}
}

func TestLossProductMeasure(t *testing.T) {
	// Two identical offers with tf=3: set product = 2·(3·1)=6;
	// aggregate has tf=3, ef=2 → product 6; loss 0 here. With unequal
	// tf the min-rule loses time flexibility.
	a := flexoffer.MustNew(0, 3, sl(0, 1))
	b := flexoffer.MustNew(0, 1, sl(0, 1))
	ag, err := Aggregate([]*flexoffer.FlexOffer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := ag.Loss(core.ProductMeasure{})
	if err != nil {
		t.Fatal(err)
	}
	// set = 3·1 + 1·1 = 4; aggregate = tf 1 · ef 2 = 2; loss = 2.
	if loss != 2 {
		t.Errorf("product loss = %g, want 2", loss)
	}
}

func TestLossNonNegativeForCanonicalMeasuresOnUniformGroups(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 3), sl(0, 2)),
		flexoffer.MustNew(1, 4, sl(2, 4)),
		flexoffer.MustNew(0, 6, sl(0, 2), sl(0, 2)),
	}
	ag, err := Aggregate(offers)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Measure{
		core.TimeMeasure{}, core.ProductMeasure{}, core.VectorMeasure{},
	} {
		loss, err := ag.Loss(m)
		if err != nil {
			t.Errorf("%s: %v", m.Name(), err)
			continue
		}
		if loss < 0 {
			t.Errorf("%s: negative loss %g on positive offers", m.Name(), loss)
		}
	}
}

func TestGroupRespectsTolerances(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(1, 3, sl(1, 2)),
		flexoffer.MustNew(9, 11, sl(1, 2)),
		flexoffer.MustNew(10, 12, sl(1, 2)),
	}
	groups := Group(offers, GroupParams{ESTTolerance: 2, TFTolerance: -1})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		lo, hi := g[0].EarliestStart, g[0].EarliestStart
		for _, f := range g {
			if f.EarliestStart < lo {
				lo = f.EarliestStart
			}
			if f.EarliestStart > hi {
				hi = f.EarliestStart
			}
		}
		if hi-lo > 2 {
			t.Errorf("group EST spread %d exceeds tolerance", hi-lo)
		}
	}
}

func TestGroupTFToleranceAndSizeCap(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 0, sl(1, 2)),
		flexoffer.MustNew(0, 9, sl(1, 2)),
		flexoffer.MustNew(0, 1, sl(1, 2)),
	}
	groups := Group(offers, GroupParams{ESTTolerance: 5, TFTolerance: 1})
	// tf values 0, 9, 1: sorted by tf → 0,1 group; 9 alone.
	if len(groups) != 2 {
		t.Fatalf("TF tolerance: got %d groups, want 2", len(groups))
	}
	groups = Group(offers, GroupParams{ESTTolerance: 5, TFTolerance: -1, MaxGroupSize: 1})
	if len(groups) != 3 {
		t.Fatalf("size cap: got %d groups, want 3", len(groups))
	}
	if Group(nil, GroupParams{}) != nil {
		t.Error("empty input should give nil groups")
	}
}

func TestAggregateAll(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(8, 10, sl(1, 2)),
	}
	ags, err := AggregateAll(offers, GroupParams{ESTTolerance: 1, TFTolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ags) != 2 {
		t.Fatalf("got %d aggregates, want 2", len(ags))
	}
	if len(ags[0].Constituents) != 2 || len(ags[1].Constituents) != 1 {
		t.Errorf("constituent counts = %d, %d", len(ags[0].Constituents), len(ags[1].Constituents))
	}
}

func TestBalanceGroupsMixSigns(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(3, 5)),   // consumption ≈ +4
		flexoffer.MustNew(0, 2, sl(-5, -3)), // production ≈ −4
		flexoffer.MustNew(0, 2, sl(2, 2)),   // +2
		flexoffer.MustNew(0, 2, sl(-2, -2)), // −2
	}
	groups := BalanceGroups(offers, BalanceParams{ESTTolerance: 2})
	for _, g := range groups {
		if net := NetExpectedEnergy(g); net != 0 {
			t.Errorf("group net energy = %d, want 0", net)
		}
	}
}

func TestBalanceGroupsAllSameSign(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(1, 1)),
		flexoffer.MustNew(0, 2, sl(2, 2)),
	}
	groups := BalanceGroups(offers, BalanceParams{ESTTolerance: 2})
	var n int
	for _, g := range groups {
		n += len(g)
	}
	if n != 2 {
		t.Fatalf("offers lost: %d grouped of 2", n)
	}
	if BalanceGroups(nil, BalanceParams{}) != nil {
		t.Error("empty input should give nil groups")
	}
}

func TestBalancedAggregateIsMixed(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(3, 5)),
		flexoffer.MustNew(0, 2, sl(-5, -3)),
	}
	ag, err := Aggregate(offers)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Offer.Kind() != flexoffer.Mixed {
		t.Errorf("balanced aggregate kind = %v, want mixed (Section 4)", ag.Offer.Kind())
	}
	// Vector flexibility still expresses it (Section 4's point).
	if _, err := (core.VectorMeasure{}).Value(ag.Offer); err != nil {
		t.Errorf("vector measure on mixed aggregate: %v", err)
	}
}

// randomOfferForAgg builds random valid offers for property tests.
func randomOfferForAgg(r *rand.Rand) *flexoffer.FlexOffer {
	n := 1 + r.Intn(3)
	slices := make([]flexoffer.Slice, n)
	for i := range slices {
		lo := int64(r.Intn(7) - 3)
		slices[i] = flexoffer.Slice{Min: lo, Max: lo + int64(r.Intn(3))}
	}
	es := r.Intn(4)
	f := flexoffer.MustNew(es, es+r.Intn(4), slices...)
	if r.Intn(2) == 0 && f.SumMax() > f.SumMin() {
		span := f.SumMax() - f.SumMin()
		lo := f.SumMin() + r.Int63n(span+1)
		f.TotalMin = lo
		f.TotalMax = lo + r.Int63n(f.SumMax()-lo+1)
	}
	return f
}

func TestPropertyDisaggregationRoundTrips(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		group := make([]*flexoffer.FlexOffer, 1+r.Intn(4))
		for i := range group {
			group[i] = randomOfferForAgg(r)
		}
		ag, err := Aggregate(group)
		if err != nil {
			return false
		}
		a, err := ag.Offer.EarliestAssignment()
		if err != nil {
			return false
		}
		parts, err := ag.Disaggregate(a)
		if errors.Is(err, ErrRepairInfeasible) {
			return true // documented limitation of single-hop repair
		}
		if err != nil {
			return false
		}
		sum := parts[0].Series()
		for i, p := range parts {
			if ag.Constituents[i].ValidateAssignment(p) != nil {
				return false
			}
			if i > 0 {
				sum = addSeries(sum, p.Series())
			}
		}
		return sum.EquivalentZeroPadded(a.Series())
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAggregateValidAndConservesTotals(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		group := make([]*flexoffer.FlexOffer, 1+r.Intn(5))
		var wantMin, wantMax int64
		for i := range group {
			group[i] = randomOfferForAgg(r)
			wantMin += group[i].TotalMin
			wantMax += group[i].TotalMax
		}
		ag, err := Aggregate(group)
		if err != nil {
			return false
		}
		return ag.Offer.Validate() == nil &&
			ag.Offer.TotalMin == wantMin && ag.Offer.TotalMax == wantMax
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// addSeries wraps timeseries.Add for readability in tests.
func addSeries(a, b timeseries.Series) timeseries.Series { return timeseries.Add(a, b) }
