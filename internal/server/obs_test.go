package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/shard"
	"flexmeasures/internal/timeseries"
)

// tracedOptions returns server Options with a fresh tracer installed.
func tracedOptions(o Options) (Options, *obs.Tracer) {
	tr := obs.NewTracer(64, 0)
	o.Tracer = tr
	return o, tr
}

// TestScheduleByteParityWithTracing pins the tentpole's safety
// property: tracing never changes results. The same fleet scheduled
// through traced and untraced servers, across shard and worker counts,
// must produce byte-identical /v1/schedule responses, all equal to the
// single-engine flexctl reference.
func TestScheduleByteParityWithTracing(t *testing.T) {
	offers, ndjson := zonedFleet(t, 180, 5)
	const horizon, cap = 72, 55
	query := fmt.Sprintf("/v1/schedule?horizon=%d&cap=%d&est=3&max-group=24", horizon, cap)

	ref := flex.New(flex.WithWorkers(1), flex.WithSafe(true))
	defer ref.Close()
	level := FlatTargetLevel(offers, horizon, -1)
	target := timeseries.Constant(0, horizon, level)
	res, err := ref.Pipeline(context.Background(), offers, target,
		flex.WithGrouping(flex.GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}),
		flex.WithPeakCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := EncodeResponse(&want, BuildScheduleResponse(len(offers), res, target, horizon, level)); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			for _, traced := range []bool{false, true} {
				opts := Options{}
				if traced {
					opts, _ = tracedOptions(opts)
				}
				srv, _ := newShardedTestServer(t, shards, opts,
					flex.WithWorkers(workers), flex.WithSafe(true))
				resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d workers=%d traced=%v: ingest: %s: %s",
						shards, workers, traced, resp.Status, body)
				}
				resp, body = post(t, srv.URL+query, nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("shards=%d workers=%d traced=%v: schedule: %s: %s",
						shards, workers, traced, resp.Status, body)
				}
				if !bytes.Equal(body, want.Bytes()) {
					t.Errorf("shards=%d workers=%d traced=%v: /v1/schedule bytes differ from reference (%d vs %d bytes)",
						shards, workers, traced, len(body), want.Len())
				}
			}
		}
	}
}

// TestTracePipelineE2E is the acceptance test of the observability
// PR: one traced /v1/schedule call against a WAL-backed sharded
// server must surface every pipeline stage both as a span in
// /debug/traces and as a flexd_stage_seconds{stage} histogram sample
// in /metrics — with the response bytes identical to an untraced
// server's.
func TestTracePipelineE2E(t *testing.T) {
	_, ndjson := zonedFleet(t, 180, 5)
	const query = "/v1/schedule?horizon=72&est=3&max-group=24"

	opts, tracer := tracedOptions(Options{})
	wal, err := persist.OpenWAL(persist.Options{
		Dir:     t.TempDir(),
		Router:  shard.Router{Shards: 2},
		Fsync:   persist.FsyncAlways,
		Metrics: tracer.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	opts.Store = wal
	srv, _ := newShardedTestServer(t, 2, opts, flex.WithWorkers(4), flex.WithSafe(true))

	// The untraced reference for the byte check.
	refSrv, _ := newShardedTestServer(t, 2, Options{}, flex.WithWorkers(4), flex.WithSafe(true))
	if resp, body := post(t, refSrv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("reference ingest: %s: %s", resp.Status, body)
	}
	_, wantBody := post(t, refSrv.URL+query, nil)

	if resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}

	want := []string{
		obs.StageIngestDecode, obs.StageGroupSort, obs.StageGroupPack,
		obs.StageAggregate, obs.StageSchedule, obs.StageDisaggregate,
		obs.StageWALAppend, obs.StageWALFsync, obs.StagePoolQueue,
	}
	// The queue-wait span needs a pool helper to actually dequeue a
	// task, which the first requests can lose the race for while the
	// workers are still parking; retry the schedule call until every
	// stage has shown up (each attempt must stay byte-identical).
	seen := make(map[string]bool)
	scheduled := 0
	for attempt := 0; attempt < 50; attempt++ {
		resp, body := post(t, srv.URL+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule: %s: %s", resp.Status, body)
		}
		if !bytes.Equal(body, wantBody) {
			t.Fatalf("traced /v1/schedule bytes differ from the untraced server (%d vs %d bytes)",
				len(body), len(wantBody))
		}
		scheduled++
		for k := range seen {
			delete(seen, k)
		}
		resp, body = get(t, srv.URL+"/debug/traces")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/debug/traces: %s: %s", resp.Status, body)
		}
		var traces []obs.TraceData
		if err := json.Unmarshal(body, &traces); err != nil {
			t.Fatalf("decoding /debug/traces: %v", err)
		}
		for _, td := range traces {
			for _, sp := range td.Spans {
				if sp.DurationNs <= 0 && sp.Name != obs.StagePoolQueue {
					t.Errorf("trace %s: span %q never ended", td.ID, sp.Name)
				}
				seen[sp.Name] = true
			}
		}
		if all(seen, want) {
			break
		}
	}
	if !all(seen, want) {
		t.Fatalf("after %d schedule calls, stages seen in /debug/traces: %v, want all of %v",
			scheduled, keys(seen), want)
	}

	// Trace bookkeeping: the ingest trace counted the fleet, the
	// schedule trace counted groups, and both carried request IDs.
	resp, body := get(t, srv.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %s", resp.Status)
	}
	var traces []obs.TraceData
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	var sawOffers, sawGroups bool
	for _, td := range traces {
		if td.ID == "" {
			t.Error("trace with empty ID")
		}
		if td.Offers == 180 {
			sawOffers = true
		}
		if td.Groups > 0 {
			sawGroups = true
		}
	}
	if !sawOffers || !sawGroups {
		t.Errorf("want an ingest trace with offers=180 and a schedule trace with groups>0 (offers=%v groups=%v)",
			sawOffers, sawGroups)
	}

	// Every stage must also have landed a histogram sample.
	_, metrics := get(t, srv.URL+"/metrics")
	for _, stage := range want {
		prefix := fmt.Sprintf("flexd_stage_seconds_count{stage=%q", stage)
		if !metricSamplePositive(string(metrics), prefix) {
			t.Errorf("/metrics: no positive flexd_stage_seconds sample for stage %q", stage)
		}
	}
}

// all reports whether every key in want is set in seen.
func all(seen map[string]bool, want []string) bool {
	for _, k := range want {
		if !seen[k] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// metricSamplePositive reports whether any sample line starting with
// prefix has a positive value.
func metricSamplePositive(metrics, prefix string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		var v float64
		if i := strings.LastIndex(line, " "); i >= 0 {
			if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil && v > 0 {
				return true
			}
		}
	}
	return false
}

// TestMetricsExposition scrapes /metrics after traffic on every kind
// of route — including an unknown path — and checks each expected
// family is present in well-formed exposition format, with unknown
// paths normalised to the shared "other" label.
func TestMetricsExposition(t *testing.T) {
	_, ndjson := zonedFleet(t, 60, 3)
	opts, _ := tracedOptions(Options{})
	srv, _ := newShardedTestServer(t, 2, opts, flex.WithWorkers(2), flex.WithSafe(true))

	if resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	if resp, body := post(t, srv.URL+"/v1/schedule?horizon=48&est=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s: %s", resp.Status, body)
	}
	// Unknown paths: distinct URLs, one shared label.
	for _, p := range []string{"/nope", "/v1/unknown", "/admin/../etc"} {
		if resp, _ := get(t, srv.URL+p); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: got %d, want 404", p, resp.StatusCode)
		}
	}
	if resp, _ := get(t, srv.URL+"/debug/traces?n=5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %s", resp.Status)
	}

	_, body := get(t, srv.URL+"/metrics")
	metrics := string(body)

	families := []string{
		"flexd_build_info", "flexd_requests_total", "flexd_requests_rejected_total",
		"flexd_requests_in_flight", "flexd_request_seconds", "flexd_ingest_records_total",
		"flexd_ingest_bytes_total", "flexd_pool_workers", "flexd_pool_busy",
		"flexd_offers_stored", "flexd_wal_degraded", "flexd_degraded_rejects_total",
		"flexd_shard_offers_stored", "flexd_shard_ingest_records_total",
		"flexd_shard_pool_workers", "flexd_shard_pool_busy",
		"flexd_stage_seconds", "flexd_pool_queue_seconds", "flexd_wal_fsync_seconds",
		"flexd_offers_ingested_total", "flexd_groups_total",
	}
	for _, fam := range families {
		if !strings.Contains(metrics, "# HELP "+fam+" ") {
			t.Errorf("/metrics: missing HELP for %s", fam)
		}
		if !strings.Contains(metrics, "# TYPE "+fam+" ") {
			t.Errorf("/metrics: missing TYPE for %s", fam)
		}
	}

	var buildInfo int
	if _, err := fmt.Sscanf(findLine(metrics, "flexd_build_info{"), "%d", &buildInfo); err != nil || buildInfo != 1 {
		t.Errorf("flexd_build_info: got %d (err %v), want 1", buildInfo, err)
	}
	if !strings.Contains(metrics, `flexd_build_info{version="`) ||
		!strings.Contains(metrics, `go_version="go`) {
		t.Error("flexd_build_info missing version/go_version labels")
	}

	// The three unknown paths all landed under one "other" label.
	var other int
	if _, err := fmt.Sscanf(findLine(metrics, `flexd_requests_total{path="other"}`), "%d", &other); err != nil || other != 3 {
		t.Errorf(`flexd_requests_total{path="other"}: got %d (err %v), want 3`, other, err)
	}
	if !strings.Contains(metrics, `flexd_request_seconds_count{path="other",code="404"}`) {
		t.Error(`missing flexd_request_seconds_count{path="other",code="404"} series`)
	}
	if strings.Contains(metrics, `path="/nope"`) {
		t.Error(`unknown path /nope leaked into metric labels`)
	}

	var ingested int
	if _, err := fmt.Sscanf(findLine(metrics, "flexd_offers_ingested_total "), "%d", &ingested); err != nil || ingested != 60 {
		t.Errorf("flexd_offers_ingested_total: got %d (err %v), want 60", ingested, err)
	}
	var groups int
	if _, err := fmt.Sscanf(findLine(metrics, "flexd_groups_total "), "%d", &groups); err != nil || groups < 1 {
		t.Errorf("flexd_groups_total: got %d (err %v), want >= 1", groups, err)
	}

	// Histogram shape: stage histograms must end in +Inf and have
	// matching _sum/_count series.
	if !strings.Contains(metrics, `flexd_stage_seconds_bucket{stage="schedule",le="+Inf"}`) {
		t.Error("flexd_stage_seconds missing +Inf bucket for stage schedule")
	}
	if !strings.Contains(metrics, `flexd_stage_seconds_count{stage="schedule"}`) {
		t.Error("flexd_stage_seconds missing _count for stage schedule")
	}
	if !strings.Contains(metrics, `flexd_pool_queue_seconds_bucket{le="+Inf"}`) {
		t.Error("flexd_pool_queue_seconds missing +Inf bucket")
	}
	if !strings.Contains(metrics, "flexd_wal_fsync_seconds_count ") {
		t.Error("flexd_wal_fsync_seconds missing _count")
	}
}

// findLine returns the value part (after the last space) of the first
// metrics line starting with prefix, or "" when absent.
func findLine(metrics, prefix string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			if i := strings.LastIndex(line, " "); i >= 0 {
				return line[i+1:]
			}
		}
	}
	return ""
}

// TestMethodNotAllowedWithTracing re-pins the 405 contract on a traced
// server: the "other" normalisation must not swallow wrong-method
// requests on known paths.
func TestMethodNotAllowedWithTracing(t *testing.T) {
	opts, _ := tracedOptions(Options{})
	srv, _ := newShardedTestServer(t, 1, opts, flex.WithWorkers(1))
	resp, _ := get(t, srv.URL+"/v1/aggregate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/aggregate on traced server: got %d, want 405", resp.StatusCode)
	}
}

// TestDebugTracesEndpoint covers the ring surface: bounded output,
// newest-first order, the ?n cap, and the header echo that ties a
// response to its trace.
func TestDebugTracesEndpoint(t *testing.T) {
	_, ndjson := zonedFleet(t, 40, 3)
	opts, _ := tracedOptions(Options{})
	srv, _ := newShardedTestServer(t, 1, opts, flex.WithWorkers(1), flex.WithSafe(true))

	if resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/schedule?horizon=48", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "my-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-trace-42" {
		t.Errorf("X-Request-Id echo: got %q, want my-trace-42", got)
	}

	resp2, body := get(t, srv.URL+"/debug/traces?n=1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %s", resp2.Status)
	}
	var traces []obs.TraceData
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("?n=1: got %d traces", len(traces))
	}
	if traces[0].ID != "my-trace-42" {
		t.Errorf("newest trace ID: got %q, want my-trace-42 (newest-first order)", traces[0].ID)
	}
	if len(traces[0].Spans) == 0 {
		t.Error("schedule trace has no spans")
	}
}

// TestTracedServerHammer drives a traced WAL-backed server from 12
// concurrent goroutines mixing ingest, schedule, trace reads and
// metric scrapes — the CI -race target proving the span arena, the
// trace ring and the stage-metrics sink are data-race free under
// production-shaped concurrency.
func TestTracedServerHammer(t *testing.T) {
	_, ndjson := zonedFleet(t, 60, 3)
	opts, _ := tracedOptions(Options{MaxInFlight: 64})
	srv, _ := newShardedTestServer(t, 2, opts, flex.WithWorkers(2), flex.WithSafe(true))

	if resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest: %s: %s", resp.Status, body)
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 4 {
				case 0:
					resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("ingest: %s: %s", resp.Status, body)
					}
				case 1:
					resp, body := post(t, srv.URL+"/v1/schedule?horizon=48&est=3", nil)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("schedule: %s: %s", resp.Status, body)
					}
				case 2:
					resp, _ := get(t, srv.URL+"/debug/traces?n=8")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("/debug/traces: %s", resp.Status)
					}
				case 3:
					resp, _ := get(t, srv.URL+"/metrics")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("/metrics: %s", resp.Status)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
