package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/shard"
)

// newWALServer starts an httptest server over a WAL-backed store in
// dir. The returned stop function shuts the server and store down (so
// the dir can be reopened), and is safe to call twice.
func newWALServer(t *testing.T, dir string, shards int, fs persist.FS) (*httptest.Server, func()) {
	t.Helper()
	se := flex.NewSharded(shards, flex.WithWorkers(2), flex.WithSafe(true))
	wal, err := persist.OpenWAL(persist.Options{
		Dir:    dir,
		Router: shard.Router{Shards: shards},
		FS:     fs,
	})
	if err != nil {
		se.Close()
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewSharded(se, Options{Store: wal}))
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		srv.Close()
		wal.Close()
		se.Close()
	}
	t.Cleanup(stop)
	return srv, stop
}

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestResetSurvivesRestart pins the satellite requirement end to end:
// DELETE /v1/offers on a WAL-backed server resets the persistence too,
// so a restart cannot resurrect deleted offers — and offers ingested
// after the delete do survive.
func TestResetSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ndjson := testFleet(t, 40)

	srv, stop := newWALServer(t, dir, 2, nil)
	if resp, _ := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	if resp := doDelete(t, srv.URL+"/v1/offers"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	_, after := testFleet(t, 5)
	if resp, _ := post(t, srv.URL+"/v1/offers", bytes.NewReader(after)); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-delete ingest: %d", resp.StatusCode)
	}
	stop()

	// Restart: only the five post-delete offers may exist.
	srv2, stop2 := newWALServer(t, dir, 2, nil)
	resp, body := get(t, srv2.URL+"/v1/offers")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"stored":5`) {
		t.Fatalf("after restart: %d %s, want stored 5", resp.StatusCode, body)
	}
	stop2()

	// And a restart under a different shard count still serves them:
	// the log carries the offers, not the layout.
	srv3, _ := newWALServer(t, dir, 4, nil)
	if _, body := get(t, srv3.URL+"/v1/offers"); !strings.Contains(string(body), `"stored":5`) {
		t.Fatalf("after resharded restart: %s, want stored 5", body)
	}
}

// TestServerDegradedReadOnly drives a WAL write failure through the
// HTTP surface: ingest and reset flip to 503 + Retry-After, reads and
// scheduling keep serving, and /healthz + /metrics report the state.
func TestServerDegradedReadOnly(t *testing.T) {
	ffs := &persist.FaultFS{Inner: persist.OS()}
	srv, _ := newWALServer(t, t.TempDir(), 2, ffs)
	_, ndjson := testFleet(t, 30)
	if resp, _ := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson)); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: %d", resp.StatusCode)
	}

	// The disk dies.
	ffs.FailWriteAt = 1
	ffs.FailSyncAt = 1

	_, more := testFleet(t, 3)
	resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(more))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on dead disk: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	if !strings.Contains(string(body), "read-only") {
		t.Fatalf("degraded body %q does not say read-only", body)
	}
	// Sticky: the next attempt is refused before the body is read.
	if resp, _ := post(t, srv.URL+"/v1/offers", bytes.NewReader(more)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second ingest: %d, want 503", resp.StatusCode)
	}
	if resp := doDelete(t, srv.URL+"/v1/offers"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reset on degraded store: %d, want 503", resp.StatusCode)
	}

	// Reads keep working off the intact in-memory state.
	if resp, body := post(t, srv.URL+"/v1/schedule", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule on degraded store: %d %s", resp.StatusCode, body)
	}
	if resp, body := get(t, srv.URL+"/v1/offers"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"stored":30`) {
		t.Fatalf("store size on degraded store: %d %s", resp.StatusCode, body)
	}
	if resp, body := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz: %d %s, want 200 + degraded", resp.StatusCode, body)
	}
	_, metrics := get(t, srv.URL+"/metrics")
	if !strings.Contains(string(metrics), "flexd_wal_degraded 1") {
		t.Fatal("metrics do not report flexd_wal_degraded 1")
	}
	if !strings.Contains(string(metrics), "flexd_degraded_rejects_total 3") {
		t.Fatalf("metrics rejects counter:\n%s", metrics)
	}
}

// TestScheduleBytesWALBacked pins that putting a WAL under the server
// does not perturb the serving bytes: the schedule body from a
// WAL-backed server — before and after a restart — is identical to the
// in-memory server's.
func TestScheduleBytesWALBacked(t *testing.T) {
	_, ndjson := testFleet(t, 40)
	dir := t.TempDir()

	memSE := flex.NewSharded(2, flex.WithWorkers(2), flex.WithSafe(true))
	defer memSE.Close()
	memSrv := httptest.NewServer(NewSharded(memSE, Options{}))
	defer memSrv.Close()
	post(t, memSrv.URL+"/v1/offers", bytes.NewReader(ndjson))
	_, want := post(t, memSrv.URL+"/v1/schedule", nil)

	srv, stop := newWALServer(t, dir, 2, nil)
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	_, live := post(t, srv.URL+"/v1/schedule", nil)
	if !bytes.Equal(live, want) {
		t.Fatal("WAL-backed schedule bytes diverge from in-memory server")
	}
	stop()

	srv2, _ := newWALServer(t, dir, 2, nil)
	_, replayed := post(t, srv2.URL+"/v1/schedule", nil)
	if !bytes.Equal(replayed, want) {
		t.Fatal("replayed schedule bytes diverge from in-memory server")
	}
}
