package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexmeasures/internal/buildinfo"
	"flexmeasures/internal/obs"
)

// Route indices for the request counters. Fixed at compile time so the
// hot path is an atomic add, not a map lookup under a lock.
const (
	routeOffers = iota
	routeAggregate
	routeSchedule
	routeMeasures
	routeHealthz
	routeMetrics
	routeDebug
	// routeOther is the shared label for every path outside the route
	// table — one bucket, so unknown URLs cannot mint unbounded label
	// values (see Server.ServeHTTP).
	routeOther
	numRoutes
)

// routeNames label the counters in /metrics output, indexed by the
// route constants.
var routeNames = [numRoutes]string{
	routeOffers:    "/v1/offers",
	routeAggregate: "/v1/aggregate",
	routeSchedule:  "/v1/schedule",
	routeMeasures:  "/v1/measures",
	routeHealthz:   "/healthz",
	routeMetrics:   "/metrics",
	routeDebug:     "/debug/traces",
	routeOther:     "other",
}

// metrics holds the server's counters and gauges. Everything is an
// atomic so handlers never serialize on instrumentation.
type metrics struct {
	requests      [numRoutes]atomic.Int64
	rejected      atomic.Int64
	inFlight      atomic.Int64
	ingestRecords atomic.Int64
	ingestBytes   atomic.Int64
	// degradedRejects counts mutations refused because the durable
	// store is degraded (the 503 read-only path).
	degradedRejects atomic.Int64
	// shardIngest[k] counts offers routed to shard k at ingest time
	// (sized to the engine's shard count in NewSharded).
	shardIngest []atomic.Int64
	// latency[route] maps status code (int) to that (route, code)
	// pair's latency histogram. A sync.Map because the code set is tiny
	// and write-once: after the first request per pair, observation is
	// one lock-free Load plus atomic adds.
	latency [numRoutes]sync.Map
}

// latencyBuckets are flexd_request_seconds' upper bounds in seconds:
// exponential-ish coverage from 500µs (a cheap in-memory ingest) to
// 60s (a stalled streamed schedule), matching the server's per-write
// timeout ceiling.
var latencyBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// latencyHist is one (route, status code) latency histogram: per-bucket
// counts (cumulated only at render time, so observation is a single
// atomic add), total count and summed nanoseconds. Everything atomic so
// the hot path never takes a lock.
type latencyHist struct {
	buckets [len(latencyBuckets) + 1]atomic.Int64 // last bucket is +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	i := sort.SearchFloat64s(latencyBuckets[:], d.Seconds())
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// observe records one finished request in its (route, code) histogram,
// creating the histogram on the pair's first request.
func (m *metrics) observe(route, code int, d time.Duration) {
	v, ok := m.latency[route].Load(code)
	if !ok {
		v, _ = m.latency[route].LoadOrStore(code, &latencyHist{})
	}
	v.(*latencyHist).observe(d)
}

// handleMetrics renders the counters in the Prometheus text exposition
// format (hand-rolled: the format is three line shapes, not worth a
// dependency).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	write := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	write("# HELP flexd_build_info Build metadata; the value is always 1.\n")
	write("# TYPE flexd_build_info gauge\n")
	write("flexd_build_info{version=%q,go_version=%q} 1\n", buildinfo.Version, runtime.Version())

	write("# HELP flexd_requests_total Requests served, by route.\n")
	write("# TYPE flexd_requests_total counter\n")
	for i, name := range routeNames {
		write("flexd_requests_total{path=%q} %d\n", name, s.m.requests[i].Load())
	}
	write("# HELP flexd_requests_rejected_total Requests rejected by the max-in-flight gate.\n")
	write("# TYPE flexd_requests_rejected_total counter\n")
	write("flexd_requests_rejected_total %d\n", s.m.rejected.Load())
	write("# HELP flexd_requests_in_flight Requests currently being served.\n")
	write("# TYPE flexd_requests_in_flight gauge\n")
	write("flexd_requests_in_flight %d\n", s.m.inFlight.Load())

	// Request latency histograms, one series set per (route, status
	// code) pair that has served at least one request. Client-side
	// percentiles (flexsim's report) can be compared against these
	// server-side ones to isolate network and queueing time.
	write("# HELP flexd_request_seconds Request latency in seconds, by route and status code.\n")
	write("# TYPE flexd_request_seconds histogram\n")
	for i, name := range routeNames {
		var codes []int
		s.m.latency[i].Range(func(k, _ any) bool {
			codes = append(codes, k.(int))
			return true
		})
		sort.Ints(codes)
		for _, code := range codes {
			v, _ := s.m.latency[i].Load(code)
			h := v.(*latencyHist)
			var cum int64
			for j, le := range latencyBuckets {
				cum += h.buckets[j].Load()
				write("flexd_request_seconds_bucket{path=%q,code=\"%d\",le=%q} %d\n",
					name, code, strconv.FormatFloat(le, 'g', -1, 64), cum)
			}
			cum += h.buckets[len(latencyBuckets)].Load()
			write("flexd_request_seconds_bucket{path=%q,code=\"%d\",le=\"+Inf\"} %d\n", name, code, cum)
			write("flexd_request_seconds_sum{path=%q,code=\"%d\"} %g\n", name, code, float64(h.sumNs.Load())/1e9)
			write("flexd_request_seconds_count{path=%q,code=\"%d\"} %d\n", name, code, h.count.Load())
		}
	}

	write("# HELP flexd_ingest_records_total Flex-offers ingested.\n")
	write("# TYPE flexd_ingest_records_total counter\n")
	write("flexd_ingest_records_total %d\n", s.m.ingestRecords.Load())
	write("# HELP flexd_ingest_bytes_total NDJSON bytes read by the ingest endpoint.\n")
	write("# TYPE flexd_ingest_bytes_total counter\n")
	write("flexd_ingest_bytes_total %d\n", s.m.ingestBytes.Load())

	workers, busy := s.se.PoolStats()
	write("# HELP flexd_pool_workers Size of the engine's persistent worker pool (summed across shards).\n")
	write("# TYPE flexd_pool_workers gauge\n")
	write("flexd_pool_workers %d\n", workers)
	write("# HELP flexd_pool_busy Pool workers currently executing a task (summed across shards).\n")
	write("# TYPE flexd_pool_busy gauge\n")
	write("flexd_pool_busy %d\n", busy)

	write("# HELP flexd_offers_stored Flex-offers in the store.\n")
	write("# TYPE flexd_offers_stored gauge\n")
	write("flexd_offers_stored %d\n", s.stores.Len())

	degraded := 0
	if s.stores.Err() != nil {
		degraded = 1
	}
	write("# HELP flexd_wal_degraded 1 when the durable store has failed and the server is read-only.\n")
	write("# TYPE flexd_wal_degraded gauge\n")
	write("flexd_wal_degraded %d\n", degraded)
	write("# HELP flexd_degraded_rejects_total Mutations refused because the store is degraded.\n")
	write("# TYPE flexd_degraded_rejects_total counter\n")
	write("flexd_degraded_rejects_total %d\n", s.m.degradedRejects.Load())

	// Per-shard breakdowns of the totals above, labeled by shard index.
	lens := s.stores.ShardLens()
	write("# HELP flexd_shard_offers_stored Flex-offers in the store, by engine shard.\n")
	write("# TYPE flexd_shard_offers_stored gauge\n")
	for k, n := range lens {
		write("flexd_shard_offers_stored{shard=\"%d\"} %d\n", k, n)
	}
	write("# HELP flexd_shard_ingest_records_total Flex-offers routed at ingest, by engine shard.\n")
	write("# TYPE flexd_shard_ingest_records_total counter\n")
	for k := range s.m.shardIngest {
		write("flexd_shard_ingest_records_total{shard=\"%d\"} %d\n", k, s.m.shardIngest[k].Load())
	}
	write("# HELP flexd_shard_pool_workers Size of one shard engine's worker pool.\n")
	write("# TYPE flexd_shard_pool_workers gauge\n")
	for k := 0; k < s.se.Shards(); k++ {
		w, _ := s.se.ShardPoolStats(k)
		write("flexd_shard_pool_workers{shard=\"%d\"} %d\n", k, w)
	}
	write("# HELP flexd_shard_pool_busy Pool workers currently executing a task, by engine shard.\n")
	write("# TYPE flexd_shard_pool_busy gauge\n")
	for k := 0; k < s.se.Shards(); k++ {
		_, b := s.se.ShardPoolStats(k)
		write("flexd_shard_pool_busy{shard=\"%d\"} %d\n", k, b)
	}

	// Pipeline stage latency from the tracer's metrics sink (empty —
	// HELP/TYPE lines only — until a traced request runs a stage).
	// Shard-scoped stages (the scatter-gather fan-out) carry a shard
	// label; request-scoped ones don't.
	series := s.obsM.Series()
	write("# HELP flexd_stage_seconds Pipeline stage latency in seconds, by stage (and engine shard for shard-scoped stages).\n")
	write("# TYPE flexd_stage_seconds histogram\n")
	for _, ss := range series {
		labels := fmt.Sprintf("stage=%q,", ss.Stage)
		if ss.Shard >= 0 {
			labels = fmt.Sprintf("stage=%q,shard=\"%d\",", ss.Stage, ss.Shard)
		}
		writeHistogram(write, "flexd_stage_seconds", labels, ss.Counts, ss.Sum, ss.Total)
	}

	// Dedicated views of the two stages operators alert on most, summed
	// across shards so a dashboard needs no label arithmetic.
	for _, v := range []struct{ name, stage, help string }{
		{"flexd_pool_queue_seconds", obs.StagePoolQueue,
			"Worker-pool task queue wait (enqueue to dequeue) in seconds, summed across shards."},
		{"flexd_wal_fsync_seconds", obs.StageWALFsync,
			"WAL fsync latency in seconds, request-path and background syncs combined."},
	} {
		counts := make([]int64, len(obs.StageBuckets)+1)
		var sum float64
		var total int64
		for _, ss := range series {
			if ss.Stage != v.stage {
				continue
			}
			for j, c := range ss.Counts {
				counts[j] += c
			}
			sum += ss.Sum
			total += ss.Total
		}
		write("# HELP %s %s\n", v.name, v.help)
		write("# TYPE %s histogram\n", v.name)
		writeHistogram(write, v.name, "", counts, sum, total)
	}

	write("# HELP flexd_offers_ingested_total Offers ingested by traced requests.\n")
	write("# TYPE flexd_offers_ingested_total counter\n")
	write("flexd_offers_ingested_total %d\n", s.obsM.Offers())
	write("# HELP flexd_groups_total Groups formed by traced pipeline runs.\n")
	write("# TYPE flexd_groups_total counter\n")
	write("flexd_groups_total %d\n", s.obsM.Groups())

	// Incremental-scheduling cache effectiveness. All zeros when the
	// engine runs without WithIncremental; the dirty/reused gauges
	// describe the most recent /v1/schedule run.
	st := s.se.IncrementalStats()
	write("# HELP flexd_sched_cache_hits_total Groups whose cached aggregate was reused across all schedule runs.\n")
	write("# TYPE flexd_sched_cache_hits_total counter\n")
	write("flexd_sched_cache_hits_total %d\n", st.Hits)
	write("# HELP flexd_sched_cache_misses_total Groups re-aggregated because their membership changed.\n")
	write("# TYPE flexd_sched_cache_misses_total counter\n")
	write("flexd_sched_cache_misses_total %d\n", st.Misses)
	write("# HELP flexd_sched_incremental_runs_total Schedule runs served by the incremental pipeline.\n")
	write("# TYPE flexd_sched_incremental_runs_total counter\n")
	write("flexd_sched_incremental_runs_total %d\n", st.Runs)
	write("# HELP flexd_sched_full_recompute_total Incremental runs that fell back to placing every group (cold cache, changed target, or dirty fraction over threshold).\n")
	write("# TYPE flexd_sched_full_recompute_total counter\n")
	write("flexd_sched_full_recompute_total %d\n", st.FullRuns)
	write("# HELP flexd_sched_dirty_groups Groups re-aggregated by the most recent schedule run.\n")
	write("# TYPE flexd_sched_dirty_groups gauge\n")
	write("flexd_sched_dirty_groups %d\n", st.LastDirty)
	write("# HELP flexd_sched_reused_placements Groups whose placement was replayed unchanged by the most recent schedule run.\n")
	write("# TYPE flexd_sched_reused_placements gauge\n")
	write("flexd_sched_reused_placements %d\n", st.LastReused)
	write("# HELP flexd_sched_pending_mutations Store mutations since the last successful schedule run.\n")
	write("# TYPE flexd_sched_pending_mutations gauge\n")
	write("flexd_sched_pending_mutations %d\n", s.tracker.Pending())
}

// writeHistogram renders one histogram series over the stage buckets
// from a non-cumulative bucket snapshot (see obs.Hist.Snapshot),
// cumulating at render time like the request histograms. labels is the
// rendered label prefix including its trailing comma, or empty.
func writeHistogram(write func(string, ...any), name, labels string, counts []int64, sum float64, total int64) {
	var cum int64
	for j, le := range obs.StageBuckets {
		cum += counts[j]
		write("%s_bucket{%sle=%q} %d\n", name, labels, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += counts[len(obs.StageBuckets)]
	write("%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		write("%s_sum %g\n", name, sum)
		write("%s_count %d\n", name, total)
		return
	}
	write("%s_sum{%s} %g\n", name, strings.TrimSuffix(labels, ","), sum)
	write("%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), total)
}
