// Package server exposes a flex.Engine over HTTP: the flexd service.
//
// The wire contract lives in this file and is shared with cmd/flexctl's
// -json output, which is what makes the acceptance criterion checkable
// at the byte level: the same inputs produce bit-identical bytes
// whether they flow through `flexctl schedule -pipeline -json` or
// through `POST /v1/schedule` — both render their results with
// BuildScheduleResponse + EncodeResponse.
package server

import (
	"encoding/json"
	"io"
	"math"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
)

// IngestResponse reports one POST /v1/offers call.
type IngestResponse struct {
	// Ingested is the number of records decoded by this request.
	Ingested int `json:"ingested"`
	// Replaced is how many of those records overwrote an already-stored
	// offer with the same ID (last write wins) — the per-prosumer
	// identity a re-submitting device relies on. Records without an ID
	// are always appended.
	Replaced int `json:"replaced"`
	// Stored is the store's total offer count after the request.
	Stored int `json:"stored"`
}

// StoreResponse reports the offer store's size (GET/DELETE /v1/offers).
type StoreResponse struct {
	Stored int `json:"stored"`
}

// AggregateInfo summarizes one aggregate of an aggregation run.
type AggregateInfo struct {
	// Constituents is the number of offers aggregated into this group.
	Constituents int `json:"constituents"`
	// Kind is the aggregate offer's kind (positive/negative/mixed).
	Kind string `json:"kind"`
	// TimeFlexibility is tf of the aggregate offer.
	TimeFlexibility int `json:"timeFlexibility"`
	// EnergyFlexibility is ef of the aggregate offer.
	EnergyFlexibility int64 `json:"energyFlexibility"`
	// Offer is the aggregate flex-offer itself.
	Offer *flexoffer.FlexOffer `json:"offer"`
}

// AggregateResponse is POST /v1/aggregate's result.
type AggregateResponse struct {
	// Offers is the number of input offers.
	Offers int `json:"offers"`
	// Groups is the number of aggregates produced.
	Groups int `json:"groups"`
	// Aggregates holds one entry per group, in group order.
	Aggregates []AggregateInfo `json:"aggregates"`
}

// BuildAggregateResponse renders an aggregation run in the wire shape.
func BuildAggregateResponse(nOffers int, ags []*flex.Aggregated) *AggregateResponse {
	resp := &AggregateResponse{
		Offers:     nOffers,
		Groups:     len(ags),
		Aggregates: make([]AggregateInfo, len(ags)),
	}
	for i, ag := range ags {
		resp.Aggregates[i] = AggregateInfo{
			Constituents:      len(ag.Constituents),
			Kind:              ag.Offer.Kind().String(),
			TimeFlexibility:   ag.Offer.TimeFlexibility(),
			EnergyFlexibility: ag.Offer.EnergyFlexibility(),
			Offer:             ag.Offer,
		}
	}
	return resp
}

// SeriesJSON is the wire shape of a time series.
type SeriesJSON struct {
	Start  int     `json:"start"`
	Values []int64 `json:"values"`
}

// ScheduleResponse is POST /v1/schedule's result: the paper's full
// Scenario-1 chain from stored offers to per-prosumer assignments.
type ScheduleResponse struct {
	// Offers is the number of input offers.
	Offers int `json:"offers"`
	// Aggregates is the number of aggregated groups scheduled.
	Aggregates int `json:"aggregates"`
	// Prosumers is the total number of constituent assignments.
	Prosumers int `json:"prosumers"`
	// Horizon is the scheduling horizon in time units.
	Horizon int `json:"horizon"`
	// TargetLevel is the flat per-slot target the schedule tracked.
	TargetLevel int64 `json:"targetLevel"`
	// Imbalance is the L1 distance between load and target.
	Imbalance float64 `json:"imbalance"`
	// PeakLoad is the maximum absolute load of the schedule.
	PeakLoad int64 `json:"peakLoad"`
	// Load is the slot-wise total load.
	Load SeriesJSON `json:"load"`
	// AggregateAssignments[i] instantiates aggregate i's offer.
	AggregateAssignments []flexoffer.Assignment `json:"aggregateAssignments"`
	// Disaggregated[i][j] is the assignment of aggregate i's
	// constituent j; slot-wise sums reproduce Load exactly.
	Disaggregated [][]flexoffer.Assignment `json:"disaggregated"`
}

// BuildScheduleResponse renders a pipeline run in the wire shape. It is
// the single rendering path for both the HTTP endpoint and flexctl's
// -json output.
func BuildScheduleResponse(nOffers int, res *flex.PipelineResult, target flex.Series, horizon int, level int64) *ScheduleResponse {
	prosumers := 0
	for _, parts := range res.Disaggregated {
		prosumers += len(parts)
	}
	return &ScheduleResponse{
		Offers:               nOffers,
		Aggregates:           len(res.Aggregates),
		Prosumers:            prosumers,
		Horizon:              horizon,
		TargetLevel:          level,
		Imbalance:            res.AggregateSchedule.Imbalance(target),
		PeakLoad:             res.AggregateSchedule.PeakLoad(),
		Load:                 SeriesJSON{Start: res.Load.Start, Values: res.Load.Values},
		AggregateAssignments: res.AggregateSchedule.Assignments,
		Disaggregated:        res.Disaggregated,
	}
}

// FlatTargetLevel resolves the flat per-slot target level the schedule
// endpoints and flexctl share: a non-negative level is used as-is, a
// negative one means "the fleet's expected energy averaged over the
// horizon".
func FlatTargetLevel(offers []*flexoffer.FlexOffer, horizon int, level int64) int64 {
	if level >= 0 {
		return level
	}
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	return expected / int64(horizon)
}

// FlatTargetLevelRouted is FlatTargetLevel over a routed (per-shard)
// snapshot. The expected-energy sum is commutative, so the result is
// identical to flattening the parts first — the shard count cannot
// change the resolved target.
func FlatTargetLevelRouted(parts [][]flex.RoutedOffer, horizon int, level int64) int64 {
	if level >= 0 {
		return level
	}
	var expected int64
	for _, part := range parts {
		for _, e := range part {
			expected += (e.Offer.TotalMin + e.Offer.TotalMax) / 2
		}
	}
	return expected / int64(horizon)
}

// scheduleHead mirrors ScheduleResponse minus the Disaggregated tail —
// the part of the response StreamScheduleResponse materializes up
// front. Field order and tags must stay in lockstep with
// ScheduleResponse: the streamed bytes are pinned byte-identical to
// EncodeResponse(BuildScheduleResponse(...)) by TestStreamScheduleResponse.
type scheduleHead struct {
	Offers               int                    `json:"offers"`
	Aggregates           int                    `json:"aggregates"`
	Prosumers            int                    `json:"prosumers"`
	Horizon              int                    `json:"horizon"`
	TargetLevel          int64                  `json:"targetLevel"`
	Imbalance            float64                `json:"imbalance"`
	PeakLoad             int64                  `json:"peakLoad"`
	Load                 SeriesJSON             `json:"load"`
	AggregateAssignments []flexoffer.Assignment `json:"aggregateAssignments"`
}

// StreamScheduleResponse writes resp incrementally: the head is one
// small marshal, then the disaggregated assignments — the bulk of a
// big fleet's response — are encoded and flushed group by group
// instead of being materialized as a single document. The bytes are
// exactly EncodeResponse(w, resp); only the peak memory differs.
func StreamScheduleResponse(w io.Writer, resp *ScheduleResponse) error {
	head, err := json.Marshal(&scheduleHead{
		Offers:               resp.Offers,
		Aggregates:           resp.Aggregates,
		Prosumers:            resp.Prosumers,
		Horizon:              resp.Horizon,
		TargetLevel:          resp.TargetLevel,
		Imbalance:            resp.Imbalance,
		PeakLoad:             resp.PeakLoad,
		Load:                 resp.Load,
		AggregateAssignments: resp.AggregateAssignments,
	})
	if err != nil {
		return err
	}
	// Drop the head's closing brace and splice in the tail field.
	if _, err := w.Write(head[:len(head)-1]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, `,"disaggregated":`); err != nil {
		return err
	}
	if resp.Disaggregated == nil {
		_, err := io.WriteString(w, "null}\n")
		return err
	}
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	f, _ := w.(interface{ Flush() })
	for i, group := range resp.Disaggregated {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		data, err := json.Marshal(group)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if f != nil {
			f.Flush()
		}
	}
	_, err = io.WriteString(w, "]}\n")
	return err
}

// JSONFloat is a float64 that marshals NaN and infinities as null —
// the measure table contains NaN for undefined cells, which plain
// encoding/json refuses to encode.
type JSONFloat float64

// MarshalJSON encodes non-finite values as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// MeasuresResponse is GET /v1/measures' result: the paper's eight
// measures over the stored offers, Table 1 column order, null where a
// measure is undefined for an offer.
type MeasuresResponse struct {
	// Names holds the measure names.
	Names []string `json:"names"`
	// Values[i][j] is measure j on offer i (null where undefined).
	Values [][]JSONFloat `json:"values"`
	// Set[j] is measure j's set-level value (null where undefined).
	Set []JSONFloat `json:"set"`
}

// BuildMeasuresResponse renders a measure table in the wire shape.
func BuildMeasuresResponse(t *flex.MeasureTable) *MeasuresResponse {
	resp := &MeasuresResponse{
		Names:  t.Names,
		Values: make([][]JSONFloat, len(t.Values)),
		Set:    make([]JSONFloat, len(t.Set)),
	}
	for i, row := range t.Values {
		out := make([]JSONFloat, len(row))
		for j, v := range row {
			out[j] = JSONFloat(v)
		}
		resp.Values[i] = out
	}
	for j, v := range t.Set {
		resp.Set[j] = JSONFloat(v)
	}
	return resp
}

// RecordErrorInfo is the wire shape of one failed ingest record.
type RecordErrorInfo struct {
	Record int    `json:"record"`
	Line   int    `json:"line"`
	Error  string `json:"error"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	// Error is the human-readable failure summary.
	Error string `json:"error"`
	// Records identifies the failing ingest records, when the failure
	// was per-record (absent otherwise).
	Records []RecordErrorInfo `json:"records,omitempty"`
}

// DecodeResponse reads one wire value as encoded by EncodeResponse —
// the client-side half, used by flexctl push.
func DecodeResponse(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// EncodeResponse writes v as one line of compact JSON — the single
// serialization path of every wire type, shared by the HTTP handlers
// and flexctl -json so their bytes can be compared directly.
func EncodeResponse(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
