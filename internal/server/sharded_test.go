package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// zonedFleet is testFleet with a skewed zone stamped on most offers
// (and some left zone-less and some anonymous), so shard routing
// exercises all three key paths: zone, ID hash, round-robin.
func zonedFleet(t *testing.T, n, zones int) ([]*flexoffer.FlexOffer, []byte) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	offers, err := workload.Population(rng, n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		if i%7 != 0 {
			f.ID = fmt.Sprintf("p-%04d", i)
		} else {
			f.ID = ""
		}
		if i%3 != 0 {
			f.Zone = fmt.Sprintf("z%02d", rng.Intn(zones))
		}
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		t.Fatal(err)
	}
	return offers, buf.Bytes()
}

// newShardedTestServer starts an httptest server around a fresh
// sharded engine.
func newShardedTestServer(t *testing.T, shards int, opts Options, engOpts ...flex.Option) (*httptest.Server, *Server) {
	t.Helper()
	se := flex.NewSharded(shards, engOpts...)
	s := NewSharded(se, opts)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		se.Close()
	})
	return srv, s
}

// TestShardedServerByteParity is the PR's acceptance criterion at the
// HTTP level: the same NDJSON fleet ingested into flexd with -shards
// 1, 2, 4 and 8 produces byte-identical /v1/schedule responses, all
// equal to the single-engine server and to the flexctl rendering path
// (BuildScheduleResponse + EncodeResponse over an engine pipeline).
func TestShardedServerByteParity(t *testing.T) {
	offers, ndjson := zonedFleet(t, 180, 5)
	const horizon, cap = 72, 55
	query := fmt.Sprintf("/v1/schedule?horizon=%d&cap=%d&est=3&max-group=24", horizon, cap)

	// The flexctl-equivalent reference bytes.
	ref := flex.New(flex.WithWorkers(1), flex.WithSafe(true))
	defer ref.Close()
	level := FlatTargetLevel(offers, horizon, -1)
	target := timeseries.Constant(0, horizon, level)
	res, err := ref.Pipeline(context.Background(), offers, target,
		flex.WithGrouping(flex.GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}),
		flex.WithPeakCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := EncodeResponse(&want, BuildScheduleResponse(len(offers), res, target, horizon, level)); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		srv, _ := newShardedTestServer(t, shards, Options{}, flex.WithWorkers(2), flex.WithSafe(true))
		resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: ingest: %s: %s", shards, resp.Status, body)
		}
		resp, body = post(t, srv.URL+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: schedule: %s: %s", shards, resp.Status, body)
		}
		if !bytes.Equal(body, want.Bytes()) {
			t.Errorf("shards=%d: /v1/schedule bytes differ from the single-engine reference (%d vs %d bytes)",
				shards, len(body), want.Len())
		}
	}
}

// TestStreamScheduleResponse pins the streaming encoder to the
// one-shot encoder byte for byte, including the nil and empty
// disaggregated edge cases — the contract that lets handleSchedule
// stream without changing the wire format.
func TestStreamScheduleResponse(t *testing.T) {
	offers, _ := zonedFleet(t, 120, 4)
	eng := flex.New(flex.WithWorkers(2), flex.WithSafe(true))
	defer eng.Close()
	const horizon = 48
	level := FlatTargetLevel(offers, horizon, -1)
	target := timeseries.Constant(0, horizon, level)
	res, err := eng.Pipeline(context.Background(), offers, target)
	if err != nil {
		t.Fatal(err)
	}
	resp := BuildScheduleResponse(len(offers), res, target, horizon, level)

	cases := map[string]*ScheduleResponse{
		"full":  resp,
		"nil":   {Offers: 1, Load: SeriesJSON{Values: []int64{}}},
		"empty": {Offers: 1, Load: SeriesJSON{Values: []int64{}}, Disaggregated: [][]flexoffer.Assignment{}},
	}
	for name, r := range cases {
		var oneShot, streamed bytes.Buffer
		if err := EncodeResponse(&oneShot, r); err != nil {
			t.Fatal(err)
		}
		if err := StreamScheduleResponse(&streamed, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oneShot.Bytes(), streamed.Bytes()) {
			t.Errorf("%s: streamed bytes differ from one-shot encoding:\n got  %s\n want %s",
				name, streamed.Bytes(), oneShot.Bytes())
		}
	}
}

// TestHealthzDraining pins the shutdown contract: MarkDraining flips
// /healthz to 503 while the data endpoints keep serving in-flight
// traffic.
func TestHealthzDraining(t *testing.T) {
	_, ndjson := zonedFleet(t, 30, 2)
	srv, s := newShardedTestServer(t, 2, Options{}, flex.WithWorkers(1))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %s: %s", resp.Status, body)
	}
	s.MarkDraining()
	resp, body = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz while draining: %s: %s, want 503 draining", resp.Status, body)
	}
	// Existing clients still get answers while the LB drains us.
	resp, _ = get(t, srv.URL+"/v1/offers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store size while draining: %s", resp.Status)
	}
}

// TestShardedMetricsLabels checks the per-shard metric series: the
// labeled gauges must be present for every shard and sum to the
// unlabeled totals.
func TestShardedMetricsLabels(t *testing.T) {
	_, ndjson := zonedFleet(t, 80, 4)
	srv, _ := newShardedTestServer(t, 4, Options{}, flex.WithWorkers(2))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	text := string(body)
	if !strings.Contains(text, "flexd_offers_stored 80") {
		t.Fatalf("metrics missing unlabeled total:\n%s", text)
	}
	for _, series := range []string{"flexd_shard_offers_stored", "flexd_shard_ingest_records_total", "flexd_shard_pool_workers", "flexd_shard_pool_busy"} {
		for shard := 0; shard < 4; shard++ {
			want := fmt.Sprintf(`%s{shard="%d"}`, series, shard)
			if !strings.Contains(text, want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	}
	// Per-shard stored counts sum to the total.
	sum := 0
	for _, line := range strings.Split(text, "\n") {
		var shard, n int
		if _, err := fmt.Sscanf(line, "flexd_shard_offers_stored{shard=\"%d\"} %d", &shard, &n); err == nil {
			sum += n
		}
	}
	if sum != 80 {
		t.Errorf("per-shard stored gauges sum to %d, want 80", sum)
	}
}

// TestShardedServerHammer drives one sharded server from 12 goroutines
// mixing ingest, schedule, aggregate and measures — the -race exercise
// for the HTTP layer over the shard store. Responses must always be
// well-formed (2xx or the documented 4xx), never torn.
func TestShardedServerHammer(t *testing.T) {
	srv, _ := newShardedTestServer(t, 4, Options{MaxInFlight: 64}, flex.WithWorkers(2), flex.WithSafe(true))
	record := func(g, i int) string {
		return fmt.Sprintf(`{"id":"g%d-p%d","zone":"z%d","earliestStart":%d,"latestStart":%d,"slices":[{"min":0,"max":4},{"min":1,"max":5}],"totalMin":1,"totalMax":9}`,
			g, i%15, i%5, i%30, i%30+3) + "\n"
	}
	const goroutines = 12
	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch it % 3 {
				case 0:
					var batch strings.Builder
					for i := 0; i < 6; i++ {
						batch.WriteString(record(g, it*6+i))
					}
					resp, body := post(t, srv.URL+"/v1/offers", strings.NewReader(batch.String()))
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("goroutine %d iter %d: ingest %s: %s", g, it, resp.Status, body)
						return
					}
				case 1:
					resp, body := post(t, srv.URL+"/v1/schedule?horizon=40", nil)
					switch resp.StatusCode {
					case http.StatusOK:
						var sr ScheduleResponse
						if err := json.Unmarshal(body, &sr); err != nil {
							errs <- fmt.Errorf("goroutine %d iter %d: torn schedule response: %w", g, it, err)
							return
						}
					case http.StatusBadRequest: // empty store is fine early on
					default:
						errs <- fmt.Errorf("goroutine %d iter %d: schedule %s: %s", g, it, resp.Status, body)
						return
					}
				case 2:
					resp, body := post(t, srv.URL+"/v1/aggregate", nil)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusBadRequest {
						errs <- fmt.Errorf("goroutine %d iter %d: aggregate %s: %s", g, it, resp.Status, body)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
