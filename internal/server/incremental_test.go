package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/workload"
)

// metricValue extracts an unlabeled metric's value from Prometheus
// exposition text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseInt(strings.TrimPrefix(line, name+" "), 10, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// incrementalFleet builds a fleet whose earliest starts sit in well-
// separated clusters (see clusteredFleet in the root package), so the
// grouping's EST-gap cuts bound the blast radius of a replacement to
// its own segment.
func incrementalFleet(t *testing.T, n, clusters, spacing int) ([]*flexoffer.FlexOffer, []byte) {
	t.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(47)), n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		f.ID = fmt.Sprintf("p-%04d", i)
		est := (i % clusters) * spacing
		f.LatestStart += est - f.EarliestStart
		f.EarliestStart = est
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		t.Fatal(err)
	}
	return offers, buf.Bytes()
}

// TestIncrementalScheduleMetrics is the acceptance criterion at the
// HTTP surface: after a ≤1% fleet delta, /v1/schedule re-places only
// the dirty groups, observable on /metrics as a small
// flexd_sched_dirty_groups against a larger
// flexd_sched_reused_placements, with cache hits accumulating and the
// pending-mutations gauge draining on each successful run.
func TestIncrementalScheduleMetrics(t *testing.T) {
	offers, ndjson := incrementalFleet(t, 400, 8, 12)
	srv, _ := newShardedTestServer(t, 4, Options{},
		flex.WithWorkers(2), flex.WithSafe(true), flex.WithIncremental(true))
	query := srv.URL + "/v1/schedule?horizon=120&est=2&max-group=16"

	resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	_, mb := get(t, srv.URL+"/metrics")
	if v := metricValue(t, string(mb), "flexd_sched_pending_mutations"); v != int64(len(offers)) {
		t.Errorf("pending mutations after ingest = %d, want %d", v, len(offers))
	}

	// Cold cache: the first run misses every group and places everything.
	if resp, body := post(t, query, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s: %s", resp.Status, body)
	}
	_, mb = get(t, srv.URL+"/metrics")
	text := string(mb)
	if v := metricValue(t, text, "flexd_sched_incremental_runs_total"); v != 1 {
		t.Errorf("runs after first schedule = %d, want 1", v)
	}
	if v := metricValue(t, text, "flexd_sched_full_recompute_total"); v != 1 {
		t.Errorf("cold run not counted as full recompute: %d", v)
	}
	if v := metricValue(t, text, "flexd_sched_pending_mutations"); v != 0 {
		t.Errorf("pending mutations after schedule = %d, want 0", v)
	}

	// Re-submit 3 offers (<1% of 400) under existing IDs, staying in
	// each replaced offer's EST cluster.
	repl, err := workload.Population(rand.New(rand.NewSource(53)), 3, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range repl {
		idx := 1 + 3*i
		f.ID = fmt.Sprintf("p-%04d", idx)
		est := (idx % 8) * 12
		f.LatestStart += est - f.EarliestStart
		f.EarliestStart = est
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, repl); err != nil {
		t.Fatal(err)
	}
	if resp, body := post(t, srv.URL+"/v1/offers", &buf); resp.StatusCode != http.StatusOK {
		t.Fatalf("delta ingest: %s: %s", resp.Status, body)
	}
	_, mb = get(t, srv.URL+"/metrics")
	if v := metricValue(t, string(mb), "flexd_sched_pending_mutations"); v != 3 {
		t.Errorf("pending mutations after delta = %d, want 3", v)
	}

	if resp, body := post(t, query, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("second schedule: %s: %s", resp.Status, body)
	}
	_, mb = get(t, srv.URL+"/metrics")
	text = string(mb)
	dirty := metricValue(t, text, "flexd_sched_dirty_groups")
	reused := metricValue(t, text, "flexd_sched_reused_placements")
	if hits := metricValue(t, text, "flexd_sched_cache_hits_total"); hits == 0 {
		t.Error("no cache hits after unchanged-majority delta")
	}
	if dirty == 0 {
		t.Error("delta run re-aggregated no groups — the 3 replacements must dirty their segments")
	}
	if reused == 0 || dirty >= reused {
		t.Errorf("delta run dirtied %d groups but replayed only %d — want re-placement O(changed groups)", dirty, reused)
	}
	if v := metricValue(t, text, "flexd_sched_full_recompute_total"); v != 1 {
		t.Errorf("delta run fell back to full recompute (total %d, want 1)", v)
	}

	// Reset drops the store and the cache; the next run is cold again.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/offers", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	_, mb = get(t, srv.URL+"/metrics")
	if v := metricValue(t, string(mb), "flexd_sched_pending_mutations"); v == 0 {
		t.Error("reset noted no mutation")
	}
}
