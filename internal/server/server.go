package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/ingest"
	"flexmeasures/internal/timeseries"
)

// Options configures a Server.
type Options struct {
	// MaxInFlight gates the expensive endpoints (ingest, aggregate,
	// schedule, measures): at most this many such requests run
	// concurrently, and excess requests are rejected immediately with
	// 429 so a traffic spike degrades into fast rejections instead of
	// an unbounded pile-up on the pool. Values below 1 pick 4× the
	// engine's worker count.
	MaxInFlight int
	// MaxBodyBytes caps an ingest request's body. Values below 1 pick
	// 1 GiB.
	MaxBodyBytes int64
	// IngestBlockBytes is the sharded decoder's block size (see
	// ingest.Params.BlockBytes). Values below 1 pick the decoder's
	// default. Blocks are also the ingest backpressure unit: a request
	// body is read only as fast as blocks are decoded.
	IngestBlockBytes int
}

// Server is the flexd HTTP service: a long-lived flex.Engine, an
// in-memory offer store fed by sharded NDJSON ingest, and the paper's
// aggregate/schedule/measure operations as endpoints. It implements
// http.Handler; create one with New.
//
// Routes:
//
//	POST   /v1/offers     NDJSON ingest (sharded decode, ID dedup, ?mode=collect)
//	GET    /v1/offers     store size
//	DELETE /v1/offers     reset the store
//	POST   /v1/aggregate  aggregate stored offers (?est,tft,max-group,mode)
//	POST   /v1/schedule   full pipeline (?horizon,target,cap,est,tft,max-group)
//	GET    /v1/measures   the paper's eight measures (?norm=l1|l2|linf)
//	GET    /healthz       liveness
//	GET    /metrics       Prometheus text metrics
type Server struct {
	eng  *flex.Engine
	opts Options
	gate chan struct{}
	m    metrics

	mu     sync.RWMutex
	offers []*flexoffer.FlexOffer
	// index maps a non-empty offer ID to its position in offers, the
	// per-prosumer identity behind ingest's last-write-wins dedup.
	index map[string]int

	mux *http.ServeMux
}

// New returns a Server serving eng. The engine is borrowed, not owned:
// Close it yourself after the HTTP server shuts down.
func New(eng *flex.Engine, opts Options) *Server {
	if opts.MaxInFlight < 1 {
		workers, _ := eng.PoolStats()
		opts.MaxInFlight = 4 * workers
	}
	if opts.MaxBodyBytes < 1 {
		opts.MaxBodyBytes = 1 << 30
	}
	s := &Server{
		eng:   eng,
		opts:  opts,
		gate:  make(chan struct{}, opts.MaxInFlight),
		index: make(map[string]int),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/offers", s.route(routeOffers, s.gated(s.handleIngest)))
	s.mux.HandleFunc("GET /v1/offers", s.route(routeOffers, s.handleStoreSize))
	s.mux.HandleFunc("DELETE /v1/offers", s.route(routeOffers, s.handleReset))
	s.mux.HandleFunc("POST /v1/aggregate", s.route(routeAggregate, s.gated(s.handleAggregate)))
	s.mux.HandleFunc("POST /v1/schedule", s.route(routeSchedule, s.gated(s.handleSchedule)))
	s.mux.HandleFunc("GET /v1/measures", s.route(routeMeasures, s.gated(s.handleMeasures)))
	s.mux.HandleFunc("GET /healthz", s.route(routeHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route(routeMetrics, s.handleMetrics))
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// route wraps a handler with its request counter.
func (s *Server) route(idx int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests[idx].Add(1)
		h(w, r)
	}
}

// gated wraps a handler with the max-in-flight gate: acquisition never
// blocks, so under overload the server answers 429 immediately instead
// of queueing work it cannot start.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
			h(w, r)
		default:
			s.m.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server busy: %d requests in flight", s.opts.MaxInFlight), nil)
		}
	}
}

// snapshot returns the stored offers. A returned slice is immutable:
// the store only appends, and an ingest that replaces offers by ID
// clones the slice before writing (see store), so concurrent readers
// never observe a mutation.
func (s *Server) snapshot() []*flexoffer.FlexOffer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.offers
}

// store merges decoded offers into the store: an offer whose non-empty
// ID is already present replaces the stored one in place (last write
// wins — a prosumer re-submitting its flex-offer updates it instead of
// double-counting), everything else is appended. When any replacement
// targets the pre-existing region the slice is cloned first, keeping
// previously returned snapshots immutable. It reports how many records
// replaced an existing offer and the store's size afterwards.
func (s *Server) store(offers []*flexoffer.FlexOffer) (replaced, stored int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	clone := false
	for _, f := range offers {
		if f.ID == "" {
			continue
		}
		if _, ok := s.index[f.ID]; ok {
			clone = true
			break
		}
	}
	if clone {
		s.offers = append([]*flexoffer.FlexOffer(nil), s.offers...)
	}
	for _, f := range offers {
		if f.ID != "" {
			if i, ok := s.index[f.ID]; ok {
				s.offers[i] = f
				replaced++
				continue
			}
			s.index[f.ID] = len(s.offers)
		}
		s.offers = append(s.offers, f)
	}
	return replaced, len(s.offers)
}

// handleIngest streams NDJSON offers from the request body through the
// sharded decoder into the store. The body is consumed block by block —
// decode speed is the read speed, which is the backpressure a slow
// pool exerts on the client's connection. Offers are deduplicated by ID
// (last write wins; see store), with the replacement count reported in
// the response. ?mode=collect switches to collect-all error reporting;
// any record failure rejects the whole request, so a 2xx means every
// record was stored.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	mode, err := modeFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)}
	offers, err := ingest.DecodeNDJSON(r.Context(), body, ingest.Params{
		ErrorMode:  mode,
		Pool:       s.eng.Executor(),
		BlockBytes: s.opts.IngestBlockBytes,
	})
	s.m.ingestBytes.Add(body.n)
	if err != nil {
		var (
			re  *ingest.RecordError
			res ingest.RecordErrors
			mbe *http.MaxBytesError
		)
		switch {
		case errors.As(err, &mbe):
			writeError(w, http.StatusRequestEntityTooLarge, err.Error(), nil)
		case errors.As(err, &res):
			writeError(w, http.StatusBadRequest, err.Error(), recordInfos(res))
		case errors.As(err, &re):
			writeError(w, http.StatusBadRequest, err.Error(), recordInfos(ingest.RecordErrors{re}))
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; nothing useful to write.
		default:
			writeError(w, http.StatusBadRequest, err.Error(), nil)
		}
		return
	}
	replaced, stored := s.store(offers)
	s.m.ingestRecords.Add(int64(len(offers)))
	writeJSON(w, http.StatusOK, &IngestResponse{Ingested: len(offers), Replaced: replaced, Stored: stored})
}

func recordInfos(res ingest.RecordErrors) []RecordErrorInfo {
	out := make([]RecordErrorInfo, len(res))
	for i, e := range res {
		out[i] = RecordErrorInfo{Record: e.Record, Line: e.Line, Error: e.Err.Error()}
	}
	return out
}

func (s *Server) handleStoreSize(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StoreResponse{Stored: len(s.snapshot())})
}

func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.offers = nil
	s.index = make(map[string]int)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, &StoreResponse{Stored: 0})
}

// modeFromQuery parses the ?mode parameter the ingest and aggregate
// endpoints share (one helper, so the two cannot validate it
// differently).
func modeFromQuery(r *http.Request) (flex.ErrorMode, error) {
	switch r.URL.Query().Get("mode") {
	case "", "first":
		return flex.FirstError, nil
	case "collect":
		return flex.CollectAll, nil
	default:
		return 0, errors.New(`mode must be "first" or "collect"`)
	}
}

// groupingFromQuery builds per-call grouping options from the request,
// with the same defaults as flexctl (est=2, tft=-1, max-group=0) so the
// two fronts cannot drift apart.
func groupingFromQuery(r *http.Request) (flex.GroupParams, error) {
	est, err := qInt(r, "est", 2)
	if err != nil {
		return flex.GroupParams{}, err
	}
	tft, err := qInt(r, "tft", -1)
	if err != nil {
		return flex.GroupParams{}, err
	}
	size, err := qInt(r, "max-group", 0)
	if err != nil {
		return flex.GroupParams{}, err
	}
	return flex.GroupParams{ESTTolerance: est, TFTolerance: tft, MaxGroupSize: size}, nil
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	gp, err := groupingFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	mode, err := modeFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	opts := []flex.Option{flex.WithGrouping(gp), flex.WithErrorMode(mode)}
	offers := s.snapshot()
	if len(offers) == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	ags, err := s.eng.Aggregate(r.Context(), offers, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, BuildAggregateResponse(len(offers), ags))
}

// handleSchedule runs the full Scenario-1 chain — aggregate → schedule
// → disaggregate — over the stored offers, streaming on the engine's
// pool, and returns the schedule plus the per-prosumer assignments.
// The response is byte-identical to `flexctl schedule -pipeline -json`
// on the same offers and parameters.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	horizon, err := qInt(r, "horizon", 48)
	if err == nil && horizon < 1 {
		err = fmt.Errorf("horizon must be positive, got %d", horizon)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	level, err := qInt64(r, "target", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	gp, err := groupingFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	opts := []flex.Option{flex.WithGrouping(gp)}
	if r.URL.Query().Has("cap") {
		cap, err := qInt64(r, "cap", 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), nil)
			return
		}
		opts = append(opts, flex.WithPeakCap(cap))
	}
	offers := s.snapshot()
	if len(offers) == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	level = FlatTargetLevel(offers, horizon, level)
	target := timeseries.Constant(0, horizon, level)
	res, err := s.eng.Pipeline(r.Context(), offers, target, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, BuildScheduleResponse(len(offers), res, target, horizon, level))
}

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	var opts []flex.Option
	switch r.URL.Query().Get("norm") {
	case "", "l1":
	case "l2":
		opts = append(opts, flex.WithNorm(flex.L2))
	case "linf":
		opts = append(opts, flex.WithNorm(flex.LInf))
	default:
		writeError(w, http.StatusBadRequest, `norm must be "l1", "l2" or "linf"`, nil)
		return
	}
	offers := s.snapshot()
	if len(offers) == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	tab, err := s.eng.Measures(r.Context(), offers, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, BuildMeasuresResponse(tab))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "stored": len(s.snapshot())})
}

// qInt parses an optional integer query parameter.
func qInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", key, err)
	}
	return n, nil
}

// qInt64 parses an optional 64-bit integer query parameter.
func qInt64(r *http.Request, key string, def int64) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", key, err)
	}
	return n, nil
}

// writeJSON writes a 2xx wire value through the shared encoder.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = EncodeResponse(w, v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, msg string, records []RecordErrorInfo) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = EncodeResponse(w, &ErrorResponse{Error: msg, Records: records})
}

// countingReader counts bytes for the ingest throughput metrics.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
