package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/inc"
	"flexmeasures/internal/ingest"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/shard"
	"flexmeasures/internal/timeseries"
)

// Options configures a Server.
type Options struct {
	// MaxInFlight gates the expensive endpoints (ingest, aggregate,
	// schedule, measures): at most this many such requests run
	// concurrently, and excess requests are rejected immediately with
	// 429 so a traffic spike degrades into fast rejections instead of
	// an unbounded pile-up on the pools. Values below 1 pick 4× the
	// engine's total worker count (summed across shards).
	MaxInFlight int
	// MaxBodyBytes caps an ingest request's body. Values below 1 pick
	// 1 GiB.
	MaxBodyBytes int64
	// IngestBlockBytes is the sharded decoder's block size (see
	// ingest.Params.BlockBytes). Values below 1 pick the decoder's
	// default. Blocks are also the ingest backpressure unit: a request
	// body is read only as fast as blocks are decoded.
	IngestBlockBytes int
	// Store is the offer store behind the ingest endpoints. nil means a
	// fresh in-memory store; flexd -data-dir injects the WAL-backed one.
	// Its shard count must match the engine's. The store is borrowed,
	// not owned: Close it yourself after the HTTP server shuts down.
	Store persist.Store
	// StreamWriteTimeout, when positive, pushes the connection's write
	// deadline this far into the future before every response write on
	// the gated endpoints. http.Server.WriteTimeout starts when the
	// request headers arrive, so alone it would cut off a streamed
	// /v1/schedule body mid-flight — or kill the response of a slow
	// ingest upload or long computation. The per-write extension turns
	// it into a stall bound instead: any response that keeps moving is
	// safe regardless of size or how long the handler ran first.
	StreamWriteTimeout time.Duration
	// Tracer, when non-nil, enables per-request pipeline tracing: every
	// API request gets a trace (ID taken from X-Request-Id/traceparent
	// or generated) whose stage spans surface on GET /debug/traces and
	// in the flexd_stage_seconds metric families. nil disables tracing —
	// the pipeline's obs calls then cost one nil check each.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured line per API
	// request: trace ID, method, path, status, duration and the
	// offer/group counts the request touched. /metrics and /healthz log
	// at Debug so a scraper doesn't drown the stream.
	Logger *slog.Logger
	// SlowRequest, when positive, promotes the log line of any request
	// at least this slow to WARN with the full span tree inlined — the
	// "why was that one slow" answer without leaving the log stream.
	SlowRequest time.Duration
}

// Server is the flexd HTTP service: a long-lived sharded engine, N
// copy-on-write offer stores fed by sharded NDJSON ingest and routed
// by the shard router (zone → ID hash → round-robin), and the paper's
// aggregate/schedule/measure operations as scatter-gather endpoints.
// It implements http.Handler; create one with New (single engine) or
// NewSharded.
//
// Routes:
//
//	POST   /v1/offers     NDJSON ingest (sharded decode, ID dedup, shard routing, ?mode=collect)
//	GET    /v1/offers     store size
//	DELETE /v1/offers     reset the store
//	POST   /v1/aggregate  aggregate stored offers (?est,tft,max-group,mode)
//	POST   /v1/schedule   full pipeline, streamed response (?horizon,target,cap,est,tft,max-group)
//	GET    /v1/measures   the paper's eight measures (?norm=l1|l2|linf)
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       Prometheus text metrics (per-shard labels)
//
// The schedule response bytes are independent of the shard count: the
// scatter-gather pipeline is bit-identical to a single engine, so
// `-shards 8` and `-shards 1` — and `flexctl schedule -pipeline -json`
// — produce the same body for the same stored offers.
type Server struct {
	se   *flex.ShardedEngine
	opts Options
	gate chan struct{}
	m    metrics

	// stores is the offer store behind ingest; its shard count mirrors
	// the engine's so snapshots feed the Routed endpoints directly.
	// Behind the persist.Store seam it is either purely in-memory or
	// WAL-backed — the handlers cannot tell, except that a degraded
	// durable store refuses mutations (the read-only path below).
	stores persist.Store

	// draining flips when the process is shutting down: /healthz turns
	// 503 so load balancers stop routing here while in-flight requests
	// finish.
	draining atomic.Bool

	// tracker counts store mutations against the last schedule run —
	// the dirty tracker behind flexd_sched_pending_mutations. Ingest
	// and reset feed it; a successful schedule marks it absorbed.
	tracker inc.Tracker

	// tracer/logger are the observability hooks from Options; obsM is
	// the stage-metrics sink — the tracer's when one is installed, a
	// fresh empty one otherwise, so /metrics always renders the stage
	// families (with zero samples) and never nil-checks.
	tracer *obs.Tracer
	logger *slog.Logger
	obsM   *obs.Metrics

	// known holds the registered route paths. ServeHTTP normalises any
	// other path to the shared "other" metrics label before 404ing, so
	// a scanner walking random URLs cannot mint unbounded label values.
	known map[string]bool

	mux *http.ServeMux
}

// New returns a Server serving a single engine — the one-shard special
// case of NewSharded. The engine is borrowed, not owned: Close it
// yourself after the HTTP server shuts down.
func New(eng *flex.Engine, opts Options) *Server {
	return NewSharded(flex.NewShardedFrom(eng), opts)
}

// NewSharded returns a Server serving a sharded engine: ingest routes
// offers across per-shard stores and /v1/schedule runs scatter-gather
// over them. The engine is borrowed, not owned: Close it yourself
// after the HTTP server shuts down.
func NewSharded(se *flex.ShardedEngine, opts Options) *Server {
	if opts.MaxInFlight < 1 {
		workers, _ := se.PoolStats()
		opts.MaxInFlight = 4 * workers
	}
	if opts.MaxBodyBytes < 1 {
		opts.MaxBodyBytes = 1 << 30
	}
	if opts.Store == nil {
		opts.Store = persist.NewMemory(shard.Router{Shards: se.Shards()})
	}
	if opts.Store.Shards() != se.Shards() {
		panic(fmt.Sprintf("server: store has %d shards, engine has %d",
			opts.Store.Shards(), se.Shards()))
	}
	s := &Server{
		se:     se,
		opts:   opts,
		gate:   make(chan struct{}, opts.MaxInFlight),
		stores: opts.Store,
		tracer: opts.Tracer,
		logger: opts.Logger,
		obsM:   opts.Tracer.Metrics(),
		mux:    http.NewServeMux(),
	}
	if s.obsM == nil {
		s.obsM = obs.NewMetrics()
	}
	s.m.shardIngest = make([]atomic.Int64, se.Shards())
	s.mux.HandleFunc("POST /v1/offers", s.route(routeOffers, s.gated(s.handleIngest)))
	s.mux.HandleFunc("GET /v1/offers", s.route(routeOffers, s.handleStoreSize))
	s.mux.HandleFunc("DELETE /v1/offers", s.route(routeOffers, s.handleReset))
	s.mux.HandleFunc("POST /v1/aggregate", s.route(routeAggregate, s.gated(s.handleAggregate)))
	s.mux.HandleFunc("POST /v1/schedule", s.route(routeSchedule, s.gated(s.handleSchedule)))
	s.mux.HandleFunc("GET /v1/measures", s.route(routeMeasures, s.gated(s.handleMeasures)))
	s.mux.HandleFunc("GET /healthz", s.route(routeHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route(routeMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /debug/traces", s.route(routeDebug, s.handleDebugTraces))
	s.known = make(map[string]bool, numRoutes)
	for i, name := range routeNames {
		if i != routeOther {
			s.known[name] = true
		}
	}
	return s
}

// MarkDraining flips /healthz to 503 — flexd calls this on SIGTERM so
// load balancers drain the instance while http.Server.Shutdown lets
// in-flight requests finish. Idempotent; there is no way back.
func (s *Server) MarkDraining() { s.draining.Store(true) }

// ServeHTTP dispatches to the route table. Paths outside it short-
// circuit to a 404 counted under the shared "other" label, so a
// scanner walking random URLs cannot mint unbounded metric labels;
// known paths go through the mux, which keeps its 405 behavior for
// wrong-method requests.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.m.inFlight.Add(1)
	defer s.m.inFlight.Add(-1)
	if !s.known[r.URL.Path] {
		s.route(routeOther, s.handleNotFound)(w, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "not found", nil)
}

// route wraps a handler with its request counter, latency histogram
// and — for the API routes — the request trace: the handler runs
// against a status-capturing writer with the trace in its context, the
// elapsed time lands in the (route, status code) histogram, the trace
// finishes into the tracer's ring, and the request logs one structured
// line.
func (s *Server) route(idx int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests[idx].Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var tr *obs.Trace
		if s.tracer != nil && tracedRoute(idx) {
			tr = s.tracer.Start(requestID(r))
			r = r.WithContext(obs.NewContext(r.Context(), tr))
			// Echo the ID before the handler writes the header, so
			// the caller can correlate even a failed response with
			// /debug/traces and the server log.
			sw.Header().Set("X-Request-Id", tr.ID())
		}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		s.m.observe(idx, sw.code, d)
		var td obs.TraceData
		if tr != nil {
			td = tr.Finish()
		}
		s.logRequest(r, idx, sw.code, d, tr != nil, td)
	}
}

// tracedRoute reports whether a route's requests get traces. The
// observability endpoints themselves don't: a scraper polling /metrics
// every few seconds would evict every interesting trace from the ring.
func tracedRoute(idx int) bool {
	switch idx {
	case routeMetrics, routeHealthz, routeDebug, routeOther:
		return false
	}
	return true
}

// requestID extracts the caller-supplied request ID: X-Request-Id
// verbatim, else the trace-id field of a W3C traceparent header, else
// empty (the tracer then generates one).
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	if tp := r.Header.Get("traceparent"); tp != "" {
		// version-traceid-parentid-flags; keep just the trace ID.
		if i := strings.IndexByte(tp, '-'); i >= 0 {
			rest := tp[i+1:]
			if j := strings.IndexByte(rest, '-'); j > 0 {
				return rest[:j]
			}
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// logRequest emits the per-request structured log line. The
// observability endpoints log at Debug so a scraper doesn't drown the
// stream; a traced request at least SlowRequest slow logs at WARN with
// the span tree inlined.
func (s *Server) logRequest(r *http.Request, idx, code int, d time.Duration, traced bool, td obs.TraceData) {
	if s.logger == nil {
		return
	}
	attrs := []any{
		slog.String("method", r.Method),
		slog.String("path", routeNames[idx]),
		slog.Int("status", code),
		slog.Duration("duration", d),
	}
	if traced {
		attrs = append(attrs,
			slog.String("trace_id", td.ID),
			slog.Int64("offers", td.Offers),
			slog.Int64("groups", td.Groups),
		)
	}
	switch {
	case idx == routeMetrics || idx == routeHealthz || idx == routeDebug:
		s.logger.Debug("request", attrs...)
	case traced && s.opts.SlowRequest > 0 && d >= s.opts.SlowRequest:
		attrs = append(attrs, slog.String("spans", td.Tree()))
		s.logger.Warn("slow request", attrs...)
	default:
		s.logger.Info("request", attrs...)
	}
}

// handleDebugTraces serves the tracer's retained traces, newest first,
// as a JSON array. ?n caps the count; without a tracer the ring is
// just empty.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	n, err := qInt(r, "n", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	tds := s.tracer.Last(n)
	if tds == nil {
		tds = []obs.TraceData{}
	}
	writeJSON(w, http.StatusOK, tds)
}

// statusWriter records the response status code for the latency
// histogram labels. It forwards Flush (the streamed /v1/schedule body
// flushes per group) and exposes Unwrap so http.ResponseController can
// reach the connection underneath.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(interface{ Flush() }); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// gated wraps a handler with the max-in-flight gate: acquisition never
// blocks, so under overload the server answers 429 immediately instead
// of queueing work it cannot start.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
			if s.opts.StreamWriteTimeout > 0 {
				w = &deadlineWriter{ResponseWriter: w, rc: http.NewResponseController(w), d: s.opts.StreamWriteTimeout}
			}
			h(w, r)
		default:
			s.m.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server busy: %d requests in flight", s.opts.MaxInFlight), nil)
		}
	}
}

// snapshot returns the stored offers flattened back into global ingest
// order — the view a single unsharded store would hold. Kept for unit
// tests and the single-store mental model; the handlers consume the
// routed snapshot directly.
func (s *Server) snapshot() []*flexoffer.FlexOffer {
	return shard.Flatten(s.stores.Snapshot())
}

// store merges decoded offers into the sharded store (see
// shard.Stores.Add for the routing and last-write-wins dedup rules),
// recording per-shard routing counts in the metrics. It reports how
// many records replaced an existing offer and the store's total size
// afterwards. A non-nil error means the durable layer refused the
// batch and nothing was applied.
func (s *Server) store(ctx context.Context, offers []*flexoffer.FlexOffer) (replaced, stored int, err error) {
	muts, stored, err := s.stores.Add(ctx, offers)
	if err != nil {
		return 0, stored, err
	}
	var routed []int
	replaced, routed = shard.Summarize(muts, s.se.Shards())
	for k, c := range routed {
		if c > 0 {
			s.m.shardIngest[k].Add(int64(c))
		}
	}
	s.tracker.Note(len(muts))
	return replaced, stored, nil
}

// degraded reports whether the store's durable layer has failed. The
// server then serves read-only: ingest and reset answer 503 with a
// Retry-After so clients back off (and flexctl push retries elsewhere),
// while schedule/aggregate/measures keep working off the intact
// in-memory snapshot.
func (s *Server) degraded() bool { return s.stores.Err() != nil }

// writeDegraded answers a mutation attempt on a degraded store.
func (s *Server) writeDegraded(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "30")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("store is read-only (degraded): %v", err), nil)
}

// routedSnapshot returns the per-shard snapshot plus the total offer
// count (summed from the snapshot itself, so the two cannot be torn
// apart by a concurrent ingest).
func (s *Server) routedSnapshot() ([][]flex.RoutedOffer, int) {
	parts := s.stores.Snapshot()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	return parts, total
}

// handleIngest streams NDJSON offers from the request body through the
// sharded decoder into the store. The body is consumed block by block —
// decode speed is the read speed, which is the backpressure a slow
// pool exerts on the client's connection. Offers are deduplicated by ID
// (last write wins; see shard.Stores.Add), routed to their shard by
// zone/ID, and the replacement count reported in the response.
// ?mode=collect switches to collect-all error reporting; any record
// failure rejects the whole request, so a 2xx means every record was
// stored.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if err := s.stores.Err(); err != nil {
		// Refuse before reading the body: a degraded store cannot
		// accept the batch, so don't make the client upload it first.
		s.m.degradedRejects.Add(1)
		s.writeDegraded(w, err)
		return
	}
	mode, err := modeFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)}
	offers, err := ingest.DecodeNDJSON(r.Context(), body, ingest.Params{
		ErrorMode:  mode,
		Pool:       s.se.Executor(),
		BlockBytes: s.opts.IngestBlockBytes,
	})
	s.m.ingestBytes.Add(body.n)
	if err != nil {
		var (
			re  *ingest.RecordError
			res ingest.RecordErrors
			mbe *http.MaxBytesError
		)
		switch {
		case errors.As(err, &mbe):
			writeError(w, http.StatusRequestEntityTooLarge, err.Error(), nil)
		case errors.As(err, &res):
			writeError(w, http.StatusBadRequest, err.Error(), recordInfos(res))
		case errors.As(err, &re):
			writeError(w, http.StatusBadRequest, err.Error(), recordInfos(ingest.RecordErrors{re}))
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; nothing useful to write.
		default:
			writeError(w, http.StatusBadRequest, err.Error(), nil)
		}
		return
	}
	replaced, stored, err := s.store(r.Context(), offers)
	if err != nil {
		s.m.degradedRejects.Add(1)
		s.writeDegraded(w, err)
		return
	}
	s.m.ingestRecords.Add(int64(len(offers)))
	obs.AddOffers(r.Context(), len(offers))
	writeJSON(w, http.StatusOK, &IngestResponse{Ingested: len(offers), Replaced: replaced, Stored: stored})
}

func recordInfos(res ingest.RecordErrors) []RecordErrorInfo {
	out := make([]RecordErrorInfo, len(res))
	for i, e := range res {
		out[i] = RecordErrorInfo{Record: e.Record, Line: e.Line, Error: e.Err.Error()}
	}
	return out
}

func (s *Server) handleStoreSize(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StoreResponse{Stored: s.stores.Len()})
}

// handleReset empties the store. For a WAL-backed store this is
// durable — the log is rewritten so deleted offers cannot resurrect on
// the next boot (see WALStore.Reset).
func (s *Server) handleReset(w http.ResponseWriter, r *http.Request) {
	if err := s.stores.Reset(r.Context()); err != nil {
		s.m.degradedRejects.Add(1)
		s.writeDegraded(w, err)
		return
	}
	// Drop the incremental-scheduling cache with the offers it indexed.
	// Content addressing would age it out anyway (a reset store hands
	// out fresh pointers); invalidating releases the memory now.
	s.se.InvalidateIncremental()
	s.tracker.Note(1)
	writeJSON(w, http.StatusOK, &StoreResponse{Stored: 0})
}

// modeFromQuery parses the ?mode parameter the ingest and aggregate
// endpoints share (one helper, so the two cannot validate it
// differently).
func modeFromQuery(r *http.Request) (flex.ErrorMode, error) {
	switch r.URL.Query().Get("mode") {
	case "", "first":
		return flex.FirstError, nil
	case "collect":
		return flex.CollectAll, nil
	default:
		return 0, errors.New(`mode must be "first" or "collect"`)
	}
}

// groupingFromQuery builds per-call grouping options from the request,
// with the same defaults as flexctl (est=2, tft=-1, max-group=0) so the
// two fronts cannot drift apart.
func groupingFromQuery(r *http.Request) (flex.GroupParams, error) {
	est, err := qInt(r, "est", 2)
	if err != nil {
		return flex.GroupParams{}, err
	}
	tft, err := qInt(r, "tft", -1)
	if err != nil {
		return flex.GroupParams{}, err
	}
	size, err := qInt(r, "max-group", 0)
	if err != nil {
		return flex.GroupParams{}, err
	}
	return flex.GroupParams{ESTTolerance: est, TFTolerance: tft, MaxGroupSize: size}, nil
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	gp, err := groupingFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	mode, err := modeFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	opts := []flex.Option{flex.WithGrouping(gp), flex.WithErrorMode(mode)}
	parts, total := s.routedSnapshot()
	if total == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	ags, err := s.se.AggregateRouted(r.Context(), parts, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, BuildAggregateResponse(total, ags))
}

// handleSchedule runs the full Scenario-1 chain — aggregate → schedule
// → disaggregate — over the stored offers, scatter-gathered across the
// engine shards, and streams the schedule plus the per-prosumer
// assignments: the response body is encoded group by group (see
// StreamScheduleResponse) instead of being materialized as one
// document. The bytes are identical to `flexctl schedule -pipeline
// -json` on the same offers and parameters, for every shard count.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	horizon, err := qInt(r, "horizon", 48)
	if err == nil && horizon < 1 {
		err = fmt.Errorf("horizon must be positive, got %d", horizon)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	level, err := qInt64(r, "target", -1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	gp, err := groupingFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	opts := []flex.Option{flex.WithGrouping(gp)}
	if r.URL.Query().Has("cap") {
		cap, err := qInt64(r, "cap", 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), nil)
			return
		}
		opts = append(opts, flex.WithPeakCap(cap))
	}
	parts, total := s.routedSnapshot()
	if total == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	level = FlatTargetLevelRouted(parts, horizon, level)
	target := timeseries.Constant(0, horizon, level)
	res, err := s.se.PipelineRouted(r.Context(), parts, target, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	s.tracker.MarkScheduled()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = StreamScheduleResponse(w, BuildScheduleResponse(total, res, target, horizon, level))
}

// deadlineWriter pushes the connection's write deadline d into the
// future before every write, converting the server's global
// WriteTimeout from a whole-response bound (which would cut large
// streamed schedules mid-body and kill responses after a slow upload
// or long computation) into a per-chunk stall bound. The gate wraps
// every expensive handler's ResponseWriter in one.
type deadlineWriter struct {
	http.ResponseWriter
	rc *http.ResponseController
	d  time.Duration
}

func (dw *deadlineWriter) extend() {
	// SetWriteDeadline errors (unsupported writer) are ignored: the
	// response then just runs under whatever deadline is already set.
	_ = dw.rc.SetWriteDeadline(time.Now().Add(dw.d))
}

func (dw *deadlineWriter) WriteHeader(code int) {
	dw.extend()
	dw.ResponseWriter.WriteHeader(code)
}

func (dw *deadlineWriter) Write(p []byte) (int, error) {
	dw.extend()
	return dw.ResponseWriter.Write(p)
}

// Flush forwards the streamed /v1/schedule body's per-group flushes to
// the writer underneath (without it the flush type assertion would
// stop at this wrapper and the body would only move at buffer
// boundaries).
func (dw *deadlineWriter) Flush() {
	if f, ok := dw.ResponseWriter.(interface{ Flush() }); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (dw *deadlineWriter) Unwrap() http.ResponseWriter { return dw.ResponseWriter }

func (s *Server) handleMeasures(w http.ResponseWriter, r *http.Request) {
	var opts []flex.Option
	switch r.URL.Query().Get("norm") {
	case "", "l1":
	case "l2":
		opts = append(opts, flex.WithNorm(flex.L2))
	case "linf":
		opts = append(opts, flex.WithNorm(flex.LInf))
	default:
		writeError(w, http.StatusBadRequest, `norm must be "l1", "l2" or "linf"`, nil)
		return
	}
	parts, total := s.routedSnapshot()
	if total == 0 {
		writeError(w, http.StatusBadRequest, "no offers ingested", nil)
		return
	}
	tab, err := s.se.MeasuresRouted(r.Context(), parts, opts...)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), nil)
		return
	}
	writeJSON(w, http.StatusOK, BuildMeasuresResponse(tab))
}

// handleHealthz reports liveness. Draining is 503 (stop routing here);
// degraded stays 200 — the instance still serves reads, and killing it
// would lose the in-memory offers that are still answering schedules —
// but the body says so, and flexd_wal_degraded exposes it to alerting.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "stored": s.stores.Len()})
		return
	}
	if err := s.stores.Err(); err != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "degraded", "stored": s.stores.Len(), "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "stored": s.stores.Len()})
}

// qInt parses an optional integer query parameter.
func qInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", key, err)
	}
	return n, nil
}

// qInt64 parses an optional 64-bit integer query parameter.
func qInt64(r *http.Request, key string, def int64) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %w", key, err)
	}
	return n, nil
}

// writeJSON writes a 2xx wire value through the shared encoder.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = EncodeResponse(w, v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, msg string, records []RecordErrorInfo) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = EncodeResponse(w, &ErrorResponse{Error: msg, Records: records})
}

// countingReader counts bytes for the ingest throughput metrics.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
