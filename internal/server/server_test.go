package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// testFleet builds a reproducible population and its NDJSON encoding.
// IDs are rewritten to be unique: the workload generator's random IDs
// can collide, and ingest dedups by ID, which would make the stored
// fleet diverge from the encoded one. Dedup itself is tested
// explicitly (TestIngestDedupByID).
func testFleet(t *testing.T, n int) ([]*flexoffer.FlexOffer, []byte) {
	t.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(31)), n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		f.ID = fmt.Sprintf("p-%04d", i)
	}
	var buf bytes.Buffer
	if err := flexoffer.EncodeNDJSON(&buf, offers); err != nil {
		t.Fatal(err)
	}
	return offers, buf.Bytes()
}

// newTestServer starts an httptest server around a fresh engine.
func newTestServer(t *testing.T, opts Options, engOpts ...flex.Option) (*httptest.Server, *flex.Engine) {
	t.Helper()
	eng := flex.New(engOpts...)
	srv := httptest.NewServer(New(eng, opts))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, eng
}

func post(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestIngestAndStore(t *testing.T) {
	offers, ndjson := testFleet(t, 200)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(3))

	resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	var ir IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != len(offers) || ir.Replaced != 0 || ir.Stored != len(offers) {
		t.Fatalf("ingested %d replaced %d stored %d, want %d/0/%d",
			ir.Ingested, ir.Replaced, ir.Stored, len(offers), len(offers))
	}

	// Re-posting the same batch replaces every offer by ID instead of
	// double-counting the fleet (last write wins).
	resp, body = post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Replaced != len(offers) || ir.Stored != len(offers) {
		t.Fatalf("second batch replaced %d stored %d, want %d/%d",
			ir.Replaced, ir.Stored, len(offers), len(offers))
	}

	resp, body = get(t, srv.URL+"/v1/offers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store size: %s", resp.Status)
	}
	var sr StoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stored != len(offers) {
		t.Fatalf("store reports %d, want %d", sr.Stored, len(offers))
	}

	// Reset empties it.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/offers", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %s", dresp.Status)
	}
	_, body = get(t, srv.URL+"/v1/offers")
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stored != 0 {
		t.Fatalf("store reports %d after reset, want 0", sr.Stored)
	}

	// Reset clears the ID index too: the same batch ingests fresh.
	resp, body = post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reset ingest: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Replaced != 0 || ir.Stored != len(offers) {
		t.Fatalf("post-reset batch replaced %d stored %d, want 0/%d", ir.Replaced, ir.Stored, len(offers))
	}
}

// TestIngestDedupByID pins the per-prosumer identity contract of the
// offer store: a non-empty ID identifies the prosumer's current offer,
// re-submissions replace it (last write wins, within and across
// batches), and offers without an ID always append.
func TestIngestDedupByID(t *testing.T) {
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(2))
	rec := func(id string, max int64) string {
		line := fmt.Sprintf(`{"earliestStart":0,"latestStart":2,"slices":[{"min":0,"max":%d}],"totalMin":0,"totalMax":%d}`, max, max)
		if id != "" {
			line = fmt.Sprintf(`{"id":%q,"earliestStart":0,"latestStart":2,"slices":[{"min":0,"max":%d}],"totalMin":0,"totalMax":%d}`, id, max, max)
		}
		return line + "\n"
	}
	var ir IngestResponse

	// Within one batch: a appears twice, the later record wins; the
	// anonymous record appends.
	batch1 := rec("a", 1) + rec("b", 2) + rec("", 3) + rec("a", 4)
	resp, body := post(t, srv.URL+"/v1/offers", strings.NewReader(batch1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch1: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 4 || ir.Replaced != 1 || ir.Stored != 3 {
		t.Fatalf("batch1 = %+v, want ingested 4 replaced 1 stored 3", ir)
	}

	// Across batches: b updates, c is new, another anonymous appends.
	batch2 := rec("b", 9) + rec("c", 5) + rec("", 6)
	resp, body = post(t, srv.URL+"/v1/offers", strings.NewReader(batch2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch2: %s: %s", resp.Status, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 3 || ir.Replaced != 1 || ir.Stored != 5 {
		t.Fatalf("batch2 = %+v, want ingested 3 replaced 1 stored 5", ir)
	}
}

// TestStoreLastWriteWins checks the store at the unit level: replaced
// content is the latest submission, and a snapshot taken before a
// replacement still reads the old value (copy-on-write, so concurrent
// readers never observe mutation).
func TestStoreLastWriteWins(t *testing.T) {
	eng := flex.New(flex.WithWorkers(1))
	defer eng.Close()
	s := New(eng, Options{})
	mk := func(id string, max int64) *flexoffer.FlexOffer {
		f, err := flexoffer.New(0, 2, flexoffer.Slice{Min: 0, Max: max})
		if err != nil {
			t.Fatal(err)
		}
		f.ID = id
		return f
	}
	s.store(context.Background(), []*flexoffer.FlexOffer{mk("x", 3), mk("y", 1)})
	before := s.snapshot()
	if replaced, stored, err := s.store(context.Background(), []*flexoffer.FlexOffer{mk("x", 7)}); replaced != 1 || stored != 2 || err != nil {
		t.Fatalf("replacement reported (%d, %d, %v), want (1, 2, nil)", replaced, stored, err)
	}
	after := s.snapshot()
	if before[0].Slices[0].Max != 3 {
		t.Fatalf("pre-replacement snapshot mutated: x max = %d, want 3", before[0].Slices[0].Max)
	}
	if after[0].Slices[0].Max != 7 || after[0].ID != "x" {
		t.Fatalf("replacement not applied: got %+v", after[0])
	}
	if len(after) != 2 || after[1].ID != "y" {
		t.Fatalf("unrelated offers disturbed: %+v", after)
	}
}

func TestIngestMalformed(t *testing.T) {
	_, ndjson := testFleet(t, 50)
	bad := append([]byte{}, ndjson...)
	bad = append(bad, []byte("garbage\n")...)
	bad = append(bad, ndjson...)

	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(2))
	resp, body := post(t, srv.URL+"/v1/offers?mode=collect", bytes.NewReader(bad))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %s, want 400", resp.Status)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Records) != 1 || er.Records[0].Record != 50 {
		t.Fatalf("error records = %+v, want one failure at record 50", er.Records)
	}

	// A rejected batch must not partially populate the store.
	_, body = get(t, srv.URL+"/v1/offers")
	var sr StoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stored != 0 {
		t.Fatalf("store has %d offers after a rejected batch, want 0", sr.Stored)
	}
}

func TestAggregateEndpoint(t *testing.T) {
	offers, ndjson := testFleet(t, 150)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(3))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	resp, body := post(t, srv.URL+"/v1/aggregate?est=3&max-group=24", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: %s: %s", resp.Status, body)
	}
	var ar AggregateResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	ref := flex.New(flex.WithWorkers(1))
	defer ref.Close()
	want, err := ref.Aggregate(context.Background(), offers,
		flex.WithGrouping(flex.GroupParams{ESTTolerance: 3, TFTolerance: -1, MaxGroupSize: 24}))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Offers != len(offers) || ar.Groups != len(want) {
		t.Fatalf("aggregate reports %d offers %d groups, want %d offers %d groups",
			ar.Offers, ar.Groups, len(offers), len(want))
	}
	for i, info := range ar.Aggregates {
		if !info.Offer.Equal(want[i].Offer) {
			t.Fatalf("aggregate %d offer diverged from AggregateAll", i)
		}
		if info.Constituents != len(want[i].Constituents) {
			t.Fatalf("aggregate %d reports %d constituents, want %d", i, info.Constituents, len(want[i].Constituents))
		}
	}

	// Invalid ?mode is rejected, same contract as ingest.
	resp, _ = post(t, srv.URL+"/v1/aggregate?mode=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: %s, want 400", resp.Status)
	}
}

// TestScheduleEndpointEquivalence is the acceptance criterion at the
// server level: the HTTP schedule over ingested offers equals the
// engine pipeline over the same offers, byte for byte.
func TestScheduleEndpointEquivalence(t *testing.T) {
	offers, ndjson := testFleet(t, 200)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(3), flex.WithSafe(true))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	const horizon, cap = 72, 55
	resp, body := post(t, fmt.Sprintf("%s/v1/schedule?horizon=%d&cap=%d", srv.URL, horizon, cap), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s: %s", resp.Status, body)
	}

	// The reference run: a second engine with the same options, the
	// shared wire builder, the shared encoder.
	ref := flex.New(flex.WithWorkers(1), flex.WithSafe(true))
	defer ref.Close()
	level := FlatTargetLevel(offers, horizon, -1)
	target := timeseries.Constant(0, horizon, level)
	res, err := ref.Pipeline(context.Background(), offers, target,
		flex.WithGrouping(flex.GroupParams{ESTTolerance: 2, TFTolerance: -1}), flex.WithPeakCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := EncodeResponse(&wantBuf, BuildScheduleResponse(len(offers), res, target, horizon, level)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantBuf.Bytes()) {
		t.Fatalf("HTTP schedule response is not bit-identical to the engine pipeline:\n got %d bytes\nwant %d bytes", len(body), wantBuf.Len())
	}

	// The disaggregated assignments must reproduce the load slot-wise.
	var sched ScheduleResponse
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatal(err)
	}
	acc := map[int]int64{}
	for _, parts := range sched.Disaggregated {
		for _, a := range parts {
			for i, v := range a.Values {
				acc[a.Start+i] += v
			}
		}
	}
	for i, v := range sched.Load.Values {
		if acc[sched.Load.Start+i] != v {
			t.Fatalf("slot %d: disaggregated sum %d != load %d", i, acc[sched.Load.Start+i], v)
		}
		delete(acc, sched.Load.Start+i)
	}
	for slot, v := range acc {
		if v != 0 {
			t.Fatalf("slot %d has %d energy outside the load series", slot, v)
		}
	}
}

func TestScheduleNoOffers(t *testing.T) {
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(1))
	resp, _ := post(t, srv.URL+"/v1/schedule", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("schedule with empty store: %s, want 400", resp.Status)
	}
	resp, _ = post(t, srv.URL+"/v1/schedule?horizon=abc", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("schedule with bad horizon: %s, want 400", resp.Status)
	}
}

func TestMeasuresEndpoint(t *testing.T) {
	offers, ndjson := testFleet(t, 60)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(2))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	resp, body := get(t, srv.URL+"/v1/measures?norm=l2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measures: %s: %s", resp.Status, body)
	}
	// NaN cells must arrive as null, so generic JSON decoding works.
	var mr struct {
		Names  []string   `json:"names"`
		Values [][]any    `json:"values"`
		Set    []*float64 `json:"set"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Names) != 8 {
		t.Fatalf("%d measure names, want 8", len(mr.Names))
	}
	if len(mr.Values) != len(offers) {
		t.Fatalf("%d value rows, want %d", len(mr.Values), len(offers))
	}
	resp, _ = get(t, srv.URL+"/v1/measures?norm=l7")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad norm: %s, want 400", resp.Status)
	}
}

// TestMaxInFlightGate pins the backpressure contract: with a gate of
// 1, a request arriving while another is in flight is rejected with
// 429 immediately.
func TestMaxInFlightGate(t *testing.T) {
	srv, _ := newTestServer(t, Options{MaxInFlight: 1}, flex.WithWorkers(1))

	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/offers", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	// Feed one record without closing so the first request holds the
	// gate while we probe with a second one.
	good := `{"earliestStart":0,"latestStart":2,"slices":[{"min":1,"max":3}],"totalMin":1,"totalMax":3}` + "\n"
	if _, err := pw.Write([]byte(good)); err != nil {
		t.Fatal(err)
	}

	var rejected bool
	for i := 0; i < 100; i++ {
		resp, _ := post(t, srv.URL+"/v1/schedule", nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
			rejected = true
			break
		}
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !rejected {
		t.Fatal("gate of 1 never produced a 429 while a request was in flight")
	}

	// After the gate drains, requests flow again.
	resp, body := get(t, srv.URL+"/v1/offers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("store size after gate drained: %s: %s", resp.Status, body)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ndjson := testFleet(t, 40)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(2))
	post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))

	resp, body := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %s: %s", resp.Status, body)
	}

	resp, body = get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	text := string(body)
	for _, want := range []string{
		`flexd_requests_total{path="/v1/offers"} 1`,
		"flexd_ingest_records_total 40",
		"flexd_offers_stored 40",
		"flexd_pool_workers 2",
		"flexd_requests_rejected_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	if !reflect.DeepEqual(resp.Header["Content-Type"], []string{"text/plain; version=0.0.4; charset=utf-8"}) {
		t.Errorf("metrics content type = %v", resp.Header["Content-Type"])
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(1))
	resp, _ := get(t, srv.URL+"/v1/aggregate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/aggregate: %s, want 405", resp.Status)
	}
}

// TestRequestLatencyHistograms checks the flexd_request_seconds
// histogram: after a successful ingest, a schedule and a failing
// schedule (no-offers 400 after a reset), /metrics must expose one
// histogram per observed (path, code) pair with coherent bucket,
// sum and count lines.
func TestRequestLatencyHistograms(t *testing.T) {
	_, ndjson := testFleet(t, 40)
	srv, _ := newTestServer(t, Options{}, flex.WithWorkers(2), flex.WithSafe(true))

	resp, body := post(t, srv.URL+"/v1/offers", bytes.NewReader(ndjson))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s: %s", resp.Status, body)
	}
	resp, body = post(t, srv.URL+"/v1/schedule?horizon=96", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s: %s", resp.Status, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/offers", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reset: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
	resp, _ = post(t, srv.URL+"/v1/schedule?horizon=96", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty schedule status = %s, want 400", resp.Status)
	}

	_, metricsBody := get(t, srv.URL+"/metrics")
	text := string(metricsBody)
	for _, want := range []string{
		// 2: the ingest POST and the reset DELETE share the route.
		`flexd_request_seconds_count{path="/v1/offers",code="200"} 2`,
		`flexd_request_seconds_count{path="/v1/schedule",code="200"} 1`,
		`flexd_request_seconds_count{path="/v1/schedule",code="400"} 1`,
		`flexd_request_seconds_bucket{path="/v1/schedule",code="200",le="+Inf"} 1`,
		`flexd_request_seconds_bucket{path="/v1/schedule",code="200",le="60"} 1`,
		"# TYPE flexd_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Sum must be positive for the served schedule.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `flexd_request_seconds_sum{path="/v1/schedule",code="200"}`) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err != nil || v <= 0 {
				t.Errorf("schedule latency sum = %q (parsed %g, err %v), want > 0", line, v, err)
			}
		}
	}
}
