package market_test

import (
	"fmt"
	"log"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/market"
)

// ExampleValueOfFlexibility prices the EV use case's flexibility: moving
// a 3-unit charge from a 10-price hour to a 1-price hour is worth 27.
func ExampleValueOfFlexibility() {
	prices := market.PriceCurve{10, 10, 1, 10, 10}
	ev := flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 3, Max: 3})
	v, err := market.ValueOfFlexibility(ev, prices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v.BaselineCost, v.OptimalCost, v.Value())
	// Output: 30 3 27
}

// ExamplePriceCurve_CheapestAssignment dispatches a producer to the
// price peak: minimal (most negative) cost means maximal revenue.
func ExamplePriceCurve_CheapestAssignment() {
	prices := market.PriceCurve{1, 9, 2}
	turbine := flexoffer.MustNew(0, 2, flexoffer.Slice{Min: -4, Max: -4})
	a, err := prices.CheapestAssignment(turbine)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := prices.CostOf(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Start, cost)
	// Output: 1 -36
}

// ExampleSettlement charges imbalance penalties on deviations from the
// traded baseline.
func ExampleSettlement() {
	prices := market.PriceCurve{2, 2, 2}
	traded := flexoffer.NewAssignment(0, 3, 3, 3).Series()
	delivered := flexoffer.NewAssignment(0, 3, 1, 3).Series()
	cost, err := market.Settlement(delivered, traded, prices, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cost) // 7 units at spot 2 + 2 deviations at penalty 10
	// Output: 34
}
