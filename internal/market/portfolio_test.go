package market

import (
	"errors"
	"math/rand"
	"testing"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

func aggFixture(t *testing.T, offers ...*flexoffer.FlexOffer) []*aggregate.Aggregated {
	t.Helper()
	var ags []*aggregate.Aggregated
	for _, f := range offers {
		ag, err := aggregate.AggregateSafe([]*flexoffer.FlexOffer{f})
		if err != nil {
			t.Fatal(err)
		}
		ags = append(ags, ag)
	}
	return ags
}

func TestBuildPortfolioSplitsByLotSize(t *testing.T) {
	big := flexoffer.MustNew(0, 2, sl(50, 60))
	small := flexoffer.MustNew(0, 2, sl(1, 2))
	p, err := BuildPortfolio(aggFixture(t, big, small), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tradeable) != 1 || len(p.Remainder) != 1 {
		t.Fatalf("split = %d tradeable / %d remainder, want 1/1",
			len(p.Tradeable), len(p.Remainder))
	}
	if p.Tradeable[0].Offer.Slices[0].Min != 50 {
		t.Error("wrong aggregate admitted to the market")
	}
}

func TestBuildPortfolioNoLots(t *testing.T) {
	small := flexoffer.MustNew(0, 2, sl(1, 2))
	p, err := BuildPortfolio(aggFixture(t, small), 100)
	if !errors.Is(err, ErrNoLots) {
		t.Fatalf("got %v, want ErrNoLots", err)
	}
	if len(p.Remainder) != 1 {
		t.Fatal("remainder must still carry the book")
	}
}

func TestBuildPortfolioOrdersByEnergy(t *testing.T) {
	a := flexoffer.MustNew(0, 1, sl(30, 30))
	b := flexoffer.MustNew(0, 1, sl(90, 90))
	c := flexoffer.MustNew(0, 1, sl(60, 60))
	p, err := BuildPortfolio(aggFixture(t, a, b, c), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tradeable) != 3 {
		t.Fatalf("tradeable = %d", len(p.Tradeable))
	}
	prev := lotEnergy(p.Tradeable[0])
	for _, ag := range p.Tradeable[1:] {
		if e := lotEnergy(ag); e > prev {
			t.Fatal("tradeable lots not sorted by energy")
		} else {
			prev = e
		}
	}
}

func TestPortfolioValue(t *testing.T) {
	// A lot that can move from an expensive hour to a cheap one has
	// positive flexibility value.
	f := flexoffer.MustNew(0, 2, sl(10, 10))
	p, err := BuildPortfolio(aggFixture(t, f), 5)
	if err != nil {
		t.Fatal(err)
	}
	prices := PriceCurve{9, 9, 1}
	lots, total, err := p.Value(prices, core.ProductMeasure{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lots) != 1 {
		t.Fatalf("lots = %d", len(lots))
	}
	if lots[0].Valuation.Value() != 80 { // 10 units × (9−1)
		t.Errorf("lot value = %g, want 80", lots[0].Valuation.Value())
	}
	if total != 80 {
		t.Errorf("total = %g, want 80", total)
	}
	if lots[0].Energy != 10 {
		t.Errorf("lot energy = %d, want 10", lots[0].Energy)
	}
}

func TestPortfolioValueErrors(t *testing.T) {
	f := flexoffer.MustNew(0, 1, sl(10, 10))
	p, err := BuildPortfolio(aggFixture(t, f), 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Value(PriceCurve{}, core.ProductMeasure{}); !errors.Is(err, ErrEmptyPrices) {
		t.Errorf("empty curve = %v", err)
	}
	if _, _, err := p.Value(PriceCurve{1, 2}, nil); err == nil {
		t.Error("nil measure must fail")
	}
	if _, _, err := p.Value(PriceCurve{1}, core.ProductMeasure{}); !errors.Is(err, ErrShortPrices) {
		t.Errorf("short curve = %v", err)
	}
}

func TestDeliverCheapestDispatchesProsumers(t *testing.T) {
	// Full Scenario 2 loop on a synthetic neighbourhood: aggregate,
	// build the book, deliver and dispatch.
	rng := rand.New(rand.NewSource(8))
	offers := make([]*flexoffer.FlexOffer, 0, 120)
	for i := 0; i < 120; i++ {
		es := rng.Intn(20)
		n := 1 + rng.Intn(3)
		slices := make([]flexoffer.Slice, n)
		for j := range slices {
			lo := int64(rng.Intn(4))
			slices[j] = flexoffer.Slice{Min: lo, Max: lo + int64(rng.Intn(5))}
		}
		offers = append(offers, flexoffer.MustNew(es, es+rng.Intn(4), slices...))
	}
	ags, err := aggregate.AggregateAllSafe(offers, aggregate.GroupParams{
		ESTTolerance: 3, TFTolerance: 4, MaxGroupSize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPortfolio(ags, 20)
	if err != nil {
		t.Fatal(err)
	}
	prices := make(PriceCurve, 48)
	for i := range prices {
		prices[i] = 10 + float64(rng.Intn(40))
	}
	dispatch, err := p.DeliverCheapest(prices)
	if err != nil {
		t.Fatal(err)
	}
	if len(dispatch) != len(p.Tradeable) {
		t.Fatalf("dispatched %d lots of %d", len(dispatch), len(p.Tradeable))
	}
	for i, parts := range dispatch {
		ag := p.Tradeable[i]
		if len(parts) != len(ag.Constituents) {
			t.Fatalf("lot %d: %d assignments for %d prosumers", i, len(parts), len(ag.Constituents))
		}
		for j, a := range parts {
			if err := ag.Constituents[j].ValidateAssignment(a); err != nil {
				t.Fatalf("lot %d prosumer %d: %v", i, j, err)
			}
		}
	}
}
