package market

import (
	"errors"
	"fmt"
	"sort"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
)

// Scenario 2 of the paper: "It is infeasible to trade flex-offers from
// individual prosumers directly in the market due to their small energy
// amounts. … Consequently, only large aggregated flex-offers are allowed
// to be traded in the market." A Portfolio is an aggregator's book of
// aggregates, partitioned into tradeable lots (meeting the market's
// minimum energy) and a non-tradeable remainder, with valuation against
// a price curve.

// ErrNoLots is returned when no aggregate meets the market's minimum.
var ErrNoLots = errors.New("market: no aggregate meets the minimum lot size")

// Portfolio is an aggregator's position: the tradeable aggregates, the
// remainder, and the minimum lot size that split them.
type Portfolio struct {
	// MinLotEnergy is the market's minimum absolute expected energy
	// per tradeable lot.
	MinLotEnergy int64
	// Tradeable holds the aggregates admitted to the market, largest
	// expected energy first.
	Tradeable []*aggregate.Aggregated
	// Remainder holds the aggregates below the lot size.
	Remainder []*aggregate.Aggregated
}

// lotEnergy is the expected absolute energy of an aggregate: the
// midpoint of its total band, in magnitude.
func lotEnergy(ag *aggregate.Aggregated) int64 {
	mid := (ag.Offer.TotalMin + ag.Offer.TotalMax) / 2
	if mid < 0 {
		return -mid
	}
	return mid
}

// BuildPortfolio partitions the aggregates by the minimum lot size. It
// returns ErrNoLots when nothing is tradeable (the book is still
// returned, fully in Remainder, so the caller can re-aggregate).
func BuildPortfolio(ags []*aggregate.Aggregated, minLotEnergy int64) (*Portfolio, error) {
	p := &Portfolio{MinLotEnergy: minLotEnergy}
	for _, ag := range ags {
		if lotEnergy(ag) >= minLotEnergy {
			p.Tradeable = append(p.Tradeable, ag)
		} else {
			p.Remainder = append(p.Remainder, ag)
		}
	}
	sort.SliceStable(p.Tradeable, func(i, j int) bool {
		return lotEnergy(p.Tradeable[i]) > lotEnergy(p.Tradeable[j])
	})
	if len(p.Tradeable) == 0 {
		return p, ErrNoLots
	}
	return p, nil
}

// Lot is one tradeable position with its market valuation.
type Lot struct {
	// Aggregate is the traded flex-offer with its constituents.
	Aggregate *aggregate.Aggregated
	// Energy is the lot's expected absolute energy.
	Energy int64
	// Valuation prices the lot's flexibility against the curve.
	Valuation Valuation
	// Flexibility is the lot's value under the portfolio's measure.
	Flexibility float64
}

// Value prices every tradeable lot against the curve and scores it with
// the measure (the paper's point: a flexibility measure is what lets the
// aggregator compare lots "traded as commodities"). Lots are returned in
// book order; the summary totals follow.
func (p *Portfolio) Value(prices PriceCurve, m core.Measure) (lots []Lot, totalValue float64, err error) {
	if err := prices.Validate(); err != nil {
		return nil, 0, err
	}
	if m == nil {
		return nil, 0, fmt.Errorf("market: portfolio valuation requires a measure")
	}
	for i, ag := range p.Tradeable {
		v, err := ValueOfFlexibility(ag.Offer, prices)
		if err != nil {
			return nil, 0, fmt.Errorf("market: lot %d: %w", i, err)
		}
		flexVal, err := m.Value(ag.Offer)
		if err != nil {
			return nil, 0, fmt.Errorf("market: lot %d under %s: %w", i, m.Name(), err)
		}
		lots = append(lots, Lot{
			Aggregate:   ag,
			Energy:      lotEnergy(ag),
			Valuation:   v,
			Flexibility: flexVal,
		})
		totalValue += v.Value()
	}
	return lots, totalValue, nil
}

// DeliverCheapest commits every tradeable lot to its price-optimal
// assignment and disaggregates it to the constituent prosumers,
// returning one assignment list per lot. This is the full Scenario 2
// loop: trade the aggregate, dispatch the prosumers.
func (p *Portfolio) DeliverCheapest(prices PriceCurve) ([][]flexoffer.Assignment, error) {
	out := make([][]flexoffer.Assignment, 0, len(p.Tradeable))
	for i, ag := range p.Tradeable {
		a, err := prices.CheapestAssignment(ag.Offer)
		if err != nil {
			return nil, fmt.Errorf("market: lot %d: %w", i, err)
		}
		parts, err := ag.Disaggregate(a)
		if err != nil {
			return nil, fmt.Errorf("market: lot %d dispatch: %w", i, err)
		}
		out = append(out, parts)
	}
	return out, nil
}
