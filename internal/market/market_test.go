package market

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// sl is shorthand for a slice literal in test fixtures.
func sl(min, max int64) flexoffer.Slice { return flexoffer.Slice{Min: min, Max: max} }

func TestCostOf(t *testing.T) {
	p := PriceCurve{1, 2, 3, 4}
	cost, err := p.CostOf(flexoffer.NewAssignment(1, 2, 1))
	if err != nil || cost != 2*2+1*3 {
		t.Fatalf("cost = %g, %v; want 7", cost, err)
	}
	// Production earns revenue.
	cost, err = p.CostOf(flexoffer.NewAssignment(1, -2))
	if err != nil || cost != -4 {
		t.Fatalf("production cost = %g, %v; want -4", cost, err)
	}
	if _, err := p.CostOf(flexoffer.NewAssignment(3, 1, 1)); !errors.Is(err, ErrShortPrices) {
		t.Errorf("out-of-curve assignment = %v, want ErrShortPrices", err)
	}
}

func TestCheapestAssignmentMovesToCheapHours(t *testing.T) {
	// The EV use case: charging moves to the cheap (windy) hour.
	p := PriceCurve{10, 10, 1, 10, 10}
	f := flexoffer.MustNew(0, 4, sl(3, 3))
	a, err := p.CheapestAssignment(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 2 {
		t.Errorf("start = %d, want 2 (cheapest hour)", a.Start)
	}
}

func TestCheapestAssignmentBuysMandatoryUnitsCheaply(t *testing.T) {
	// cmin forces 4 units across two slots priced 5 and 1: the greedy
	// must put the flexible units in the cheap slot.
	f, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 1, Max: 3}, {Min: 1, Max: 3}}, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := PriceCurve{5, 1}
	a, err := p.CheapestAssignment(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Values[0] != 1 || a.Values[1] != 3 {
		t.Errorf("values = %v, want [1 3]", a.Values)
	}
	if err := f.ValidateAssignment(a); err != nil {
		t.Errorf("assignment invalid: %v", err)
	}
}

func TestCheapestAssignmentUsesNegativePrices(t *testing.T) {
	// Negative prices (excess wind) attract optional consumption up to
	// cmax.
	f := flexoffer.MustNew(0, 0, sl(0, 5), sl(0, 5))
	p := PriceCurve{-2, 3}
	a, err := p.CheapestAssignment(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Values[0] != 5 || a.Values[1] != 0 {
		t.Errorf("values = %v, want [5 0]", a.Values)
	}
	cost, err := p.CostOf(a)
	if err != nil || cost != -10 {
		t.Errorf("cost = %g, %v; want -10", cost, err)
	}
}

func TestCheapestAssignmentProduction(t *testing.T) {
	// A producer (negative values) sells at the expensive hour: cost is
	// minimised (most negative) by producing at the peak price.
	f := flexoffer.MustNew(0, 2, sl(-4, -4))
	p := PriceCurve{1, 9, 2}
	a, err := p.CheapestAssignment(f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 1 {
		t.Errorf("start = %d, want 1 (peak price)", a.Start)
	}
	cost, err := p.CostOf(a)
	if err != nil || cost != -36 {
		t.Errorf("cost = %g, %v; want -36", cost, err)
	}
}

func TestCheapestAssignmentErrors(t *testing.T) {
	f := flexoffer.MustNew(0, 4, sl(1, 1))
	if _, err := (PriceCurve{}).CheapestAssignment(f); !errors.Is(err, ErrEmptyPrices) {
		t.Errorf("empty curve = %v", err)
	}
	if _, err := (PriceCurve{1, 2}).CheapestAssignment(f); !errors.Is(err, ErrShortPrices) {
		t.Errorf("short curve = %v", err)
	}
	bad := &flexoffer.FlexOffer{EarliestStart: 2, LatestStart: 0, Slices: []flexoffer.Slice{{Min: 0, Max: 1}}}
	if _, err := (PriceCurve{1, 2, 3}).CheapestAssignment(bad); err == nil {
		t.Error("invalid offer must be rejected")
	}
}

func TestValueOfFlexibility(t *testing.T) {
	// Baseline charges at t=0 (price 10); the flexible optimum moves to
	// t=2 (price 1): flexibility is worth 3·(10−1) = 27.
	p := PriceCurve{10, 10, 1, 10, 10}
	f := flexoffer.MustNew(0, 4, sl(3, 3))
	v, err := ValueOfFlexibility(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.BaselineCost != 30 || v.OptimalCost != 3 {
		t.Errorf("costs = %g, %g; want 30 and 3", v.BaselineCost, v.OptimalCost)
	}
	if v.Value() != 27 {
		t.Errorf("value = %g, want 27", v.Value())
	}
}

func TestValueOfFlexibilityInflexibleOfferIsWorthless(t *testing.T) {
	p := PriceCurve{5, 1, 9}
	f := flexoffer.MustNew(1, 1, sl(2, 2))
	v, err := ValueOfFlexibility(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Value() != 0 {
		t.Errorf("value = %g, want 0 for an inflexible offer", v.Value())
	}
}

func TestSettlement(t *testing.T) {
	p := PriceCurve{2, 2, 2}
	traded := timeseries.New(0, 3, 3, 3)
	delivered := timeseries.New(0, 3, 1, 3) // 2 units short at t=1
	got, err := Settlement(delivered, traded, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3+1+3)*2 + 2*10
	if got != want {
		t.Errorf("settlement = %g, want %g", got, want)
	}
	// Perfect delivery pays spot only.
	got, err = Settlement(traded, traded, p, 10)
	if err != nil || got != 18 {
		t.Errorf("perfect settlement = %g, %v; want 18", got, err)
	}
}

func TestSettlementErrors(t *testing.T) {
	traded := timeseries.New(0, 1)
	if _, err := Settlement(traded, traded, PriceCurve{}, 1); !errors.Is(err, ErrEmptyPrices) {
		t.Errorf("empty curve = %v", err)
	}
	if _, err := Settlement(traded, traded, PriceCurve{1}, -1); !errors.Is(err, ErrNegativeRate) {
		t.Errorf("negative rate = %v", err)
	}
	long := timeseries.New(0, 1, 1, 1)
	if _, err := Settlement(long, traded, PriceCurve{1}, 0); !errors.Is(err, ErrShortPrices) {
		t.Errorf("short curve = %v", err)
	}
}

func TestPriceCurveCovers(t *testing.T) {
	p := PriceCurve{1, 2, 3}
	if !p.Covers(0, 3) || p.Covers(0, 4) || p.Covers(-1, 2) {
		t.Error("Covers boundaries wrong")
	}
}

func randomOfferForMarket(r *rand.Rand) *flexoffer.FlexOffer {
	n := 1 + r.Intn(3)
	slices := make([]flexoffer.Slice, n)
	for i := range slices {
		lo := int64(r.Intn(7) - 3)
		slices[i] = flexoffer.Slice{Min: lo, Max: lo + int64(r.Intn(4))}
	}
	es := r.Intn(4)
	return flexoffer.MustNew(es, es+r.Intn(4), slices...)
}

func TestPropertyCheapestIsOptimalByEnumeration(t *testing.T) {
	// The greedy must match exhaustive search on small offers.
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOfferForMarket(r)
		p := make(PriceCurve, f.LatestEnd()+1)
		for i := range p {
			p[i] = float64(r.Intn(21) - 5)
		}
		greedy, err := p.CheapestAssignment(f)
		if err != nil {
			return false
		}
		greedyCost, err := p.CostOf(greedy)
		if err != nil {
			return false
		}
		bestCost := math.Inf(1)
		err = f.EnumerateAssignments(200000, func(a flexoffer.Assignment) bool {
			c, cerr := p.CostOf(a)
			if cerr == nil && c < bestCost {
				bestCost = c
			}
			return true
		})
		if err != nil {
			return true // space too large; skip
		}
		return math.Abs(greedyCost-bestCost) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFlexibilityValueNonNegative(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomOfferForMarket(r)
		p := make(PriceCurve, f.LatestEnd()+1)
		for i := range p {
			p[i] = float64(r.Intn(21) - 5)
		}
		v, err := ValueOfFlexibility(f, p)
		if err != nil {
			return false
		}
		return v.Value() >= -1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestLerpBoundaries pins the interpolation the scenario loops use at
// scenario boundaries: clamped outside the curve, exact on slots,
// linear between them, NaN only when the curve is empty.
func TestLerpBoundaries(t *testing.T) {
	p := PriceCurve{10, 20, 40}
	cases := []struct {
		x    float64
		want float64
	}{
		{-5, 10}, {0, 10}, {0.5, 15}, {1, 20}, {1.25, 25},
		{2, 40}, {2.7, 40}, {99, 40},
	}
	for _, c := range cases {
		if got := p.Lerp(c.x); got != c.want {
			t.Errorf("Lerp(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	one := PriceCurve{7}
	for _, x := range []float64{-1, 0, 0.5, 3} {
		if got := one.Lerp(x); got != 7 {
			t.Errorf("single-slot Lerp(%g) = %g, want 7", x, got)
		}
	}
	if got := (PriceCurve{}).Lerp(1); !math.IsNaN(got) {
		t.Errorf("empty Lerp = %g, want NaN", got)
	}
}
