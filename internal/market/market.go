// Package market implements the energy-market substrate of the paper's
// Scenario 2 (Section 1): an aggregator collects flex-offers, aggregates
// them into tradeable units, and monetises their flexibility against an
// hourly spot-price curve, with imbalance penalties for deviating from
// the traded baseline.
//
// The paper's claim motivating the scenario is that aggregated
// flex-offers should "retain as much flexibility as possible in order to
// obtain a better value in the energy market"; ValueOfFlexibility makes
// that value concrete (cost of the inflexible baseline minus cost of the
// price-optimal assignment), and experiment X3 correlates it with the
// paper's measures.
package market

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// Sentinel errors.
var (
	ErrEmptyPrices  = errors.New("market: empty price curve")
	ErrShortPrices  = errors.New("market: price curve does not cover the offer's time window")
	ErrNegativeRate = errors.New("market: penalty rate must be non-negative")
)

// PriceCurve holds one price per time unit, indexed from time 0 (e.g.
// day-ahead hourly spot prices scaled to the flex-offer time unit).
type PriceCurve []float64

// At returns the price at time t. It must only be called for t within
// [0, len); Covers checks that.
func (p PriceCurve) At(t int) float64 { return p[t] }

// Covers reports whether the curve prices every time unit in [from, to).
func (p PriceCurve) Covers(from, to int) bool {
	return from >= 0 && to <= len(p)
}

// Lerp returns the price at fractional slot x by linear interpolation
// between the two neighbouring slots, clamped to the boundary slots
// outside [0, len−1]. Scenario loops score loads at virtual times that
// need not fall on slot boundaries — and may step just past the curve's
// edge at a scenario boundary — so Lerp never fails: an empty curve
// yields NaN, every other x yields a finite price.
func (p PriceCurve) Lerp(x float64) float64 {
	if len(p) == 0 {
		return math.NaN()
	}
	if x <= 0 {
		return p[0]
	}
	if x >= float64(len(p)-1) {
		return p[len(p)-1]
	}
	i := int(x)
	frac := x - float64(i)
	return p[i] + (p[i+1]-p[i])*frac
}

// Validate checks the curve is non-empty.
func (p PriceCurve) Validate() error {
	if len(p) == 0 {
		return ErrEmptyPrices
	}
	return nil
}

// CostOf returns the energy cost of an assignment under the curve:
// Σ v(i) · price(start+i). Production (negative values) yields negative
// cost, i.e. revenue.
func (p PriceCurve) CostOf(a flexoffer.Assignment) (float64, error) {
	if !p.Covers(a.Start, a.Start+len(a.Values)) {
		return 0, fmt.Errorf("%w: assignment spans [%d,%d), curve has %d slots",
			ErrShortPrices, a.Start, a.Start+len(a.Values), len(p))
	}
	var cost float64
	for i, v := range a.Values {
		cost += float64(v) * p.At(a.Start+i)
	}
	return cost, nil
}

// CheapestAssignment returns a valid assignment of f minimising the
// energy cost under the curve. For every start time the slice values are
// chosen by an exact greedy for the box-constrained problem
//
//	min Σ vᵢ·pᵢ  s.t.  amin ≤ vᵢ ≤ amax, cmin ≤ Σvᵢ ≤ cmax:
//
// start from the minima, then buy mandatory units (up to cmin) at the
// cheapest slots and optional units only at negative prices. Because the
// objective is linear, the greedy is optimal.
func (p PriceCurve) CheapestAssignment(f *flexoffer.FlexOffer) (flexoffer.Assignment, error) {
	if err := p.Validate(); err != nil {
		return flexoffer.Assignment{}, err
	}
	if err := f.Validate(); err != nil {
		return flexoffer.Assignment{}, err
	}
	if !p.Covers(f.EarliestStart, f.LatestEnd()) {
		return flexoffer.Assignment{}, fmt.Errorf("%w: offer spans [%d,%d), curve has %d slots",
			ErrShortPrices, f.EarliestStart, f.LatestEnd(), len(p))
	}
	var best flexoffer.Assignment
	bestCost := 0.0
	found := false
	for start := f.EarliestStart; start <= f.LatestStart; start++ {
		a := cheapestAt(f, start, p)
		cost, err := p.CostOf(a)
		if err != nil {
			return flexoffer.Assignment{}, err
		}
		if !found || cost < bestCost {
			best, bestCost, found = a, cost, true
		}
	}
	return best, nil
}

// cheapestAt solves the per-start linear sub-problem exactly.
func cheapestAt(f *flexoffer.FlexOffer, start int, p PriceCurve) flexoffer.Assignment {
	n := f.NumSlices()
	a := flexoffer.Assignment{Start: start, Values: make([]int64, n)}
	var total int64
	for i, s := range f.Slices {
		a.Values[i] = s.Min
		total += s.Min
	}
	// Slots sorted by price, cheapest first.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return p.At(start+idx[x]) < p.At(start+idx[y])
	})
	// Mandatory units: reach cmin at the cheapest prices.
	for _, i := range idx {
		if total >= f.TotalMin {
			break
		}
		room := f.Slices[i].Max - a.Values[i]
		need := f.TotalMin - total
		if room > need {
			room = need
		}
		a.Values[i] += room
		total += room
	}
	// Optional units: only where the price is negative (they reduce
	// cost), while cmax allows.
	for _, i := range idx {
		if p.At(start+i) >= 0 || total >= f.TotalMax {
			break
		}
		room := f.Slices[i].Max - a.Values[i]
		headroom := f.TotalMax - total
		if room > headroom {
			room = headroom
		}
		a.Values[i] += room
		total += room
	}
	return a
}

// Valuation is the outcome of ValueOfFlexibility.
type Valuation struct {
	// Baseline is the inflexible reference assignment (earliest start,
	// minimal total) and its cost.
	Baseline     flexoffer.Assignment
	BaselineCost float64
	// Optimal is the cheapest assignment and its cost.
	Optimal     flexoffer.Assignment
	OptimalCost float64
}

// Value returns what the offer's flexibility is worth under the curve:
// baseline cost minus optimal cost (≥ 0 by construction).
func (v Valuation) Value() float64 { return v.BaselineCost - v.OptimalCost }

// ValueOfFlexibility prices an offer's flexibility: the cost difference
// between serving it inflexibly (earliest start, minimum energy) and
// serving it with full use of its time and energy flexibility.
func ValueOfFlexibility(f *flexoffer.FlexOffer, p PriceCurve) (Valuation, error) {
	baseline, err := f.EarliestAssignment()
	if err != nil {
		return Valuation{}, fmt.Errorf("market: baseline: %w", err)
	}
	baseCost, err := p.CostOf(baseline)
	if err != nil {
		return Valuation{}, fmt.Errorf("market: baseline cost: %w", err)
	}
	opt, err := p.CheapestAssignment(f)
	if err != nil {
		return Valuation{}, fmt.Errorf("market: optimising: %w", err)
	}
	optCost, err := p.CostOf(opt)
	if err != nil {
		return Valuation{}, fmt.Errorf("market: optimal cost: %w", err)
	}
	return Valuation{
		Baseline:     baseline,
		BaselineCost: baseCost,
		Optimal:      opt,
		OptimalCost:  optCost,
	}, nil
}

// Settlement prices a delivered series against a traded baseline: energy
// is paid at spot, and every unit of deviation |delivered−traded| incurs
// penaltyRate on top (the imbalance penalties BRPs avoid by using
// flexibility, Scenario 2).
func Settlement(delivered, traded timeseries.Series, p PriceCurve, penaltyRate float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if penaltyRate < 0 {
		return 0, fmt.Errorf("%w: %g", ErrNegativeRate, penaltyRate)
	}
	diff := timeseries.Sub(delivered, traded)
	if !p.Covers(minStart(delivered, traded), diff.End()) {
		return 0, fmt.Errorf("%w: settlement spans [%d,%d), curve has %d slots",
			ErrShortPrices, diff.Start, diff.End(), len(p))
	}
	var total float64
	for t := delivered.Start; t < delivered.End(); t++ {
		total += float64(delivered.At(t)) * p.At(t)
	}
	for t := diff.Start; t < diff.End(); t++ {
		dev := diff.At(t)
		if dev < 0 {
			dev = -dev
		}
		total += float64(dev) * penaltyRate
	}
	return total, nil
}

func minStart(a, b timeseries.Series) int {
	if a.Start < b.Start {
		return a.Start
	}
	return b.Start
}
