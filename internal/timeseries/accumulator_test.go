package timeseries

import (
	"math/rand"
	"testing"
)

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	if a.Len() != 0 {
		t.Fatalf("Len = %d, want 0", a.Len())
	}
	if a.At(3) != 0 {
		t.Fatalf("At on empty = %d, want 0", a.At(3))
	}
	if !a.Snapshot(0, 0).IsEmpty() {
		t.Fatal("empty snapshot must be empty")
	}
}

func TestAccumulatorEnsureGrowsBothSides(t *testing.T) {
	a := NewAccumulator()
	a.Ensure(2, 5)
	a.AddValues(2, []int64{1, 2, 3})
	a.Ensure(0, 8)
	if a.Lo() != 0 || a.Hi() != 8 {
		t.Fatalf("window [%d,%d), want [0,8)", a.Lo(), a.Hi())
	}
	want := []int64{0, 0, 1, 2, 3, 0, 0, 0}
	for t2, w := range want {
		if a.At(t2) != w {
			t.Errorf("At(%d) = %d, want %d", t2, a.At(t2), w)
		}
	}
	// Covering ranges are no-ops.
	a.Ensure(3, 4)
	if a.Lo() != 0 || a.Hi() != 8 {
		t.Fatalf("no-op Ensure changed window to [%d,%d)", a.Lo(), a.Hi())
	}
}

func TestAccumulatorMatchesSeriesAdd(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		acc := NewAccumulator()
		var sum Series
		for i := 0; i < 8; i++ {
			start := r.Intn(20) - 5
			vals := make([]int64, 1+r.Intn(6))
			for j := range vals {
				vals[j] = int64(r.Intn(21) - 10)
			}
			s := New(start, vals...)
			acc.AddSeries(s)
			sum = Add(sum, s)
		}
		got := acc.Snapshot(sum.Start, sum.End())
		if !got.Equal(sum) {
			t.Fatalf("trial %d: accumulator %v != folded series %v", trial, got, sum)
		}
	}
}

func TestAccumulatorAddScaled(t *testing.T) {
	a := NewAccumulator()
	target := New(1, 4, 5, 6)
	a.AddScaled(target, -1)
	a.AddValues(2, []int64{5})
	if a.At(1) != -4 || a.At(2) != 0 || a.At(3) != -6 {
		t.Fatalf("residual = [%d %d %d], want [-4 0 -6]", a.At(1), a.At(2), a.At(3))
	}
	a.AddScaled(Series{}, 3) // empty series is a no-op
	if a.Len() != 3 {
		t.Fatalf("empty AddScaled grew the window to %d", a.Len())
	}
}

func TestAccumulatorValuesAliasing(t *testing.T) {
	a := NewAccumulator()
	cells := a.Values(4, 7)
	if len(cells) != 3 {
		t.Fatalf("len(cells) = %d, want 3", len(cells))
	}
	cells[1] = 9
	if a.At(5) != 9 {
		t.Fatalf("write through Values not visible: At(5) = %d", a.At(5))
	}
}

func TestAccumulatorSnapshotOutsideWindow(t *testing.T) {
	a := NewAccumulator()
	a.AddValues(3, []int64{7})
	s := a.Snapshot(1, 6)
	want := New(1, 0, 0, 7, 0, 0)
	if !s.Equal(want) {
		t.Fatalf("snapshot %v, want %v", s, want)
	}
}

func TestAccumulatorNoAllocsWhenPresized(t *testing.T) {
	a := NewAccumulator()
	a.Ensure(0, 100)
	vals := []int64{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(100, func() {
		a.AddValues(10, vals)
		_ = a.Values(10, 14)
		_ = a.At(12)
	})
	if allocs != 0 {
		t.Fatalf("pre-sized accumulator allocated %.1f/op, want 0", allocs)
	}
}
