package timeseries

// Accumulator is a mutable integer-valued series over a growable
// contiguous window, for hot paths that repeatedly fold small series
// into a running total. Unlike the immutable Series operations (Add,
// Sub), which materialize a fresh slice per call, an Accumulator is
// written in place: folding a k-slot assignment into a running load
// costs O(k) and zero allocations once the window covers it.
//
// Points outside the window read as zero, matching Series.At. The zero
// value is an empty accumulator ready to use.
type Accumulator struct {
	lo   int
	vals []int64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Len reports the number of time units the window currently spans.
func (a *Accumulator) Len() int { return len(a.vals) }

// Lo returns the first time unit of the window (undefined when Len is 0).
func (a *Accumulator) Lo() int { return a.lo }

// Hi returns the first time unit after the window (undefined when Len
// is 0).
func (a *Accumulator) Hi() int { return a.lo + len(a.vals) }

// Ensure grows the window to cover [lo, hi), preserving existing values
// and zero-filling new cells. Shrinking never happens; covering ranges
// are a no-op. Growth is the only allocating operation on an
// accumulator, so callers that pre-size the window get allocation-free
// updates from then on.
func (a *Accumulator) Ensure(lo, hi int) {
	if hi <= lo {
		return
	}
	if len(a.vals) == 0 {
		a.lo = lo
		a.vals = make([]int64, hi-lo)
		return
	}
	if lo >= a.lo && hi <= a.Hi() {
		return
	}
	newLo, newHi := a.lo, a.Hi()
	if lo < newLo {
		newLo = lo
	}
	if hi > newHi {
		newHi = hi
	}
	grown := make([]int64, newHi-newLo)
	copy(grown[a.lo-newLo:], a.vals)
	a.lo, a.vals = newLo, grown
}

// At returns the value at time t, or 0 when t is outside the window.
func (a *Accumulator) At(t int) int64 {
	if t < a.lo || t >= a.Hi() {
		return 0
	}
	return a.vals[t-a.lo]
}

// Values returns the backing cells for [lo, hi) after ensuring the
// window covers it. The slice aliases the accumulator's storage: writes
// through it are visible to At and Snapshot, and it is invalidated by
// the next Ensure that grows the window. It exists so per-candidate
// loops can index cells directly instead of paying At's bounds checks.
func (a *Accumulator) Values(lo, hi int) []int64 {
	a.Ensure(lo, hi)
	return a.vals[lo-a.lo : hi-a.lo]
}

// AddSeries folds s into the accumulator pointwise, growing the window
// as needed.
func (a *Accumulator) AddSeries(s Series) { a.AddScaled(s, 1) }

// AddScaled folds k·s into the accumulator pointwise, growing the
// window as needed. AddScaled(target, -1) turns a load accumulator into
// a load−target residual.
func (a *Accumulator) AddScaled(s Series, k int64) {
	if s.IsEmpty() {
		return
	}
	a.Ensure(s.Start, s.End())
	cells := a.vals[s.Start-a.lo:]
	for i, v := range s.Values {
		cells[i] += k * v
	}
}

// AddValues folds vals into the window starting at time start, growing
// the window as needed.
func (a *Accumulator) AddValues(start int, vals []int64) {
	if len(vals) == 0 {
		return
	}
	a.Ensure(start, start+len(vals))
	cells := a.vals[start-a.lo:]
	for i, v := range vals {
		cells[i] += v
	}
}

// Snapshot returns an immutable copy of [lo, hi), reading cells outside
// the window as zero (the result always has length hi−lo).
func (a *Accumulator) Snapshot(lo, hi int) Series {
	if hi <= lo {
		return Series{}
	}
	out := Series{Start: lo, Values: make([]int64, hi-lo)}
	for t := lo; t < hi; t++ {
		out.Values[t-lo] = a.At(t)
	}
	return out
}
