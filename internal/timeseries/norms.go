package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Norm identifies a vector norm applied to a time series. The paper
// (Section 3.2, "Time-series flexibility") proposes the Manhattan and
// Euclidean norms; we additionally provide the Chebyshev norm, arbitrary
// Lp norms, and a temporal generalisation following the spirit of the
// paper's reference [7] (Lee & Verleysen, WSOM 2005).
type Norm int

const (
	// L1 is the Manhattan norm: sum of absolute values.
	L1 Norm = iota + 1
	// L2 is the Euclidean norm: square root of the sum of squares.
	L2
	// LInf is the Chebyshev norm: maximum absolute value.
	LInf
)

// String returns the conventional name of the norm.
func (n Norm) String() string {
	switch n {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case LInf:
		return "LInf"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// ErrBadNorm is returned when an unknown Norm value is supplied.
var ErrBadNorm = errors.New("timeseries: unknown norm")

// ErrBadOrder is returned by Lp for orders p < 1.
var ErrBadOrder = errors.New("timeseries: Lp order must be >= 1")

// NormValue computes the requested norm of the series. The norm of an
// empty series is 0 for every norm.
func (s Series) NormValue(n Norm) (float64, error) {
	switch n {
	case L1:
		return s.NormL1(), nil
	case L2:
		return s.NormL2(), nil
	case LInf:
		return s.NormLInf(), nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadNorm, int(n))
	}
}

// NormL1 returns the Manhattan norm (sum of absolute values).
func (s Series) NormL1() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += math.Abs(float64(v))
	}
	return sum
}

// NormL2 returns the Euclidean norm.
func (s Series) NormL2() float64 {
	var sum float64
	for _, v := range s.Values {
		f := float64(v)
		sum += f * f
	}
	return math.Sqrt(sum)
}

// NormLInf returns the Chebyshev norm (maximum absolute value).
func (s Series) NormLInf() float64 {
	var m float64
	for _, v := range s.Values {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// NormLp returns the Lp norm for any order p >= 1. NormLp(1) and
// NormLp(2) agree with NormL1 and NormL2 up to floating-point rounding.
func (s Series) NormLp(p float64) (float64, error) {
	if p < 1 {
		return 0, fmt.Errorf("%w: p=%g", ErrBadOrder, p)
	}
	if math.IsInf(p, +1) {
		return s.NormLInf(), nil
	}
	var sum float64
	for _, v := range s.Values {
		sum += math.Pow(math.Abs(float64(v)), p)
	}
	return math.Pow(sum, 1/p), nil
}

// TemporalLp is an extension beyond the paper: a norm that does see
// temporal structure, addressing the limitation the paper highlights in
// Example 13 ("norms applied on a difference between time-series can
// capture only energy flexibility").
//
// Following the idea of generalising Lp norms for time series (the
// paper's reference [7]), TemporalLp evaluates the Lp norm of the
// cumulative-sum series rather than of the raw series. Applied to the
// difference a−b of two series with equal total energy, TemporalLp(1) is
// the earth-mover distance on the time axis: a unit of energy displaced
// by k time units contributes exactly k. Plain L1/L2 see the same
// displacement as a constant regardless of k.
//
// When the operand's values do not sum to zero (e.g. the difference of
// assignments with different totals), the trailing imbalance also
// accumulates; callers that want a pure displacement metric should
// compare equal-energy profiles (see the displacement measure in
// internal/core).
func (s Series) TemporalLp(p float64) (float64, error) {
	return s.CumulativeSum().NormLp(p)
}

// Distance returns the norm of the pointwise difference between the two
// series over the union of their ranges (missing points read as zero).
func Distance(a, b Series, n Norm) (float64, error) {
	return Sub(a, b).NormValue(n)
}
