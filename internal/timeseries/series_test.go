package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCopiesInput(t *testing.T) {
	in := []int64{1, 2, 3}
	s := New(0, in...)
	in[0] = 99
	if s.Values[0] != 1 {
		t.Fatalf("New must copy its input; got %v", s.Values)
	}
}

func TestConstant(t *testing.T) {
	s := Constant(3, 4, 7)
	if s.Start != 3 || s.Len() != 4 {
		t.Fatalf("Constant range wrong: %v", s)
	}
	for _, v := range s.Values {
		if v != 7 {
			t.Fatalf("Constant value wrong: %v", s)
		}
	}
}

func TestAtOutsideRangeIsZero(t *testing.T) {
	s := New(2, 5, 6)
	cases := []struct {
		t    int
		want int64
	}{
		{1, 0}, {2, 5}, {3, 6}, {4, 0}, {-10, 0},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDefined(t *testing.T) {
	s := New(2, 5, 6)
	if s.Defined(1) || !s.Defined(2) || !s.Defined(3) || s.Defined(4) {
		t.Fatal("Defined boundaries wrong")
	}
}

func TestEndEmptySeries(t *testing.T) {
	var s Series
	if s.End() != 0 || !s.IsEmpty() || s.Len() != 0 {
		t.Fatal("zero Series should be empty with End()==Start")
	}
}

func TestEqual(t *testing.T) {
	a := New(1, 2, 3)
	b := New(1, 2, 3)
	c := New(0, 2, 3)
	d := New(1, 2, 4)
	if !a.Equal(b) {
		t.Error("identical series must be Equal")
	}
	if a.Equal(c) {
		t.Error("different Start must not be Equal")
	}
	if a.Equal(d) {
		t.Error("different Values must not be Equal")
	}
	if !(Series{}).Equal(Series{Start: 9}) {
		t.Error("empty series are Equal regardless of Start")
	}
}

func TestEquivalentZeroPadded(t *testing.T) {
	a := New(1, 0, 5)
	b := New(2, 5)
	if !a.EquivalentZeroPadded(b) {
		t.Error("⟨0,5⟩@1 and ⟨5⟩@2 are the same function of time")
	}
	if a.Equal(b) {
		t.Error("Equal must still distinguish explicit ranges")
	}
	c := New(2, 6)
	if a.EquivalentZeroPadded(c) {
		t.Error("different values must not be equivalent")
	}
}

func TestAddSubUnionDomain(t *testing.T) {
	a := New(0, 1, 2)   // covers 0,1
	b := New(1, 10, 20) // covers 1,2
	sum := Add(a, b)    // covers 0,1,2
	if sum.Start != 0 || sum.Len() != 3 {
		t.Fatalf("Add union range wrong: %v", sum)
	}
	want := []int64{1, 12, 20}
	for i, w := range want {
		if sum.Values[i] != w {
			t.Fatalf("Add = %v, want %v", sum.Values, want)
		}
	}
	diff := Sub(a, b)
	wantD := []int64{1, -8, -20}
	for i, w := range wantD {
		if diff.Values[i] != w {
			t.Fatalf("Sub = %v, want %v", diff.Values, wantD)
		}
	}
}

func TestSubPaperExample5(t *testing.T) {
	// Figure 2 / Example 5: f1 = ([0,1],⟨[0,1]⟩).
	// fmin = ⟨0⟩ at t=0, fmax = ⟨1⟩ at t=1, difference = ⟨0,1⟩ over 0..1.
	fmin := New(0, 0)
	fmax := New(1, 1)
	d := Sub(fmax, fmin)
	if !d.Equal(New(0, 0, 1)) {
		t.Fatalf("difference = %v, want {0..1}⟨0,1⟩", d)
	}
	if d.NormL1() != 1 || d.NormL2() != 1 {
		t.Fatalf("L1=%g L2=%g, want 1 and 1 (paper Example 5)", d.NormL1(), d.NormL2())
	}
}

func TestSubPaperExample13(t *testing.T) {
	// Example 13: f1' = ([0,10],⟨[0,1]⟩) yields ⟨0,…,0,1⟩ with identical norms.
	fmin := New(0, 0)
	fmax := New(10, 1)
	d := Sub(fmax, fmin)
	if d.Len() != 11 {
		t.Fatalf("difference spans %d units, want 11", d.Len())
	}
	if d.NormL1() != 1 || d.NormL2() != 1 {
		t.Fatalf("L1=%g L2=%g, want 1 and 1 (paper Example 13)", d.NormL1(), d.NormL2())
	}
}

func TestSumMinMax(t *testing.T) {
	s := New(0, 3, -1, 4)
	if s.Sum() != 6 {
		t.Errorf("Sum = %d, want 6", s.Sum())
	}
	mn, err := s.Min()
	if err != nil || mn != -1 {
		t.Errorf("Min = %d, %v; want -1", mn, err)
	}
	mx, err := s.Max()
	if err != nil || mx != 4 {
		t.Errorf("Max = %d, %v; want 4", mx, err)
	}
	if _, err := (Series{}).Min(); err == nil {
		t.Error("Min of empty series must error")
	}
	if _, err := (Series{}).Max(); err == nil {
		t.Error("Max of empty series must error")
	}
}

func TestShiftScaleNegate(t *testing.T) {
	s := New(1, 2, -3)
	sh := s.Shift(4)
	if sh.Start != 5 || !New(5, 2, -3).Equal(sh) {
		t.Errorf("Shift wrong: %v", sh)
	}
	if s.Start != 1 {
		t.Error("Shift must not mutate the receiver")
	}
	sc := s.Scale(2)
	if !New(1, 4, -6).Equal(sc) {
		t.Errorf("Scale wrong: %v", sc)
	}
	if !s.Negate().Equal(New(1, -2, 3)) {
		t.Errorf("Negate wrong: %v", s.Negate())
	}
}

func TestCumulativeSum(t *testing.T) {
	s := New(2, 1, 2, 3)
	c := s.CumulativeSum()
	if !c.Equal(New(2, 1, 3, 6)) {
		t.Fatalf("CumulativeSum = %v", c)
	}
}

func TestWindow(t *testing.T) {
	s := New(2, 5, 6)
	w := s.Window(0, 5)
	if !w.Equal(New(0, 0, 0, 5, 6, 0)) {
		t.Fatalf("Window = %v", w)
	}
	// Reversed bounds are normalised.
	w2 := s.Window(5, 0)
	if !w.Equal(w2) {
		t.Fatalf("Window with reversed bounds = %v", w2)
	}
}

func TestString(t *testing.T) {
	s := New(2, 2, 3, 1, 2)
	if got := s.String(); got != "{2..5}⟨2,3,1,2⟩" {
		t.Errorf("String = %q", got)
	}
	if got := (Series{}).String(); got != "{}⟨⟩" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNorms(t *testing.T) {
	s := New(0, 3, -4)
	if s.NormL1() != 7 {
		t.Errorf("L1 = %g, want 7", s.NormL1())
	}
	if s.NormL2() != 5 {
		t.Errorf("L2 = %g, want 5", s.NormL2())
	}
	if s.NormLInf() != 4 {
		t.Errorf("LInf = %g, want 4", s.NormLInf())
	}
}

func TestNormValueDispatch(t *testing.T) {
	s := New(0, 3, -4)
	for _, c := range []struct {
		n    Norm
		want float64
	}{{L1, 7}, {L2, 5}, {LInf, 4}} {
		got, err := s.NormValue(c.n)
		if err != nil || got != c.want {
			t.Errorf("NormValue(%v) = %g, %v; want %g", c.n, got, err, c.want)
		}
	}
	if _, err := s.NormValue(Norm(99)); err == nil {
		t.Error("unknown norm must error")
	}
}

func TestNormStrings(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || LInf.String() != "LInf" {
		t.Error("norm names wrong")
	}
	if Norm(42).String() != "Norm(42)" {
		t.Errorf("unknown norm String = %q", Norm(42).String())
	}
}

func TestNormLp(t *testing.T) {
	s := New(0, 3, -4)
	got, err := s.NormLp(1)
	if err != nil || math.Abs(got-7) > 1e-9 {
		t.Errorf("Lp(1) = %g, %v", got, err)
	}
	got, err = s.NormLp(2)
	if err != nil || math.Abs(got-5) > 1e-9 {
		t.Errorf("Lp(2) = %g, %v", got, err)
	}
	got, err = s.NormLp(math.Inf(1))
	if err != nil || got != 4 {
		t.Errorf("Lp(inf) = %g, %v", got, err)
	}
	if _, err := s.NormLp(0.5); err == nil {
		t.Error("Lp with p<1 must error")
	}
}

func TestTemporalLpSeesTimeShift(t *testing.T) {
	// A unit of energy displaced by k time units has TemporalL1 = k
	// (earth-mover distance), while plain L1 is 2 for any k > 0.
	d1 := Sub(New(1, 1), New(0, 1))   // displacement 1
	d10 := Sub(New(10, 1), New(0, 1)) // displacement 10
	if d1.NormL1() != 2 || d10.NormL1() != 2 {
		t.Fatalf("plain L1 should be blind to displacement: %g, %g",
			d1.NormL1(), d10.NormL1())
	}
	p1, err := d1.TemporalLp(1)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := d10.TemporalLp(1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != 1 || p10 != 10 {
		t.Fatalf("TemporalLp: got %g and %g, want 1 and 10", p1, p10)
	}
}

func TestDistance(t *testing.T) {
	d, err := Distance(New(0, 1, 2), New(0, 1, 2), L1)
	if err != nil || d != 0 {
		t.Errorf("Distance of identical series = %g, %v", d, err)
	}
	d, err = Distance(New(0, 3), New(1, 3), L1)
	if err != nil || d != 6 {
		t.Errorf("Distance of shifted impulses = %g, want 6", d)
	}
}

// randomSeries generates bounded random series for property tests.
func randomSeries(r *rand.Rand) Series {
	n := r.Intn(8)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(41) - 20)
	}
	return Series{Start: r.Intn(10), Values: vals}
}

func TestPropertyAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSeries(r), randomSeries(r)
		return Add(a, b).EquivalentZeroPadded(Add(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySubThenAddRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSeries(r), randomSeries(r)
		return Add(Sub(a, b), b).EquivalentZeroPadded(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSeries(r), randomSeries(r)
		sum := Add(a, b)
		const eps = 1e-9
		return sum.NormL1() <= a.NormL1()+b.NormL1()+eps &&
			sum.NormL2() <= a.NormL2()+b.NormL2()+eps &&
			sum.NormLInf() <= a.NormLInf()+b.NormLInf()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormOrdering(t *testing.T) {
	// For any series: LInf <= L2 <= L1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeries(r)
		const eps = 1e-9
		return s.NormLInf() <= s.NormL2()+eps && s.NormL2() <= s.NormL1()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormAbsoluteHomogeneity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeries(r)
		k := int64(r.Intn(7) - 3)
		scaled := s.Scale(k)
		abs := math.Abs(float64(k))
		const eps = 1e-6
		return math.Abs(scaled.NormL1()-abs*s.NormL1()) < eps &&
			math.Abs(scaled.NormL2()-abs*s.NormL2()) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyShiftPreservesNorms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSeries(r)
		sh := s.Shift(r.Intn(20) - 10)
		return sh.NormL1() == s.NormL1() && sh.NormL2() == s.NormL2()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
