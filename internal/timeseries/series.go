// Package timeseries provides the discrete integer time-series substrate
// used throughout the flex-offer model of Valsomatzis et al. (EDBT/ICDT
// Workshops 2015).
//
// A Series maps a contiguous range of integer time units (the paper's
// domain N0 for time) to integer energy amounts (the paper's domain Z).
// Flex-offer assignments, their minimum/maximum instantiations
// (Definitions 5 and 6) and the differences between them (Definition 7)
// are all Series values.
//
// The package deliberately works on exact integers for values; only norms
// return float64. Operations never mutate their receivers unless the
// method name says so (e.g. AddInPlace).
package timeseries

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEmpty is returned by operations that are undefined on an empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// Series is a time series with integer values over the contiguous time
// range [Start, Start+len(Values)). The zero value is an empty series
// ready to use.
//
// Time units follow the paper's Section 2: the domain is N0, but we store
// Start as int so that intermediate arithmetic (e.g. differences of
// series) never traps; validation of non-negative starts belongs to the
// flex-offer layer.
type Series struct {
	// Start is the time unit of the first value.
	Start int
	// Values holds one energy amount per consecutive time unit.
	Values []int64
}

// New returns a series starting at start with a defensive copy of values.
func New(start int, values ...int64) Series {
	v := make([]int64, len(values))
	copy(v, values)
	return Series{Start: start, Values: v}
}

// Constant returns a series of n copies of value starting at start.
func Constant(start, n int, value int64) Series {
	v := make([]int64, n)
	for i := range v {
		v[i] = value
	}
	return Series{Start: start, Values: v}
}

// Len reports the number of time units the series spans.
func (s Series) Len() int { return len(s.Values) }

// IsEmpty reports whether the series has no values.
func (s Series) IsEmpty() bool { return len(s.Values) == 0 }

// End returns the first time unit after the series, i.e. Start+Len().
// For an empty series End equals Start.
func (s Series) End() int { return s.Start + len(s.Values) }

// At returns the value at time t, or 0 when t is outside the series'
// range. Treating out-of-range points as zero matches the paper's
// Figure 2/Example 5, where assignments positioned at different start
// times are subtracted over the union of their domains.
func (s Series) At(t int) int64 {
	if t < s.Start || t >= s.End() {
		return 0
	}
	return s.Values[t-s.Start]
}

// Defined reports whether t lies inside the series' explicit range.
func (s Series) Defined(t int) bool { return t >= s.Start && t < s.End() }

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	return New(s.Start, s.Values...)
}

// Shift returns a copy of the series displaced by delta time units.
func (s Series) Shift(delta int) Series {
	out := s.Clone()
	out.Start += delta
	return out
}

// Equal reports whether two series are identical in range and values.
// Empty series are equal regardless of their Start.
func (s Series) Equal(o Series) bool {
	if s.IsEmpty() && o.IsEmpty() {
		return true
	}
	if s.Start != o.Start || len(s.Values) != len(o.Values) {
		return false
	}
	for i, v := range s.Values {
		if o.Values[i] != v {
			return false
		}
	}
	return true
}

// EquivalentZeroPadded reports whether the two series agree at every time
// unit when out-of-range points are read as zero. Unlike Equal it treats
// ⟨0,5⟩@1 and ⟨5⟩@2 as the same function over time.
func (s Series) EquivalentZeroPadded(o Series) bool {
	lo, hi := unionRange(s, o)
	for t := lo; t < hi; t++ {
		if s.At(t) != o.At(t) {
			return false
		}
	}
	return true
}

// Sum returns the sum of all values (the total energy of an assignment).
func (s Series) Sum() int64 {
	var total int64
	for _, v := range s.Values {
		total += v
	}
	return total
}

// Min returns the smallest value. It returns ErrEmpty on an empty series.
func (s Series) Min() (int64, error) {
	if s.IsEmpty() {
		return 0, ErrEmpty
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// Max returns the largest value. It returns ErrEmpty on an empty series.
func (s Series) Max() (int64, error) {
	if s.IsEmpty() {
		return 0, ErrEmpty
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// unionRange returns the smallest [lo, hi) covering both series.
func unionRange(a, b Series) (lo, hi int) {
	switch {
	case a.IsEmpty() && b.IsEmpty():
		return 0, 0
	case a.IsEmpty():
		return b.Start, b.End()
	case b.IsEmpty():
		return a.Start, a.End()
	}
	lo, hi = a.Start, a.End()
	if b.Start < lo {
		lo = b.Start
	}
	if b.End() > hi {
		hi = b.End()
	}
	return lo, hi
}

// Add returns the pointwise sum of the two series over the union of their
// ranges, reading missing points as zero.
func Add(a, b Series) Series {
	return combine(a, b, func(x, y int64) int64 { return x + y })
}

// Sub returns a−b pointwise over the union of their ranges, reading
// missing points as zero. This is exactly the paper's Definition 7
// difference between a maximum and a minimum assignment.
func Sub(a, b Series) Series {
	return combine(a, b, func(x, y int64) int64 { return x - y })
}

func combine(a, b Series, op func(x, y int64) int64) Series {
	lo, hi := unionRange(a, b)
	if hi <= lo {
		return Series{}
	}
	out := Series{Start: lo, Values: make([]int64, hi-lo)}
	for t := lo; t < hi; t++ {
		out.Values[t-lo] = op(a.At(t), b.At(t))
	}
	return out
}

// Scale returns the series with every value multiplied by k.
func (s Series) Scale(k int64) Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= k
	}
	return out
}

// Negate returns the series with every value negated. Negating a
// consumption profile yields the equivalent production profile.
func (s Series) Negate() Series { return s.Scale(-1) }

// CumulativeSum returns the running-sum series: out[i] = sum(s[0..i]).
// The cumulative domain is where temporal displacement becomes visible to
// pointwise norms (see TemporalLp in norms.go).
func (s Series) CumulativeSum() Series {
	out := s.Clone()
	var run int64
	for i, v := range out.Values {
		run += v
		out.Values[i] = run
	}
	return out
}

// Window returns the sub-series covering [from, to), reading missing
// points as zero, so the result always has length to−from.
func (s Series) Window(from, to int) Series {
	if to < from {
		from, to = to, from
	}
	out := Series{Start: from, Values: make([]int64, to-from)}
	for t := from; t < to; t++ {
		out.Values[t-from] = s.At(t)
	}
	return out
}

// String renders the series in the paper's notation, e.g. "{2..5}⟨2,3,1,2⟩".
func (s Series) String() string {
	if s.IsEmpty() {
		return "{}⟨⟩"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "{%d..%d}⟨", s.Start, s.End()-1)
	for i, v := range s.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString("⟩")
	return b.String()
}
