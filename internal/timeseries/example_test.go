package timeseries_test

import (
	"fmt"
	"log"

	"flexmeasures/internal/timeseries"
)

// Example reproduces the paper's Figure 2 difference series: the
// maximum assignment minus the minimum assignment of f1 = ([0,1],⟨[0,1]⟩).
func Example() {
	fmin := timeseries.New(0, 0) // ⟨0⟩ at the earliest start
	fmax := timeseries.New(1, 1) // ⟨1⟩ at the latest start
	d := timeseries.Sub(fmax, fmin)
	fmt.Println(d)
	fmt.Println(d.NormL1(), d.NormL2())
	// Output:
	// {0..1}⟨0,1⟩
	// 1 1
}

// ExampleSeries_TemporalLp shows the earth-mover property: one unit of
// energy displaced by k time units scores k, while plain L1 sees 2
// regardless of k.
func ExampleSeries_TemporalLp() {
	near := timeseries.Sub(timeseries.New(1, 1), timeseries.New(0, 1))
	far := timeseries.Sub(timeseries.New(10, 1), timeseries.New(0, 1))
	n, err := near.TemporalLp(1)
	if err != nil {
		log.Fatal(err)
	}
	f, err := far.TemporalLp(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(near.NormL1(), far.NormL1())
	fmt.Println(n, f)
	// Output:
	// 2 2
	// 1 10
}

// ExampleAdd sums two prosumer profiles over the union of their ranges.
func ExampleAdd() {
	a := timeseries.New(0, 1, 2)
	b := timeseries.New(1, 10, 20)
	fmt.Println(timeseries.Add(a, b))
	// Output: {0..2}⟨1,12,20⟩
}
