package persist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/shard"
	"flexmeasures/internal/workload"
)

// fleet builds n reproducible offers with unique IDs.
func fleet(t *testing.T, seed int64, n int) []*flexoffer.FlexOffer {
	t.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(seed)), n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		f.ID = fmt.Sprintf("s%d-%04d", seed, i)
	}
	return offers
}

// batches splits offers into batches of size k.
func batches(offers []*flexoffer.FlexOffer, k int) [][]*flexoffer.FlexOffer {
	var out [][]*flexoffer.FlexOffer
	for len(offers) > 0 {
		n := k
		if n > len(offers) {
			n = len(offers)
		}
		out = append(out, offers[:n])
		offers = offers[n:]
	}
	return out
}

func openTestWAL(t *testing.T, o Options) *WALStore {
	t.Helper()
	if o.Router.Shards == 0 {
		o.Router = shard.Router{Shards: 2}
	}
	w, err := OpenWAL(o)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// storesEqual pins two stores' entire observable state against each
// other: per-shard entries (offers, seqs, order) and the counter.
func storesEqual(t *testing.T, got, want Store) {
	t.Helper()
	if !reflect.DeepEqual(got.Snapshot(), want.Snapshot()) {
		t.Fatalf("stores diverge:\n got  %v (len %d)\n want %v (len %d)",
			got.ShardLens(), got.Len(), want.ShardLens(), want.Len())
	}
}

func TestWALRoundtrip(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			r := shard.Router{Shards: shards}
			w := openTestWAL(t, Options{Dir: dir, Router: r})
			mem := NewMemory(r)
			for _, b := range batches(fleet(t, 1, 57), 10) {
				if _, _, err := w.Add(context.Background(), b); err != nil {
					t.Fatal(err)
				}
				mem.Add(context.Background(), b)
			}
			// Re-adding some offers exercises replace records; deleting
			// exercises delete records.
			dup := fleet(t, 1, 57)[10:20]
			w.Add(context.Background(), dup)
			mem.Add(context.Background(), dup)
			ids := []string{"s1-0003", "s1-0042", "absent"}
			w.Delete(context.Background(), ids)
			mem.Delete(context.Background(), ids)
			storesEqual(t, w, mem)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			re := openTestWAL(t, Options{Dir: dir, Router: r})
			defer re.Close()
			storesEqual(t, re, mem)
			if re.Seq() != mem.Seq() {
				t.Fatalf("replayed seq %d, want %d", re.Seq(), mem.Seq())
			}
			if st := re.Stats(); st.DroppedBytes != 0 || st.Records == 0 {
				t.Fatalf("unexpected replay stats %+v", st)
			}
		})
	}
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	names, err := OS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 3}
	o := Options{Dir: dir, Router: r, SegmentBytes: 1, SnapshotEvery: 20, SyncSnapshots: true}
	w := openTestWAL(t, o)
	mem := NewMemory(r)
	for _, b := range batches(fleet(t, 2, 90), 7) {
		if _, _, err := w.Add(context.Background(), b); err != nil {
			t.Fatal(err)
		}
		mem.Add(context.Background(), b)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var snaps, logs []uint64
	for _, name := range dirNames(t, dir) {
		n, kind, ok := parseName(name)
		if !ok {
			t.Fatalf("foreign file %q in WAL dir", name)
		}
		if kind == kindSnapshot {
			snaps = append(snaps, n)
		} else {
			logs = append(logs, n)
		}
	}
	if len(snaps) != 1 {
		t.Fatalf("found %d snapshots after compaction, want 1 (%v)", len(snaps), dirNames(t, dir))
	}
	for _, n := range logs {
		if n < snaps[0] {
			t.Fatalf("segment %d survived compaction below snapshot %d", n, snaps[0])
		}
	}
	if len(logs) < 2 {
		t.Fatalf("SegmentBytes=1 produced only %d segments", len(logs))
	}

	re := openTestWAL(t, o)
	defer re.Close()
	storesEqual(t, re, mem)
	if re.Seq() != mem.Seq() {
		t.Fatalf("replayed seq %d, want %d", re.Seq(), mem.Seq())
	}
	if st := re.Stats(); st.SnapshotRecords == 0 {
		t.Fatalf("replay did not use the snapshot: %+v", st)
	}
}

// TestWALResetDurable pins the satellite requirement: a reset rewrites
// the persistent state, so pre-reset offers cannot resurrect on reboot.
func TestWALResetDurable(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 2}
	w := openTestWAL(t, Options{Dir: dir, Router: r})
	if _, _, err := w.Add(context.Background(), fleet(t, 3, 40)); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(context.Background()); err != nil {
		t.Fatal(err)
	}
	post := fleet(t, 4, 5)
	w.Add(context.Background(), post)
	mem := NewMemory(r)
	mem.Add(context.Background(), post)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestWAL(t, Options{Dir: dir, Router: r})
	defer re.Close()
	if got := shard.Flatten(re.Snapshot()); len(got) != len(post) {
		t.Fatalf("reboot resurrected offers: %d stored, want %d", len(got), len(post))
	}
	if !reflect.DeepEqual(re.Snapshot(), mem.Snapshot()) {
		t.Fatal("post-reset offers diverge after reboot")
	}
	// The reset must also have compacted: no pre-reset record should
	// even be read at boot.
	if st := re.Stats(); st.SnapshotRecords != 0 || st.Records != len(post) {
		t.Fatalf("boot read pre-reset history: %+v", st)
	}
}

// finalSegment returns the path of the highest-numbered log segment.
func finalSegment(t *testing.T, dir string) string {
	t.Helper()
	var best string
	var bestN uint64
	for _, name := range dirNames(t, dir) {
		if n, kind, ok := parseName(name); ok && kind == kindLog && (best == "" || n > bestN) {
			best, bestN = name, n
		}
	}
	if best == "" {
		t.Fatal("no log segment found")
	}
	return filepath.Join(dir, best)
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 2}
	w := openTestWAL(t, Options{Dir: dir, Router: r})
	offers := fleet(t, 5, 12)
	if _, _, err := w.Add(context.Background(), offers); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a few garbage bytes past the last
	// complete record.
	seg := finalSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTestWAL(t, Options{Dir: dir, Router: r})
	if st := re.Stats(); st.DroppedBytes != 3 {
		t.Fatalf("DroppedBytes = %d, want 3", st.DroppedBytes)
	}
	if re.Len() != len(offers) {
		t.Fatalf("torn tail cost %d offers", len(offers)-re.Len())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// The tear was truncated away: the next boot is clean.
	re2 := openTestWAL(t, Options{Dir: dir, Router: r})
	defer re2.Close()
	if st := re2.Stats(); st.DroppedBytes != 0 {
		t.Fatalf("torn tail not repaired: DroppedBytes = %d on second boot", st.DroppedBytes)
	}
}

func TestWALMidLogCorruptionLoud(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 2}
	w := openTestWAL(t, Options{Dir: dir, Router: r})
	if _, _, err := w.Add(context.Background(), fleet(t, 6, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := finalSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record's payload: far from the tail, so
	// this must read as corruption, not as a torn tail.
	data[logHeaderLen+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(Options{Dir: dir, Router: r}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption opened with error %v, want ErrCorruptLog", err)
	}
}

func TestWALForeignDirRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(Options{Dir: dir, Router: shard.Router{Shards: 1}}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("foreign file opened with error %v, want ErrCorruptLog", err)
	}
}

// TestWALDegradedOnWriteFailure drives the graceful-degradation path: a
// dead disk flips the store read-only instead of crashing or lying.
func TestWALDegradedOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 2}
	ffs := &FaultFS{Inner: OS()}
	w := openTestWAL(t, Options{Dir: dir, Router: r, FS: ffs})
	first := fleet(t, 7, 8)
	if _, _, err := w.Add(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	// Everything from here on fails at the disk.
	ffs.FailWriteAt = 1
	ffs.FailSyncAt = 1

	_, _, err := w.Add(context.Background(), fleet(t, 8, 4))
	if !errors.Is(err, ErrDegraded) || !errors.Is(w.Err(), ErrInjected) {
		t.Fatalf("failed add: err %v, store err %v", err, w.Err())
	}
	if w.Len() != len(first) {
		t.Fatalf("failed batch applied: len %d, want %d", w.Len(), len(first))
	}
	// Sticky: later mutations are refused outright, reads keep serving.
	if _, _, err := w.Add(context.Background(), fleet(t, 9, 2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("add on degraded store: %v, want ErrDegraded", err)
	}
	if _, _, err := w.Delete(context.Background(), []string{"s7-0001"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("delete on degraded store: %v, want ErrDegraded", err)
	}
	if err := w.Reset(context.Background()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("reset on degraded store: %v, want ErrDegraded", err)
	}
	if got := len(shard.Flatten(w.Snapshot())); got != len(first) {
		t.Fatalf("degraded reads broken: %d offers, want %d", got, len(first))
	}
	w.Close()

	// The failed batch never reached the disk, so a reboot (with the
	// disk healthy again) serves exactly the pre-failure state.
	mem := NewMemory(r)
	mem.Add(context.Background(), first)
	re := openTestWAL(t, Options{Dir: dir, Router: r})
	defer re.Close()
	storesEqual(t, re, mem)
	if re.Err() != nil {
		t.Fatalf("reopened store is degraded: %v", re.Err())
	}
}

// TestWALDegradedOnSyncFailure covers the fsync-failure flavor: the
// append landed in the page cache but durability is unknown, so the
// store degrades all the same.
func TestWALDegradedOnSyncFailure(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 2}
	ffs := &FaultFS{Inner: OS(), FailSyncAt: 2}
	w := openTestWAL(t, Options{Dir: dir, Router: r, FS: ffs})
	first := fleet(t, 10, 6)
	if _, _, err := w.Add(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Add(context.Background(), fleet(t, 11, 3)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("add past sync failure: %v, want ErrDegraded", err)
	}
	if w.Len() != len(first) {
		t.Fatalf("unsynced batch applied: len %d, want %d", w.Len(), len(first))
	}
	w.Close()
}

func TestWALFsyncInterval(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Inner: OS()}
	w := openTestWAL(t, Options{
		Dir: dir, Router: shard.Router{Shards: 1},
		FS: ffs, Fsync: FsyncInterval, FsyncInterval: time.Millisecond,
	})
	if _, _, err := w.Add(context.Background(), fleet(t, 12, 3)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ffs.Syncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALHammer runs concurrent ingest, deletes, resets-free snapshot
// pressure and compaction on one store, then proves the log it left
// behind still replays to exactly the final in-memory state. Run with
// -race this doubles as the locking test for the WAL's background
// snapshot and sync machinery.
func TestWALHammer(t *testing.T) {
	dir := t.TempDir()
	r := shard.Router{Shards: 4}
	w := openTestWAL(t, Options{
		Dir: dir, Router: r,
		Fsync:         FsyncInterval,
		FsyncInterval: time.Millisecond,
		SegmentBytes:  4 << 10,
		SnapshotEvery: 50, // constant snapshot + compaction churn
	})
	const writers = 4
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			offers := fleet(t, int64(100+g), 120)
			for _, b := range batches(offers, 6) {
				if _, _, err := w.Add(context.Background(), b); err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
			// Delete a slice of what this writer just added, so delete
			// records interleave with everyone else's appends.
			var ids []string
			for _, f := range offers[:30] {
				ids = append(ids, f.ID)
			}
			if _, _, err := w.Delete(context.Background(), ids); err != nil {
				t.Errorf("writer %d delete: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	want := w.Snapshot()
	wantSeq := w.Seq()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestWAL(t, Options{Dir: dir, Router: r})
	defer re.Close()
	if !reflect.DeepEqual(re.Snapshot(), want) {
		t.Fatalf("replay diverges from live store: %v vs %v", re.ShardLens(), shardLensOf(want))
	}
	if re.Seq() != wantSeq {
		t.Fatalf("replayed seq %d, want %d", re.Seq(), wantSeq)
	}
	if re.Len() != writers*(120-30) {
		t.Fatalf("final len %d, want %d", re.Len(), writers*(120-30))
	}
}

func shardLensOf(parts [][]shard.Entry) []int {
	lens := make([]int, len(parts))
	for i, p := range parts {
		lens[i] = len(p)
	}
	return lens
}

func TestWALOpenRequiresDir(t *testing.T) {
	if _, err := OpenWAL(Options{}); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("OpenWAL without Dir: %v", err)
	}
}
