package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the writable handle the WAL appends to. Sync must not return
// until previously written bytes are durable (fsync semantics).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem seam under the WAL. Production uses OS();
// tests inject a FaultFS to fail, short-write or error any chosen
// write or sync, which is how the crash-matrix and degraded-mode tests
// drive the failure paths deterministically. Every method takes full
// paths (the WAL joins its directory itself).
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes — boot-time torn-tail repair.
	Truncate(name string, size int64) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func join(dir, name string) string                  { return filepath.Join(dir, name) }

// ErrInjected is the root of every failure a FaultFS injects, so tests
// can assert the degraded path tripped on the injection and not on some
// accidental real error.
var ErrInjected = fmt.Errorf("persist: injected fault")

// FaultFS wraps an FS and injects failures: the Nth write (1-based,
// counted across all files it created) fails — optionally persisting
// only the first half of the buffer first, a short write, the torn-tail
// shape a power cut leaves — and likewise for the Nth sync. Once a
// fault fires, every later write and sync on files from this FS fails
// too: a dead disk does not come back. Reads are never disturbed, so a
// store can replay from a directory whose writer was killed mid-record.
type FaultFS struct {
	Inner FS
	// FailWriteAt fails the Nth Write call; 0 disables.
	FailWriteAt int
	// ShortWrite, when a write fails, persists the first half of the
	// buffer before reporting the error (a torn write).
	ShortWrite bool
	// FailSyncAt fails the Nth Sync call; 0 disables.
	FailSyncAt int

	mu     sync.Mutex
	writes int
	syncs  int
	dead   bool
}

// Writes reports how many Write calls the FS has seen — run a scenario
// once to count, then re-run with FailWriteAt sweeping 1..Writes().
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs reports how many Sync calls the FS has seen.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *FaultFS) MkdirAll(dir string) error { return f.Inner.MkdirAll(dir) }

func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) { return f.Inner.Open(name) }
func (f *FaultFS) ReadDir(dir string) ([]string, error)    { return f.Inner.ReadDir(dir) }
func (f *FaultFS) Remove(name string) error                { return f.Inner.Remove(name) }
func (f *FaultFS) Rename(oldname, newname string) error    { return f.Inner.Rename(oldname, newname) }
func (f *FaultFS) Truncate(name string, size int64) error  { return f.Inner.Truncate(name, size) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	fail := f.dead || (f.FailWriteAt > 0 && f.writes >= f.FailWriteAt)
	short := fail && !f.dead && f.ShortWrite
	if fail {
		f.dead = true
	}
	f.mu.Unlock()
	if !fail {
		return ff.inner.Write(p)
	}
	if short && len(p) > 1 {
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	return 0, fmt.Errorf("%w: write failure", ErrInjected)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	f.syncs++
	fail := f.dead || (f.FailSyncAt > 0 && f.syncs >= f.FailSyncAt)
	if fail {
		f.dead = true
	}
	f.mu.Unlock()
	if !fail {
		return ff.inner.Sync()
	}
	return fmt.Errorf("%w: sync failure", ErrInjected)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
