package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/shard"
)

// mkOffer builds a small valid offer with the given ID and zone.
func mkOffer(t *testing.T, id, zone string) *flexoffer.FlexOffer {
	t.Helper()
	f, err := flexoffer.New(0, 4, flexoffer.Slice{Min: 1, Max: 5}, flexoffer.Slice{Min: 0, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.ID, f.Zone = id, zone
	return f
}

// testMutations is one of every op, with both codec versions (zoned
// offers encode as FXO2, zoneless as FXO1).
func testMutations(t *testing.T) []shard.Mutation {
	t.Helper()
	return []shard.Mutation{
		{Op: shard.OpAdd, Shard: 0, Seq: 0, Offer: mkOffer(t, "a", "")},
		{Op: shard.OpAdd, Shard: 2, Seq: 1, Offer: mkOffer(t, "b", "dk1")},
		{Op: shard.OpReplace, Shard: 2, Seq: 1, Offer: mkOffer(t, "b", "dk1")},
		{Op: shard.OpDelete, Shard: 2, Seq: 1},
		{Op: shard.OpReset},
	}
}

func encodeAll(t *testing.T, muts []shard.Mutation) []byte {
	t.Helper()
	var buf []byte
	var err error
	for _, m := range muts {
		if buf, err = appendRecord(buf, m); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestRecordRoundtrip(t *testing.T) {
	muts := testMutations(t)
	buf := encodeAll(t, muts)
	recs, goodLen, err := scanFrames(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if goodLen != int64(len(buf)) {
		t.Fatalf("goodLen = %d, want %d", goodLen, len(buf))
	}
	if len(recs) != len(muts) {
		t.Fatalf("scanned %d records, want %d", len(recs), len(muts))
	}
	for i, r := range recs {
		got, err := decodeMutation(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, muts[i]) {
			t.Fatalf("record %d roundtripped to %+v, want %+v", i, got, muts[i])
		}
	}
}

// TestRecordTornTail truncates an encoded stream at every byte length
// and checks the trichotomy: a cut at a record boundary scans clean,
// anywhere else reports a torn (never corrupt) tail with goodLen at the
// preceding boundary.
func TestRecordTornTail(t *testing.T) {
	muts := testMutations(t)
	buf := encodeAll(t, muts)
	boundaries := map[int64]int{0: 0} // byte offset → records before it
	var off int64
	for i, m := range muts {
		b, err := appendRecord(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		off += int64(len(b))
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(buf); cut++ {
		recs, goodLen, err := scanFrames(buf[:cut], nil)
		want, atBoundary := boundaries[int64(cut)]
		if atBoundary {
			if err != nil {
				t.Fatalf("cut %d (boundary): unexpected error %v", cut, err)
			}
			if len(recs) != want || goodLen != int64(cut) {
				t.Fatalf("cut %d: got %d records, goodLen %d, want %d, %d", cut, len(recs), goodLen, want, cut)
			}
			continue
		}
		if !errors.Is(err, errTornRecord) {
			t.Fatalf("cut %d (mid-record): error %v, want torn", cut, err)
		}
		if _, ok := boundaries[goodLen]; !ok {
			t.Fatalf("cut %d: goodLen %d is not a record boundary", cut, goodLen)
		}
	}
}

// TestRecordCorruption flips each byte of the stream and checks that
// damage is never silent: anywhere but inside the final record it is
// loud (corrupt), inside the final record it reads as a torn tail (the
// one shape recovery may drop).
func TestRecordCorruption(t *testing.T) {
	muts := testMutations(t)
	buf := encodeAll(t, muts)
	last, err := appendRecord(nil, muts[len(muts)-1])
	if err != nil {
		t.Fatal(err)
	}
	finalStart := len(buf) - len(last)
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		recs, _, err := scanFrames(bad, nil)
		switch {
		case err == nil:
			// A flip in a length field can make an earlier record
			// swallow its successors so the stream still frames — but
			// then the CRC must have caught it, so err == nil means the
			// decode went wrong.
			t.Fatalf("flip at %d scanned clean (%d records)", i, len(recs))
		case errors.Is(err, errTornRecord):
			if i < finalStart {
				// Tolerable only if the flip made an earlier frame
				// claim bytes through the end of the stream (length
				// field grew); the CRC then fails on what is now the
				// final record. Data is still not silently used.
				continue
			}
		case errors.Is(err, ErrCorruptRecord):
			// Loud, as it should be.
		default:
			t.Fatalf("flip at %d: unexpected error %v", i, err)
		}
	}
}

func TestRecordImplausibleLength(t *testing.T) {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, maxPayloadBytes+1)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = append(buf, make([]byte, 16)...)
	if _, _, err := scanFrames(buf, nil); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("implausible length: error %v, want corrupt", err)
	}
}

func TestSplitRecordValidation(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown op", []byte{99, 0, 0}},
		{"add without body", []byte{byte(shard.OpAdd), 0, 0}},
		{"delete with body", append([]byte{byte(shard.OpDelete), 0, 0}, 'x')},
		{"truncated varints", []byte{byte(shard.OpAdd)}},
	}
	for _, tc := range cases {
		if _, err := splitRecord(tc.payload); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("%s: error %v, want corrupt", tc.name, err)
		}
	}
}

func TestParseName(t *testing.T) {
	for _, n := range []uint64{0, 7, 123456789} {
		if got, kind, ok := parseName(segName(n)); !ok || got != n || kind != kindLog {
			t.Fatalf("parseName(segName(%d)) = %d, %c, %t", n, got, kind, ok)
		}
		if got, kind, ok := parseName(snapName(n)); !ok || got != n || kind != kindSnapshot {
			t.Fatalf("parseName(snapName(%d)) = %d, %c, %t", n, got, kind, ok)
		}
	}
	for _, name := range []string{"", "wal-.log", "wal-12x4.log", "other.txt", "wal-0001.tmp", segName(3) + ".tmp"} {
		if _, _, ok := parseName(name); ok {
			t.Fatalf("parseName(%q) accepted a foreign name", name)
		}
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "off"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
	_ = fmt.Sprintf("%s", FsyncPolicy(42)) // String must not panic on unknowns
}
