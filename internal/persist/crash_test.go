// Crash-matrix tests (external test package: they drive the WAL purely
// through its public surface plus the on-disk format, and compare
// against the engine/server stack, which OpenWAL's own package cannot
// import).
package persist_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	flex "flexmeasures"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/persist"
	"flexmeasures/internal/server"
	"flexmeasures/internal/shard"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// segmentHeaderLen is the public on-disk fact the matrix needs: every
// segment starts with the 4-byte magic plus a kind byte.
const segmentHeaderLen = 5

func crashFleet(t *testing.T, seed int64, n int) []*flexoffer.FlexOffer {
	t.Helper()
	offers, err := workload.Population(rand.New(rand.NewSource(seed)), n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range offers {
		f.ID = fmt.Sprintf("c%d-%04d", seed, i)
	}
	return offers
}

// copyDir clones the WAL directory into a fresh tempdir — the "disk
// image at the moment of the crash".
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// scheduleBytes renders the exact /v1/schedule body the server would
// stream for this store state, through a shards×workers engine.
func scheduleBytes(t *testing.T, parts [][]flex.RoutedOffer, shards, workers int) []byte {
	t.Helper()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	se := flex.NewSharded(shards, flex.WithWorkers(workers), flex.WithSafe(true))
	defer se.Close()
	const horizon = 48
	level := server.FlatTargetLevelRouted(parts, horizon, -1)
	target := timeseries.Constant(0, horizon, level)
	res, err := se.PipelineRouted(context.Background(), parts, target)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := server.StreamScheduleResponse(&buf, server.BuildScheduleResponse(total, res, target, horizon, level)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashMatrix kills a WAL-backed store at every record boundary —
// and inside records — by truncating its log to that point, reboots
// from the truncated image, and pins the replayed store bit-identical
// to an in-memory store fed the same mutation prefix. Spot cuts also
// pin the /v1/schedule bytes against the uncrashed server's.
func TestCrashMatrix(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			r := shard.Router{Shards: shards}
			opts := persist.Options{
				Dir: dir, Router: r,
				Fsync:         persist.FsyncOff,
				SnapshotEvery: -1,      // keep every record in one inspectable log
				SegmentBytes:  1 << 30, // no rotation either
			}
			w, err := persist.OpenWAL(opts)
			if err != nil {
				t.Fatal(err)
			}
			mem := persist.NewMemory(r)
			var muts []shard.Mutation
			apply := func(ms []shard.Mutation, _ int, err error) {
				if err != nil {
					t.Fatal(err)
				}
				muts = append(muts, ms...)
			}
			offers := crashFleet(t, 1, 30)
			apply(w.Add(context.Background(), offers[:12]))
			mem.Add(context.Background(), offers[:12])
			apply(w.Add(context.Background(), offers[12:])) // rest of the fleet
			mem.Add(context.Background(), offers[12:])
			apply(w.Add(context.Background(), offers[5:9])) // re-ingest: replace records
			mem.Add(context.Background(), offers[5:9])
			ids := []string{offers[0].ID, offers[20].ID}
			apply(w.Delete(context.Background(), ids))
			mem.Delete(context.Background(), ids)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Locate the single log segment and derive the record
			// boundaries from the length fields alone.
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) != 1 {
				t.Fatalf("expected exactly one segment, found %v (%v)", ents, err)
			}
			seg := filepath.Join(dir, ents[0].Name())
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			boundaries := []int64{segmentHeaderLen}
			for off := int64(segmentHeaderLen); off < int64(len(data)); {
				off += 8 + int64(binary.LittleEndian.Uint32(data[off:]))
				boundaries = append(boundaries, off)
			}
			if len(boundaries)-1 != len(muts) {
				t.Fatalf("log frames %d records, mutation oracle has %d", len(boundaries)-1, len(muts))
			}

			reboot := func(cut int64) persist.Store {
				img := copyDir(t, dir)
				if err := os.Truncate(filepath.Join(img, ents[0].Name()), cut); err != nil {
					t.Fatal(err)
				}
				re, err := persist.OpenWAL(persist.Options{Dir: img, Router: r})
				if err != nil {
					t.Fatalf("cut %d: reboot failed: %v", cut, err)
				}
				return re
			}
			prefix := func(k int) *shard.Stores {
				st := shard.NewStores(r)
				if err := st.Apply(muts[:k]); err != nil {
					t.Fatalf("prefix %d: %v", k, err)
				}
				return st
			}

			for k, cut := range boundaries {
				// The boundary cut itself plus cuts inside the next
				// record (partial header, partial payload): all must
				// reboot to exactly the first k mutations.
				cuts := []int64{cut}
				if cut < int64(len(data)) {
					for _, delta := range []int64{3, 9} {
						if cut+delta < int64(len(data)) && k < len(boundaries)-1 && cut+delta < boundaries[k+1] {
							cuts = append(cuts, cut+delta)
						}
					}
				}
				want := prefix(k)
				for _, c := range cuts {
					re := reboot(c)
					if !reflect.DeepEqual(re.Snapshot(), want.Snapshot()) {
						re.Close()
						t.Fatalf("cut %d (record %d): replayed store diverges from prefix", c, k)
					}
					if got, wantSeq := seqOf(re), want.Seq(); got != wantSeq {
						re.Close()
						t.Fatalf("cut %d: replayed seq %d, want %d", c, got, wantSeq)
					}
					re.Close()
				}
			}

			// Spot-check the serving bytes, not just the store layout:
			// a reboot from mid-history must schedule exactly like a
			// server that only ever saw that prefix — and a reboot from
			// the full log exactly like the uncrashed server.
			for _, k := range []int{len(muts) / 2, len(muts)} {
				re := reboot(boundaries[k])
				got := scheduleBytes(t, re.Snapshot(), shards, 2)
				want := scheduleBytes(t, prefix(k).Snapshot(), shards, 2)
				re.Close()
				if !bytes.Equal(got, want) {
					t.Fatalf("prefix %d: schedule bytes diverge after reboot", k)
				}
			}
		})
	}
}

func seqOf(s persist.Store) uint64 {
	switch v := s.(type) {
	case *persist.WALStore:
		return v.Seq()
	case *persist.MemStore:
		return v.Seq()
	}
	return 0
}

// TestCrashDuringSnapshot kills the writer at every write/sync of a
// scenario that includes snapshot publication and compaction, then
// reboots from whatever the disk holds. The snapshot's tmp+rename
// protocol means every kill point must recover the full pre-kill
// state — a half-written snapshot is ignored, a published one replaces
// exactly the records it covers.
func TestCrashDuringSnapshot(t *testing.T) {
	r := shard.Router{Shards: 2}
	scenario := func(ffs *persist.FaultFS, dir string) {
		w, err := persist.OpenWAL(persist.Options{
			Dir: dir, Router: r, FS: ffs,
			SnapshotEvery: 8, SyncSnapshots: true, SegmentBytes: 1 << 30,
		})
		if err != nil {
			return // the kill landed in open/replay; the image still matters
		}
		offers := crashFleet(t, 2, 30)
		for i := 0; i+5 <= len(offers); i += 5 {
			if _, _, err := w.Add(context.Background(), offers[i:i+5]); err != nil {
				break // degraded mid-scenario: stop writing, like a real server
			}
		}
		w.Close()
	}

	// Count the writes and syncs of a clean run, then re-run killing at
	// each one.
	counter := &persist.FaultFS{Inner: persist.OS()}
	cleanDir := t.TempDir()
	scenario(counter, cleanDir)
	clean, err := persist.OpenWAL(persist.Options{Dir: cleanDir, Router: r})
	if err != nil {
		t.Fatal(err)
	}
	wantLen := clean.Len()
	clean.Close()
	if counter.Writes() < 10 {
		t.Fatalf("scenario too small: only %d writes", counter.Writes())
	}

	for _, short := range []bool{false, true} {
		for at := 1; at <= counter.Writes(); at++ {
			dir := t.TempDir()
			scenario(&persist.FaultFS{Inner: persist.OS(), FailWriteAt: at, ShortWrite: short}, dir)
			re, err := persist.OpenWAL(persist.Options{Dir: dir, Router: r})
			if err != nil {
				t.Fatalf("kill at write %d (short=%t): reboot failed: %v", at, short, err)
			}
			// The kill can land anywhere in the ingest stream, so the
			// recovered store is some per-record prefix of it — never
			// more than the clean run, never torn mid-offer, and always
			// schedulable.
			if re.Len() > wantLen {
				t.Fatalf("kill at write %d: recovered %d offers, clean run had %d", at, re.Len(), wantLen)
			}
			if re.Len() > 0 {
				_ = scheduleBytes(t, re.Snapshot(), 2, 2)
			}
			re.Close()
		}
		for at := 1; at <= counter.Syncs(); at++ {
			dir := t.TempDir()
			scenario(&persist.FaultFS{Inner: persist.OS(), FailSyncAt: at}, dir)
			re, err := persist.OpenWAL(persist.Options{Dir: dir, Router: r})
			if err != nil {
				t.Fatalf("kill at sync %d: reboot failed: %v", at, err)
			}
			if re.Len() > wantLen {
				t.Fatalf("kill at sync %d: recovered %d offers, clean run had %d", at, re.Len(), wantLen)
			}
			re.Close()
		}
	}
}
