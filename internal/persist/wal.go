package persist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/pool"
	"flexmeasures/internal/shard"
)

// FsyncPolicy decides when the WAL forces appended records to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append batch: a 2xx ingest response
	// means the records are on disk.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer: a crash loses at most
	// the last interval's records, in exchange for append throughput.
	FsyncInterval
	// FsyncOff never calls fsync: durability is whatever the OS page
	// cache survives. Process crashes lose nothing; power cuts may.
	FsyncOff
)

// ParseFsyncPolicy parses the flexd -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf(`persist: fsync policy must be "always", "interval" or "off", got %q`, s)
}

// String names the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// Options configures OpenWAL.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Router shapes the store the log replays into; it must match the
	// serving engine's shard count.
	Router shard.Router
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// Fsync is the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period under FsyncInterval (default
	// 100ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery takes a snapshot and compacts the log every this
	// many appended records (default 100000; negative disables).
	SnapshotEvery int
	// SyncSnapshots writes snapshots inside the mutating call instead
	// of in the background — deterministic file layouts for tests.
	SyncSnapshots bool
	// Executor fans the replay offer decode out across a worker pool
	// (nil: serial decode).
	Executor pool.Executor
	// Metrics, when non-nil, receives wal_append/wal_fsync latency
	// observations for work that runs outside any request trace —
	// interval syncs, segment seals, snapshot syncs. Request-path
	// appends report through the request's trace instead (the two
	// sinks are the same object when flexd wires its tracer here).
	Metrics *obs.Metrics
}

// ReplayStats describes one boot-time recovery.
type ReplayStats struct {
	// SnapshotRecords is how many entries the newest snapshot restored.
	SnapshotRecords int
	// Records is how many log records were replayed on top.
	Records int
	// Segments is how many log segments were read.
	Segments int
	// Bytes is the total bytes read.
	Bytes int64
	// DroppedBytes is the torn tail truncated away, if any.
	DroppedBytes int64
	// Duration is the wall time of the recovery.
	Duration time.Duration
}

// WALStore is the durable offer store: a shard.Stores whose every
// mutation is first appended to a write-ahead log. Records are framed
// with length + CRC-32C and carry the op, shard and sequence number
// plus the offer in the FXO1/FXO2 binary codec; replaying them through
// shard.Stores.Apply — the same code the live path uses — reproduces
// the store bit-identically, copy-on-write layout included.
//
// The log is segmented (SegmentBytes), periodically folded into a
// snapshot (itself just a compacted segment of add records plus the
// sequence counter) and compacted. On boot, the newest snapshot loads
// first, then the segments after it replay with the offer decode
// fanned out over the worker pool. A truncated or CRC-failing final
// record — the shape a crash leaves — is dropped and repaired; any
// earlier corruption fails Open loudly.
//
// Failure is sticky: the first write or sync error flips the store
// into a degraded state in which every further mutation is refused
// (Err reports the cause) while reads keep serving — flexd maps this
// to 503-on-ingest, read-only otherwise.
type WALStore struct {
	o  Options
	fs FS
	st *shard.Stores

	// mu serializes mutations and the segment lifecycle. Stage → append
	// → apply runs under it, so the log's record order is exactly the
	// store's mutation order — the invariant replay depends on.
	mu         sync.Mutex
	active     File
	activeName string
	activeSize int64
	nextSeg    uint64
	sinceSnap  int
	snapBusy   bool
	closed     bool

	errMu    sync.Mutex
	firstErr error

	snapWG   sync.WaitGroup
	tickWG   sync.WaitGroup
	stopTick chan struct{}

	stats ReplayStats
}

// Segment header: magic + kind byte; snapshots append the sequence
// counter as a uvarint.
const (
	walMagic     = "FXW1"
	kindLog      = byte('L')
	kindSnapshot = byte('S')
	logHeaderLen = 5
)

// ErrCorruptLog marks unrecoverable log damage found during Open —
// anything beyond a torn final record. Refusing to start beats serving
// a silently incomplete offer book.
var ErrCorruptLog = errors.New("persist: corrupt WAL")

// ErrDegraded wraps the first write failure; every refused mutation on
// a degraded store returns an error chaining to it.
var ErrDegraded = errors.New("persist: WAL degraded")

// OpenWAL opens (or creates) the WAL in o.Dir, replays it into a fresh
// store, repairs a torn tail, and arms a new active segment.
func OpenWAL(o Options) (*WALStore, error) {
	if o.Dir == "" {
		return nil, errors.New("persist: Options.Dir is required")
	}
	if o.FS == nil {
		o.FS = OS()
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 100_000
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		return nil, fmt.Errorf("persist: creating %s: %w", o.Dir, err)
	}
	w := &WALStore{o: o, fs: o.FS, st: shard.NewStores(o.Router)}
	if err := w.replay(); err != nil {
		return nil, err
	}
	if err := w.openActiveLocked(); err != nil {
		return nil, err
	}
	if o.Fsync == FsyncInterval {
		w.stopTick = make(chan struct{})
		w.tickWG.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

func segName(n uint64) string  { return fmt.Sprintf("wal-%016d.log", n) }
func snapName(n uint64) string { return fmt.Sprintf("wal-%016d.snap", n) }

// parseName inverts segName/snapName; ok is false for foreign files.
func parseName(name string) (n uint64, kind byte, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		rest, kind = name[4:len(name)-4], kindLog
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".snap"):
		rest, kind = name[4:len(name)-5], kindSnapshot
	default:
		return 0, 0, false
	}
	if len(rest) == 0 {
		return 0, 0, false
	}
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, kind, true
}

func (w *WALStore) readFile(name string) ([]byte, error) {
	f, err := w.fs.Open(join(w.o.Dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// replay rebuilds the store from disk: newest snapshot first, then
// every log segment after it, in order.
func (w *WALStore) replay() error {
	start := time.Now()
	names, err := w.fs.ReadDir(w.o.Dir)
	if err != nil {
		return fmt.Errorf("persist: listing %s: %w", w.o.Dir, err)
	}
	var logs []uint64
	var snaps []uint64
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// A snapshot whose writer died before the rename; its data is
			// fully covered by the segments it would have replaced.
			_ = w.fs.Remove(join(w.o.Dir, name))
			continue
		}
		n, kind, ok := parseName(name)
		if !ok {
			continue
		}
		if kind == kindSnapshot {
			snaps = append(snaps, n)
		} else {
			logs = append(logs, n)
		}
		if n >= w.nextSeg {
			w.nextSeg = n + 1
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	var snapNum uint64
	if len(snaps) > 0 {
		snapNum = snaps[len(snaps)-1]
		if err := w.replaySnapshot(snapName(snapNum)); err != nil {
			return err
		}
	}

	var recs []rawRecord
	for i, n := range logs {
		if len(snaps) > 0 && n <= snapNum {
			continue // folded into the snapshot already
		}
		final := i == len(logs)-1
		recs, err = w.scanLog(segName(n), final, recs)
		if err != nil {
			return err
		}
		w.stats.Segments++
	}
	muts, err := w.decodeAll(recs)
	if err != nil {
		return err
	}
	if err := w.st.Apply(muts); err != nil {
		return fmt.Errorf("%w: replay rejected: %v", ErrCorruptLog, err)
	}
	w.stats.Records = len(recs)
	w.stats.Duration = time.Since(start)
	return nil
}

// replaySnapshot loads a snapshot segment. Snapshots become visible
// only through an atomic rename, so unlike a log tail, any framing
// damage here is corruption, never a tear.
func (w *WALStore) replaySnapshot(name string) error {
	data, err := w.readFile(name)
	if err != nil {
		return fmt.Errorf("persist: reading snapshot %s: %w", name, err)
	}
	w.stats.Bytes += int64(len(data))
	if len(data) < logHeaderLen || string(data[:4]) != walMagic || data[4] != kindSnapshot {
		return fmt.Errorf("%w: %s is not a snapshot segment", ErrCorruptLog, name)
	}
	seq, n := binary.Uvarint(data[logHeaderLen:])
	if n <= 0 {
		return fmt.Errorf("%w: %s: bad sequence counter", ErrCorruptLog, name)
	}
	recs, _, err := scanFrames(data[logHeaderLen+n:], nil)
	if err != nil {
		return fmt.Errorf("%w: snapshot %s: %v", ErrCorruptLog, name, err)
	}
	for i, r := range recs {
		if r.op != shard.OpAdd {
			return fmt.Errorf("%w: snapshot %s: record %d is %s, want add", ErrCorruptLog, name, i, r.op)
		}
	}
	muts, err := w.decodeAll(recs)
	if err != nil {
		return err
	}
	if err := w.st.Apply(muts); err != nil {
		return fmt.Errorf("%w: snapshot %s rejected: %v", ErrCorruptLog, name, err)
	}
	w.st.SetSeq(seq)
	w.stats.SnapshotRecords = len(recs)
	return nil
}

// scanLog frame-scans one log segment, tolerating — and repairing — a
// torn tail on the final segment only.
func (w *WALStore) scanLog(name string, final bool, recs []rawRecord) ([]rawRecord, error) {
	data, err := w.readFile(name)
	if err != nil {
		return nil, fmt.Errorf("persist: reading segment %s: %w", name, err)
	}
	w.stats.Bytes += int64(len(data))
	if len(data) < logHeaderLen {
		if final {
			// Crashed before the header landed: an empty segment.
			w.stats.DroppedBytes += int64(len(data))
			return recs, w.fs.Remove(join(w.o.Dir, name))
		}
		return nil, fmt.Errorf("%w: segment %s truncated mid-log", ErrCorruptLog, name)
	}
	if string(data[:4]) != walMagic || data[4] != kindLog {
		return nil, fmt.Errorf("%w: %s is not a log segment", ErrCorruptLog, name)
	}
	recs, goodLen, err := scanFrames(data[logHeaderLen:], recs)
	switch {
	case err == nil:
	case errors.Is(err, errTornRecord) && final:
		// The crash shape: drop the tear and truncate it away so the
		// segment is clean for every later boot.
		dropped := int64(len(data)) - logHeaderLen - goodLen
		w.stats.DroppedBytes += dropped
		if terr := w.fs.Truncate(join(w.o.Dir, name), logHeaderLen+goodLen); terr != nil {
			return nil, fmt.Errorf("persist: repairing torn tail of %s: %w", name, terr)
		}
	case errors.Is(err, errTornRecord):
		return nil, fmt.Errorf("%w: segment %s torn mid-log: %v", ErrCorruptLog, name, err)
	default:
		return nil, fmt.Errorf("%w: segment %s: %v", ErrCorruptLog, name, err)
	}
	return recs, nil
}

// decodeAll decodes the offer bodies of scanned records, fanned out
// over the executor when one is configured — the ingest-style parallel
// replay. Application order is unaffected: results land in per-index
// slots.
func (w *WALStore) decodeAll(recs []rawRecord) ([]shard.Mutation, error) {
	muts := make([]shard.Mutation, len(recs))
	errs := make([]error, len(recs))
	decode := func(i int) { muts[i], errs[i] = decodeMutation(recs[i]) }
	if w.o.Executor != nil {
		w.o.Executor.ForEach(len(recs), 0, 0, decode)
	} else {
		for i := range recs {
			decode(i)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrCorruptLog, i, err)
		}
	}
	return muts, nil
}

// openActiveLocked creates the next log segment and stamps its header.
func (w *WALStore) openActiveLocked() error {
	name := segName(w.nextSeg)
	w.nextSeg++
	f, err := w.fs.Create(join(w.o.Dir, name))
	if err != nil {
		return w.fail(fmt.Errorf("persist: creating segment %s: %w", name, err))
	}
	if _, err := f.Write([]byte{walMagic[0], walMagic[1], walMagic[2], walMagic[3], kindLog}); err != nil {
		f.Close()
		return w.fail(fmt.Errorf("persist: writing header of %s: %w", name, err))
	}
	w.active, w.activeName, w.activeSize = f, name, logHeaderLen
	return nil
}

func (w *WALStore) closeActiveLocked() error {
	if w.active == nil {
		return nil
	}
	// Seal the segment: after this no timer will ever sync it again, so
	// flush it now unless the operator opted out of fsync entirely.
	if w.o.Fsync != FsyncOff {
		if err := w.timedSync(w.active); err != nil {
			w.active.Close()
			w.active = nil
			return w.fail(fmt.Errorf("persist: syncing %s: %w", w.activeName, err))
		}
	}
	err := w.active.Close()
	w.active = nil
	if err != nil {
		return w.fail(fmt.Errorf("persist: closing %s: %w", w.activeName, err))
	}
	return nil
}

// fail records the first failure and flips the store degraded. It
// needs only errMu, so it is safe with or without mu held.
func (w *WALStore) fail(err error) error {
	w.errMu.Lock()
	if w.firstErr == nil {
		w.firstErr = err
	}
	w.errMu.Unlock()
	return fmt.Errorf("%w: %v", ErrDegraded, err)
}

// Err reports the sticky degradation cause, nil while healthy.
func (w *WALStore) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.firstErr
}

func (w *WALStore) healthyLocked() error {
	w.errMu.Lock()
	err := w.firstErr
	w.errMu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if w.closed {
		return errors.New("persist: store is closed")
	}
	return nil
}

// appendLocked frames and writes muts to the active segment, syncing
// per policy. The store is NOT applied here: log first, apply only
// after the log accepted the batch, so a failed append leaves memory
// and disk agreeing (both without the batch).
func (w *WALStore) appendLocked(ctx context.Context, muts []shard.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	t0 := time.Now()
	ctx, sp := obs.Start(ctx, obs.StageWALAppend)
	defer func() {
		if sp != nil {
			sp.End()
		} else {
			w.o.Metrics.Observe(obs.StageWALAppend, -1, time.Since(t0))
		}
	}()
	var buf []byte
	var err error
	for _, m := range muts {
		if buf, err = appendRecord(buf, m); err != nil {
			return w.fail(err)
		}
	}
	if _, err := w.active.Write(buf); err != nil {
		return w.fail(err)
	}
	if w.o.Fsync == FsyncAlways {
		s0 := time.Now()
		serr := w.active.Sync()
		w.observeSince(ctx, obs.StageWALFsync, s0)
		if serr != nil {
			return w.fail(serr)
		}
	}
	w.activeSize += int64(len(buf))
	w.sinceSnap += len(muts)
	return nil
}

// observeSince files a stage interval either into the request's trace
// (nesting under the current span) or, without one, directly into the
// configured metrics sink — the two sinks are the same histograms in
// a fully wired flexd, so the split only decides whether a span shows
// up in /debug/traces.
func (w *WALStore) observeSince(ctx context.Context, stage string, t0 time.Time) {
	if obs.TraceFrom(ctx) != nil {
		obs.RecordSince(ctx, stage, t0)
		return
	}
	w.o.Metrics.Observe(stage, -1, time.Since(t0))
}

// timedSync syncs f, reporting the fsync latency to the metrics sink.
// For syncs with no request in sight (timers, seals, snapshots).
func (w *WALStore) timedSync(f File) error {
	t0 := time.Now()
	err := f.Sync()
	w.o.Metrics.Observe(obs.StageWALFsync, -1, time.Since(t0))
	return err
}

// mutate runs the shared stage → append → apply sequence. The ctx is
// observability-only: it attaches the append/fsync latency to the
// request's trace and is never consulted for cancellation.
func (w *WALStore) mutate(ctx context.Context, stage func() []shard.Mutation) ([]shard.Mutation, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.healthyLocked(); err != nil {
		return nil, w.st.Len(), err
	}
	muts := stage()
	if err := w.appendLocked(ctx, muts); err != nil {
		return nil, w.st.Len(), err
	}
	if err := w.st.Apply(muts); err != nil {
		// Stage and Apply agree by construction; reaching this is a bug.
		panic(err)
	}
	w.maybeRollLocked()
	return muts, w.st.Len(), nil
}

// Add stages, logs and applies an ingest batch (see shard.Stores.Add
// for the routing and last-write-wins rules). On error the batch is
// neither logged nor applied and the store is degraded.
func (w *WALStore) Add(ctx context.Context, offers []*flexoffer.FlexOffer) ([]shard.Mutation, int, error) {
	return w.mutate(ctx, func() []shard.Mutation { return w.st.Stage(offers) })
}

// Delete stages, logs and applies removal of the identified offers.
func (w *WALStore) Delete(ctx context.Context, ids []string) ([]shard.Mutation, int, error) {
	return w.mutate(ctx, func() []shard.Mutation { return w.st.StageDelete(ids) })
}

// Reset empties the store durably: a reset record lands in the log
// first — so deleted offers cannot resurrect even if everything after
// this line is skipped by a crash — then the segment rotates and an
// empty snapshot compacts the history away.
func (w *WALStore) Reset(ctx context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.healthyLocked(); err != nil {
		return err
	}
	if err := w.appendLocked(ctx, []shard.Mutation{{Op: shard.OpReset}}); err != nil {
		return err
	}
	w.st.Reset()
	w.sinceSnap = 0
	if !w.snapBusy {
		return w.snapshotLocked(true)
	}
	return nil
}

// maybeRollLocked rotates an oversized active segment and triggers the
// periodic snapshot.
func (w *WALStore) maybeRollLocked() {
	if w.o.SnapshotEvery > 0 && w.sinceSnap >= w.o.SnapshotEvery && !w.snapBusy {
		w.sinceSnap = 0
		_ = w.snapshotLocked(w.o.SyncSnapshots)
		return
	}
	if w.activeSize >= w.o.SegmentBytes {
		if err := w.closeActiveLocked(); err != nil {
			return
		}
		_ = w.openActiveLocked()
	}
}

// snapshotLocked captures the current state, rotates the log so the
// snapshot's number sits after every record it covers, and writes the
// snapshot — synchronously or in the background. The captured parts
// are copy-on-write snapshots, so the background writer needs no
// further coordination with ingest.
func (w *WALStore) snapshotLocked(sync bool) error {
	parts := w.st.Snapshot()
	seq := w.st.Seq()
	if err := w.closeActiveLocked(); err != nil {
		return err
	}
	num := w.nextSeg
	w.nextSeg++
	if err := w.openActiveLocked(); err != nil {
		return err
	}
	if sync {
		return w.writeSnapshot(num, parts, seq)
	}
	w.snapBusy = true
	w.snapWG.Add(1)
	go func() {
		defer w.snapWG.Done()
		_ = w.writeSnapshot(num, parts, seq)
		w.mu.Lock()
		w.snapBusy = false
		w.mu.Unlock()
	}()
	return nil
}

// writeSnapshot persists parts + seq as snapshot num (tmp, sync,
// rename) and then compacts every older segment away. Only the rename
// publishes the snapshot, so a crash anywhere before it leaves the
// previous snapshot + segments authoritative.
func (w *WALStore) writeSnapshot(num uint64, parts [][]shard.Entry, seq uint64) error {
	name := snapName(num)
	tmp := name + ".tmp"
	err := func() error {
		f, err := w.fs.Create(join(w.o.Dir, tmp))
		if err != nil {
			return err
		}
		defer f.Close()
		hdr := append([]byte(walMagic), kindSnapshot)
		hdr = binary.AppendUvarint(hdr, seq)
		if _, err := f.Write(hdr); err != nil {
			return err
		}
		// Records go out in global sequence order — the order a single
		// unsharded store ingested them — because that is the only order
		// Apply accepts, and it makes the snapshot a canonical replay
		// stream rather than a dump of internal layout.
		muts := make([]shard.Mutation, 0)
		for shardIndex, entries := range parts {
			for _, e := range entries {
				muts = append(muts, shard.Mutation{Op: shard.OpAdd, Shard: shardIndex, Seq: e.Seq, Offer: e.Offer})
			}
		}
		sort.Slice(muts, func(i, j int) bool { return muts[i].Seq < muts[j].Seq })
		var buf []byte
		for _, m := range muts {
			buf, err = appendRecord(buf[:0], m)
			if err != nil {
				return err
			}
			if _, err := f.Write(buf); err != nil {
				return err
			}
		}
		return w.timedSync(f)
	}()
	if err != nil {
		_ = w.fs.Remove(join(w.o.Dir, tmp))
		return w.fail(fmt.Errorf("persist: writing snapshot %s: %w", name, err))
	}
	if err := w.fs.Rename(join(w.o.Dir, tmp), join(w.o.Dir, name)); err != nil {
		return w.fail(fmt.Errorf("persist: publishing snapshot %s: %w", name, err))
	}
	w.compact(num)
	return nil
}

// compact removes every segment and snapshot numbered below upto —
// all folded into snapshot upto. Best effort: a leftover file is
// re-candidate at the next snapshot and skipped by replay anyway.
func (w *WALStore) compact(upto uint64) {
	names, err := w.fs.ReadDir(w.o.Dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if n, _, ok := parseName(name); ok && n < upto {
			_ = w.fs.Remove(join(w.o.Dir, name))
		}
	}
}

// syncLoop is the FsyncInterval timer.
func (w *WALStore) syncLoop() {
	defer w.tickWG.Done()
	t := time.NewTicker(w.o.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.mu.Lock()
			if w.active != nil && w.healthyLocked() == nil {
				if err := w.timedSync(w.active); err != nil {
					_ = w.fail(fmt.Errorf("persist: interval sync of %s: %w", w.activeName, err))
				}
			}
			w.mu.Unlock()
		case <-w.stopTick:
			return
		}
	}
}

// Snapshot returns the per-shard entry lists (see shard.Stores.Snapshot).
func (w *WALStore) Snapshot() [][]shard.Entry { return w.st.Snapshot() }

// Len returns the total offer count.
func (w *WALStore) Len() int { return w.st.Len() }

// Shards returns the shard count.
func (w *WALStore) Shards() int { return w.st.Shards() }

// ShardLens returns the per-shard offer counts.
func (w *WALStore) ShardLens() []int { return w.st.ShardLens() }

// Seq returns the next sequence number (see shard.Stores.Seq).
func (w *WALStore) Seq() uint64 { return w.st.Seq() }

// Stats reports the boot-time recovery this store performed.
func (w *WALStore) Stats() ReplayStats { return w.stats }

// Close seals the active segment and waits for background work. The
// store must not be used afterwards.
func (w *WALStore) Close() error {
	if w.stopTick != nil {
		close(w.stopTick)
		w.tickWG.Wait()
		w.stopTick = nil
	}
	w.mu.Lock()
	var err error
	if !w.closed {
		w.closed = true
		err = w.closeActiveLocked()
	}
	w.mu.Unlock()
	w.snapWG.Wait()
	return err
}
