package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/shard"
)

// WAL record framing. Every store mutation becomes one framed record:
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//	payload: op byte | uvarint shard | uvarint seq | offer bytes
//
// The offer bytes are the existing FXO1/FXO2 one-offer binary stream
// (flexoffer.MarshalBinary) for add/replace records, and absent for
// delete/reset — the WAL invents no second offer encoding, so any FXO
// reader can open a log payload. The CRC is over the payload only: the
// length field is validated implicitly by the CRC failing when a torn
// write corrupts it, and explicitly by the sanity cap below.

// Record framing errors.
var (
	// ErrCorruptRecord marks a record whose frame or payload fails
	// validation somewhere other than a tolerable torn tail.
	ErrCorruptRecord = errors.New("persist: corrupt WAL record")
	// errTornRecord marks a final record cut short by a crash — the one
	// corruption recovery silently drops.
	errTornRecord = errors.New("persist: torn WAL record")
)

const (
	// frameHeaderLen is the length + CRC prefix of every record.
	frameHeaderLen = 8
	// maxPayloadBytes caps a single record payload (a single offer plus
	// a few varints; 64 MiB is far beyond any valid offer and cheap
	// insurance against a garbage length field scanning as "read 4 GiB").
	maxPayloadBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends m as one framed record to dst.
func appendRecord(dst []byte, m shard.Mutation) ([]byte, error) {
	var payload []byte
	payload = append(payload, byte(m.Op))
	payload = binary.AppendUvarint(payload, uint64(m.Shard))
	payload = binary.AppendUvarint(payload, m.Seq)
	switch m.Op {
	case shard.OpAdd, shard.OpReplace:
		body, err := m.Offer.MarshalBinary()
		if err != nil {
			return nil, err
		}
		payload = append(payload, body...)
	case shard.OpDelete, shard.OpReset:
		// No body.
	default:
		return nil, fmt.Errorf("persist: cannot encode op %s", m.Op)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...), nil
}

// rawRecord is a frame-scanned record whose offer body has not been
// decoded yet — the unit the parallel replay decoder fans out over.
type rawRecord struct {
	op         shard.Op
	shardIndex int
	seq        uint64
	body       []byte // FXO bytes for add/replace, empty otherwise
}

// splitRecord parses a verified payload into its fields, leaving the
// offer body undecoded.
func splitRecord(payload []byte) (rawRecord, error) {
	if len(payload) == 0 {
		return rawRecord{}, fmt.Errorf("%w: empty payload", ErrCorruptRecord)
	}
	op := shard.Op(payload[0])
	rest := payload[1:]
	shardIndex, n := binary.Uvarint(rest)
	if n <= 0 {
		return rawRecord{}, fmt.Errorf("%w: bad shard varint", ErrCorruptRecord)
	}
	rest = rest[n:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return rawRecord{}, fmt.Errorf("%w: bad seq varint", ErrCorruptRecord)
	}
	rest = rest[n:]
	switch op {
	case shard.OpAdd, shard.OpReplace:
		if len(rest) == 0 {
			return rawRecord{}, fmt.Errorf("%w: %s record without offer body", ErrCorruptRecord, op)
		}
	case shard.OpDelete, shard.OpReset:
		if len(rest) != 0 {
			return rawRecord{}, fmt.Errorf("%w: %s record with %d stray bytes", ErrCorruptRecord, op, len(rest))
		}
	default:
		return rawRecord{}, fmt.Errorf("%w: unknown op %d", ErrCorruptRecord, payload[0])
	}
	return rawRecord{op: op, shardIndex: int(shardIndex), seq: seq, body: rest}, nil
}

// decodeMutation turns a raw record into the mutation it logs, decoding
// the offer body.
func decodeMutation(r rawRecord) (shard.Mutation, error) {
	m := shard.Mutation{Op: r.op, Shard: r.shardIndex, Seq: r.seq}
	if r.op == shard.OpAdd || r.op == shard.OpReplace {
		f := new(flexoffer.FlexOffer)
		if err := f.UnmarshalBinary(r.body); err != nil {
			return shard.Mutation{}, fmt.Errorf("%w: %v", ErrCorruptRecord, err)
		}
		m.Offer = f
	}
	return m, nil
}

// scanFrames walks the framed records in data, appending each verified
// payload's raw record to recs. It returns the records, the byte length
// of the verified prefix, and how the scan ended:
//
//   - err == nil: data ends exactly at a record boundary.
//   - errors.Is(err, errTornRecord): the final record is truncated or
//     fails its CRC with no bytes after it — the shape a crash leaves.
//     goodLen is the boundary to truncate back to; recs holds every
//     record before the tear.
//   - errors.Is(err, ErrCorruptRecord): a record in the middle of the
//     data is bad. Nothing distinguishes this from lost writes, so the
//     caller must fail loudly.
func scanFrames(data []byte, recs []rawRecord) ([]rawRecord, int64, error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return recs, int64(off), fmt.Errorf("%w: %d trailing bytes", errTornRecord, len(data)-off)
		}
		length := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxPayloadBytes {
			// A crash tears a frame by truncation, so a fully present
			// length field always holds the value the writer framed —
			// an implausible one means the bytes themselves changed.
			return recs, int64(off), fmt.Errorf("%w: implausible record length %d", ErrCorruptRecord, length)
		}
		end := off + frameHeaderLen + length
		if end > len(data) {
			return recs, int64(off), fmt.Errorf("%w: record cut at %d of %d bytes", errTornRecord, len(data)-off-frameHeaderLen, length)
		}
		payload := data[off+frameHeaderLen : end]
		if crc32.Checksum(payload, crcTable) != sum {
			if end == len(data) {
				// CRC failure on the very last record with nothing after
				// it: a torn final write.
				return recs, int64(off), fmt.Errorf("%w: CRC mismatch on final record", errTornRecord)
			}
			return recs, int64(off), fmt.Errorf("%w: CRC mismatch %d bytes before end", ErrCorruptRecord, len(data)-end)
		}
		r, err := splitRecord(payload)
		if err != nil {
			return recs, int64(off), err
		}
		recs = append(recs, r)
		off = end
	}
	return recs, int64(off), nil
}
