// Package persist is flexd's durability layer: a write-ahead log and
// snapshot store layered under the sharded copy-on-write offer store,
// so a restart — planned or not — is a non-event for the offer book.
//
// The design separates the durable persistence layer from the
// transient compute layer above it. shard.Stores stays the single
// in-memory representation the engines schedule over; this package
// only decides how its mutation stream (shard.Mutation) reaches disk
// and how boot reproduces the store from what disk holds:
//
//   - Store is the pluggable seam the server ingests through. The
//     memory backend (NewMemory) is the seed behavior; WALStore adds
//     the log; an embedded-KV backend can slot in behind the same
//     interface later.
//   - WAL records reuse the FXO1/FXO2 offer codec framed with length +
//     CRC-32C, carrying op/shard/seq so replay is exact (record.go).
//   - The FS seam (fs.go) makes every write and sync fault-injectable,
//     which is how the crash-matrix tests kill the log at every record
//     boundary and prove recovery byte-identical.
package persist

import (
	"context"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/shard"
)

// Store is the offer store a flexd server mutates through: the sharded
// in-memory store's surface plus error returns for backends with a
// durable layer that can fail, and a sticky health probe.
//
// Mutations are atomic in memory: on error, nothing of the batch is
// applied to the serving state. A crash mid-append can still leave a
// durable prefix of the failed batch that replays on the next boot —
// record granularity is the durability unit — which is safe to repair
// by retrying the batch, since ingest is last-write-wins by offer ID.
// Err reports a degraded backend — mutations will be refused, reads
// keep working — so the serving layer can flip read-only instead of
// crashing.
// Mutations carry the request context so a durable backend can attach
// its WAL-append and fsync latency to the request's trace; a backend
// must treat the context as observability-only (mutations are never
// half-cancelled).
type Store interface {
	// Add merges decoded offers (see shard.Stores.Add), reporting the
	// applied mutations and the store size afterwards.
	Add(ctx context.Context, offers []*flexoffer.FlexOffer) (muts []shard.Mutation, stored int, err error)
	// Delete removes the identified offers (unknown IDs are skipped).
	Delete(ctx context.Context, ids []string) (muts []shard.Mutation, stored int, err error)
	// Reset empties the store — durably, for backends with a log.
	Reset(ctx context.Context) error
	// Snapshot returns the immutable per-shard entry lists.
	Snapshot() [][]shard.Entry
	// Len returns the total offer count.
	Len() int
	// Shards returns the shard count.
	Shards() int
	// ShardLens returns the per-shard offer counts.
	ShardLens() []int
	// Err reports the sticky degradation cause; nil while healthy.
	Err() error
	// Close releases the backend. The store must not be used after.
	Close() error
}

// MemStore is the non-durable Store: shard.Stores with nothing under
// it. It never fails and never degrades — and it forgets everything on
// restart, which is exactly the flexd default this package exists to
// replace.
type MemStore struct {
	st *shard.Stores
}

// NewMemory returns an empty in-memory store routed by r.
func NewMemory(r shard.Router) *MemStore {
	return &MemStore{st: shard.NewStores(r)}
}

// Add implements Store.
func (m *MemStore) Add(_ context.Context, offers []*flexoffer.FlexOffer) ([]shard.Mutation, int, error) {
	muts, stored := m.st.Add(offers)
	return muts, stored, nil
}

// Delete implements Store.
func (m *MemStore) Delete(_ context.Context, ids []string) ([]shard.Mutation, int, error) {
	muts, stored := m.st.Delete(ids)
	return muts, stored, nil
}

// Reset implements Store.
func (m *MemStore) Reset(context.Context) error {
	m.st.Reset()
	return nil
}

// Snapshot implements Store.
func (m *MemStore) Snapshot() [][]shard.Entry { return m.st.Snapshot() }

// Len implements Store.
func (m *MemStore) Len() int { return m.st.Len() }

// Shards implements Store.
func (m *MemStore) Shards() int { return m.st.Shards() }

// ShardLens implements Store.
func (m *MemStore) ShardLens() []int { return m.st.ShardLens() }

// Seq returns the next sequence number (test hook for parity with
// WALStore).
func (m *MemStore) Seq() uint64 { return m.st.Seq() }

// Err implements Store; a memory store is never degraded.
func (m *MemStore) Err() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }
