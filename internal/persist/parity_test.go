package persist_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"flexmeasures/internal/persist"
	"flexmeasures/internal/shard"
)

// TestWALEngineParity is the property pin for the durable store: for
// every shard count, a WAL-backed store that went through a full
// mutation history (adds, replaces, deletes), a shutdown and a replay
// serves exactly the bytes an in-memory store serves — for every
// worker count — and those bytes are the same across all shard counts,
// so durability composes with the repo's core determinism invariant.
func TestWALEngineParity(t *testing.T) {
	offers := crashFleet(t, 9, 60)
	ops := func(st persist.Store) {
		st.Add(context.Background(), offers[:40])
		st.Add(context.Background(), offers[40:])
		st.Add(context.Background(), offers[10:20]) // replaces
		st.Delete(context.Background(), []string{offers[2].ID, offers[45].ID})
	}

	var ref []byte
	for _, shards := range []int{1, 2, 4} {
		r := shard.Router{Shards: shards}
		dir := t.TempDir()
		w, err := persist.OpenWAL(persist.Options{
			Dir: dir, Router: r,
			SegmentBytes: 2 << 10, SnapshotEvery: 25, SyncSnapshots: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ops(w)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := persist.OpenWAL(persist.Options{Dir: dir, Router: r})
		if err != nil {
			t.Fatal(err)
		}
		mem := persist.NewMemory(r)
		ops(mem)
		if !reflect.DeepEqual(re.Snapshot(), mem.Snapshot()) {
			t.Fatalf("shards=%d: replayed store diverges from memory store", shards)
		}
		for _, workers := range []int{1, 4} {
			wal := scheduleBytes(t, re.Snapshot(), shards, workers)
			memB := scheduleBytes(t, mem.Snapshot(), shards, workers)
			if !bytes.Equal(wal, memB) {
				t.Fatalf("shards=%d workers=%d: WAL-backed schedule bytes diverge from memory", shards, workers)
			}
			if ref == nil {
				ref = wal
			} else if !bytes.Equal(ref, wal) {
				t.Fatalf("shards=%d workers=%d: schedule bytes not shard/worker independent", shards, workers)
			}
		}
		re.Close()
	}
}
