package sched

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

func streamFixture(t *testing.T, n int) ([]*flexoffer.FlexOffer, timeseries.Series, aggregate.GroupParams) {
	t.Helper()
	r := rand.New(rand.NewSource(4242))
	offers, err := workload.Population(r, n, 2, workload.DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	var expected int64
	for _, f := range offers {
		expected += (f.TotalMin + f.TotalMax) / 2
	}
	horizon := 3 * workload.SlotsPerDay
	target := workload.WindProfile(r, horizon, expected/int64(horizon))
	return offers, target, aggregate.GroupParams{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 16}
}

// TestScheduleStreamMatchesBatch is the satellite equivalence test: the
// streaming pipeline must produce exactly the schedule of the
// materialized batch path, for several worker counts (and therefore
// arbitrary completion orders).
func TestScheduleStreamMatchesBatch(t *testing.T) {
	offers, target, gp := streamFixture(t, 300)

	ags, err := aggregate.AggregateAll(offers, gp)
	if err != nil {
		t.Fatal(err)
	}
	aggOffers := make([]*flexoffer.FlexOffer, len(ags))
	for i, ag := range ags {
		aggOffers[i] = ag.Offer
	}
	batch, err := Schedule(aggOffers, target, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		items, n := aggregate.AggregateAllStream(context.Background(), offers, gp, aggregate.ParallelParams{Workers: workers})
		if n != len(ags) {
			t.Fatalf("workers=%d: stream expects %d groups, batch made %d", workers, n, len(ags))
		}
		sr, err := ScheduleStream(context.Background(), items, n, target, Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(sr.Assignments, batch.Assignments) {
			t.Fatalf("workers=%d: streamed assignments diverge from batch", workers)
		}
		if !sr.Load.Equal(batch.Load) {
			t.Fatalf("workers=%d: streamed load diverges from batch", workers)
		}
		for i, ag := range sr.Aggregates {
			if !ag.Offer.Equal(ags[i].Offer) {
				t.Fatalf("workers=%d: streamed aggregate %d differs", workers, i)
			}
		}
	}
}

func TestScheduleStreamRejectsNonArrivalOrder(t *testing.T) {
	ch := make(chan aggregate.StreamItem)
	_, err := ScheduleStream(context.Background(), ch, 1, timeseries.Series{}, Options{Order: OrderRandom})
	if !errors.Is(err, ErrStreamOrder) {
		t.Fatalf("got %v, want ErrStreamOrder", err)
	}
}

func TestScheduleStreamNoGroups(t *testing.T) {
	ch := make(chan aggregate.StreamItem)
	close(ch)
	if _, err := ScheduleStream(context.Background(), ch, 0, timeseries.Series{}, Options{}); !errors.Is(err, ErrNoOffers) {
		t.Fatalf("got %v, want ErrNoOffers", err)
	}
}

func TestScheduleStreamPropagatesGroupError(t *testing.T) {
	ch := make(chan aggregate.StreamItem, 1)
	ge := &aggregate.GroupError{Group: 0, Size: 2, Err: errors.New("boom")}
	ch <- aggregate.StreamItem{Index: 0, Err: ge}
	_, err := ScheduleStream(context.Background(), ch, 1, timeseries.Series{}, Options{})
	var got *aggregate.GroupError
	if !errors.As(err, &got) || got != ge {
		t.Fatalf("got %v, want the stream's GroupError", err)
	}
}

// TestScheduleStreamFailsAtLowestIndex: with several failing groups the
// abort is deterministic — the lowest-indexed failure in placement
// order wins, regardless of the completion order the workers produced.
func TestScheduleStreamFailsAtLowestIndex(t *testing.T) {
	geA := &aggregate.GroupError{Group: 0, Size: 1, Err: errors.New("a")}
	geB := &aggregate.GroupError{Group: 1, Size: 1, Err: errors.New("b")}
	ch := make(chan aggregate.StreamItem, 2)
	ch <- aggregate.StreamItem{Index: 1, Err: geB} // delivered first...
	ch <- aggregate.StreamItem{Index: 0, Err: geA} // ...but index 0 must win
	_, err := ScheduleStream(context.Background(), ch, 2, timeseries.Series{}, Options{})
	var got *aggregate.GroupError
	if !errors.As(err, &got) || got != geA {
		t.Fatalf("got %v, want the lowest-indexed GroupError", err)
	}
}

// TestScheduleStreamClosedAfterFailure: a FirstError producer stops
// claiming groups after a failure, so the channel closes short; the
// parked failure — not ErrStreamShort — must surface.
func TestScheduleStreamClosedAfterFailure(t *testing.T) {
	ge := &aggregate.GroupError{Group: 1, Size: 1, Err: errors.New("boom")}
	ch := make(chan aggregate.StreamItem, 1)
	ch <- aggregate.StreamItem{Index: 1, Err: ge}
	close(ch)
	_, err := ScheduleStream(context.Background(), ch, 3, timeseries.Series{}, Options{})
	var got *aggregate.GroupError
	if !errors.As(err, &got) || got != ge {
		t.Fatalf("got %v, want the parked GroupError", err)
	}
}

func TestScheduleStreamShortStream(t *testing.T) {
	ch := make(chan aggregate.StreamItem, 1)
	ag, err := aggregate.Aggregate([]*flexoffer.FlexOffer{flexoffer.MustNew(0, 2, sl(1, 2))})
	if err != nil {
		t.Fatal(err)
	}
	ch <- aggregate.StreamItem{Index: 0, Agg: ag}
	close(ch)
	if _, err := ScheduleStream(context.Background(), ch, 3, timeseries.Series{}, Options{}); !errors.Is(err, ErrStreamShort) {
		t.Fatalf("got %v, want ErrStreamShort", err)
	}
}

func TestScheduleStreamBadIndex(t *testing.T) {
	ag, err := aggregate.Aggregate([]*flexoffer.FlexOffer{flexoffer.MustNew(0, 2, sl(1, 2))})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{-1, 2} {
		ch := make(chan aggregate.StreamItem, 1)
		ch <- aggregate.StreamItem{Index: idx, Agg: ag}
		if _, err := ScheduleStream(context.Background(), ch, 2, timeseries.Series{}, Options{}); !errors.Is(err, ErrStreamIndex) {
			t.Fatalf("index %d: got %v, want ErrStreamIndex", idx, err)
		}
	}
	// Duplicate index.
	ch := make(chan aggregate.StreamItem, 2)
	ch <- aggregate.StreamItem{Index: 1, Agg: ag}
	ch <- aggregate.StreamItem{Index: 1, Agg: ag}
	if _, err := ScheduleStream(context.Background(), ch, 2, timeseries.Series{}, Options{}); !errors.Is(err, ErrStreamIndex) {
		t.Fatalf("duplicate: got %v, want ErrStreamIndex", err)
	}
}

func TestScheduleStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan aggregate.StreamItem) // never delivers
	if _, err := ScheduleStream(ctx, ch, 1, timeseries.Series{}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
