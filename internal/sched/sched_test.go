package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// sl is shorthand for a slice literal in test fixtures.
func sl(min, max int64) flexoffer.Slice { return flexoffer.Slice{Min: min, Max: max} }

func TestScheduleNoOffers(t *testing.T) {
	if _, err := Schedule(nil, timeseries.Series{}, Options{}); !errors.Is(err, ErrNoOffers) {
		t.Fatalf("got %v, want ErrNoOffers", err)
	}
}

func TestScheduleSingleOfferTracksTarget(t *testing.T) {
	// Target has a bump at t=3; the offer should move there.
	f := flexoffer.MustNew(0, 4, sl(2, 2))
	target := timeseries.New(3, 2)
	res, err := Schedule([]*flexoffer.FlexOffer{f}, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if a.Start != 3 {
		t.Errorf("start = %d, want 3 (target bump)", a.Start)
	}
	if res.Imbalance(target) != 0 {
		t.Errorf("imbalance = %g, want 0", res.Imbalance(target))
	}
}

func TestScheduleChoosesValuesWithinRanges(t *testing.T) {
	f := flexoffer.MustNew(0, 0, sl(0, 5), sl(0, 5))
	target := timeseries.New(0, 3, 1)
	res, err := Schedule([]*flexoffer.FlexOffer{f}, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if a.Values[0] != 3 || a.Values[1] != 1 {
		t.Errorf("values = %v, want [3 1]", a.Values)
	}
}

func TestScheduleRespectsTotalConstraints(t *testing.T) {
	// Target asks for nothing, but cmin forces 4 units somewhere.
	f, err := flexoffer.NewWithTotals(0, 0, []flexoffer.Slice{{Min: 0, Max: 5}, {Min: 0, Max: 5}}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule([]*flexoffer.FlexOffer{f}, timeseries.Series{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignments[0]
	if errv := f.ValidateAssignment(a); errv != nil {
		t.Fatalf("assignment invalid: %v", errv)
	}
	if a.TotalEnergy() != 4 {
		t.Errorf("total = %d, want the minimum 4", a.TotalEnergy())
	}
}

func TestScheduleAllAssignmentsValid(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(1, 3), sl(0, 2)),
		flexoffer.MustNew(2, 6, sl(2, 5)),
		flexoffer.MustNew(0, 8, sl(0, 1), sl(0, 1), sl(0, 1)),
	}
	target := timeseries.New(0, 2, 2, 2, 2, 2, 2, 2, 2, 2)
	res, err := Schedule(offers, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum timeseries.Series
	for i, a := range res.Assignments {
		if err := offers[i].ValidateAssignment(a); err != nil {
			t.Errorf("offer %d: %v", i, err)
		}
		sum = timeseries.Add(sum, a.Series())
	}
	if !sum.EquivalentZeroPadded(res.Load) {
		t.Error("Load must equal the sum of the assignments")
	}
}

func TestScheduleOrderStrategies(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 0, sl(3, 3)), // inflexible
		flexoffer.MustNew(0, 6, sl(0, 3)), // very flexible
		flexoffer.MustNew(0, 2, sl(1, 2)),
	}
	target := timeseries.New(0, 3, 2, 1, 0, 0, 0, 0)
	for _, ord := range []Order{OrderArrival, OrderLeastFlexibleFirst, OrderMostFlexibleFirst} {
		res, err := Schedule(offers, target, Options{Order: ord, Measure: core.VectorMeasure{}})
		if err != nil {
			t.Errorf("%v: %v", ord, err)
			continue
		}
		for i, a := range res.Assignments {
			if err := offers[i].ValidateAssignment(a); err != nil {
				t.Errorf("%v: offer %d invalid: %v", ord, i, err)
			}
		}
	}
}

func TestScheduleRandomOrder(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 2, sl(1, 2)),
		flexoffer.MustNew(0, 2, sl(1, 2)),
	}
	if _, err := Schedule(offers, timeseries.Series{}, Options{Order: OrderRandom}); !errors.Is(err, ErrNeedsRand) {
		t.Fatalf("got %v, want ErrNeedsRand", err)
	}
	res, err := Schedule(offers, timeseries.Series{}, Options{Order: OrderRandom, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 2 {
		t.Fatal("both offers must be scheduled")
	}
}

func TestScheduleUnknownOrder(t *testing.T) {
	offers := []*flexoffer.FlexOffer{flexoffer.MustNew(0, 0, sl(1, 1))}
	if _, err := Schedule(offers, timeseries.Series{}, Options{Order: Order(99)}); err == nil {
		t.Fatal("unknown order must error")
	}
}

func TestScheduleRejectsInvalidOffer(t *testing.T) {
	bad := &flexoffer.FlexOffer{EarliestStart: 3, LatestStart: 1, Slices: []flexoffer.Slice{{Min: 0, Max: 1}}}
	if _, err := Schedule([]*flexoffer.FlexOffer{bad}, timeseries.Series{}, Options{}); err == nil {
		t.Fatal("invalid offer must be rejected")
	}
}

func TestOrderStrings(t *testing.T) {
	names := map[Order]string{
		OrderArrival:            "arrival",
		OrderLeastFlexibleFirst: "least-flexible-first",
		OrderMostFlexibleFirst:  "most-flexible-first",
		OrderRandom:             "random",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestFlexibilityReducesImbalance(t *testing.T) {
	// The same demand with and without time flexibility: the flexible
	// fleet must track the bumpy target at least as well. This is the
	// core Scenario 1 claim the measures exist to quantify.
	target := timeseries.New(0, 0, 6, 0, 0, 6, 0, 0, 6, 0)
	inflexible := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 0, sl(2, 2)),
		flexoffer.MustNew(0, 0, sl(2, 2)),
		flexoffer.MustNew(0, 0, sl(2, 2)),
	}
	flexible := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 8, sl(2, 2)),
		flexoffer.MustNew(0, 8, sl(2, 2)),
		flexoffer.MustNew(0, 8, sl(2, 2)),
	}
	ri, err := Schedule(inflexible, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Schedule(flexible, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Imbalance(target) > ri.Imbalance(target) {
		t.Errorf("flexible imbalance %g > inflexible %g",
			rf.Imbalance(target), ri.Imbalance(target))
	}
}

func TestPeakLoad(t *testing.T) {
	r := &Result{Load: timeseries.New(0, 1, -5, 3)}
	if r.PeakLoad() != 5 {
		t.Errorf("PeakLoad = %d, want 5", r.PeakLoad())
	}
}

func randomOfferForSched(r *rand.Rand) *flexoffer.FlexOffer {
	n := 1 + r.Intn(3)
	slices := make([]flexoffer.Slice, n)
	for i := range slices {
		lo := int64(r.Intn(5) - 1)
		slices[i] = flexoffer.Slice{Min: lo, Max: lo + int64(r.Intn(3))}
	}
	es := r.Intn(5)
	f := flexoffer.MustNew(es, es+r.Intn(5), slices...)
	if r.Intn(2) == 0 && f.SumMax() > f.SumMin() {
		span := f.SumMax() - f.SumMin()
		lo := f.SumMin() + r.Int63n(span+1)
		f.TotalMin = lo
		f.TotalMax = lo + r.Int63n(f.SumMax()-lo+1)
	}
	return f
}

func TestPropertyScheduleAlwaysValid(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 1+r.Intn(5))
		for i := range offers {
			offers[i] = randomOfferForSched(r)
		}
		targetVals := make([]int64, 12)
		for i := range targetVals {
			targetVals[i] = int64(r.Intn(7) - 1)
		}
		res, err := Schedule(offers, timeseries.New(0, targetVals...), Options{})
		if err != nil {
			return false
		}
		for i, a := range res.Assignments {
			if offers[i].ValidateAssignment(a) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
