package sched_test

import (
	"fmt"
	"log"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/sched"
	"flexmeasures/internal/timeseries"
)

// Example schedules a time-flexible offer onto a production bump — the
// paper's use case of letting demand follow wind.
func Example() {
	ev := flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 2, Max: 2})
	wind := timeseries.New(3, 2) // production available at t=3
	res, err := sched.Schedule([]*flexoffer.FlexOffer{ev}, wind, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("start:", res.Assignments[0].Start)
	fmt.Println("imbalance:", res.Imbalance(wind))
	// Output:
	// start: 3
	// imbalance: 0
}

// ExampleImprove repairs a greedy misplacement by local search.
func ExampleImprove() {
	flexible := flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 2, Max: 2})
	rigid := flexoffer.MustNew(1, 1, flexoffer.Slice{Min: 2, Max: 2})
	offers := []*flexoffer.FlexOffer{flexible, rigid}
	target := timeseries.New(1, 2, 0, 2)
	base, err := sched.Schedule(offers, target, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	improved, err := sched.Improve(offers, target, base, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(base.Imbalance(target), "→", improved.Imbalance(target))
	// Output: 4 → 0
}

// ExampleOptions_peakCap spreads five identical loads under a feeder
// cap (DSO congestion management).
func ExampleOptions_peakCap() {
	var offers []*flexoffer.FlexOffer
	for i := 0; i < 5; i++ {
		offers = append(offers, flexoffer.MustNew(0, 4, flexoffer.Slice{Min: 2, Max: 2}))
	}
	target := timeseries.New(0, 10) // everyone wants t=0
	capped, err := sched.Schedule(offers, target, sched.Options{PeakCap: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("peak:", capped.PeakLoad())
	// Output: peak: 4
}
