package sched

import (
	"context"
	"errors"
	"fmt"

	"flexmeasures/internal/aggregate"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/timeseries"
)

// Streaming sentinel errors.
var (
	// ErrStreamOrder is returned when ScheduleStream is asked for a
	// placement order other than OrderArrival: the flexibility-ranked
	// and random orders need the whole batch before the first placement,
	// which defeats streaming. Rank or shuffle the groups up front and
	// stream them in that order instead.
	ErrStreamOrder = errors.New("sched: streaming schedule supports OrderArrival only")
	// ErrStreamShort is returned when the aggregate channel closes
	// before delivering every expected group.
	ErrStreamShort = errors.New("sched: aggregate stream ended before delivering all groups")
	// ErrStreamIndex is returned for out-of-range or duplicate group
	// indices on the stream.
	ErrStreamIndex = errors.New("sched: invalid aggregate stream index")
)

// StreamResult couples the schedule of a streamed aggregate batch with
// the aggregates themselves: Assignments[i] instantiates
// Aggregates[i].Offer, which is what disaggregation needs next.
type StreamResult struct {
	Result
	// Aggregates holds the streamed aggregates in group order.
	Aggregates []*aggregate.Aggregated
}

// ScheduleStream consumes aggregates from items as the aggregation
// workers produce them (see aggregate.AggregateAllStream) and greedily
// places each one exactly as Schedule would place the materialized
// batch in arrival order: items arriving out of group order are parked
// until their index is next, so the resulting schedule — assignments
// and load series — is identical to
//
//	Schedule(offersOf(aggregates), target, opts)
//
// for every worker count and completion order (the streaming
// equivalence test pins this), while aggregation CPU overlaps placement
// instead of serializing behind a fully materialized []*Aggregated.
// n is the expected number of groups, as returned by the stream
// constructor.
//
// A failed group (StreamItem.Err) aborts the schedule deterministically:
// failures are parked like aggregates, and the one that aborts is the
// lowest-indexed failing group in placement order — every group before
// it was placed, matching what the materialized batch path would have
// reached — regardless of the completion order the workers happened to
// produce. On early return the caller should cancel the ctx it passed
// to the producer so the remaining aggregation workers stop.
func ScheduleStream(ctx context.Context, items <-chan aggregate.StreamItem, n int, target timeseries.Series, opts Options) (*StreamResult, error) {
	if opts.Order != OrderArrival {
		return nil, ErrStreamOrder
	}
	if n <= 0 {
		return nil, ErrNoOffers
	}
	// The schedule span covers placement including the time spent
	// waiting on the aggregate stream — that wait is the serial
	// fraction the ROADMAP's scaling work wants visible.
	_, sp := obs.Start(ctx, obs.StageSchedule)
	defer sp.End()
	sr := &StreamResult{
		Result:     Result{Assignments: make([]flexoffer.Assignment, n)},
		Aggregates: make([]*aggregate.Aggregated, n),
	}
	ev := newEvaluator(target, opts.PeakCap)
	parked := make([]*aggregate.Aggregated, n)
	failures := make([]*aggregate.GroupError, n)
	seen := make([]bool, n)
	next := 0
	received := 0
	// firstFailure returns the lowest-indexed parked failure, if any.
	firstFailure := func() *aggregate.GroupError {
		for _, ge := range failures {
			if ge != nil {
				return ge
			}
		}
		return nil
	}
	for next < n {
		var item aggregate.StreamItem
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case got, ok := <-items:
			if !ok {
				// A FirstError producer stops claiming groups after a
				// failure, so the stream can close without delivering
				// every index; the parked failure is the real cause.
				if ge := firstFailure(); ge != nil {
					return nil, ge
				}
				return nil, fmt.Errorf("%w: got %d of %d", ErrStreamShort, received, n)
			}
			item = got
		}
		if item.Index < 0 || item.Index >= n || seen[item.Index] {
			return nil, fmt.Errorf("%w: %d (expecting %d groups)", ErrStreamIndex, item.Index, n)
		}
		seen[item.Index] = true
		parked[item.Index] = item.Agg
		failures[item.Index] = item.Err
		received++
		// Drain the contiguous prefix that is now ready. Group next can
		// be placed while groups > next are still aggregating; a parked
		// failure at next aborts, deterministically the lowest-indexed.
		for next < n && (parked[next] != nil || failures[next] != nil) {
			if failures[next] != nil {
				return nil, failures[next]
			}
			a, err := placeOffer(ev, parked[next].Offer, next)
			if err != nil {
				return nil, err
			}
			sr.Assignments[next] = a
			sr.Aggregates[next] = parked[next]
			parked[next] = nil
			next++
		}
	}
	sr.Load = ev.loadSeries()
	return sr, nil
}
