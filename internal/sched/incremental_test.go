package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
	"flexmeasures/internal/workload"
)

// equivCase is one workload/options combination of the equivalence
// oracle: the incremental evaluator must reproduce the legacy
// full-recompute evaluator's schedule bit for bit.
type equivCase struct {
	name string
	opts Options
}

func equivCases() []equivCase {
	return []equivCase{
		{"arrival", Options{}},
		{"arrival/capped", Options{PeakCap: 40}},
		{"arrival/tight-cap", Options{PeakCap: 5}},
		{"least-flexible", Options{Order: OrderLeastFlexibleFirst, Measure: core.VectorMeasure{}}},
		{"most-flexible/capped", Options{Order: OrderMostFlexibleFirst, Measure: core.ProductMeasure{}, PeakCap: 30}},
		{"random", Options{Order: OrderRandom}},
	}
}

// scheduleBothWays runs the same scheduling problem through the legacy
// and incremental evaluators (with independent but identically seeded
// rand sources for OrderRandom) and fails unless the results are
// identical.
func scheduleBothWays(t *testing.T, offers []*flexoffer.FlexOffer, target timeseries.Series, opts Options, seed int64) {
	t.Helper()
	legacyOpts, incOpts := opts, opts
	legacyOpts.FullRecompute = true
	if opts.Order == OrderRandom {
		legacyOpts.Rand = rand.New(rand.NewSource(seed))
		incOpts.Rand = rand.New(rand.NewSource(seed))
	}
	legacy, errL := Schedule(offers, target, legacyOpts)
	inc, errI := Schedule(offers, target, incOpts)
	if (errL == nil) != (errI == nil) {
		t.Fatalf("error divergence: legacy %v, incremental %v", errL, errI)
	}
	if errL != nil {
		return
	}
	if !reflect.DeepEqual(legacy.Assignments, inc.Assignments) {
		for i := range legacy.Assignments {
			if !reflect.DeepEqual(legacy.Assignments[i], inc.Assignments[i]) {
				t.Fatalf("assignment %d diverged:\n  offer    %v\n  legacy      %v @ %d\n  incremental %v @ %d",
					i, offers[i], legacy.Assignments[i].Values, legacy.Assignments[i].Start,
					inc.Assignments[i].Values, inc.Assignments[i].Start)
			}
		}
	}
	if !legacy.Load.Equal(inc.Load) {
		t.Fatalf("load diverged:\n  legacy      %v\n  incremental %v", legacy.Load, inc.Load)
	}
}

// TestIncrementalMatchesLegacyOnWorkloads pins the equivalence on
// realistic synthetic populations (both device mixes, every order,
// with and without peak caps).
func TestIncrementalMatchesLegacyOnWorkloads(t *testing.T) {
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"default", workload.DefaultMix()},
		{"consumption", workload.ConsumptionMix()},
	}
	for _, m := range mixes {
		for _, c := range equivCases() {
			t.Run(m.name+"/"+c.name, func(t *testing.T) {
				r := rand.New(rand.NewSource(1234))
				offers, err := workload.Population(r, 120, 2, m.mix)
				if err != nil {
					t.Fatal(err)
				}
				var expected int64
				for _, f := range offers {
					expected += (f.TotalMin + f.TotalMax) / 2
				}
				horizon := 3 * workload.SlotsPerDay
				target := workload.WindProfile(r, horizon, expected/int64(horizon))
				scheduleBothWays(t, offers, target, c.opts, 77)
			})
		}
	}
}

// TestIncrementalMatchesLegacyRandomized hammers the equivalence with
// adversarial random offers (mixed signs, tight totals, varying
// windows) against random targets, including negative target values
// and caps.
func TestIncrementalMatchesLegacyRandomized(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 1+r.Intn(8))
		for i := range offers {
			offers[i] = randomOfferForSched(r)
		}
		targetVals := make([]int64, 4+r.Intn(12))
		for i := range targetVals {
			targetVals[i] = int64(r.Intn(13) - 4)
		}
		target := timeseries.New(r.Intn(4), targetVals...)
		opts := Options{}
		switch r.Intn(3) {
		case 1:
			opts.PeakCap = int64(1 + r.Intn(6))
		case 2:
			opts.Order = OrderLeastFlexibleFirst
			opts.Measure = core.VectorMeasure{}
		}
		scheduleBothWays(t, offers, target, opts, seed)
	}
}

// TestIncrementalEmptyTarget covers the empty-target path (the
// evaluator's window is grown entirely by the offers).
func TestIncrementalEmptyTarget(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	offers := make([]*flexoffer.FlexOffer, 6)
	for i := range offers {
		offers[i] = randomOfferForSched(r)
	}
	scheduleBothWays(t, offers, timeseries.Series{}, Options{}, 0)
	scheduleBothWays(t, offers, timeseries.Series{}, Options{PeakCap: 3}, 0)
}

// TestPlaceCandidateLoopZeroAllocs pins the tentpole property: once the
// evaluator's window and scratch buffers cover the offer, placing it —
// the entire candidate-evaluation loop plus the commit — performs zero
// heap allocations.
func TestPlaceCandidateLoopZeroAllocs(t *testing.T) {
	target := timeseries.Constant(0, 48, 25)
	f := flexoffer.MustNew(2, 30,
		flexoffer.Slice{Min: 0, Max: 9},
		flexoffer.Slice{Min: 2, Max: 7},
		flexoffer.Slice{Min: 0, Max: 5})
	for _, cap := range []int64{0, 10} {
		ev := newEvaluator(target, cap)
		ev.reserve([]*flexoffer.FlexOffer{f})
		allocs := testing.AllocsPerRun(200, func() {
			if _, ok := ev.place(f); !ok {
				t.Fatal("placement failed")
			}
		})
		if allocs != 0 {
			t.Errorf("cap=%d: candidate evaluation allocated %.1f/op, want 0", cap, allocs)
		}
	}
}

// TestRepairTotalWaterFill pins the headroom-greedy repair semantics.
func TestRepairTotalWaterFill(t *testing.T) {
	s := func(min, max int64) flexoffer.Slice { return flexoffer.Slice{Min: min, Max: max} }

	// Raise: the roomiest slot absorbs down to the runner-up level, then
	// the remainder spreads evenly (index order breaks ties).
	vals := []int64{0, 0}
	if !repairTotal(vals, []flexoffer.Slice{s(0, 3), s(0, 10)}, 9, 20) {
		t.Fatal("repair failed")
	}
	// Rooms 3 and 10: slot 1 absorbs 7 to level with slot 0, the
	// remaining 2 split 1/1.
	if vals[0] != 1 || vals[1] != 8 {
		t.Errorf("raise = %v, want [1 8]", vals)
	}

	// Even split with index-order remainder.
	vals = []int64{0, 0, 0}
	if !repairTotal(vals, []flexoffer.Slice{s(0, 5), s(0, 5), s(0, 5)}, 8, 15) {
		t.Fatal("repair failed")
	}
	if vals[0] != 3 || vals[1] != 3 || vals[2] != 2 {
		t.Errorf("even raise = %v, want [3 3 2]", vals)
	}

	// Lower: drains the most-spare slots first.
	vals = []int64{5, 1}
	if !repairTotal(vals, []flexoffer.Slice{s(0, 5), s(0, 5)}, 0, 2) {
		t.Fatal("repair failed")
	}
	if vals[0] != 1 || vals[1] != 1 {
		t.Errorf("lower = %v, want [1 1]", vals)
	}

	// Infeasible: no headroom at all.
	vals = []int64{2}
	if repairTotal(vals, []flexoffer.Slice{s(2, 2)}, 5, 6) {
		t.Error("repair of an unreachable total must fail")
	}

	// Determinism: identical inputs give identical outputs.
	a := []int64{0, 0, 0, 0}
	b := []int64{0, 0, 0, 0}
	slices := []flexoffer.Slice{s(0, 7), s(0, 2), s(0, 7), s(0, 4)}
	repairTotal(a, slices, 13, 20)
	repairTotal(b, slices, 13, 20)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repair not deterministic: %v vs %v", a, b)
	}
}

// BenchmarkPlaceIncremental measures the per-offer candidate-evaluation
// cost of the incremental evaluator; allocs/op must be 0.
func BenchmarkPlaceIncremental(b *testing.B) {
	target := timeseries.Constant(0, 96, 25)
	f := flexoffer.MustNew(0, 90,
		flexoffer.Slice{Min: 0, Max: 9},
		flexoffer.Slice{Min: 2, Max: 7},
		flexoffer.Slice{Min: 0, Max: 5})
	ev := newEvaluator(target, 0)
	ev.reserve([]*flexoffer.FlexOffer{f})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ev.place(f); !ok {
			b.Fatal("placement failed")
		}
	}
}
