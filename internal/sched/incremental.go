package sched

import (
	"fmt"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// This file implements the incremental candidate evaluator behind
// Schedule's default path. The legacy evaluator (placeOneCapped)
// materializes two full-horizon series and an O(horizon) norm for every
// candidate start of every offer; for a fleet of n offers with w-wide
// start windows over an h-slot horizon that is O(n·w·h) slot reads and
// one heap allocation per candidate. Only the offer's own k slots ever
// change between candidates, so the evaluator below keeps the running
//
//	residual = load − target
//
// in a timeseries.Accumulator and scores a candidate start s as
//
//	Δcost(s) = Σ_{i<k} |residual(s+i)+v(i)| − |residual(s+i)|
//
// plus the same O(k) delta for the peak-cap overage term on a second
// load accumulator. The base terms Σ|residual| and Σ overage(load) are
// constant across the candidates of one offer, and both evaluators rank
// candidates by the exact integer pair (overage, imbalance) with the
// same betterCost comparison, so comparing deltas orders candidates
// exactly as the legacy evaluator's full costs do — at every magnitude,
// with no floating-point rounding anywhere. Candidate values are staged
// in reusable scratch buffers, making the evaluation loop
// allocation-free — the property BenchmarkPlaceIncremental and
// TestPlaceCandidateLoopZeroAllocs pin down.
type evaluator struct {
	// residual accumulates load − target; load accumulates load alone
	// (needed only for the peak-cap overage term, but kept in sync
	// unconditionally — it is O(k) per placement either way).
	residual *timeseries.Accumulator
	load     *timeseries.Accumulator
	// cap is the soft peak cap (0: uncapped), weighted exactly like the
	// legacy evaluator so the two rank candidates identically.
	cap int64
	// scratch stages the candidate values of the start being scored;
	// best holds the winning candidate's values.
	scratch []int64
	best    []int64
	// loadLo/loadHi track the union range of committed assignments, so
	// loadSeries can reproduce the legacy Result.Load exactly (its range
	// is the union of the assignment ranges, not the target's).
	loadLo, loadHi int
	placedAny      bool
}

// newEvaluator starts an evaluator against the target: the residual
// begins at −target (no load placed yet).
func newEvaluator(target timeseries.Series, cap int64) *evaluator {
	ev := &evaluator{
		residual: timeseries.NewAccumulator(),
		load:     timeseries.NewAccumulator(),
		cap:      cap,
	}
	ev.residual.AddScaled(target, -1)
	ev.load.Ensure(target.Start, target.End())
	return ev
}

// reserve pre-sizes the window and scratch buffers for the offers, so
// placing them triggers no further growth. Streaming callers that do
// not know the batch up front may skip this; the buffers then grow
// amortized as offers arrive (growth happens between offers, never
// inside the candidate loop).
func (ev *evaluator) reserve(offers []*flexoffer.FlexOffer) {
	maxK := 0
	for _, f := range offers {
		if f == nil {
			continue
		}
		ev.residual.Ensure(f.EarliestStart, f.LatestEnd())
		ev.load.Ensure(f.EarliestStart, f.LatestEnd())
		if k := f.NumSlices(); k > maxK {
			maxK = k
		}
	}
	ev.ensureSlices(maxK)
}

// ensureSlices grows the per-candidate scratch buffers to hold k values.
func (ev *evaluator) ensureSlices(k int) {
	if cap(ev.scratch) < k {
		ev.scratch = make([]int64, k)
		ev.best = make([]int64, k)
	}
}

// place finds the best start for f against the current residual, commits
// the winning assignment into the running buffers and returns its start.
// The winning values are left in ev.best[:f.NumSlices()] for the caller
// to copy out. ok is false when no feasible candidate exists (impossible
// for a Validate-d offer). place performs zero allocations once the
// window and scratch buffers cover the offer.
func (ev *evaluator) place(f *flexoffer.FlexOffer) (start int, ok bool) {
	start, _, ok = ev.scan(f)
	if ok {
		ev.addValues(start, ev.best[:f.NumSlices()])
	}
	return start, ok
}

// scan finds the best start for f against the current residual without
// committing anything: the winning values are staged in ev.best and
// dAbs is the winner's imbalance delta Σ |r+v| − |r| over its own
// slots, which the local-search Improve compares against the delta of
// removing an existing assignment. The peak-cap overage delta ranks
// candidates inside the scan but is not returned — scan's only
// cap-aware caller (place) commits the winner unconditionally. ok is
// false when no feasible candidate exists.
func (ev *evaluator) scan(f *flexoffer.FlexOffer) (start int, dAbs int64, ok bool) {
	k := f.NumSlices()
	ev.residual.Ensure(f.EarliestStart, f.LatestEnd())
	ev.load.Ensure(f.EarliestStart, f.LatestEnd())
	ev.ensureSlices(k)

	bestStart, found := 0, false
	var bestAbs, bestOver int64
	for s := f.EarliestStart; s <= f.LatestStart; s++ {
		res := ev.residual.Values(s, s+k)
		if !fitInto(f, res, ev.scratch[:k]) {
			continue
		}
		var cAbs int64
		for i, v := range ev.scratch[:k] {
			r := res[i]
			cAbs += abs64(r+v) - abs64(r)
		}
		var cOver int64
		if ev.cap > 0 {
			ld := ev.load.Values(s, s+k)
			for i, v := range ev.scratch[:k] {
				cOver += over64(ld[i]+v, ev.cap) - over64(ld[i], ev.cap)
			}
		}
		// The deltas can be negative (placing may reduce the residual);
		// betterCost only needs the ordering, which the constant base
		// terms cannot change.
		if !found || betterCost(cOver, cAbs, bestOver, bestAbs) {
			found, bestStart, bestAbs, bestOver = true, s, cAbs, cOver
			copy(ev.best[:k], ev.scratch[:k])
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestStart, bestAbs, true
}

// addValues folds vals into the running buffers starting at start,
// growing the committed-load range, and returns the imbalance delta
// Σ |r+v| − |r| the fold caused. It is both place's commit step and
// Improve's restore step.
func (ev *evaluator) addValues(start int, vals []int64) (dAbs int64) {
	if len(vals) == 0 {
		return 0
	}
	res := ev.residual.Values(start, start+len(vals))
	ld := ev.load.Values(start, start+len(vals))
	for i, v := range vals {
		dAbs += abs64(res[i]+v) - abs64(res[i])
		res[i] += v
		ld[i] += v
	}
	if !ev.placedAny || start < ev.loadLo {
		ev.loadLo = start
	}
	if !ev.placedAny || start+len(vals) > ev.loadHi {
		ev.loadHi = start + len(vals)
	}
	ev.placedAny = true
	return dAbs
}

// removeValues subtracts vals from the running buffers starting at
// start — Improve's "lift one assignment out of the load" step — and
// returns the imbalance delta Σ |r−v| − |r| of the removal. The
// committed-load range never shrinks, matching the legacy path, whose
// series domains only ever grow.
func (ev *evaluator) removeValues(start int, vals []int64) (dAbs int64) {
	if len(vals) == 0 {
		return 0
	}
	res := ev.residual.Values(start, start+len(vals))
	ld := ev.load.Values(start, start+len(vals))
	for i, v := range vals {
		dAbs += abs64(res[i]-v) - abs64(res[i])
		res[i] -= v
		ld[i] -= v
	}
	return dAbs
}

// placeOffer validates f, places it through the evaluator and
// materializes the winning assignment — the shared per-offer step of
// Schedule and ScheduleStream, so the batch and streaming paths cannot
// drift apart. idx only labels errors.
func placeOffer(ev *evaluator, f *flexoffer.FlexOffer, idx int) (flexoffer.Assignment, error) {
	if err := f.Validate(); err != nil {
		return flexoffer.Assignment{}, fmt.Errorf("sched: offer %d: %w", idx, err)
	}
	start, ok := ev.place(f)
	if !ok {
		return flexoffer.Assignment{}, fmt.Errorf("sched: offer %d: %w", idx, flexoffer.ErrInfeasibleTotal)
	}
	vals := make([]int64, f.NumSlices())
	copy(vals, ev.best)
	return flexoffer.Assignment{Start: start, Values: vals}, nil
}

// loadSeries snapshots the committed load over the union range of the
// placed assignments — exactly the series the legacy path builds by
// folding assignment series with timeseries.Add.
func (ev *evaluator) loadSeries() timeseries.Series {
	if !ev.placedAny {
		return timeseries.Series{}
	}
	return ev.load.Snapshot(ev.loadLo, ev.loadHi)
}

// fitInto is the allocation-free core of fitValues: it writes the
// candidate values for the offer into vals (len == NumSlices), reading
// the gap to the target from the residual cells (want = −residual), and
// repairs the total into [cmin, cmax]. It reports whether the candidate
// is feasible. fitValues wraps it for the legacy evaluator, so the two
// paths choose identical values by construction.
func fitInto(f *flexoffer.FlexOffer, residual, vals []int64) bool {
	for i, s := range f.Slices {
		v := -residual[i] // want = target − load
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		vals[i] = v
	}
	return repairTotal(vals, f.Slices, f.TotalMin, f.TotalMax)
}

// abs64 is |v| for int64 (math.Abs forces a float round-trip).
func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// over64 is the overage of |v| above the cap, 0 when under it.
func over64(v, cap int64) int64 {
	if v < 0 {
		v = -v
	}
	if v > cap {
		return v - cap
	}
	return 0
}
