// Package sched implements flex-offer scheduling, the substrate of the
// paper's Scenario 1 (Section 1): assigning a start time and exact energy
// amounts to every flex-offer so the resulting load follows a target
// profile (e.g. forecast wind production). The flex-offer scheduling
// problem is NP-hard in general (the paper's references [12][13] relate
// it to unit commitment), so this package provides greedy heuristics,
// which is also what the TotalFlex pipeline used in practice.
//
// The scheduler is the *consumer* of flexibility: more flexible offers
// (under any of the paper's measures) give the greedy placement more
// room, which the imbalance metric makes visible — experiment X2
// regenerates that relationship.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// Sentinel errors.
var (
	ErrNoOffers  = errors.New("sched: no offers to schedule")
	ErrNeedsRand = errors.New("sched: OrderRandom requires a rand source")
)

// Order selects the order in which the greedy scheduler places offers.
type Order int

const (
	// OrderArrival schedules offers in input order.
	OrderArrival Order = iota
	// OrderLeastFlexibleFirst places the most constrained offers first,
	// leaving flexible offers to fill the remaining valleys — the
	// classic bin-packing style heuristic.
	OrderLeastFlexibleFirst
	// OrderMostFlexibleFirst places the most flexible offers first.
	OrderMostFlexibleFirst
	// OrderRandom shuffles the offers; the baseline for X2.
	OrderRandom
)

// String names the order for reports.
func (o Order) String() string {
	switch o {
	case OrderArrival:
		return "arrival"
	case OrderLeastFlexibleFirst:
		return "least-flexible-first"
	case OrderMostFlexibleFirst:
		return "most-flexible-first"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Options configures Schedule.
type Options struct {
	// Order selects the placement order (default OrderArrival).
	Order Order
	// Measure ranks offers for the flexibility-aware orders; required
	// for OrderLeastFlexibleFirst and OrderMostFlexibleFirst. The
	// paper's measures plug in directly.
	Measure core.Measure
	// Rand supplies randomness for OrderRandom.
	Rand *rand.Rand
	// PeakCap, when positive, makes the scheduler treat |load| above
	// the cap as prohibitively expensive — the congestion-management
	// use the paper attributes to DSOs ("congestion problems of
	// Distributed System Operators can be handled without costly
	// upgrades of physical grid infrastructures"). The cap is soft:
	// when the fleet's mandatory energy cannot fit under it, the
	// schedule is still produced, with the overage minimised.
	PeakCap int64
}

// Result is a complete schedule: one assignment per offer (by input
// index) and the resulting total load series.
type Result struct {
	// Assignments holds one valid assignment per input offer.
	Assignments []flexoffer.Assignment
	// Load is the slot-wise sum of all assignments.
	Load timeseries.Series
}

// Imbalance returns the L1 distance between the schedule's load and the
// target over the union of their domains: the energy that must be
// balanced by other means (the quantity BRPs pay penalties for,
// Scenario 2).
func (r *Result) Imbalance(target timeseries.Series) float64 {
	return timeseries.Sub(r.Load, target).NormL1()
}

// PeakLoad returns the maximum absolute load of the schedule.
func (r *Result) PeakLoad() int64 {
	var peak int64
	for _, v := range r.Load.Values {
		if v > peak {
			peak = v
		}
		if -v > peak {
			peak = -v
		}
	}
	return peak
}

// Schedule greedily assigns every offer a start time and energy values
// so the total load tracks the target series. For each offer (in the
// configured order) every feasible start time is tried; the values are
// chosen slot-wise to close the gap to the target, the total is repaired
// into [cmin, cmax], and the start with the smallest resulting imbalance
// contribution wins. The returned assignments are always valid for their
// offers.
func Schedule(offers []*flexoffer.FlexOffer, target timeseries.Series, opts Options) (*Result, error) {
	if len(offers) == 0 {
		return nil, ErrNoOffers
	}
	order, err := placementOrder(offers, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Assignments: make([]flexoffer.Assignment, len(offers))}
	load := timeseries.Series{}
	for _, idx := range order {
		f := offers[idx]
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("sched: offer %d: %w", idx, err)
		}
		best, err := placeOneCapped(f, load, target, opts.PeakCap)
		if err != nil {
			return nil, fmt.Errorf("sched: offer %d: %w", idx, err)
		}
		res.Assignments[idx] = best
		load = timeseries.Add(load, best.Series())
	}
	res.Load = load
	return res, nil
}

// placementOrder resolves Options into a permutation of offer indices.
func placementOrder(offers []*flexoffer.FlexOffer, opts Options) ([]int, error) {
	order := make([]int, len(offers))
	for i := range order {
		order[i] = i
	}
	switch opts.Order {
	case OrderArrival:
		return order, nil
	case OrderRandom:
		if opts.Rand == nil {
			return nil, ErrNeedsRand
		}
		opts.Rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order, nil
	case OrderLeastFlexibleFirst, OrderMostFlexibleFirst:
		m := opts.Measure
		if m == nil {
			m = core.VectorMeasure{}
		}
		keys := make([]float64, len(offers))
		for i, f := range offers {
			v, err := m.Value(f)
			if err != nil {
				return nil, fmt.Errorf("sched: ranking offer %d with %s: %w", i, m.Name(), err)
			}
			keys[i] = v
		}
		asc := opts.Order == OrderLeastFlexibleFirst
		sort.SliceStable(order, func(a, b int) bool {
			if asc {
				return keys[order[a]] < keys[order[b]]
			}
			return keys[order[a]] > keys[order[b]]
		})
		return order, nil
	default:
		return nil, fmt.Errorf("sched: unknown order %d", int(opts.Order))
	}
}

// placeOne finds the best assignment of f given the current load.
func placeOne(f *flexoffer.FlexOffer, load, target timeseries.Series) (flexoffer.Assignment, error) {
	return placeOneCapped(f, load, target, 0)
}

// placeOneCapped is placeOne with a soft peak cap: every unit of |load|
// above the cap costs vastly more than any imbalance, so capped
// placements are preferred whenever one exists.
func placeOneCapped(f *flexoffer.FlexOffer, load, target timeseries.Series, cap int64) (flexoffer.Assignment, error) {
	var best flexoffer.Assignment
	bestCost := 0.0
	found := false
	for start := f.EarliestStart; start <= f.LatestStart; start++ {
		a, err := fitValues(f, start, load, target)
		if err != nil {
			continue
		}
		after := timeseries.Add(load, a.Series())
		cost := timeseries.Sub(after, target).NormL1()
		if cap > 0 {
			cost += 1e9 * float64(overage(after, cap))
		}
		if !found || cost < bestCost {
			best, bestCost, found = a, cost, true
		}
	}
	if !found {
		return flexoffer.Assignment{}, flexoffer.ErrInfeasibleTotal
	}
	return best, nil
}

// overage sums |load| above the cap across all slots.
func overage(load timeseries.Series, cap int64) int64 {
	var over int64
	for _, v := range load.Values {
		if v < 0 {
			v = -v
		}
		if v > cap {
			over += v - cap
		}
	}
	return over
}

// fitValues chooses slice values at the given start that close the gap
// to the target, then repairs the total into [cmin, cmax] by moving the
// value set as little as possible.
func fitValues(f *flexoffer.FlexOffer, start int, load, target timeseries.Series) (flexoffer.Assignment, error) {
	a := flexoffer.Assignment{Start: start, Values: make([]int64, f.NumSlices())}
	for i, s := range f.Slices {
		t := start + i
		want := target.At(t) - load.At(t)
		v := want
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		a.Values[i] = v
	}
	total := a.TotalEnergy()
	// Repair the total: raise the cheapest slots (largest remaining
	// headroom first would also work; slot order keeps it deterministic).
	for i := 0; total < f.TotalMin && i < len(a.Values); i++ {
		room := f.Slices[i].Max - a.Values[i]
		need := f.TotalMin - total
		if room > need {
			room = need
		}
		a.Values[i] += room
		total += room
	}
	for i := 0; total > f.TotalMax && i < len(a.Values); i++ {
		spare := a.Values[i] - f.Slices[i].Min
		excess := total - f.TotalMax
		if spare > excess {
			spare = excess
		}
		a.Values[i] -= spare
		total -= spare
	}
	if err := f.ValidateAssignment(a); err != nil {
		return flexoffer.Assignment{}, err
	}
	return a, nil
}
