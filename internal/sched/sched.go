// Package sched implements flex-offer scheduling, the substrate of the
// paper's Scenario 1 (Section 1): assigning a start time and exact energy
// amounts to every flex-offer so the resulting load follows a target
// profile (e.g. forecast wind production). The flex-offer scheduling
// problem is NP-hard in general (the paper's references [12][13] relate
// it to unit commitment), so this package provides greedy heuristics,
// which is also what the TotalFlex pipeline used in practice.
//
// The scheduler is the *consumer* of flexibility: more flexible offers
// (under any of the paper's measures) give the greedy placement more
// room, which the imbalance metric makes visible — experiment X2
// regenerates that relationship.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// Sentinel errors.
var (
	ErrNoOffers  = errors.New("sched: no offers to schedule")
	ErrNeedsRand = errors.New("sched: OrderRandom requires a rand source")
)

// Order selects the order in which the greedy scheduler places offers.
type Order int

const (
	// OrderArrival schedules offers in input order.
	OrderArrival Order = iota
	// OrderLeastFlexibleFirst places the most constrained offers first,
	// leaving flexible offers to fill the remaining valleys — the
	// classic bin-packing style heuristic.
	OrderLeastFlexibleFirst
	// OrderMostFlexibleFirst places the most flexible offers first.
	OrderMostFlexibleFirst
	// OrderRandom shuffles the offers; the baseline for X2.
	OrderRandom
)

// String names the order for reports.
func (o Order) String() string {
	switch o {
	case OrderArrival:
		return "arrival"
	case OrderLeastFlexibleFirst:
		return "least-flexible-first"
	case OrderMostFlexibleFirst:
		return "most-flexible-first"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Options configures Schedule.
type Options struct {
	// Order selects the placement order (default OrderArrival).
	Order Order
	// Measure ranks offers for the flexibility-aware orders; required
	// for OrderLeastFlexibleFirst and OrderMostFlexibleFirst. The
	// paper's measures plug in directly.
	Measure core.Measure
	// Rand supplies randomness for OrderRandom.
	Rand *rand.Rand
	// PeakCap, when positive, makes the scheduler treat |load| above
	// the cap as prohibitively expensive — the congestion-management
	// use the paper attributes to DSOs ("congestion problems of
	// Distributed System Operators can be handled without costly
	// upgrades of physical grid infrastructures"). The cap is soft:
	// when the fleet's mandatory energy cannot fit under it, the
	// schedule is still produced, with the overage minimised.
	PeakCap int64
	// FullRecompute switches Schedule to the legacy candidate
	// evaluator, which materializes the full load and difference series
	// and recomputes their O(horizon) norm for every candidate start.
	// The default incremental evaluator scores each candidate in O(k)
	// over only the offer's own slots and produces identical schedules
	// (the equivalence property test pins this); the legacy path is
	// retained as the oracle for that test and for flexbench -sched.
	FullRecompute bool
}

// Result is a complete schedule: one assignment per offer (by input
// index) and the resulting total load series.
type Result struct {
	// Assignments holds one valid assignment per input offer.
	Assignments []flexoffer.Assignment
	// Load is the slot-wise sum of all assignments.
	Load timeseries.Series
}

// Imbalance returns the L1 distance between the schedule's load and the
// target over the union of their domains: the energy that must be
// balanced by other means (the quantity BRPs pay penalties for,
// Scenario 2).
func (r *Result) Imbalance(target timeseries.Series) float64 {
	return timeseries.Sub(r.Load, target).NormL1()
}

// PeakLoad returns the maximum absolute load of the schedule.
func (r *Result) PeakLoad() int64 {
	var peak int64
	for _, v := range r.Load.Values {
		if v > peak {
			peak = v
		}
		if -v > peak {
			peak = -v
		}
	}
	return peak
}

// Schedule greedily assigns every offer a start time and energy values
// so the total load tracks the target series. For each offer (in the
// configured order) every feasible start time is tried; the values are
// chosen slot-wise to close the gap to the target, the total is repaired
// into [cmin, cmax], and the start with the smallest resulting imbalance
// contribution wins. The returned assignments are always valid for their
// offers.
//
// By default candidates are scored by the incremental delta evaluator
// (see incremental.go), which does zero allocations in the candidate
// loop; Options.FullRecompute selects the legacy full-recompute
// evaluator. Both produce identical schedules.
func Schedule(offers []*flexoffer.FlexOffer, target timeseries.Series, opts Options) (*Result, error) {
	if len(offers) == 0 {
		return nil, ErrNoOffers
	}
	order, err := placementOrder(offers, opts)
	if err != nil {
		return nil, err
	}
	if opts.FullRecompute {
		return scheduleFullRecompute(offers, order, target, opts)
	}
	res := &Result{Assignments: make([]flexoffer.Assignment, len(offers))}
	ev := newEvaluator(target, opts.PeakCap)
	ev.reserve(offers)
	for _, idx := range order {
		a, err := placeOffer(ev, offers[idx], idx)
		if err != nil {
			return nil, err
		}
		res.Assignments[idx] = a
	}
	res.Load = ev.loadSeries()
	return res, nil
}

// scheduleFullRecompute is the legacy scheduling loop: every candidate
// evaluation materializes the would-be load and its difference to the
// target. Kept as the equivalence oracle for the incremental evaluator.
func scheduleFullRecompute(offers []*flexoffer.FlexOffer, order []int, target timeseries.Series, opts Options) (*Result, error) {
	res := &Result{Assignments: make([]flexoffer.Assignment, len(offers))}
	load := timeseries.Series{}
	for _, idx := range order {
		f := offers[idx]
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("sched: offer %d: %w", idx, err)
		}
		best, err := placeOneCapped(f, load, target, opts.PeakCap)
		if err != nil {
			return nil, fmt.Errorf("sched: offer %d: %w", idx, err)
		}
		res.Assignments[idx] = best
		load = timeseries.Add(load, best.Series())
	}
	res.Load = load
	return res, nil
}

// placementOrder resolves Options into a permutation of offer indices.
func placementOrder(offers []*flexoffer.FlexOffer, opts Options) ([]int, error) {
	order := make([]int, len(offers))
	for i := range order {
		order[i] = i
	}
	switch opts.Order {
	case OrderArrival:
		return order, nil
	case OrderRandom:
		if opts.Rand == nil {
			return nil, ErrNeedsRand
		}
		opts.Rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return order, nil
	case OrderLeastFlexibleFirst, OrderMostFlexibleFirst:
		m := opts.Measure
		if m == nil {
			m = core.VectorMeasure{}
		}
		keys := make([]float64, len(offers))
		for i, f := range offers {
			v, err := m.Value(f)
			if err != nil {
				return nil, fmt.Errorf("sched: ranking offer %d with %s: %w", i, m.Name(), err)
			}
			keys[i] = v
		}
		asc := opts.Order == OrderLeastFlexibleFirst
		sort.SliceStable(order, func(a, b int) bool {
			if asc {
				return keys[order[a]] < keys[order[b]]
			}
			return keys[order[a]] > keys[order[b]]
		})
		return order, nil
	default:
		return nil, fmt.Errorf("sched: unknown order %d", int(opts.Order))
	}
}

// placeOne finds the best assignment of f given the current load.
func placeOne(f *flexoffer.FlexOffer, load, target timeseries.Series) (flexoffer.Assignment, error) {
	return placeOneCapped(f, load, target, 0)
}

// placeOneCapped is placeOne with a soft peak cap: any amount of |load|
// above the cap outranks any amount of imbalance, so capped placements
// are preferred whenever one exists. Candidates are compared by the
// exact integer pair (overage, imbalance) — lexicographically, via
// betterCost — rather than a float-weighted sum, so the ranking is
// identical to the incremental evaluator's delta ranking at every
// magnitude (float64 summation would lose low-order bits past 2^53).
func placeOneCapped(f *flexoffer.FlexOffer, load, target timeseries.Series, cap int64) (flexoffer.Assignment, error) {
	var best flexoffer.Assignment
	var bestAbs, bestOver int64
	found := false
	for start := f.EarliestStart; start <= f.LatestStart; start++ {
		a, err := fitValues(f, start, load, target)
		if err != nil {
			continue
		}
		after := timeseries.Add(load, a.Series())
		costAbs := normL1Int(timeseries.Sub(after, target))
		var costOver int64
		if cap > 0 {
			costOver = overage(after, cap)
		}
		if !found || betterCost(costOver, costAbs, bestOver, bestAbs) {
			best, bestAbs, bestOver, found = a, costAbs, costOver, true
		}
	}
	if !found {
		return flexoffer.Assignment{}, flexoffer.ErrInfeasibleTotal
	}
	return best, nil
}

// betterCost ranks candidate costs: less overage wins outright (the cap
// is "prohibitively expensive"), imbalance breaks ties. Strict
// comparison, so among equals the earliest-scanned start wins — the
// tie-break both evaluators share.
func betterCost(over, abs, bestOver, bestAbs int64) bool {
	if over != bestOver {
		return over < bestOver
	}
	return abs < bestAbs
}

// normL1Int is the L1 norm in exact integer arithmetic.
func normL1Int(s timeseries.Series) int64 {
	var sum int64
	for _, v := range s.Values {
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum
}

// overage sums |load| above the cap across all slots.
func overage(load timeseries.Series, cap int64) int64 {
	var over int64
	for _, v := range load.Values {
		if v < 0 {
			v = -v
		}
		if v > cap {
			over += v - cap
		}
	}
	return over
}

// fitValues chooses slice values at the given start that close the gap
// to the target, then repairs the total into [cmin, cmax] by moving the
// value set as little as possible. It is the legacy evaluator's wrapper
// around fitInto (incremental.go), so both evaluators choose identical
// values.
func fitValues(f *flexoffer.FlexOffer, start int, load, target timeseries.Series) (flexoffer.Assignment, error) {
	a := flexoffer.Assignment{Start: start, Values: make([]int64, f.NumSlices())}
	residual := make([]int64, f.NumSlices())
	for i := range residual {
		t := start + i
		residual[i] = load.At(t) - target.At(t)
	}
	if !fitInto(f, residual, a.Values) {
		return flexoffer.Assignment{}, flexoffer.ErrInfeasibleTotal
	}
	if err := f.ValidateAssignment(a); err != nil {
		return flexoffer.Assignment{}, err
	}
	return a, nil
}

// repairTotal nudges vals — already clamped into their slice ranges — so
// the total lands in [totalMin, totalMax], and reports whether it could
// (false only when the slice ranges themselves cannot reach the band,
// which cannot happen for a Validate-d offer).
//
// Both passes are headroom-greedy water-fills: the raise pass always
// adds energy to the slots with the most remaining headroom (slice max
// minus current value), lowering the largest headrooms level by level,
// and the lower pass symmetrically drains the slots with the most spare
// above their slice minima. Compared to the previous index-order repair
// — which filled slot 0 to its maximum before touching slot 1, piling
// the repaired energy onto the front of the profile — water-filling
// spreads the repair across the profile, so repaired totals sit closer
// to the slot-wise target shape and contribute smaller peaks.
//
// Determinism guarantee: the result is a pure function of (vals, slices,
// totalMin, totalMax). Each round computes the current headroom level
// from the values alone and distributes the remainder in ascending slot
// order, so equal inputs — regardless of scheduling order, worker count
// or previous calls — produce identical outputs. The scheduler's
// equivalence and streaming tests rely on this.
func repairTotal(vals []int64, slices []flexoffer.Slice, totalMin, totalMax int64) bool {
	var total int64
	for _, v := range vals {
		total += v
	}
	if total < totalMin {
		return waterFill(vals, slices, totalMin-total, +1)
	}
	if total > totalMax {
		return waterFill(vals, slices, total-totalMax, -1)
	}
	return true
}

// waterFill moves amount units of energy into (dir=+1) or out of
// (dir=−1) vals by repeatedly leveling the slots with the most headroom
// — slice max minus value when raising, value minus slice min when
// lowering — down to the runner-up headroom, then spreading the
// remainder evenly in ascending slot order. One function serves both
// directions so the passes cannot drift apart; it takes a sign instead
// of accessor closures so the per-candidate hot path stays
// allocation-free.
func waterFill(vals []int64, slices []flexoffer.Slice, amount int64, dir int64) bool {
	headroom := func(i int) int64 {
		if dir > 0 {
			return slices[i].Max - vals[i]
		}
		return vals[i] - slices[i].Min
	}
	for amount > 0 {
		// Find the largest headroom, how many slots sit at it, and the
		// runner-up level to drop them to.
		maxH, second := int64(-1), int64(-1)
		n := int64(0)
		for i := range slices {
			h := headroom(i)
			switch {
			case h > maxH:
				second = maxH
				maxH = h
				n = 1
			case h == maxH:
				n++
			case h > second:
				second = h
			}
		}
		if maxH <= 0 {
			return false
		}
		if second < 0 {
			second = 0
		}
		step := maxH - second // ≥ 1: second is always strictly below maxH
		if capacity := n * step; capacity < amount {
			// Drop every maximal slot to the runner-up level and repeat.
			for i := range slices {
				if headroom(i) == maxH {
					vals[i] += dir * step
				}
			}
			amount -= capacity
			continue
		}
		// The maximal slots can absorb the rest; spread it evenly with
		// the remainder going to the lowest-indexed slots.
		q, rem := amount/n, amount%n
		for i := range slices {
			if headroom(i) != maxH {
				continue
			}
			d := q
			if rem > 0 {
				d++
				rem--
			}
			vals[i] += dir * d
		}
		return true
	}
	return true
}
