package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

func TestPeakCapSpreadsLoad(t *testing.T) {
	// Five identical 2-unit offers, all wanting t=0 (target bump
	// there). Uncapped, they pile up; with cap 4 the scheduler spreads
	// them across the window.
	offers := make([]*flexoffer.FlexOffer, 5)
	for i := range offers {
		offers[i] = flexoffer.MustNew(0, 4, sl(2, 2))
	}
	target := timeseries.New(0, 10)
	uncapped, err := Schedule(offers, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.PeakLoad() <= 4 {
		t.Fatalf("fixture broken: uncapped peak %d should exceed 4", uncapped.PeakLoad())
	}
	capped, err := Schedule(offers, target, Options{PeakCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if capped.PeakLoad() > 4 {
		t.Errorf("capped peak = %d, want ≤ 4", capped.PeakLoad())
	}
	for i, a := range capped.Assignments {
		if err := offers[i].ValidateAssignment(a); err != nil {
			t.Errorf("offer %d invalid: %v", i, err)
		}
	}
}

func TestPeakCapSoftWhenInfeasible(t *testing.T) {
	// Two rigid offers colliding at the same slot: the cap cannot be
	// met, but scheduling must still succeed with minimal overage.
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(1, 1, sl(3, 3)),
		flexoffer.MustNew(1, 1, sl(3, 3)),
	}
	res, err := Schedule(offers, timeseries.Series{}, Options{PeakCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakLoad() != 6 {
		t.Errorf("peak = %d, want 6 (cap is soft)", res.PeakLoad())
	}
}

func TestPeakCapZeroMeansUncapped(t *testing.T) {
	offers := []*flexoffer.FlexOffer{flexoffer.MustNew(0, 0, sl(5, 5))}
	res, err := Schedule(offers, timeseries.New(0, 5), Options{PeakCap: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakLoad() != 5 {
		t.Errorf("peak = %d", res.PeakLoad())
	}
}

func TestPropertyPeakCapKeepsSchedulesValid(t *testing.T) {
	// The cap is a soft greedy preference, so a global "capped peak ≤
	// uncapped peak" does not hold in every adversarial instance; what
	// the scheduler does guarantee is that capping never breaks
	// validity and that a generous cap (≥ the uncapped peak) changes
	// nothing.
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 2+r.Intn(6))
		for i := range offers {
			offers[i] = randomOfferForSched(r)
		}
		target := timeseries.Series{}
		uncapped, err := Schedule(offers, target, Options{})
		if err != nil {
			return false
		}
		capped, err := Schedule(offers, target, Options{PeakCap: 1 + uncapped.PeakLoad()/2})
		if err != nil {
			return false
		}
		for i, a := range capped.Assignments {
			if offers[i].ValidateAssignment(a) != nil {
				return false
			}
		}
		generous, err := Schedule(offers, target, Options{PeakCap: uncapped.PeakLoad() + 1})
		if err != nil {
			return false
		}
		return generous.PeakLoad() <= uncapped.PeakLoad()+1
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
