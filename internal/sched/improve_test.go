package sched

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

func TestImproveNeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	offers := make([]*flexoffer.FlexOffer, 40)
	for i := range offers {
		offers[i] = randomOfferForSched(r)
	}
	targetVals := make([]int64, 16)
	for i := range targetVals {
		targetVals[i] = int64(r.Intn(10))
	}
	target := timeseries.New(0, targetVals...)
	base, err := Schedule(offers, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := Improve(offers, target, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Imbalance(target) > base.Imbalance(target) {
		t.Errorf("Improve worsened imbalance: %g → %g",
			base.Imbalance(target), improved.Imbalance(target))
	}
	for i, a := range improved.Assignments {
		if err := offers[i].ValidateAssignment(a); err != nil {
			t.Errorf("assignment %d invalid after Improve: %v", i, err)
		}
	}
}

func TestImproveFixesGreedyMistake(t *testing.T) {
	// The greedy places the first offer on the only bump, forcing the
	// second (inflexible at that slot) to collide; re-placement moves
	// the flexible one away.
	flexible := flexoffer.MustNew(0, 4, sl(2, 2))
	rigid := flexoffer.MustNew(1, 1, sl(2, 2))
	offers := []*flexoffer.FlexOffer{flexible, rigid}
	target := timeseries.New(1, 2, 0, 2) // bumps at t=1 and t=3
	base, err := Schedule(offers, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := Improve(offers, target, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Imbalance(target) != 0 {
		t.Errorf("imbalance after Improve = %g, want 0 (flexible offer should move to t=3)",
			improved.Imbalance(target))
	}
	if improved.Assignments[0].Start != 3 {
		t.Errorf("flexible offer start = %d, want 3", improved.Assignments[0].Start)
	}
}

func TestImproveDoesNotMutateInput(t *testing.T) {
	offers := []*flexoffer.FlexOffer{flexoffer.MustNew(0, 4, sl(2, 2))}
	target := timeseries.New(3, 2)
	base := &Result{
		Assignments: []flexoffer.Assignment{flexoffer.NewAssignment(0, 2)},
		Load:        timeseries.New(0, 2),
	}
	if _, err := Improve(offers, target, base, 0); err != nil {
		t.Fatal(err)
	}
	if base.Assignments[0].Start != 0 || base.Load.At(0) != 2 {
		t.Error("Improve mutated its input result")
	}
}

func TestImproveRejectsMismatchedResult(t *testing.T) {
	offers := []*flexoffer.FlexOffer{flexoffer.MustNew(0, 4, sl(2, 2))}
	if _, err := Improve(offers, timeseries.Series{}, nil, 0); !errors.Is(err, ErrResultMismatch) {
		t.Errorf("nil result = %v", err)
	}
	bad := &Result{Assignments: []flexoffer.Assignment{flexoffer.NewAssignment(9, 2)}}
	if _, err := Improve(offers, timeseries.Series{}, bad, 0); !errors.Is(err, ErrResultMismatch) {
		t.Errorf("invalid assignment = %v", err)
	}
}

func TestScheduleAndImprove(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		flexoffer.MustNew(0, 4, sl(2, 2)),
		flexoffer.MustNew(1, 1, sl(2, 2)),
	}
	target := timeseries.New(1, 2, 0, 2)
	res, err := ScheduleAndImprove(offers, target, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance(target) != 0 {
		t.Errorf("imbalance = %g, want 0", res.Imbalance(target))
	}
}

// TestPropertyImproveIncrementalEquivalence pins the headline claim of
// the incremental local search: for random fleets, targets and round
// caps it produces exactly the refined schedule the legacy
// full-recompute loop produces — same assignments, same load series.
func TestPropertyImproveIncrementalEquivalence(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 1+r.Intn(12))
		for i := range offers {
			offers[i] = randomOfferForSched(r)
		}
		vals := make([]int64, 14)
		for i := range vals {
			vals[i] = int64(r.Intn(9) - 2)
		}
		target := timeseries.New(r.Intn(3), vals...)
		base, err := Schedule(offers, target, Options{})
		if err != nil {
			return false
		}
		maxRounds := r.Intn(4) // 0 = until convergence
		legacy, err := ImproveWith(offers, target, base, maxRounds, Options{FullRecompute: true})
		if err != nil {
			return false
		}
		incremental, err := Improve(offers, target, base, maxRounds)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(legacy.Assignments, incremental.Assignments) {
			return false
		}
		return legacy.Load.Equal(incremental.Load)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// improveBenchFleet builds a reproducible fleet and greedy schedule for
// the Improve benchmarks.
func improveBenchFleet(b *testing.B, n int) ([]*flexoffer.FlexOffer, timeseries.Series, *Result) {
	b.Helper()
	r := rand.New(rand.NewSource(5))
	offers := make([]*flexoffer.FlexOffer, n)
	for i := range offers {
		offers[i] = randomOfferForSched(r)
	}
	vals := make([]int64, 32)
	for i := range vals {
		vals[i] = int64(r.Intn(12))
	}
	target := timeseries.New(0, vals...)
	base, err := Schedule(offers, target, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return offers, target, base
}

func BenchmarkImprove200(b *testing.B) {
	offers, target, base := improveBenchFleet(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Improve(offers, target, base, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImprove200Legacy(b *testing.B) {
	offers, target, base := improveBenchFleet(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ImproveWith(offers, target, base, 2, Options{FullRecompute: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPropertyImproveMonotoneAndValid(t *testing.T) {
	fn := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		offers := make([]*flexoffer.FlexOffer, 1+r.Intn(8))
		for i := range offers {
			offers[i] = randomOfferForSched(r)
		}
		vals := make([]int64, 12)
		for i := range vals {
			vals[i] = int64(r.Intn(8) - 1)
		}
		target := timeseries.New(0, vals...)
		base, err := Schedule(offers, target, Options{})
		if err != nil {
			return false
		}
		improved, err := Improve(offers, target, base, 3)
		if err != nil {
			return false
		}
		if improved.Imbalance(target) > base.Imbalance(target)+1e-9 {
			return false
		}
		for i, a := range improved.Assignments {
			if offers[i].ValidateAssignment(a) != nil {
				return false
			}
		}
		// Load must equal the sum of assignments.
		var sum timeseries.Series
		for _, a := range improved.Assignments {
			sum = timeseries.Add(sum, a.Series())
		}
		return sum.EquivalentZeroPadded(improved.Load)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
