package sched

import (
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// Incremental is the delta re-placement evaluator behind the engine's
// WithIncremental pipeline (package inc). It wraps the same incremental
// candidate evaluator Schedule uses, plus a *difference accumulator*
// that tracks, slot by slot, how the load committed so far in the
// current run differs from the load the previous run had committed at
// the corresponding point of its own placement walk.
//
// The merge-walk caller (inc.State.Run) maintains the invariant with
// three moves:
//
//   - Commit replays a clean group's cached assignment into the running
//     load without re-scanning; both runs committed the same values at
//     the same point, so the difference is untouched.
//   - Place scans a dirty (new or changed) group against the true
//     residual and adds its winning values to the difference — the
//     current run has it, the previous run's aligned prefix does not.
//   - Retire subtracts a previous-run assignment from the difference
//     when its group disappeared or is about to be re-placed — the
//     previous run had it, the current run does not.
//
// A cached assignment may be reused (Commit) exactly when CanReuse
// reports the difference is zero over the group's whole scan window
// [EarliestStart, LatestEnd()): the greedy scan is a pure function of
// the residual (and load, which differs from the residual by the
// run-constant target) over that window, so a zero difference means the
// current scan would reproduce the cached assignment bit for bit. That
// is the equivalence argument making incremental schedules identical to
// full recomputes; the property test in incremental_test.go (package
// flex) pins it across churn sequences, shard counts and worker counts.
type Incremental struct {
	ev *evaluator
	// diff is (current run's committed load) − (previous run's aligned
	// prefix load); nonzero counts its nonzero cells so the common
	// no-churn case answers CanReuse in O(1).
	diff    *timeseries.Accumulator
	nonzero int
}

// NewIncremental starts a fresh placement run against the target with
// an empty difference. One Incremental serves one run; the caller keeps
// the cached assignments between runs, not this object.
func NewIncremental(target timeseries.Series, cap int64) *Incremental {
	return &Incremental{
		ev:   newEvaluator(target, cap),
		diff: timeseries.NewAccumulator(),
	}
}

// Reserve pre-sizes the evaluator's window and scratch buffers for the
// offers about to be placed, exactly like Schedule's batch path.
func (r *Incremental) Reserve(offers []*flexoffer.FlexOffer) {
	r.ev.reserve(offers)
}

// CanReuse reports whether the difference accumulator is zero over
// [lo, hi) — the condition under which a clean group's cached
// assignment is guaranteed to equal what a fresh scan would produce.
func (r *Incremental) CanReuse(lo, hi int) bool {
	if r.nonzero == 0 {
		return true
	}
	for t := lo; t < hi; t++ {
		if r.diff.At(t) != 0 {
			return false
		}
	}
	return true
}

// Commit folds a reused cached assignment into the running load and
// residual without scanning and without touching the difference: the
// previous run committed the same values at its aligned point.
func (r *Incremental) Commit(start int, vals []int64) {
	r.ev.addValues(start, vals)
}

// Place validates f, scans every feasible start against the true
// current residual, commits the winner — the shared placeOffer step, so
// this path cannot drift from Schedule — and adds the winning values to
// the difference. idx labels errors with the global group index.
func (r *Incremental) Place(f *flexoffer.FlexOffer, idx int) (flexoffer.Assignment, error) {
	a, err := placeOffer(r.ev, f, idx)
	if err != nil {
		return flexoffer.Assignment{}, err
	}
	r.shift(a.Start, a.Values, +1)
	return a, nil
}

// Retire subtracts a previous-run assignment from the difference: its
// group is gone from the current run (deleted, changed, or about to be
// re-placed by Place).
func (r *Incremental) Retire(start int, vals []int64) {
	r.shift(start, vals, -1)
}

// Load snapshots the committed load over the union range of the placed
// assignments — identical to Schedule's Result.Load for the same
// assignment set.
func (r *Incremental) Load() timeseries.Series {
	return r.ev.loadSeries()
}

// shift folds sign·vals into the difference, maintaining the nonzero
// cell count that short-circuits CanReuse.
func (r *Incremental) shift(start int, vals []int64, sign int64) {
	if len(vals) == 0 {
		return
	}
	cells := r.diff.Values(start, start+len(vals))
	for i, v := range vals {
		old := cells[i]
		now := old + sign*v
		cells[i] = now
		switch {
		case old == 0 && now != 0:
			r.nonzero++
		case old != 0 && now == 0:
			r.nonzero--
		}
	}
}
