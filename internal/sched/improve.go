package sched

import (
	"errors"
	"fmt"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// ErrResultMismatch is returned by Improve when the result does not
// belong to the offers.
var ErrResultMismatch = errors.New("sched: result does not match the offer set")

// Improve refines a schedule by local search: each round removes one
// offer's assignment from the load, re-places that offer optimally
// against the residual target, and keeps the move if it lowers the L1
// imbalance. Rounds repeat until a full sweep makes no improvement or
// maxRounds is reached (0 means until convergence).
//
// Greedy construction commits early offers before it has seen the rest
// of the fleet; re-placement with full knowledge recovers much of that
// gap at O(rounds · n · window) cost. The result always remains a valid
// schedule, and the imbalance is non-increasing round over round —
// properties the tests pin down.
func Improve(offers []*flexoffer.FlexOffer, target timeseries.Series, res *Result, maxRounds int) (*Result, error) {
	if res == nil || len(res.Assignments) != len(offers) {
		return nil, ErrResultMismatch
	}
	out := &Result{
		Assignments: make([]flexoffer.Assignment, len(res.Assignments)),
		Load:        res.Load.Clone(),
	}
	for i, a := range res.Assignments {
		out.Assignments[i] = a.Clone()
		if err := offers[i].ValidateAssignment(a); err != nil {
			return nil, fmt.Errorf("%w: assignment %d: %v", ErrResultMismatch, i, err)
		}
	}
	if maxRounds <= 0 {
		maxRounds = len(offers) + 1
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i, f := range offers {
			current := out.Assignments[i]
			residual := timeseries.Sub(out.Load, current.Series())
			replacement, err := placeOne(f, residual, target)
			if err != nil {
				return nil, fmt.Errorf("sched: re-placing offer %d: %w", i, err)
			}
			before := timeseries.Sub(out.Load, target).NormL1()
			newLoad := timeseries.Add(residual, replacement.Series())
			after := timeseries.Sub(newLoad, target).NormL1()
			if after < before {
				out.Assignments[i] = replacement
				out.Load = newLoad
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return out, nil
}

// ScheduleAndImprove runs Schedule followed by Improve with the same
// options; the common production entry point.
func ScheduleAndImprove(offers []*flexoffer.FlexOffer, target timeseries.Series, opts Options, maxRounds int) (*Result, error) {
	res, err := Schedule(offers, target, opts)
	if err != nil {
		return nil, err
	}
	return Improve(offers, target, res, maxRounds)
}
