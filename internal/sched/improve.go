package sched

import (
	"errors"
	"fmt"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/timeseries"
)

// ErrResultMismatch is returned by Improve when the result does not
// belong to the offers.
var ErrResultMismatch = errors.New("sched: result does not match the offer set")

// Improve refines a schedule by local search: each round removes one
// offer's assignment from the load, re-places that offer optimally
// against the residual target, and keeps the move if it lowers the L1
// imbalance. Rounds repeat until a full sweep makes no improvement or
// maxRounds is reached (0 means until convergence).
//
// Greedy construction commits early offers before it has seen the rest
// of the fleet; re-placement with full knowledge recovers much of that
// gap. Improve runs on the incremental evaluator: lifting an assignment
// out and scoring every candidate start both cost O(profile) in exact
// integer deltas, instead of the legacy evaluator's O(horizon) series
// materialization per candidate — the same win Schedule got. The legacy
// path is retained behind Options.FullRecompute (ImproveWith) as the
// equivalence oracle. The result always remains a valid schedule, and
// the imbalance is non-increasing round over round — properties the
// tests pin down.
func Improve(offers []*flexoffer.FlexOffer, target timeseries.Series, res *Result, maxRounds int) (*Result, error) {
	return ImproveWith(offers, target, res, maxRounds, Options{})
}

// ImproveWith is Improve with explicit options. Only
// Options.FullRecompute is consulted: it selects the legacy evaluator,
// which re-ranks every candidate from fully materialized series. Both
// evaluators produce identical refined schedules (the equivalence
// property test pins this).
func ImproveWith(offers []*flexoffer.FlexOffer, target timeseries.Series, res *Result, maxRounds int, opts Options) (*Result, error) {
	if res == nil || len(res.Assignments) != len(offers) {
		return nil, ErrResultMismatch
	}
	if opts.FullRecompute {
		return improveFullRecompute(offers, target, res, maxRounds)
	}
	return improveIncremental(offers, target, res, maxRounds)
}

// improveIncremental is the default local-search loop, built on the
// same evaluator as Schedule: the residual load−target lives in an
// accumulator, removing an assignment and scoring a re-placement are
// O(profile) integer-delta operations, and a move is accepted exactly
// when the removal and placement deltas sum negative — the same
// strictly-lower-imbalance criterion the legacy loop evaluates from
// scratch.
func improveIncremental(offers []*flexoffer.FlexOffer, target timeseries.Series, res *Result, maxRounds int) (*Result, error) {
	out := &Result{Assignments: make([]flexoffer.Assignment, len(res.Assignments))}
	for i, a := range res.Assignments {
		out.Assignments[i] = a.Clone()
		if err := offers[i].ValidateAssignment(a); err != nil {
			return nil, fmt.Errorf("%w: assignment %d: %v", ErrResultMismatch, i, err)
		}
	}
	ev := newEvaluator(target, 0)
	ev.reserve(offers)
	// Seed the committed-load range with the input Load's domain so the
	// final snapshot reproduces the legacy path's domain even when no
	// move is accepted (the legacy path then returns the input Load
	// untouched).
	if !res.Load.IsEmpty() {
		ev.load.Ensure(res.Load.Start, res.Load.End())
		ev.loadLo, ev.loadHi, ev.placedAny = res.Load.Start, res.Load.End(), true
	}
	for _, a := range out.Assignments {
		ev.addValues(a.Start, a.Values)
	}
	if maxRounds <= 0 {
		maxRounds = len(offers) + 1
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i, f := range offers {
			cur := out.Assignments[i]
			dRemove := ev.removeValues(cur.Start, cur.Values)
			start, dPlace, ok := ev.scan(f)
			if !ok {
				// Impossible for a Validate-d offer, but fail like the
				// legacy loop rather than corrupting the schedule.
				ev.addValues(cur.Start, cur.Values)
				return nil, fmt.Errorf("sched: re-placing offer %d: %w", i, flexoffer.ErrInfeasibleTotal)
			}
			if dRemove+dPlace < 0 {
				vals := make([]int64, f.NumSlices())
				copy(vals, ev.best)
				ev.addValues(start, vals)
				out.Assignments[i] = flexoffer.Assignment{Start: start, Values: vals}
				improved = true
			} else {
				// The best re-placement does not strictly improve:
				// restore the current assignment.
				ev.addValues(cur.Start, cur.Values)
			}
		}
		if !improved {
			break
		}
	}
	out.Load = ev.loadSeries()
	return out, nil
}

// improveFullRecompute is the legacy local-search loop: every
// re-placement materializes the residual and candidate load series and
// compares full float64 L1 norms. Kept as the equivalence oracle for
// improveIncremental and as BenchmarkImprove's baseline.
func improveFullRecompute(offers []*flexoffer.FlexOffer, target timeseries.Series, res *Result, maxRounds int) (*Result, error) {
	out := &Result{
		Assignments: make([]flexoffer.Assignment, len(res.Assignments)),
		Load:        res.Load.Clone(),
	}
	for i, a := range res.Assignments {
		out.Assignments[i] = a.Clone()
		if err := offers[i].ValidateAssignment(a); err != nil {
			return nil, fmt.Errorf("%w: assignment %d: %v", ErrResultMismatch, i, err)
		}
	}
	if maxRounds <= 0 {
		maxRounds = len(offers) + 1
	}
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i, f := range offers {
			current := out.Assignments[i]
			residual := timeseries.Sub(out.Load, current.Series())
			replacement, err := placeOne(f, residual, target)
			if err != nil {
				return nil, fmt.Errorf("sched: re-placing offer %d: %w", i, err)
			}
			before := timeseries.Sub(out.Load, target).NormL1()
			newLoad := timeseries.Add(residual, replacement.Series())
			after := timeseries.Sub(newLoad, target).NormL1()
			if after < before {
				out.Assignments[i] = replacement
				out.Load = newLoad
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return out, nil
}

// ScheduleAndImprove runs Schedule followed by Improve with the same
// options (so Options.FullRecompute selects the legacy evaluator in
// both phases); the common production entry point.
func ScheduleAndImprove(offers []*flexoffer.FlexOffer, target timeseries.Series, opts Options, maxRounds int) (*Result, error) {
	res, err := Schedule(offers, target, opts)
	if err != nil {
		return nil, err
	}
	return ImproveWith(offers, target, res, maxRounds, opts)
}
