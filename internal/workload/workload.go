// Package workload generates synthetic prosumer flex-offers and grid
// profiles. It substitutes for the TotalFlex/MIRABEL project data the
// paper draws its examples from (EVs, heat pumps, dishwashers, smart
// refrigerators, solar panels, wind turbines, vehicle-to-grid batteries —
// Section 1 and Scenario 1), which is not publicly available.
//
// Every generator is deterministic given its *rand.Rand, so experiments
// are reproducible. The time unit is one hour and a day has 24 slots;
// offers are generated within a configurable horizon of whole days.
// Parameters (durations, power bands, time windows) follow the paper's
// narrative: the EV use case charges 3 hours between 23:00 and 03:00 and
// accepts 60–100 % of a full charge.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/market"
	"flexmeasures/internal/timeseries"
)

// SlotsPerDay is the number of time units per day (hourly resolution).
const SlotsPerDay = 24

// Device enumerates the prosumer device classes from the paper.
type Device int

const (
	// EV is the electric vehicle of the Section 1 use case.
	EV Device = iota
	// HeatPump is a long-running consumption device with per-slot
	// modulation.
	HeatPump
	// Dishwasher is a short fixed-profile appliance with a wide start
	// window.
	Dishwasher
	// Refrigerator is a smart fridge: small amounts, frequent, modest
	// time flexibility.
	Refrigerator
	// SolarPanel produces (negative energy) with curtailment
	// flexibility but no time flexibility.
	SolarPanel
	// WindTurbine produces with curtailment flexibility and no time
	// flexibility.
	WindTurbine
	// VehicleToGrid both charges and discharges: a mixed flex-offer.
	VehicleToGrid
)

// String names the device class.
func (d Device) String() string {
	switch d {
	case EV:
		return "ev"
	case HeatPump:
		return "heat-pump"
	case Dishwasher:
		return "dishwasher"
	case Refrigerator:
		return "refrigerator"
	case SolarPanel:
		return "solar-panel"
	case WindTurbine:
		return "wind-turbine"
	case VehicleToGrid:
		return "vehicle-to-grid"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// AllDevices lists every device class.
func AllDevices() []Device {
	return []Device{EV, HeatPump, Dishwasher, Refrigerator, SolarPanel, WindTurbine, VehicleToGrid}
}

// ErrBadDevice is returned for unknown device classes.
var ErrBadDevice = errors.New("workload: unknown device")

// ErrBadMix is returned for unusable population mixes.
var ErrBadMix = errors.New("workload: mix must have positive total weight")

// Generate creates one flex-offer of the given device class within
// [0, SlotsPerDay) of day 0. Energy is in units of 100 Wh, so a 3 kW
// charger slot is 30 units (the paper's integer-domain convention of
// Section 2: scale to the granularity you need).
func Generate(r *rand.Rand, d Device) (*flexoffer.FlexOffer, error) {
	switch d {
	case EV:
		return genEV(r), nil
	case HeatPump:
		return genHeatPump(r), nil
	case Dishwasher:
		return genDishwasher(r), nil
	case Refrigerator:
		return genRefrigerator(r), nil
	case SolarPanel:
		return genSolar(r), nil
	case WindTurbine:
		return genWind(r), nil
	case VehicleToGrid:
		return genV2G(r), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadDevice, int(d))
	}
}

// genEV reproduces the Section 1 use case: plug-in around 23:00, 2–4
// charging hours at 20–50 units per hour, done by 06:00, and a total
// energy window of 60–100 % of a full charge.
func genEV(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 2 + r.Intn(3)
	plugin := 21 + r.Intn(4) // 21:00–00:00
	deadline := plugin + 5 + r.Intn(3)
	latest := deadline - duration
	power := int64(20 + r.Intn(31))
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		slices[i] = flexoffer.Slice{Min: 0, Max: power}
	}
	full := power * int64(duration)
	cmin := full * 6 / 10
	f, err := flexoffer.NewWithTotals(plugin, latest, slices, cmin, full)
	if err != nil {
		panic(fmt.Sprintf("workload: internal EV generator bug: %v", err))
	}
	f.ID = fmt.Sprintf("ev-%04d", r.Intn(10000))
	return f
}

// genHeatPump runs 4–8 hours with per-slot modulation between 40 % and
// 100 % of rated power and a couple of hours of start flexibility.
func genHeatPump(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 4 + r.Intn(5)
	start := r.Intn(SlotsPerDay - duration - 3)
	rated := int64(10 + r.Intn(16))
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		slices[i] = flexoffer.Slice{Min: rated * 4 / 10, Max: rated}
	}
	f := mustBuild(start, start+1+r.Intn(3), slices)
	f.ID = fmt.Sprintf("hp-%04d", r.Intn(10000))
	return f
}

// genDishwasher is a fixed two-to-three-hour profile with a wide start
// window and no per-slot flexibility (the paper's example of a pure
// time-flexible appliance).
func genDishwasher(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 2 + r.Intn(2)
	start := r.Intn(SlotsPerDay - duration - 9)
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		p := int64(8 + r.Intn(8))
		slices[i] = flexoffer.Slice{Min: p, Max: p}
	}
	f := mustBuild(start, start+4+r.Intn(6), slices)
	f.ID = fmt.Sprintf("dw-%04d", r.Intn(10000))
	return f
}

// genRefrigerator is a one-hour cooling burst, deferrable by up to two
// hours, with a small modulation band.
func genRefrigerator(r *rand.Rand) *flexoffer.FlexOffer {
	start := r.Intn(SlotsPerDay - 3)
	p := int64(1 + r.Intn(3))
	f := mustBuild(start, start+1+r.Intn(2), []flexoffer.Slice{{Min: p, Max: p + 2}})
	f.ID = fmt.Sprintf("fr-%04d", r.Intn(10000))
	return f
}

// genSolar is a production offer over the daylight hours: each slot can
// deliver between full forecast output (negative) and zero (curtailed).
// Production follows the sun, so there is no time flexibility.
func genSolar(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 6 + r.Intn(3)
	start := 8 + r.Intn(3)
	cap := 10 + r.Intn(21)
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		// Bell-shaped forecast over the day.
		frac := math.Sin(math.Pi * (float64(i) + 0.5) / float64(duration))
		out := int64(float64(cap) * frac)
		slices[i] = flexoffer.Slice{Min: -out, Max: 0}
	}
	f := mustBuild(start, start, slices)
	f.ID = fmt.Sprintf("pv-%04d", r.Intn(10000))
	return f
}

// genWind is a production offer across the whole day with noisy output
// and curtailment flexibility, no time flexibility.
func genWind(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 8 + r.Intn(9)
	start := r.Intn(SlotsPerDay - duration)
	cap := 20 + r.Intn(41)
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		out := int64(r.Intn(cap + 1))
		slices[i] = flexoffer.Slice{Min: -out, Max: 0}
	}
	f := mustBuild(start, start, slices)
	f.ID = fmt.Sprintf("wt-%04d", r.Intn(10000))
	return f
}

// genV2G is the paper's mixed flex-offer: each slot can charge or
// discharge within the battery's power band.
func genV2G(r *rand.Rand) *flexoffer.FlexOffer {
	duration := 3 + r.Intn(4)
	start := 17 + r.Intn(4)
	power := int64(15 + r.Intn(26))
	slices := make([]flexoffer.Slice, duration)
	for i := range slices {
		slices[i] = flexoffer.Slice{Min: -power, Max: power}
	}
	f := mustBuild(start, start+1+r.Intn(3), slices)
	f.ID = fmt.Sprintf("v2g-%04d", r.Intn(10000))
	return f
}

func mustBuild(es, ls int, slices []flexoffer.Slice) *flexoffer.FlexOffer {
	f, err := flexoffer.New(es, ls, slices...)
	if err != nil {
		panic(fmt.Sprintf("workload: internal generator bug: %v", err))
	}
	return f
}

// Mix assigns a sampling weight to each device class.
type Mix map[Device]float64

// DefaultMix is a residential neighbourhood: mostly appliances and EVs,
// some rooftop solar, a little V2G.
func DefaultMix() Mix {
	return Mix{
		EV:            0.25,
		HeatPump:      0.20,
		Dishwasher:    0.20,
		Refrigerator:  0.15,
		SolarPanel:    0.12,
		WindTurbine:   0.03,
		VehicleToGrid: 0.05,
	}
}

// ConsumptionMix contains only consumption devices; every generated
// offer is positive, which the area-based measures require.
func ConsumptionMix() Mix {
	return Mix{EV: 0.35, HeatPump: 0.25, Dishwasher: 0.25, Refrigerator: 0.15}
}

// Validate checks the mix is usable: no negative weights and a
// positive total.
func (m Mix) Validate() error {
	var total float64
	for _, w := range m {
		if w < 0 {
			return fmt.Errorf("%w: negative weight", ErrBadMix)
		}
		total += w
	}
	if total <= 0 {
		return ErrBadMix
	}
	return nil
}

// Sample draws one device class from the mix, weighted by the mix's
// weights. It is the sampling step Population runs per offer, exported
// so arrival processes (the simulation harness) can draw device classes
// one at a time from the same distribution.
func (m Mix) Sample(r *rand.Rand) (Device, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for _, w := range m {
		total += w
	}
	x := r.Float64() * total
	for _, d := range AllDevices() {
		x -= m[d]
		if x < 0 {
			return d, nil
		}
	}
	// Float round-off can leave x at exactly 0 after the loop; fall
	// back to the last device with positive weight.
	devices := AllDevices()
	for i := len(devices) - 1; i >= 0; i-- {
		if m[devices[i]] > 0 {
			return devices[i], nil
		}
	}
	return 0, ErrBadMix
}

// Population samples n flex-offers from the mix. Offers are spread over
// the requested number of days by shifting whole-day offsets.
func Population(r *rand.Rand, n int, days int, mix Mix) ([]*flexoffer.FlexOffer, error) {
	if days < 1 {
		days = 1
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	out := make([]*flexoffer.FlexOffer, 0, n)
	for len(out) < n {
		chosen, err := mix.Sample(r)
		if err != nil {
			return nil, err
		}
		f, err := Generate(r, chosen)
		if err != nil {
			return nil, err
		}
		if day := r.Intn(days); day > 0 {
			f, err = f.Shift(day * SlotsPerDay)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, f)
	}
	return out, nil
}

// GenerateAt creates one flex-offer of the given device class anchored
// at an arrival slot: the offer is generated with its usual day-0 shape
// (so durations, power bands and totals keep the device semantics) and
// then shifted so its start window opens at slot plus a small plug-in
// lag of 0–2 slots. It is the per-arrival hook of the simulation
// harness: a device arriving at virtual time t produces an offer that
// wants to run shortly after t.
func GenerateAt(r *rand.Rand, d Device, slot int) (*flexoffer.FlexOffer, error) {
	if slot < 0 {
		return nil, fmt.Errorf("workload: arrival slot must be non-negative, got %d", slot)
	}
	f, err := Generate(r, d)
	if err != nil {
		return nil, err
	}
	lag := r.Intn(3)
	shifted, err := f.Shift(slot + lag - f.EarliestStart)
	if err != nil {
		return nil, err
	}
	return shifted, nil
}

// StampZones assigns each offer a grid zone "z00"…, drawn from a skewed
// distribution over k zones — zone i has weight ∝ 1/(i+1), the
// few-big-many-small shape of real grid zones. Zone assignment consumes
// only the given RNG, so callers (flexgen, the simulation harness) can
// decouple the zone stream from the offer stream by seeding it
// separately. k < 1 leaves the offers untouched.
func StampZones(r *rand.Rand, offers []*flexoffer.FlexOffer, k int) {
	if k < 1 {
		return
	}
	cum := make([]float64, k)
	total := 0.0
	for i := range cum {
		total += 1 / float64(i+1)
		cum[i] = total
	}
	for _, f := range offers {
		x := r.Float64() * total
		zone := sort.SearchFloat64s(cum, x)
		if zone >= k {
			zone = k - 1
		}
		f.Zone = fmt.Sprintf("z%02d", zone)
	}
}

// WindProfile returns a synthetic wind-production target series over the
// horizon (positive values: energy available to consume), with slow
// fronts and gusty noise. Scale sets the average level.
func WindProfile(r *rand.Rand, horizon int, scale int64) timeseries.Series {
	vals := make([]int64, horizon)
	level := float64(scale)
	for t := range vals {
		level += (float64(scale)-level)*0.1 + r.NormFloat64()*float64(scale)*0.3
		if level < 0 {
			level = 0
		}
		vals[t] = int64(level)
	}
	return timeseries.New(0, vals...)
}

// DayAheadPrices returns a synthetic day-ahead spot price curve over the
// horizon: a morning and an evening peak over a nightly base, plus
// noise. Prices occasionally dip negative in windy night hours, which
// exercises the market package's negative-price path.
func DayAheadPrices(r *rand.Rand, horizon int) market.PriceCurve {
	p := make(market.PriceCurve, horizon)
	for t := range p {
		h := t % SlotsPerDay
		base := 20.0
		switch {
		case h >= 7 && h <= 9:
			base = 45
		case h >= 17 && h <= 20:
			base = 55
		case h <= 4:
			base = 8
		}
		p[t] = base + r.NormFloat64()*4
		if h <= 4 && r.Float64() < 0.08 {
			p[t] = -2 - r.Float64()*3
		}
	}
	return p
}
