package workload

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

func TestGenerateAllDevicesValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range AllDevices() {
		for i := 0; i < 50; i++ {
			f, err := Generate(r, d)
			if err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("%v generated invalid offer %v: %v", d, f, err)
			}
			if f.ID == "" {
				t.Fatalf("%v generated offer without ID", d)
			}
		}
	}
}

func TestGenerateUnknownDevice(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Generate(r, Device(99)); !errors.Is(err, ErrBadDevice) {
		t.Fatalf("got %v, want ErrBadDevice", err)
	}
}

func TestDeviceKinds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	kinds := map[Device]flexoffer.Kind{
		EV:            flexoffer.Positive,
		HeatPump:      flexoffer.Positive,
		Dishwasher:    flexoffer.Positive,
		Refrigerator:  flexoffer.Positive,
		SolarPanel:    flexoffer.Negative,
		VehicleToGrid: flexoffer.Mixed,
	}
	for d, want := range kinds {
		for i := 0; i < 30; i++ {
			f, err := Generate(r, d)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Kind(); got != want {
				t.Fatalf("%v: kind = %v, want %v (%v)", d, got, want, f)
			}
		}
	}
}

func TestEVMatchesUseCase(t *testing.T) {
	// Section 1: 2–4 h charge, done by early morning, 60 % minimum.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		f, err := Generate(r, EV)
		if err != nil {
			t.Fatal(err)
		}
		if n := f.NumSlices(); n < 2 || n > 4 {
			t.Fatalf("EV duration %d outside 2–4", n)
		}
		if f.TotalMin != f.TotalMax*6/10 {
			t.Fatalf("EV cmin/cmax = %d/%d, want cmin = 60%% of cmax (integer-truncated)", f.TotalMin, f.TotalMax)
		}
		if f.TimeFlexibility() <= 0 {
			t.Fatalf("EV should have start-time flexibility: %v", f)
		}
	}
}

func TestSolarHasNoTimeFlexibility(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		f, err := Generate(r, SolarPanel)
		if err != nil {
			t.Fatal(err)
		}
		if f.TimeFlexibility() != 0 {
			t.Fatalf("solar tf = %d, want 0 (the sun is not deferrable)", f.TimeFlexibility())
		}
	}
}

func TestDeviceStrings(t *testing.T) {
	for _, d := range AllDevices() {
		if s := d.String(); s == "" || strings.HasPrefix(s, "Device(") {
			t.Errorf("device %d has no name", int(d))
		}
	}
	if !strings.Contains(Device(42).String(), "42") {
		t.Error("unknown device String should include the number")
	}
}

func TestPopulationDeterministicAndSized(t *testing.T) {
	a, err := Population(rand.New(rand.NewSource(42)), 200, 3, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Population(rand.New(rand.NewSource(42)), 200, 3, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("sizes = %d, %d; want 200", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("population not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPopulationSpreadsAcrossDays(t *testing.T) {
	offers, err := Population(rand.New(rand.NewSource(9)), 300, 5, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	days := map[int]bool{}
	for _, f := range offers {
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid offer: %v", err)
		}
		days[f.EarliestStart/SlotsPerDay] = true
	}
	if len(days) < 3 {
		t.Errorf("offers concentrated in %d days, want spread over ≥3 of 5", len(days))
	}
}

func TestPopulationConsumptionMixAllPositive(t *testing.T) {
	offers, err := Population(rand.New(rand.NewSource(13)), 150, 2, ConsumptionMix())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Positive {
			t.Fatalf("consumption mix produced %v offer %v", f.Kind(), f)
		}
	}
}

func TestPopulationBadMix(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Population(r, 5, 1, Mix{}); !errors.Is(err, ErrBadMix) {
		t.Errorf("empty mix = %v, want ErrBadMix", err)
	}
	if _, err := Population(r, 5, 1, Mix{EV: -1}); !errors.Is(err, ErrBadMix) {
		t.Errorf("negative weight = %v, want ErrBadMix", err)
	}
}

func TestWindProfileShape(t *testing.T) {
	s := WindProfile(rand.New(rand.NewSource(2)), 48, 30)
	if s.Len() != 48 || s.Start != 0 {
		t.Fatalf("profile range wrong: %v", s)
	}
	for _, v := range s.Values {
		if v < 0 {
			t.Fatal("wind production cannot be negative")
		}
	}
	if s.Sum() == 0 {
		t.Fatal("profile should not be identically zero")
	}
}

func TestDayAheadPricesShape(t *testing.T) {
	p := DayAheadPrices(rand.New(rand.NewSource(4)), 24*7)
	if len(p) != 24*7 {
		t.Fatalf("curve length = %d", len(p))
	}
	// Evening peak must on average exceed the night base.
	var night, evening float64
	var nN, nE int
	for t0, v := range p {
		switch h := t0 % SlotsPerDay; {
		case h <= 4:
			night += v
			nN++
		case h >= 17 && h <= 20:
			evening += v
			nE++
		}
	}
	if evening/float64(nE) <= night/float64(nN) {
		t.Errorf("evening mean %.1f not above night mean %.1f", evening/float64(nE), night/float64(nN))
	}
}

// TestMixSampleMatchesWeights checks Sample respects the mix: devices
// with zero weight never appear, devices with positive weight all do
// over enough draws.
func TestMixSampleMatchesWeights(t *testing.T) {
	mix := Mix{EV: 1, Dishwasher: 3}
	r := rand.New(rand.NewSource(5))
	seen := map[Device]int{}
	for i := 0; i < 2000; i++ {
		d, err := mix.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		seen[d]++
	}
	if len(seen) != 2 || seen[EV] == 0 || seen[Dishwasher] == 0 {
		t.Fatalf("sampled devices = %v, want only EV and Dishwasher", seen)
	}
	if seen[Dishwasher] < seen[EV] {
		t.Errorf("Dishwasher (weight 3) drawn %d times, EV (weight 1) %d times", seen[Dishwasher], seen[EV])
	}
	if _, err := (Mix{}).Sample(r); !errors.Is(err, ErrBadMix) {
		t.Errorf("empty mix Sample error = %v, want ErrBadMix", err)
	}
	if _, err := (Mix{EV: -1}).Sample(r); !errors.Is(err, ErrBadMix) {
		t.Errorf("negative mix Sample error = %v, want ErrBadMix", err)
	}
}

// TestPopulationDeterministic pins the arrival-process contract the
// simulation harness relies on: the same seed reproduces the same
// population, offer by offer.
func TestPopulationDeterministic(t *testing.T) {
	gen := func(seed int64) []*flexoffer.FlexOffer {
		r := rand.New(rand.NewSource(seed))
		offers, err := Population(r, 500, 3, DefaultMix())
		if err != nil {
			t.Fatal(err)
		}
		return offers
	}
	a, b := gen(42), gen(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Equal(b[i]) {
			t.Fatalf("offer %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if c := gen(43); len(c) == len(a) {
		same := true
		for i := range c {
			if !c[i].Equal(a[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical populations")
		}
	}
}

// TestGenerateAtAnchorsArrival checks GenerateAt opens the offer's
// start window at the arrival slot plus at most the plug-in lag, for
// every device class, and that it is deterministic under a fixed seed.
func TestGenerateAtAnchorsArrival(t *testing.T) {
	for _, d := range AllDevices() {
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 50; i++ {
			slot := r.Intn(200)
			f, err := GenerateAt(r, d, slot)
			if err != nil {
				t.Fatalf("%v at %d: %v", d, slot, err)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("%v at %d: invalid offer: %v", d, slot, err)
			}
			if f.EarliestStart < slot || f.EarliestStart > slot+2 {
				t.Fatalf("%v at %d: earliest start %d outside [slot, slot+2]", d, slot, f.EarliestStart)
			}
		}
	}
	if _, err := GenerateAt(rand.New(rand.NewSource(1)), EV, -1); err == nil {
		t.Fatal("negative slot accepted")
	}
	a, _ := GenerateAt(rand.New(rand.NewSource(9)), EV, 30)
	b, _ := GenerateAt(rand.New(rand.NewSource(9)), EV, 30)
	if !a.Equal(b) || a.ID != b.ID {
		t.Fatalf("GenerateAt not deterministic: %v vs %v", a, b)
	}
}

// TestStampZonesSkewedDeterministic checks zone stamping covers k zones
// with a skew towards low indices and reproduces exactly under a fixed
// seed.
func TestStampZonesSkewedDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	offers, err := Population(r, 2000, 1, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	StampZones(rand.New(rand.NewSource(8)), offers, 4)
	counts := map[string]int{}
	for _, f := range offers {
		counts[f.Zone]++
	}
	if len(counts) != 4 {
		t.Fatalf("zones = %v, want 4 distinct", counts)
	}
	if counts["z00"] <= counts["z03"] {
		t.Errorf("zone skew missing: z00=%d z03=%d", counts["z00"], counts["z03"])
	}
	again := make([]string, len(offers))
	for i, f := range offers {
		again[i] = f.Zone
		f.Zone = ""
	}
	StampZones(rand.New(rand.NewSource(8)), offers, 4)
	for i, f := range offers {
		if f.Zone != again[i] {
			t.Fatalf("offer %d: zone %q then %q under the same seed", i, again[i], f.Zone)
		}
	}
	// k < 1 must leave offers untouched.
	StampZones(rand.New(rand.NewSource(8)), offers, 0)
	if offers[0].Zone != again[0] {
		t.Error("StampZones with k=0 modified offers")
	}
}

// TestDayAheadPricesDeterministic pins the price-curve generator the
// scenario loops re-dispatch against.
func TestDayAheadPricesDeterministic(t *testing.T) {
	a := DayAheadPrices(rand.New(rand.NewSource(6)), 96)
	b := DayAheadPrices(rand.New(rand.NewSource(6)), 96)
	if len(a) != 96 || len(b) != 96 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d: %g vs %g under the same seed", i, a[i], b[i])
		}
	}
}
