package workload

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"flexmeasures/internal/flexoffer"
)

func TestGenerateAllDevicesValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, d := range AllDevices() {
		for i := 0; i < 50; i++ {
			f, err := Generate(r, d)
			if err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("%v generated invalid offer %v: %v", d, f, err)
			}
			if f.ID == "" {
				t.Fatalf("%v generated offer without ID", d)
			}
		}
	}
}

func TestGenerateUnknownDevice(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Generate(r, Device(99)); !errors.Is(err, ErrBadDevice) {
		t.Fatalf("got %v, want ErrBadDevice", err)
	}
}

func TestDeviceKinds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	kinds := map[Device]flexoffer.Kind{
		EV:            flexoffer.Positive,
		HeatPump:      flexoffer.Positive,
		Dishwasher:    flexoffer.Positive,
		Refrigerator:  flexoffer.Positive,
		SolarPanel:    flexoffer.Negative,
		VehicleToGrid: flexoffer.Mixed,
	}
	for d, want := range kinds {
		for i := 0; i < 30; i++ {
			f, err := Generate(r, d)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Kind(); got != want {
				t.Fatalf("%v: kind = %v, want %v (%v)", d, got, want, f)
			}
		}
	}
}

func TestEVMatchesUseCase(t *testing.T) {
	// Section 1: 2–4 h charge, done by early morning, 60 % minimum.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		f, err := Generate(r, EV)
		if err != nil {
			t.Fatal(err)
		}
		if n := f.NumSlices(); n < 2 || n > 4 {
			t.Fatalf("EV duration %d outside 2–4", n)
		}
		if f.TotalMin != f.TotalMax*6/10 {
			t.Fatalf("EV cmin/cmax = %d/%d, want cmin = 60%% of cmax (integer-truncated)", f.TotalMin, f.TotalMax)
		}
		if f.TimeFlexibility() <= 0 {
			t.Fatalf("EV should have start-time flexibility: %v", f)
		}
	}
}

func TestSolarHasNoTimeFlexibility(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		f, err := Generate(r, SolarPanel)
		if err != nil {
			t.Fatal(err)
		}
		if f.TimeFlexibility() != 0 {
			t.Fatalf("solar tf = %d, want 0 (the sun is not deferrable)", f.TimeFlexibility())
		}
	}
}

func TestDeviceStrings(t *testing.T) {
	for _, d := range AllDevices() {
		if s := d.String(); s == "" || strings.HasPrefix(s, "Device(") {
			t.Errorf("device %d has no name", int(d))
		}
	}
	if !strings.Contains(Device(42).String(), "42") {
		t.Error("unknown device String should include the number")
	}
}

func TestPopulationDeterministicAndSized(t *testing.T) {
	a, err := Population(rand.New(rand.NewSource(42)), 200, 3, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Population(rand.New(rand.NewSource(42)), 200, 3, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("sizes = %d, %d; want 200", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("population not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPopulationSpreadsAcrossDays(t *testing.T) {
	offers, err := Population(rand.New(rand.NewSource(9)), 300, 5, DefaultMix())
	if err != nil {
		t.Fatal(err)
	}
	days := map[int]bool{}
	for _, f := range offers {
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid offer: %v", err)
		}
		days[f.EarliestStart/SlotsPerDay] = true
	}
	if len(days) < 3 {
		t.Errorf("offers concentrated in %d days, want spread over ≥3 of 5", len(days))
	}
}

func TestPopulationConsumptionMixAllPositive(t *testing.T) {
	offers, err := Population(rand.New(rand.NewSource(13)), 150, 2, ConsumptionMix())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range offers {
		if f.Kind() != flexoffer.Positive {
			t.Fatalf("consumption mix produced %v offer %v", f.Kind(), f)
		}
	}
}

func TestPopulationBadMix(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Population(r, 5, 1, Mix{}); !errors.Is(err, ErrBadMix) {
		t.Errorf("empty mix = %v, want ErrBadMix", err)
	}
	if _, err := Population(r, 5, 1, Mix{EV: -1}); !errors.Is(err, ErrBadMix) {
		t.Errorf("negative weight = %v, want ErrBadMix", err)
	}
}

func TestWindProfileShape(t *testing.T) {
	s := WindProfile(rand.New(rand.NewSource(2)), 48, 30)
	if s.Len() != 48 || s.Start != 0 {
		t.Fatalf("profile range wrong: %v", s)
	}
	for _, v := range s.Values {
		if v < 0 {
			t.Fatal("wind production cannot be negative")
		}
	}
	if s.Sum() == 0 {
		t.Fatal("profile should not be identically zero")
	}
}

func TestDayAheadPricesShape(t *testing.T) {
	p := DayAheadPrices(rand.New(rand.NewSource(4)), 24*7)
	if len(p) != 24*7 {
		t.Fatalf("curve length = %d", len(p))
	}
	// Evening peak must on average exceed the night base.
	var night, evening float64
	var nN, nE int
	for t0, v := range p {
		switch h := t0 % SlotsPerDay; {
		case h <= 4:
			night += v
			nN++
		case h >= 17 && h <= 20:
			evening += v
			nE++
		}
	}
	if evening/float64(nE) <= night/float64(nN) {
		t.Errorf("evening mean %.1f not above night mean %.1f", evening/float64(nE), night/float64(nN))
	}
}
