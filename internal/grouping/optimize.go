package grouping

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"flexmeasures/internal/core"
	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/pool"
)

// Optimize-strategy sentinel errors.
var (
	// ErrNoMeasure is returned by OptimizeGroups without a measure.
	ErrNoMeasure = errors.New("grouping: optimizing grouping requires a measure")
	// ErrNoCombiner is returned by OptimizeGroups without a combine
	// function: the strategy cannot score a merge candidate without
	// building the merged aggregate it would produce.
	ErrNoCombiner = errors.New("grouping: optimizing grouping requires a combine function")
)

// CombineFunc builds the aggregate flex-offer a group would produce, so
// the optimize strategy can measure the flexibility a merge loses. The
// aggregate package's Aggregate is the canonical implementation; the
// indirection keeps this package free of a dependency on aggregation.
type CombineFunc func(group []*flexoffer.FlexOffer) (*flexoffer.FlexOffer, error)

// OptimizeParams controls OptimizeGroups.
type OptimizeParams struct {
	// Measure scores groups; the loss bound is expressed in its units.
	// Required.
	Measure core.Measure
	// MaxLossFraction bounds the relative flexibility loss a single
	// merge may cause: a merge is admissible when
	//
	//	setValue(parts) − value(merged aggregate)
	//	─────────────────────────────────────────  ≤ MaxLossFraction,
	//	          setValue(parts)
	//
	// so 0 permits only lossless merges and 1 permits everything.
	MaxLossFraction float64
	// ESTTolerance bounds the earliest-start spread within a group, as
	// in Params; negative means unbounded.
	ESTTolerance int
	// MaxGroupSize caps constituents per group; 0 means unbounded.
	MaxGroupSize int
	// MaxPasses bounds the merge passes; 0 means until convergence.
	MaxPasses int
	// Workers bounds the goroutines evaluating merge candidates per
	// pass; values below 1 mean runtime.GOMAXPROCS(0). The result is
	// identical for every worker count — only the loss evaluations run
	// concurrently; candidate selection stays deterministic. Any
	// worker count other than 1 calls Measure from multiple
	// goroutines, so a custom Measure must be safe for concurrent use
	// (every measure in this library is — they are stateless value
	// types); set Workers to 1 to force a serial scan otherwise.
	Workers int
	// Pool, when non-nil, submits the merge-candidate scan to a
	// persistent executor (an Engine's pool) instead of spawning
	// Workers goroutines per pass.
	Pool pool.Executor
}

// OptimizeGroups implements the paper's Section 6 future work —
// "performing aggregation jointly with flexibility optimization": it
// partitions the offers so that aggregation preserves as much measured
// flexibility as possible, instead of grouping by start-time similarity
// alone. combine builds the aggregate a candidate merge would produce
// (aggregate.Aggregate, behind a func value).
//
// The algorithm is greedy agglomerative merging over the earliest-start
// ordering: starting from singleton groups, each pass evaluates merging
// every pair of adjacent groups, performs the admissible merge with the
// smallest relative loss first, and repeats until no admissible merge
// remains. Adjacency in start order keeps the scan linear per pass while
// capturing the merges start-alignment aggregation benefits from
// (offers far apart in time lose their whole window to the min-rule).
func OptimizeGroups(offers []*flexoffer.FlexOffer, p OptimizeParams, combine CombineFunc) ([][]*flexoffer.FlexOffer, error) {
	if p.Measure == nil {
		return nil, ErrNoMeasure
	}
	if combine == nil {
		return nil, ErrNoCombiner
	}
	if len(offers) == 0 {
		return nil, nil
	}
	sorted := append([]*flexoffer.FlexOffer(nil), offers...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].EarliestStart < sorted[j].EarliestStart
	})
	groups := make([][]*flexoffer.FlexOffer, len(sorted))
	for i, f := range sorted {
		groups[i] = []*flexoffer.FlexOffer{f}
	}
	maxPasses := p.MaxPasses
	if maxPasses <= 0 {
		maxPasses = len(groups)
	}
	for pass := 0; pass < maxPasses; pass++ {
		merged, err := mergePass(groups, p, combine)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			break
		}
		groups = merged
	}
	return groups, nil
}

// Optimize is the Grouper adapter of the loss-bounded optimizing
// strategy. Combine is required (aggregate.OptimizeGroups supplies the
// aggregation step when going through the shim).
type Optimize struct {
	Params  OptimizeParams
	Combine CombineFunc
}

// Group implements Grouper.
func (o Optimize) Group(_ context.Context, offers []*flexoffer.FlexOffer) ([][]*flexoffer.FlexOffer, error) {
	return OptimizeGroups(offers, o.Params, o.Combine)
}

// mergePass performs every non-overlapping admissible adjacent merge in
// ascending order of loss. It returns nil when no merge was admissible.
//
// Measuring a merge candidate (two aggregations plus up to three measure
// evaluations) dominates the pass, and the candidates are independent, so
// the scan fans out across p.Workers goroutines; results land in
// per-index slots, keeping candidate selection byte-identical to a serial
// scan. With n singleton groups the first pass alone evaluates n−1
// candidates, which made the serial scan the O(n²) hot spot of
// OptimizeGroups.
func mergePass(groups [][]*flexoffer.FlexOffer, p OptimizeParams, combine CombineFunc) ([][]*flexoffer.FlexOffer, error) {
	type candidate struct {
		left int
		loss float64
	}
	type evaluation struct {
		loss float64
		ok   bool
		err  error
	}
	evals := make([]evaluation, max(len(groups)-1, 0))
	scan := func(i int) {
		loss, ok, err := mergeLoss(groups[i], groups[i+1], p, combine)
		evals[i] = evaluation{loss: loss, ok: ok, err: err}
	}
	if p.Pool != nil {
		p.Pool.ForEach(len(evals), p.Workers, 0, scan)
	} else {
		pool.Run(len(evals), p.Workers, 0, scan)
	}
	var cands []candidate
	for i, ev := range evals {
		if ev.err != nil {
			return nil, ev.err
		}
		if ev.ok {
			cands = append(cands, candidate{left: i, loss: ev.loss})
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].loss < cands[b].loss })
	taken := make(map[int]bool)
	mergeWith := make(map[int]bool) // left index of each accepted merge
	for _, c := range cands {
		if taken[c.left] || taken[c.left+1] {
			continue
		}
		taken[c.left], taken[c.left+1] = true, true
		mergeWith[c.left] = true
	}
	var out [][]*flexoffer.FlexOffer
	for i := 0; i < len(groups); i++ {
		if mergeWith[i] {
			merged := append(append([]*flexoffer.FlexOffer{}, groups[i]...), groups[i+1]...)
			out = append(out, merged)
			i++
			continue
		}
		out = append(out, groups[i])
	}
	return out, nil
}

// mergeLoss evaluates the relative flexibility loss of merging two
// groups, and whether the merge is admissible under the parameters.
func mergeLoss(a, b []*flexoffer.FlexOffer, p OptimizeParams, combine CombineFunc) (float64, bool, error) {
	if p.MaxGroupSize > 0 && len(a)+len(b) > p.MaxGroupSize {
		return 0, false, nil
	}
	merged := append(append([]*flexoffer.FlexOffer{}, a...), b...)
	if p.ESTTolerance >= 0 && estSpread(merged) > p.ESTTolerance {
		return 0, false, nil
	}
	before, err := p.Measure.SetValue(merged)
	if err != nil {
		return 0, false, fmt.Errorf("grouping: measuring parts: %w", err)
	}
	agg, err := combine(merged)
	if err != nil {
		return 0, false, err
	}
	after, err := p.Measure.Value(agg)
	if err != nil {
		return 0, false, fmt.Errorf("grouping: measuring merged aggregate: %w", err)
	}
	loss := before - after
	var frac float64
	switch {
	case before > 0:
		frac = loss / before
	case loss <= 0:
		frac = 0
	default:
		frac = 1
	}
	return frac, frac <= p.MaxLossFraction, nil
}

func estSpread(group []*flexoffer.FlexOffer) int {
	lo, hi := estBounds(group)
	return hi - lo
}
