package grouping

import (
	"context"
	"runtime"
	"sort"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
	"flexmeasures/internal/pool"
)

// This file implements the parallel sharded grouper. The serial
// threshold grouper (grouping.go) is a sort followed by one greedy pack
// over the sorted order — after PRs 1–4 parallelized every downstream
// stage, that pass was the pipeline's last serial fraction. The sharded
// grouper removes it in three parallel phases, each bit-identical to
// its serial counterpart:
//
//  1. Key derivation fans out across the executor (independent per
//     offer).
//  2. The stable (est, tf) sort runs as a parallel merge sort: fixed
//     contiguous chunks are stable-sorted concurrently and then merged
//     pairwise, ties always taken from the left run. A stable merge
//     sort produces exactly the stable sort order, so the resulting
//     permutation is identical for every chunk and worker count.
//  3. The sorted order is cut into shards at every earliest-start gap
//     wider than ESTTolerance. A group's earliest-start spread is
//     bounded by the tolerance, so no group can span such a gap — the
//     serial greedy pack provably flushes there — which makes the
//     shards independent: packing each one separately and
//     concatenating the outputs in shard order reproduces the serial
//     pack bit for bit. The property tests in parallel_test.go pin
//     this against the serial oracle.
//
// When no gap exists (every offer is EST-connected to the next, e.g. a
// huge tolerance or densely overlapping spans) the pack phase is
// inherently sequential; the grouper then documents its fallback by
// running the serial pack over the parallel sort's output. Small
// inputs (below MinOffers) skip the machinery entirely.

// Batch is one contiguous run of groups delivered by a streaming
// grouper: Groups[i] is global group Offset+i in grouping-output order.
// Batches arrive in increasing Offset order with no holes.
type Batch struct {
	// Offset is the global grouping-order index of Groups[0].
	Offset int
	// Groups holds the batch's groups in grouping order.
	Groups [][]*flexoffer.FlexOffer
}

// Streamer is implemented by groupers that can deliver their output
// incrementally, batch by batch, while later shards are still being
// packed — the hook the streaming aggregation pipeline consumes so
// aggregation starts before grouping finishes. Streaming groupers must
// be infallible: a strategy that can fail implements only Grouper.
type Streamer interface {
	Grouper
	// GroupStream partitions the offers and delivers the groups as
	// batches in increasing Offset order on the returned channel,
	// closing it when grouping is complete. The channel is buffered to
	// the producer's full output, so abandoning it leaks nothing; a
	// cancelled ctx ends the stream early (consumers that need to
	// distinguish completion from cancellation check ctx themselves).
	GroupStream(ctx context.Context, offers []*flexoffer.FlexOffer) <-chan Batch
}

// Sharded is the parallel implementation of the threshold strategy:
// output is bit-identical to Group(offers, Params) for every worker
// count, pool, and input size. The zero value is a valid serial-ish
// grouper; attach an Engine's pool via Pool for the persistent
// execution model.
type Sharded struct {
	// Params are the threshold tolerances, as in Group.
	Params Params
	// Pool, when non-nil, submits the fan-out phases to a persistent
	// executor (an Engine's pool); nil spins up goroutines per call.
	Pool pool.Executor
	// Workers caps the grouper's parallelism; values below 1 mean one
	// worker per logical CPU (or the pool's full width).
	Workers int
	// MinOffers is the input size below which Group simply runs the
	// serial grouper — sharding overhead dominates tiny inputs. 0
	// picks the default (2048); negative always takes the sharded
	// path (the property tests force it).
	MinOffers int
}

// defaultMinOffers is the input size under which sharding is not worth
// the coordination.
const defaultMinOffers = 2048

func (s *Sharded) minOffers() int {
	switch {
	case s.MinOffers > 0:
		return s.MinOffers
	case s.MinOffers < 0:
		return 0
	default:
		return defaultMinOffers
	}
}

// forEach fans fn over [0, n) under the grouper's execution model.
func (s *Sharded) forEach(n, batch int, fn func(int)) {
	if s.Pool != nil {
		s.Pool.ForEach(n, s.Workers, batch, fn)
		return
	}
	pool.Run(n, s.Workers, batch, fn)
}

// chunks resolves the initial run count of the parallel sort.
func (s *Sharded) chunks() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Group implements Grouper. The result is bit-identical to
// Group(offers, s.Params); only the work distribution differs.
func (s *Sharded) Group(ctx context.Context, offers []*flexoffer.FlexOffer) ([][]*flexoffer.FlexOffer, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(offers) == 0 {
		return nil, nil
	}
	if len(offers) < s.minOffers() {
		return groupTraced(ctx, offers, s.Params), nil
	}
	p := s.plan(ctx, offers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, psp := obs.Start(ctx, obs.StageGroupPack)
	defer psp.End()
	if len(p.ends) == 1 {
		// Fallback: one EST-connected run — every adjacent gap is
		// within the tolerance, so greedy packing is inherently
		// sequential and runs serially over the parallel sort's output.
		return pack(p.sorted, p.tfs, s.Params), nil
	}
	per := make([][][]*flexoffer.FlexOffer, len(p.ends))
	done := ctx.Done()
	s.forEach(len(p.ends), 0, func(k int) {
		select {
		case <-done:
			return
		default:
		}
		lo, hi := p.startOf(k), p.ends[k]
		per[k] = pack(p.sorted[lo:hi], p.tfs[lo:hi], s.Params)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, g := range per {
		total += len(g)
	}
	out := make([][]*flexoffer.FlexOffer, 0, total)
	for _, g := range per {
		out = append(out, g...)
	}
	return out, nil
}

// GroupStream implements Streamer: each shard's groups are delivered as
// soon as the shard and every shard before it are packed, so a consumer
// aggregates the first groups while later shards are still packing. The
// channel is buffered to the shard count — a shard emits at least one
// group, so producers never block and abandoning the channel mid-stream
// leaks no goroutines.
func (s *Sharded) GroupStream(ctx context.Context, offers []*flexoffer.FlexOffer) <-chan Batch {
	if len(offers) == 0 || ctx.Err() != nil {
		ch := make(chan Batch)
		close(ch)
		return ch
	}
	if len(offers) < s.minOffers() {
		ch := make(chan Batch, 1)
		ch <- Batch{Groups: groupTraced(ctx, offers, s.Params)}
		close(ch)
		return ch
	}
	p := s.plan(ctx, offers)
	ch := make(chan Batch, len(p.ends))
	results := make([][][]*flexoffer.FlexOffer, len(p.ends))
	ready := make([]chan struct{}, len(p.ends))
	for k := range ready {
		ready[k] = make(chan struct{})
	}
	done := ctx.Done()
	// The pack span covers shard packing through the delivery of the
	// last batch; the forwarder ends it before closing the channel
	// (LIFO defers) so a draining consumer sees it completed.
	_, psp := obs.Start(ctx, obs.StageGroupPack)
	go func() {
		s.forEach(len(p.ends), 0, func(k int) {
			defer close(ready[k])
			select {
			case <-done:
				return
			default:
			}
			lo, hi := p.startOf(k), p.ends[k]
			results[k] = pack(p.sorted[lo:hi], p.tfs[lo:hi], s.Params)
		})
	}()
	go func() {
		defer close(ch)
		defer psp.End()
		offset := 0
		for k := range p.ends {
			select {
			case <-done:
				return
			case <-ready[k]:
			}
			if results[k] == nil {
				// The packer skipped this shard: ctx was cancelled.
				return
			}
			ch <- Batch{Offset: offset, Groups: results[k]}
			offset += len(results[k])
		}
	}()
	return ch
}

// shardPlan is the shared front half of Group and GroupStream: the
// offers in stable (est, tf)-sorted order, their time flexibilities,
// and the exclusive end index of every shard.
type shardPlan struct {
	sorted []*flexoffer.FlexOffer
	tfs    []int
	ends   []int
}

func (p *shardPlan) startOf(k int) int {
	if k == 0 {
		return 0
	}
	return p.ends[k-1]
}

// plan derives keys, sorts, and cuts the sorted order into shards at
// every earliest-start gap wider than the tolerance. The whole phase
// is one group_sort span; the ctx is used only for tracing.
func (s *Sharded) plan(ctx context.Context, offers []*flexoffer.FlexOffer) *shardPlan {
	_, sp := obs.Start(ctx, obs.StageGroupSort)
	defer sp.End()
	n := len(offers)
	ests := make([]int, n)
	tfs := make([]int, n)
	s.forEach(n, 0, func(i int) {
		ests[i] = offers[i].EarliestStart
		tfs[i] = offers[i].TimeFlexibility()
	})
	perm := s.sortPerm(ests, tfs)
	p := &shardPlan{
		sorted: make([]*flexoffer.FlexOffer, n),
		tfs:    make([]int, n),
	}
	sortedEST := make([]int, n)
	for i, pi := range perm {
		p.sorted[i] = offers[pi]
		p.tfs[i] = tfs[pi]
		sortedEST[i] = ests[pi]
	}
	p.ends = Cuts(sortedEST, s.Params.ESTTolerance)
	return p
}

// SortRun derives the grouping sort keys for the offers and returns
// the stable (est, tf)-sorted permutation together with the keys (in
// input order) — the parallel merge sort the Sharded grouper uses,
// exposed for the scatter-gather sharded engine, which sorts each
// shard's store concurrently on that shard's pool and k-way merges the
// runs into the global grouping order. ex and workers follow the
// Sharded fields of the same names.
func SortRun(offers []*flexoffer.FlexOffer, ex pool.Executor, workers int) (perm, ests, tfs []int) {
	s := &Sharded{Pool: ex, Workers: workers}
	n := len(offers)
	ests = make([]int, n)
	tfs = make([]int, n)
	s.forEach(n, 0, func(i int) {
		ests[i] = offers[i].EarliestStart
		tfs[i] = offers[i].TimeFlexibility()
	})
	return s.sortPerm(ests, tfs), ests, tfs
}

// sortPerm returns the stable (est, tf)-sorted permutation via a
// parallel merge sort: fixed contiguous chunks are stable-sorted
// concurrently, then merged pairwise with ties taken from the left run.
// A stable merge of stable runs is the stable sort, so the permutation
// is identical to sortedPerm's regardless of chunk or worker count.
func (s *Sharded) sortPerm(ests, tfs []int) []int {
	n := len(ests)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	chunks := s.chunks()
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		sort.SliceStable(perm, func(i, j int) bool {
			return keyLess(ests, tfs, perm[i], perm[j])
		})
		return perm
	}
	bounds := make([]int, chunks+1)
	for c := 0; c <= chunks; c++ {
		bounds[c] = c * n / chunks
	}
	s.forEach(chunks, 1, func(c int) {
		seg := perm[bounds[c]:bounds[c+1]]
		sort.SliceStable(seg, func(i, j int) bool {
			return keyLess(ests, tfs, seg[i], seg[j])
		})
	})
	src, dst := perm, make([]int, n)
	for width := 1; width < chunks; width *= 2 {
		step := 2 * width
		ops := (chunks + step - 1) / step
		s.forEach(ops, 1, func(op int) {
			c := op * step
			lo := bounds[c]
			mid := bounds[min(c+width, chunks)]
			hi := bounds[min(c+step, chunks)]
			if mid == hi {
				copy(dst[lo:hi], src[lo:hi])
				return
			}
			mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], ests, tfs)
		})
		src, dst = dst, src
	}
	return src
}

// mergeRuns merges two sorted runs into dst, preferring the left run on
// equal keys (stability).
func mergeRuns(dst, a, b []int, ests, tfs []int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if keyLess(ests, tfs, b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
