package grouping

import (
	"context"
	"sort"

	"flexmeasures/internal/flexoffer"
)

// BalanceParams controls balance-aware grouping.
type BalanceParams struct {
	// MaxGroupSize caps the constituents per group; 0 means unbounded.
	MaxGroupSize int
	// ESTTolerance is the maximum spread of earliest start times within
	// a group, as in Params.
	ESTTolerance int
}

// expectedEnergy is the midpoint of an offer's total energy band, used
// as its balancing contribution.
func expectedEnergy(f *flexoffer.FlexOffer) int64 {
	return (f.TotalMin + f.TotalMax) / 2
}

// BalanceGroups partitions the offers into groups that mix energy
// consumption and production so each aggregate's expected total energy is
// close to zero, following the balance-aware aggregation of the paper's
// reference [14] ("Balancing energy flexibilities through aggregation"):
// aggregation is used "not only to reduce the number of the flex-offers,
// but also to partially handle the balancing task as well" (Scenario 1).
//
// The heuristic pairs the most positive remaining offer with the most
// negative remaining offers (and vice versa) until the group's running
// expected energy crosses zero or the size cap is hit, subject to the
// earliest-start tolerance. Offers that cannot balance (everything left
// has the same sign) are grouped by Group's rules instead.
//
// Note that aggregates produced from such groups are typically *mixed*
// flex-offers, which is why Scenario 1 needs measures that capture mixed
// offers (vector, assignments) rather than the area-based ones.
func BalanceGroups(offers []*flexoffer.FlexOffer, p BalanceParams) [][]*flexoffer.FlexOffer {
	if len(offers) == 0 {
		return nil
	}
	rest := append([]*flexoffer.FlexOffer(nil), offers...)
	// Most positive first; most negative last.
	sort.SliceStable(rest, func(i, j int) bool {
		return expectedEnergy(rest[i]) > expectedEnergy(rest[j])
	})
	var groups [][]*flexoffer.FlexOffer
	for len(rest) > 0 {
		// Seed with the largest-magnitude offer remaining.
		seedIdx := 0
		if -expectedEnergy(rest[len(rest)-1]) > expectedEnergy(rest[0]) {
			seedIdx = len(rest) - 1
		}
		seed := rest[seedIdx]
		rest = append(rest[:seedIdx], rest[seedIdx+1:]...)
		group := []*flexoffer.FlexOffer{seed}
		net := expectedEnergy(seed)
		for net != 0 && (p.MaxGroupSize <= 0 || len(group) < p.MaxGroupSize) {
			best := -1
			bestAbs := abs64(net)
			for i, f := range rest {
				if spread(group, f) > p.ESTTolerance {
					continue
				}
				if a := abs64(net + expectedEnergy(f)); a < bestAbs {
					best, bestAbs = i, a
				}
			}
			if best < 0 {
				break // no offer improves the balance
			}
			net += expectedEnergy(rest[best])
			group = append(group, rest[best])
			rest = append(rest[:best], rest[best+1:]...)
		}
		groups = append(groups, group)
	}
	return groups
}

// Balance is the Grouper adapter of the balance-aware strategy. It
// never fails and ignores the context.
type Balance struct {
	Params BalanceParams
}

// Group implements Grouper.
func (b Balance) Group(_ context.Context, offers []*flexoffer.FlexOffer) ([][]*flexoffer.FlexOffer, error) {
	return BalanceGroups(offers, b.Params), nil
}

// spread returns the earliest-start spread the group would have after
// adding f.
func spread(group []*flexoffer.FlexOffer, f *flexoffer.FlexOffer) int {
	lo, hi := estBounds(group)
	if f.EarliestStart < lo {
		lo = f.EarliestStart
	}
	if f.EarliestStart > hi {
		hi = f.EarliestStart
	}
	return hi - lo
}

// estBounds returns the lowest and highest earliest start in the
// (non-empty) group — the shared invariant behind the balance and
// optimize strategies' EST-spread checks.
func estBounds(group []*flexoffer.FlexOffer) (lo, hi int) {
	lo, hi = group[0].EarliestStart, group[0].EarliestStart
	for _, g := range group[1:] {
		if g.EarliestStart < lo {
			lo = g.EarliestStart
		}
		if g.EarliestStart > hi {
			hi = g.EarliestStart
		}
	}
	return lo, hi
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// NetExpectedEnergy returns the sum of the group's expected energies;
// balance-aware grouping drives this towards zero.
func NetExpectedEnergy(group []*flexoffer.FlexOffer) int64 {
	var net int64
	for _, f := range group {
		net += expectedEnergy(f)
	}
	return net
}
