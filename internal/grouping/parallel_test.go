package grouping

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/pool"
)

// TestShardedGrouperMatchesSerial is the package's acceptance
// criterion, pinned in CI: the sharded grouper's output is bit-identical
// to the serial oracle for every tested worker count, tolerance set,
// input density (which controls the shard sizes) and input permutation.
func TestShardedGrouperMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	paramSets := []Params{
		{ESTTolerance: 0, TFTolerance: -1},
		{ESTTolerance: 2, TFTolerance: -1},
		{ESTTolerance: 2, TFTolerance: 1, MaxGroupSize: 5},
		{ESTTolerance: 5, TFTolerance: 0},
		{ESTTolerance: 1, TFTolerance: 4, MaxGroupSize: 3},
	}
	shapes := []struct{ n, estRange, tfMax int }{
		{1, 4, 2},     // single offer
		{40, 200, 3},  // sparse: almost every offer its own shard
		{150, 40, 6},  // medium density
		{300, 12, 4},  // dense: few, large shards
		{220, 1, 5},   // a single EST: exactly one shard (serial fallback)
		{500, 900, 8}, // very sparse with wide windows
	}
	for si, shape := range shapes {
		offers := randomOffers(t, rng, shape.n, shape.estRange, shape.tfMax)
		for shuffle := 0; shuffle < 3; shuffle++ {
			if shuffle > 0 {
				rng.Shuffle(len(offers), func(i, j int) { offers[i], offers[j] = offers[j], offers[i] })
			}
			for pi, p := range paramSets {
				want := Group(offers, p)
				for _, workers := range []int{1, 2, 3, 8} {
					s := &Sharded{Params: p, Workers: workers, MinOffers: -1}
					got, err := s.Group(context.Background(), offers)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("shape %d shuffle %d params %d workers %d: sharded grouping diverged from serial",
							si, shuffle, pi, workers)
					}
				}
			}
		}
	}
}

// TestShardedGrouperOnPool runs the same equivalence over a shared
// persistent pool — the engine's execution model.
func TestShardedGrouperOnPool(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	offers := randomOffers(t, rng, 400, 60, 5)
	p := Params{ESTTolerance: 2, TFTolerance: 3, MaxGroupSize: 8}
	want := Group(offers, p)
	pl := pool.New(3)
	defer pl.Close()
	for _, workers := range []int{0, 1, 2, 3} {
		s := &Sharded{Params: p, Pool: pl, Workers: workers, MinOffers: -1}
		got, err := s.Group(context.Background(), offers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: pool-backed sharded grouping diverged from serial", workers)
		}
	}
}

// TestShardedGrouperSerialFallback checks the two documented fallbacks:
// inputs below MinOffers skip the sharding machinery, and a fully
// EST-connected input (one shard) packs serially — both bit-identical
// to the oracle by construction.
func TestShardedGrouperSerialFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := randomOffers(t, rng, 30, 10, 3)
	p := Params{ESTTolerance: 2, TFTolerance: -1}
	s := &Sharded{Params: p, Workers: 4} // default MinOffers ≫ 30
	got, err := s.Group(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Group(small, p), got) {
		t.Fatal("small-input fallback diverged from serial")
	}
	// One EST-connected run: a tolerance wider than the EST range.
	dense := randomOffers(t, rng, 300, 5, 4)
	wide := Params{ESTTolerance: 100, TFTolerance: -1, MaxGroupSize: 7}
	s = &Sharded{Params: wide, Workers: 4, MinOffers: -1}
	got, err = s.Group(context.Background(), dense)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Group(dense, wide), got) {
		t.Fatal("single-shard fallback diverged from serial")
	}
}

// TestShardedGroupStream checks the streaming side: batches arrive in
// increasing contiguous offset order and concatenate to exactly the
// serial grouping.
func TestShardedGroupStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	offers := randomOffers(t, rng, 350, 120, 5)
	p := Params{ESTTolerance: 1, TFTolerance: -1, MaxGroupSize: 6}
	want := Group(offers, p)
	for _, workers := range []int{1, 2, 4} {
		s := &Sharded{Params: p, Workers: workers, MinOffers: -1}
		var got [][]*flexoffer.FlexOffer
		for batch := range s.GroupStream(context.Background(), offers) {
			if batch.Offset != len(got) {
				t.Fatalf("workers=%d: batch offset %d, want %d (contiguous)", workers, batch.Offset, len(got))
			}
			got = append(got, batch.Groups...)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: streamed grouping diverged from serial", workers)
		}
	}
}

// TestShardedGroupStreamSmallInput covers the one-batch fallback.
func TestShardedGroupStreamSmallInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	offers := randomOffers(t, rng, 25, 8, 3)
	p := Params{ESTTolerance: 2, TFTolerance: -1}
	s := &Sharded{Params: p, Workers: 4}
	var batches []Batch
	for b := range s.GroupStream(context.Background(), offers) {
		batches = append(batches, b)
	}
	if len(batches) != 1 || batches[0].Offset != 0 {
		t.Fatalf("small input should stream one batch at offset 0, got %d batches", len(batches))
	}
	if !reflect.DeepEqual(Group(offers, p), batches[0].Groups) {
		t.Fatal("small-input stream diverged from serial")
	}
}

// TestShardedGrouperCancelled checks that cancellation surfaces as the
// context's error (Group) and an early-closed stream (GroupStream).
func TestShardedGrouperCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	offers := randomOffers(t, rng, 100, 50, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := &Sharded{Params: Params{ESTTolerance: 1, TFTolerance: -1}, Workers: 2, MinOffers: -1}
	if _, err := s.Group(ctx, offers); err != context.Canceled {
		t.Fatalf("cancelled Group returned %v, want context.Canceled", err)
	}
	n := 0
	for range s.GroupStream(ctx, offers) {
		n++
	}
	if n != 0 {
		t.Fatalf("cancelled GroupStream delivered %d batches, want 0", n)
	}
}

// benchOffers is a fixed population for the grouping benchmarks.
func benchOffers(b *testing.B, n int) []*flexoffer.FlexOffer {
	return randomOffers(b, rand.New(rand.NewSource(99)), n, n/8, 6)
}

func BenchmarkGroupSerial10k(b *testing.B) {
	offers := benchOffers(b, 10000)
	p := Params{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Group(offers, p)
	}
}

func BenchmarkGroupSharded10k(b *testing.B) {
	offers := benchOffers(b, 10000)
	s := &Sharded{Params: Params{ESTTolerance: 2, TFTolerance: -1, MaxGroupSize: 32}, MinOffers: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Group(context.Background(), offers); err != nil {
			b.Fatal(err)
		}
	}
}
