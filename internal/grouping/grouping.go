// Package grouping partitions flex-offers into aggregation-compatible
// groups — the entry stage of the paper's Scenario-1 pipeline (refs [14]
// Valsomatzis et al., DARE 2014; [15] Šikšnys et al., SSDBM 2012).
// Every downstream stage (aggregate, schedule, disaggregate) consumes
// grouping output, so this package owns the three partitioning
// strategies the system ships — threshold similarity grouping,
// balance-aware grouping, and loss-bounded optimizing grouping — behind
// one pluggable Grouper interface, plus a parallel sharded
// implementation of the threshold strategy (parallel.go) whose output
// is bit-identical to the serial one for every worker count.
//
// The aggregate package re-exports thin shims (Group, GroupParams,
// BalanceGroups, OptimizeGroups) for compatibility; new code selects a
// strategy here and hands the groups to aggregation, or installs a
// Grouper on an Engine via flex.WithGrouper.
package grouping

import (
	"context"
	"sort"

	"flexmeasures/internal/flexoffer"
	"flexmeasures/internal/obs"
)

// Grouper partitions offers into aggregation-compatible groups. The
// input slice is never modified; constituent order inside each group is
// strategy-defined but deterministic. Implementations must be safe for
// concurrent use — an Engine shares one Grouper across requests.
type Grouper interface {
	Group(ctx context.Context, offers []*flexoffer.FlexOffer) ([][]*flexoffer.FlexOffer, error)
}

// Params controls the threshold strategy's similarity tolerances,
// mirroring the grouping parameters of reference [15].
type Params struct {
	// ESTTolerance is the maximum spread of earliest start times within
	// one group (the "EST tolerance" of [15]). 0 groups only offers
	// with identical earliest starts.
	ESTTolerance int
	// TFTolerance is the maximum spread of time flexibilities within
	// one group. Grouping offers of similar tf bounds the time
	// flexibility lost to the min-rule. Negative means unbounded.
	TFTolerance int
	// MaxGroupSize caps the constituents per group; 0 means unbounded.
	MaxGroupSize int
}

// Group partitions the offers with the serial threshold strategy: the
// offers are ordered by earliest start time (time flexibility breaking
// ties, input order breaking those) and greedily packed while the group
// stays within the tolerances. The input slice is not modified;
// constituent order inside each group follows the sort. This is the
// oracle the Sharded grouper is property-tested against.
func Group(offers []*flexoffer.FlexOffer, p Params) [][]*flexoffer.FlexOffer {
	return groupTraced(context.Background(), offers, p)
}

// groupTraced is the serial threshold grouper with its two phases —
// the stable key sort and the greedy pack — wrapped in group_sort and
// group_pack spans, so the serial path (small inputs, one worker)
// reports the same stage breakdown as the sharded one. Output is
// identical to Group for every input.
func groupTraced(ctx context.Context, offers []*flexoffer.FlexOffer, p Params) [][]*flexoffer.FlexOffer {
	if len(offers) == 0 {
		return nil
	}
	_, ssp := obs.Start(ctx, obs.StageGroupSort)
	ests, tfs := keysOf(offers)
	perm := sortedPerm(ests, tfs)
	sorted := make([]*flexoffer.FlexOffer, len(offers))
	for i, pi := range perm {
		sorted[i] = offers[pi]
	}
	sortedTF := tfsOf(tfs, perm)
	ssp.End()
	_, psp := obs.Start(ctx, obs.StageGroupPack)
	defer psp.End()
	return pack(sorted, sortedTF, p)
}

// Threshold is the Grouper adapter of the serial threshold strategy.
// It never fails and ignores the context; use Sharded for the parallel
// implementation.
type Threshold struct {
	Params Params
}

// Group implements Grouper. The context is used only for tracing.
func (t Threshold) Group(ctx context.Context, offers []*flexoffer.FlexOffer) ([][]*flexoffer.FlexOffer, error) {
	return groupTraced(ctx, offers, t.Params), nil
}

// keysOf derives the sort keys — earliest start and time flexibility —
// for every offer. With a comparator that recomputes them, a sort of n
// offers pays the key derivation O(n log n) times and chases the offer
// pointers on every comparison; flat key slices keep the comparator to
// two integer loads. The Sharded grouper fans the same derivation out
// across its executor instead.
func keysOf(offers []*flexoffer.FlexOffer) (ests, tfs []int) {
	ests = make([]int, len(offers))
	tfs = make([]int, len(offers))
	for i, f := range offers {
		ests[i] = f.EarliestStart
		tfs[i] = f.TimeFlexibility()
	}
	return ests, tfs
}

// sortedPerm returns the stable (est, tf)-sorted permutation of the
// offer indices. The stable sort over identical keys yields exactly the
// permutation a stable offer-slice sort would produce.
func sortedPerm(ests, tfs []int) []int {
	perm := make([]int, len(ests))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		return keyLess(ests, tfs, perm[i], perm[j])
	})
	return perm
}

// keyLess orders offer indices by (earliest start, time flexibility).
func keyLess(ests, tfs []int, a, b int) bool {
	if ests[a] != ests[b] {
		return ests[a] < ests[b]
	}
	return tfs[a] < tfs[b]
}

// tfsOf rearranges the time-flexibility keys into sorted order, so pack
// never recomputes them.
func tfsOf(tfs []int, perm []int) []int {
	out := make([]int, len(perm))
	for i, pi := range perm {
		out[i] = tfs[pi]
	}
	return out
}

// Pack greedily packs an already stably (est, tf)-sorted run into
// groups within the tolerances — the serial pack loop, exported for
// the scatter-gather sharded engine, which merges per-shard sorted
// runs into the global order itself and then needs exactly this loop
// (segmented at the EST-gap cuts, see Cuts) to reproduce the serial
// grouping bit for bit. sortedTF holds each offer's time flexibility
// in run order (nil recomputes them).
func Pack(sorted []*flexoffer.FlexOffer, sortedTF []int, p Params) [][]*flexoffer.FlexOffer {
	return pack(sorted, sortedTF, p)
}

// Cuts returns the exclusive end index of every independently packable
// segment of an (est, tf)-sorted run: the run is cut after position
// i-1 wherever sortedESTs[i]-sortedESTs[i-1] exceeds the tolerance. A
// group's earliest-start spread is bounded by the tolerance, so no
// group can span such a gap — the greedy pack provably flushes there —
// which makes the segments independent: packing each separately and
// concatenating the outputs reproduces Pack over the whole run. A
// non-empty input always yields a final cut at len(sortedESTs); an
// empty input yields nil.
func Cuts(sortedESTs []int, estTolerance int) []int {
	var ends []int
	for i := 1; i < len(sortedESTs); i++ {
		if sortedESTs[i]-sortedESTs[i-1] > estTolerance {
			ends = append(ends, i)
		}
	}
	if len(sortedESTs) > 0 {
		ends = append(ends, len(sortedESTs))
	}
	return ends
}

// pack greedily packs a run of (est, tf)-sorted offers into groups
// within the tolerances: a group accepts the next offer while the
// earliest-start spread stays within ESTTolerance, the time-flexibility
// spread within TFTolerance, and the size within MaxGroupSize. sortedTF
// holds each offer's time flexibility in run order (nil recomputes
// them). Both the serial grouper and each of the Sharded grouper's
// shards run exactly this loop, which is what makes the two
// bit-identical.
func pack(sorted []*flexoffer.FlexOffer, sortedTF []int, p Params) [][]*flexoffer.FlexOffer {
	tfAt := func(i int) int {
		if sortedTF != nil {
			return sortedTF[i]
		}
		return sorted[i].TimeFlexibility()
	}
	var groups [][]*flexoffer.FlexOffer
	var cur []*flexoffer.FlexOffer
	var baseEST, minTF, maxTF int
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
		}
	}
	for i, f := range sorted {
		if len(cur) == 0 {
			cur = []*flexoffer.FlexOffer{f}
			baseEST = f.EarliestStart
			minTF, maxTF = tfAt(i), tfAt(i)
			continue
		}
		tf := tfAt(i)
		lo, hi := minTF, maxTF
		if tf < lo {
			lo = tf
		}
		if tf > hi {
			hi = tf
		}
		fits := f.EarliestStart-baseEST <= p.ESTTolerance &&
			(p.TFTolerance < 0 || hi-lo <= p.TFTolerance) &&
			(p.MaxGroupSize <= 0 || len(cur) < p.MaxGroupSize)
		if !fits {
			flush()
			cur = []*flexoffer.FlexOffer{f}
			baseEST = f.EarliestStart
			minTF, maxTF = tf, tf
			continue
		}
		cur = append(cur, f)
		minTF, maxTF = lo, hi
	}
	flush()
	return groups
}
